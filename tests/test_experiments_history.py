"""Benchmark regression observatory: records, diffs, CI gating."""

from __future__ import annotations

import copy
import json

import pytest

from repro import cli
from repro.experiments import (
    SCHEMA_VERSION,
    ExperimentContext,
    RecordError,
    collect_record,
    diff_records,
    load_record,
    write_record,
)
from repro.experiments.history import CANONICAL_COMBOS, REGRESSION_METRICS


def make_record(**overrides) -> dict:
    """A small, hand-built schema-1 record (no suite runs needed)."""
    record = {
        "schema": SCHEMA_VERSION,
        "label": "test",
        "created": "2026-08-06T00:00:00Z",
        "config": {
            "spec_scale": 0.02, "cnn_scale": 0.2,
            "idft_points": 8, "seed": 0,
        },
        "wall_seconds": 1.0,
        "programs": {
            "SPECfp/rv2:2/non/alpha": {
                "reles": 100, "static_conflicts": 40,
                "dynamic_conflicts": 30, "spills": 4, "copies": 0,
                "cycles": None,
            },
            "DSA-OP/dsa:0/bpc/idft": {
                "reles": 50, "static_conflicts": 2,
                "dynamic_conflicts": None, "spills": 0, "copies": 10,
                "cycles": 650.0,
            },
        },
        "totals": {
            "reles": 150, "static_conflicts": 42, "dynamic_conflicts": 30,
            "spills": 4, "copies": 10, "cycles": 650.0,
        },
    }
    record.update(overrides)
    return record


class TestRecordIO:
    def test_write_load_roundtrip(self, tmp_path):
        record = make_record()
        path = write_record(record, str(tmp_path))
        assert "BENCH_" in path and path.endswith(".json")
        assert load_record(path) == record

    def test_same_second_records_do_not_clobber(self, tmp_path):
        first = write_record(make_record(), str(tmp_path))
        second = write_record(make_record(label="again"), str(tmp_path))
        assert first != second
        assert load_record(first)["label"] == "test"
        assert load_record(second)["label"] == "again"

    def test_load_rejects_schema_mismatch(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(make_record(schema=SCHEMA_VERSION + 1)))
        with pytest.raises(RecordError, match="schema"):
            load_record(str(path))

    def test_load_rejects_non_records(self, tmp_path):
        garbage = tmp_path / "garbage.json"
        garbage.write_text("[1, 2]")
        with pytest.raises(RecordError):
            load_record(str(garbage))
        with pytest.raises(RecordError):
            load_record(str(tmp_path / "missing.json"))


class TestDiff:
    def test_identical_records_are_clean(self):
        report = diff_records(make_record(), make_record())
        assert report.exit_code() == 0
        assert not report.regressions and not report.improvements
        assert report.compared == len(REGRESSION_METRICS) * 2 - 2  # 2 None

    def test_flags_injected_regression(self):
        new = make_record()
        # +10% DSA cycles: beyond the default 5% threshold.
        new["programs"]["DSA-OP/dsa:0/bpc/idft"]["cycles"] = 715.0
        report = diff_records(make_record(), new)
        assert report.exit_code() == 1
        (delta,) = report.regressions
        assert delta.metric == "cycles"
        assert delta.pct == pytest.approx(10.0)
        assert "REGRESSION" in report.render()

    def test_threshold_and_abs_floor_gate_small_deltas(self):
        new = make_record()
        new["programs"]["SPECfp/rv2:2/non/alpha"]["static_conflicts"] = 41
        # +2.5% and +1 absolute: below the 5% bar.
        assert diff_records(make_record(), new).exit_code() == 0
        # Tightening the threshold flags it...
        tight = diff_records(make_record(), new, threshold_pct=1.0)
        assert tight.exit_code() == 1
        # ...and a raised absolute floor un-flags it again.
        floored = diff_records(
            make_record(), new, threshold_pct=1.0, abs_floor=2.0
        )
        assert floored.exit_code() == 0

    def test_improvements_do_not_gate(self):
        new = make_record()
        new["programs"]["SPECfp/rv2:2/non/alpha"]["dynamic_conflicts"] = 20
        report = diff_records(make_record(), new)
        assert report.exit_code() == 0
        (delta,) = report.improvements
        assert delta.metric == "dynamic_conflicts"

    def test_config_mismatch_is_not_comparable(self):
        other = make_record()
        other["config"]["seed"] = 7
        report = diff_records(make_record(), other)
        assert report.exit_code() == 2
        assert "seed" in report.render()
        forced = diff_records(
            make_record(), other, allow_config_mismatch=True
        )
        assert forced.exit_code() == 0

    def test_reles_and_program_churn_are_structural_not_gating(self):
        new = make_record()
        new["programs"]["SPECfp/rv2:2/non/alpha"]["reles"] = 120
        del new["programs"]["DSA-OP/dsa:0/bpc/idft"]
        new["programs"]["DSA-OP/dsa:0/bpc/fresh"] = {
            "reles": 1, "static_conflicts": 0, "dynamic_conflicts": None,
            "spills": 0, "copies": 0, "cycles": 1.0,
        }
        report = diff_records(make_record(), new)
        assert report.exit_code() == 0
        assert any("reles changed" in s for s in report.structural)
        assert any(s.startswith("removed:") for s in report.structural)
        assert any(s.startswith("added:") for s in report.structural)


class TestCollect:
    def test_collect_record_structure(self):
        ctx = ExperimentContext(
            spec_scale=0.01, cnn_scale=0.1, idft_points=8, seed=0, jobs=1
        )
        record = collect_record(ctx, label="unit")
        assert record["schema"] == SCHEMA_VERSION
        assert record["label"] == "unit"
        assert record["config"] == {
            "spec_scale": 0.01, "cnn_scale": 0.1,
            "idft_points": 8, "seed": 0,
        }
        prefixes = {
            f"{suite}/{platform}:{banks}/{method}/"
            for suite, platform, banks, method in CANONICAL_COMBOS
        }
        assert {k.rsplit("/", 1)[0] + "/" for k in record["programs"]} == (
            prefixes
        )
        # RV#2 rows carry dynamic conflicts, DSA rows carry cycles.
        for key, entry in record["programs"].items():
            if key.startswith("DSA-OP"):
                assert entry["cycles"] is not None
                assert entry["dynamic_conflicts"] is None
            else:
                assert entry["dynamic_conflicts"] is not None
                assert entry["cycles"] is None
        # Totals really are the per-program sums.
        assert record["totals"]["spills"] == sum(
            e["spills"] for e in record["programs"].values()
        )
        # Determinism: a fresh context reproduces the numbers exactly.
        again = collect_record(
            ExperimentContext(
                spec_scale=0.01, cnn_scale=0.1, idft_points=8, seed=0, jobs=1
            ),
            label="unit",
        )
        assert again["programs"] == record["programs"]
        assert diff_records(record, again).exit_code() == 0


class TestCli:
    def test_bench_record_then_diff_clean(self, tmp_path, capsys):
        args = ["--spec-scale", "0.01", "--cnn-scale", "0.1",
                "--idft-points", "8", "--jobs", "1"]
        assert cli.main(
            [*args, "bench", "record", "--label", "a",
             "--out", str(tmp_path)]
        ) == 0
        assert cli.main(
            [*args, "bench", "record", "--label", "b",
             "--out", str(tmp_path)]
        ) == 0
        first, second = sorted(str(p) for p in tmp_path.glob("BENCH_*.json"))
        capsys.readouterr()
        assert cli.main(["bench", "diff", first, second]) == 0
        assert "RESULT: ok" in capsys.readouterr().out

    def test_bench_diff_exit_codes(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        old.write_text(json.dumps(make_record()))
        regressed_record = make_record()
        regressed_record["programs"]["SPECfp/rv2:2/non/alpha"]["spills"] = 9
        regressed = tmp_path / "regressed.json"
        regressed.write_text(json.dumps(regressed_record))
        schema = tmp_path / "schema.json"
        schema.write_text(json.dumps(make_record(schema=99)))
        assert cli.main(["bench", "diff", str(old), str(old)]) == 0
        assert cli.main(["bench", "diff", str(old), str(regressed)]) == 1
        assert cli.main(["bench", "diff", str(old), str(schema)]) == 2
        assert "schema" in capsys.readouterr().err

    def test_bench_diff_threshold_flags(self, tmp_path, capsys):
        old_record = make_record()
        new_record = copy.deepcopy(old_record)
        new_record["programs"]["SPECfp/rv2:2/non/alpha"][
            "static_conflicts"
        ] = 41
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(old_record))
        new.write_text(json.dumps(new_record))
        assert cli.main(["bench", "diff", str(old), str(new)]) == 0
        assert cli.main(
            ["bench", "diff", str(old), str(new), "--threshold-pct", "1"]
        ) == 1
        assert cli.main(
            ["bench", "diff", str(old), str(new), "--threshold-pct", "1",
             "--abs-floor", "2"]
        ) == 0


class TestBaselineRecord:
    def test_checked_in_baseline_is_loadable(self):
        import pathlib

        baseline = (
            pathlib.Path(__file__).parent.parent
            / "benchmarks" / "results" / "history" / "BENCH_baseline.json"
        )
        record = load_record(str(baseline))
        assert record["schema"] == SCHEMA_VERSION
        assert record["programs"]

"""Tests for register coalescing."""

from repro.alloc import coalesce
from repro.ir import IRBuilder, OpKind, verify_function
from repro.sim import ValueInterpreter, observably_equivalent


def copy_chain_function():
    b = IRBuilder("f")
    x = b.const(1.0)
    y = b.fresh()
    b.copy(y, x)
    z = b.fresh()
    b.copy(z, y)
    t = b.arith("fneg", z)
    b.ret(t)
    return b.finish()


def count_copies(fn):
    return sum(1 for __, i in fn.instructions() if i.kind is OpKind.COPY)


class TestCoalesce:
    def test_removes_dead_copy_chain(self):
        fn = copy_chain_function()
        result = coalesce(fn)
        assert result.copies_removed == 2
        assert count_copies(fn) == 0
        verify_function(fn)

    def test_semantics_preserved(self):
        fn = copy_chain_function()
        reference = fn.clone()
        coalesce(fn)
        assert observably_equivalent(reference, fn)

    def test_overlapping_copy_kept(self):
        # y = mov x, then both x and y used: intervals overlap, no merge.
        b = IRBuilder("f")
        x = b.const(1.0)
        y = b.fresh()
        b.copy(y, x)
        t = b.arith("fadd", x, y)
        b.ret(t)
        fn = b.finish()
        result = coalesce(fn)
        assert result.copies_removed == 0
        assert count_copies(fn) == 1

    def test_sdg_copies_protected(self):
        b = IRBuilder("f")
        x = b.const(1.0)
        y = b.fresh()
        b.copy(y, x, sdg_copy=True)
        t = b.arith("fneg", y)
        b.ret(t)
        fn = b.finish()
        result = coalesce(fn)
        assert result.copies_removed == 0
        assert count_copies(fn) == 1

    def test_split_copies_protected(self):
        b = IRBuilder("f")
        x = b.const(1.0)
        y = b.fresh()
        b.copy(y, x, split_copy=True)
        b.ret(y)
        fn = b.finish()
        assert coalesce(fn).copies_removed == 0

    def test_merged_mapping_recorded(self):
        fn = copy_chain_function()
        result = coalesce(fn)
        assert len(result.merged) == 2

    def test_loop_carried_copy(self):
        # acc2 = mov acc inside a loop where both live across the latch:
        # must not be merged (overlap), and the function stays valid.
        b = IRBuilder("f")
        acc = b.const(0.0)
        x = b.const(1.0)
        with b.loop(trip_count=3):
            snapshot = b.fresh()
            b.copy(snapshot, acc)
            b.arith_into(acc, "fadd", acc, x)
            b.arith_into(acc, "fadd", acc, snapshot)
        b.ret(acc)
        fn = b.finish()
        reference = fn.clone()
        coalesce(fn)
        verify_function(fn)
        assert observably_equivalent(reference, fn)

    def test_idempotent(self):
        fn = copy_chain_function()
        coalesce(fn)
        assert coalesce(fn).copies_removed == 0

    def test_rounds_bounded(self):
        fn = copy_chain_function()
        result = coalesce(fn, max_rounds=1)
        assert result.rounds == 1

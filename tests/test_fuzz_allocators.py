"""Cross-allocator semantic fuzz: every allocator on random functions.

The value interpreter is the oracle: whatever the allocator does (spill,
split, coalesce, PBQP-reduce), the observable behaviour must not change.
A slice of the larger offline fuzz, sized for CI.
"""

import pytest

from repro.alloc import (
    ChaitinBriggsAllocator,
    GreedyAllocator,
    LinearScanAllocator,
    PbqpAllocator,
)
from repro.banks import BankedRegisterFile
from repro.sim import observably_equivalent
from repro.workloads import random_function

ALLOCATORS = {
    "greedy": GreedyAllocator,
    "linear": LinearScanAllocator,
    "chaitin": ChaitinBriggsAllocator,
    "pbqp": PbqpAllocator,
}


@pytest.mark.parametrize("name", list(ALLOCATORS))
@pytest.mark.parametrize("seed", [11, 42, 137])
def test_allocator_preserves_semantics(name, seed):
    fn = random_function(seed, max_ops=18)
    rf = BankedRegisterFile(16, 2)
    result = ALLOCATORS[name](rf).run(fn)
    assert observably_equivalent(fn, result.function, seed=seed), (name, seed)


@pytest.mark.parametrize("name", list(ALLOCATORS))
def test_allocator_tight_file(name):
    fn = random_function(77, max_ops=15)
    rf = BankedRegisterFile(12, 4)
    result = ALLOCATORS[name](rf).run(fn)
    assert observably_equivalent(fn, result.function, seed=77), name

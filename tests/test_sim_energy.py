"""Tests for the register-file energy model."""

import pytest

from repro.banks import BankSubgroupRegisterFile, BankedRegisterFile
from repro.ir import parse_function, instruction as ins
from repro.ir.types import PhysicalRegister as P
from repro.prescount import PipelineConfig, run_pipeline
from repro.sim import estimate_energy
from repro.workloads import reduce_unrolled_kernel
from tests.conftest import build_mac_kernel


def clean_fn():
    return parse_function(
        "func @f {\nblock entry:\n  $fp0 = li #1.0\n  $fp1 = li #2.0\n"
        "  $fp2 = fadd $fp0, $fp1\n  ret $fp2\n}"
    )


class TestComponents:
    def test_accesses_counted(self):
        rf = BankedRegisterFile(8, 2)  # fp0/fp1 sit in different banks
        report = estimate_energy(clean_fn(), rf)
        # li defs (2) + fadd (2 reads + 1 def) + ret read = 6 accesses,
        # each at the 2-bank per-access cost of 1.05.
        assert report.access_energy == pytest.approx(6 * 1.05)
        assert report.conflict_energy == 0.0

    def test_conflict_energy(self):
        fn = parse_function(
            "func @f {\nblock entry:\n  $fp0 = li #1.0\n  $fp2 = li #2.0\n"
            "  $fp4 = fadd $fp0, $fp2\n  ret $fp4\n}"
        )
        rf = BankedRegisterFile(8, 2)  # fp0/fp2 share bank 0
        report = estimate_energy(fn, rf)
        assert report.conflict_energy == pytest.approx(1.5)

    def test_bank_scaling_raises_access_cost(self):
        fn = clean_fn()
        one = estimate_energy(fn, BankedRegisterFile(16, 1)).access_energy
        sixteen = estimate_energy(fn, BankedRegisterFile(16, 16)).access_energy
        assert sixteen > one

    def test_alignment_energy_dsa_only(self):
        fn = parse_function(
            "func @f {\nblock entry:\n  $fp10 = fadd $fp1, $fp6\n  ret\n}"
        )
        dsa = BankSubgroupRegisterFile(16, 2, 4)
        plain = BankedRegisterFile(16, 2)
        assert estimate_energy(fn, dsa).alignment_energy > 0
        assert estimate_energy(fn, plain).alignment_energy == 0.0

    def test_spill_energy(self):
        fn = clean_fn()
        fn.entry.insert(1, ins.store(P(0), spill_slot=0, spill=True))
        fn.entry.insert(2, ins.load(P(3), spill_slot=0, spill=True))
        report = estimate_energy(fn, BankedRegisterFile(8, 2))
        assert report.spill_energy == pytest.approx(20.0)

    def test_loop_frequency_weights(self):
        fn = parse_function(
            "func @f {\nblock entry:\n  $fp0 = li #1.0\n  jmp l.header\n"
            "block l.header [trip=10]:\n  $fp1 = fneg $fp0\n"
            "  br l.header prob=0.9\nblock l.exit:\n  ret\n}"
        )
        report = estimate_energy(fn, BankedRegisterFile(8, 2))
        # 1 li + 10 x (1 read + 1 def) = 21 accesses x 1.05 per-access.
        assert report.access_energy == pytest.approx(21 * 1.05)


class TestMethodComparison:
    def test_bpc_saves_conflict_energy(self):
        fn = build_mac_kernel(n_pairs=6)
        rf = BankedRegisterFile(32, 2)
        non = run_pipeline(fn, PipelineConfig(rf, "non"))
        bpc = run_pipeline(fn, PipelineConfig(rf, "bpc"))
        e_non = estimate_energy(non.function, rf)
        e_bpc = estimate_energy(bpc.function, rf)
        assert e_bpc.conflict_energy < e_non.conflict_energy
        assert e_bpc.total < e_non.total

    def test_software_beats_hardware_scaling(self):
        """The paper's efficiency argument: 2 banks + bpc burns less
        register-file energy than 16 banks + non on a reduction kernel."""
        fn = reduce_unrolled_kernel()
        soft_rf = BankedRegisterFile(1024, 2)
        hard_rf = BankedRegisterFile(1024, 16)
        soft = run_pipeline(fn, PipelineConfig(soft_rf, "bpc"))
        hard = run_pipeline(fn, PipelineConfig(hard_rf, "non"))
        e_soft = estimate_energy(soft.function, soft_rf)
        e_hard = estimate_energy(hard.function, hard_rf)
        assert e_soft.total < e_hard.total

    def test_merge(self):
        fn = clean_fn()
        rf = BankedRegisterFile(8, 2)
        a = estimate_energy(fn, rf)
        merged = a.merge(a)
        assert merged.total == pytest.approx(2 * a.total)

"""Edge cases across the stack: degenerate functions through every layer."""

import pytest

from repro.analysis import (
    ConflictGraph,
    InterferenceGraph,
    LiveIntervals,
    SameDisplacementGraph,
    SlotIndexes,
)
from repro.banks import BankedRegisterFile, BankSubgroupRegisterFile
from repro.ir import Function, IRBuilder, instruction as ins, verify_function
from repro.prescount import (
    PipelineConfig,
    PresCountBankAssigner,
    run_pipeline,
    split_subgroups,
)
from repro.sim import (
    DsaMachine,
    DynamicSimulator,
    ValueInterpreter,
    analyze_static,
    estimate_energy,
)


def empty_ret_function():
    fn = Function("empty")
    fn.add_block("entry").append(ins.ret())
    return fn


def single_op_function():
    b = IRBuilder("one")
    x = b.const(1.0)
    b.ret(x)
    return b.finish()


class TestDegenerateFunctions:
    def test_empty_verifies(self):
        verify_function(empty_ret_function())

    def test_empty_through_analyses(self):
        fn = empty_ret_function()
        assert len(LiveIntervals.build(fn)) == 0
        assert len(InterferenceGraph.build(fn)) == 0
        assert len(ConflictGraph.build(fn)) == 0
        assert len(SameDisplacementGraph.build(fn)) == 0
        assert len(SlotIndexes.build(fn)) == 1  # the ret

    def test_empty_through_pipeline(self, rf_rv2):
        for method in ("non", "bcr", "bpc"):
            result = run_pipeline(empty_ret_function(), PipelineConfig(rf_rv2, method))
            assert analyze_static(result.function, rf_rv2).conflicts == 0

    def test_empty_through_simulators(self, rf_rv2):
        fn = empty_ret_function()
        assert DynamicSimulator(rf_rv2).run(fn).executed_instructions == 1
        assert ValueInterpreter().run(fn).return_values == ()
        assert estimate_energy(fn, rf_rv2).total == 0.0

    def test_empty_through_dsa_machine(self, rf_dsa):
        report = DsaMachine(rf_dsa).run(empty_ret_function())
        assert report.cycles == 1.0  # one bundle: the ret

    def test_single_value_pipeline(self, rf_small):
        fn = single_op_function()
        result = run_pipeline(fn, PipelineConfig(rf_small, "bpc"))
        assert result.spill_count == 0

    def test_bank_assigner_on_conflict_free_function(self, rf_rv2):
        fn = single_op_function()
        assignment = PresCountBankAssigner(rf_rv2).assign(fn)
        # Only free-register balancing applies.
        assert len(assignment) == 1
        assert assignment.residual_cost == 0.0

    def test_sdg_split_noop_on_empty(self):
        result = split_subgroups(empty_ret_function())
        assert result.copies_inserted == 0


class TestExtremeRegisterFiles:
    def test_single_bank_file_everything_conflicts(self):
        b = IRBuilder("f")
        x, y = b.const(1.0), b.const(2.0)
        t = b.arith("fadd", x, y)
        b.ret(t)
        fn = b.finish()
        rf = BankedRegisterFile(8, 1)
        result = run_pipeline(fn, PipelineConfig(rf, "bpc"))
        # One bank: bpc cannot help; the conflict stays.
        assert analyze_static(result.function, rf).bank_conflicts == 1

    def test_banks_equal_registers(self):
        """One register per bank: conflicts impossible, pressure extreme."""
        b = IRBuilder("f")
        x, y = b.const(1.0), b.const(2.0)
        t = b.arith("fadd", x, y)
        b.ret(t)
        fn = b.finish()
        rf = BankedRegisterFile(4, 4)
        result = run_pipeline(fn, PipelineConfig(rf, "non"))
        assert analyze_static(result.function, rf).bank_conflicts == 0

    def test_minimal_dsa(self):
        rf = BankSubgroupRegisterFile(8, 2, 4)  # exactly one period
        assert rf.registers_per_bank == 4
        assert len(rf.registers_conforming(0, 0)) == 1

    def test_huge_trip_counts_static_only(self):
        """Cost model handles astronomically hot loops without overflow."""
        b = IRBuilder("f")
        x, y = b.const(1.0), b.const(2.0)
        acc = b.const(0.0)
        with b.loop(trip_count=10**6):
            with b.loop(trip_count=10**6):
                b.arith_into(acc, "fadd", x, y)
        b.ret(acc)
        fn = b.finish()
        rf = BankedRegisterFile(32, 2)
        result = run_pipeline(fn, PipelineConfig(rf, "bpc"))
        assert analyze_static(result.function, rf).bank_conflicts == 0


class TestRepeatedRuns:
    def test_pipeline_is_deterministic(self, rf_rv2):
        from repro.ir import print_function
        from tests.conftest import build_mac_kernel

        fn = build_mac_kernel()
        first = run_pipeline(fn, PipelineConfig(rf_rv2, "bpc"))
        second = run_pipeline(fn, PipelineConfig(rf_rv2, "bpc"))
        assert print_function(first.function) == print_function(second.function)

    def test_allocator_object_reusable(self, rf_rv2):
        from repro.alloc import GreedyAllocator
        from tests.conftest import build_mac_kernel

        allocator = GreedyAllocator(rf_rv2)
        a = allocator.run(build_mac_kernel(n_pairs=2))
        b = allocator.run(build_mac_kernel(n_pairs=4))
        assert a.spill_count == 0 and b.spill_count == 0

"""Loadgen harness: seeded schedules, fleet runs, history gating."""

from __future__ import annotations

import collections
import json

from repro.experiments.history import diff_records, write_record
from repro.service import (
    LoadgenConfig,
    LocalShard,
    ServiceConfig,
    ShardRouter,
    loadgen_record,
    run_loadgen,
)
from repro.service.loadgen import (
    RouterTarget,
    build_kernel_pool,
    build_schedule,
    percentile,
)


def small_config(**overrides):
    defaults = dict(
        seed=7,
        requests=24,
        pool=6,
        sample=3,
        phases=((0.05, 400.0), (0.05, 1200.0)),
        deadline_frac=0.25,
    )
    defaults.update(overrides)
    return LoadgenConfig(**defaults)


def run_fleet(config, shards=3):
    router = ShardRouter(
        [LocalShard(f"s{i}", ServiceConfig()) for i in range(shards)]
    )
    try:
        return run_loadgen(RouterTarget(router), config)
    finally:
        router.close()


# ----------------------------------------------------------------------
# Schedule generation
# ----------------------------------------------------------------------
def test_schedule_deterministic_for_seed():
    config = small_config()
    first = build_schedule(config)
    second = build_schedule(config)
    assert first == second
    assert len(first) == config.requests
    assert build_schedule(small_config(seed=8)) != first


def test_schedule_arrival_times_monotone_and_phased():
    schedule = build_schedule(small_config(requests=100))
    times = [arrival.at_s for arrival in schedule]
    assert times == sorted(times)
    assert times[0] >= 0.0
    # The second phase is 3x the rate of the first: arrivals after the
    # 0.05 s phase boundary must be denser than before it.
    early = sum(1 for t in times if t < 0.05)
    late = sum(1 for t in times if 0.05 <= t < 0.10)
    assert late > early


def test_schedule_zipf_head_is_hot():
    schedule = build_schedule(small_config(requests=400, zipf_s=1.4))
    counts = collections.Counter(a.kernel for a in schedule)
    ranked = [count for _, count in counts.most_common()]
    assert ranked[0] > ranked[-1]  # skew, not uniform
    assert counts.most_common(1)[0][1] >= 400 / 6  # head beats fair share


def test_schedule_deadline_mix_respects_fraction():
    schedule = build_schedule(small_config(requests=200, deadline_frac=0.5))
    with_deadline = [a for a in schedule if a.deadline_ms is not None]
    assert 0.3 * 200 < len(with_deadline) < 0.7 * 200
    menu = set(LoadgenConfig().deadline_choices_ms)
    assert {a.deadline_ms for a in with_deadline} <= menu
    none_config = small_config(deadline_frac=0.0)
    assert all(a.deadline_ms is None for a in build_schedule(none_config))


def test_kernel_pool_deterministic_and_distinct():
    config = small_config()
    pool = build_kernel_pool(config)
    assert pool == build_kernel_pool(config)
    assert len(pool) == config.pool
    assert len(set(pool)) == config.pool


def test_percentile_nearest_rank():
    values = [float(v) for v in range(1, 101)]
    assert percentile(values, 50) == 50.0
    assert percentile(values, 99) == 99.0
    assert percentile(values, 99.9) == 100.0
    assert percentile([], 50) is None


# ----------------------------------------------------------------------
# Fleet runs
# ----------------------------------------------------------------------
def test_fleet_run_full_goodput_and_sample_identity():
    report = run_fleet(small_config())
    assert report["requests"] == 24
    assert report["goodput"] == 24
    assert report["failed"] == 0
    assert report["verify_failed"] == 0
    assert report["samples"]["checked"] > 0
    assert report["samples"]["mismatched"] == 0
    assert report["samples"]["matched"] == report["samples"]["checked"]
    assert sum(report["shards"].values()) == 24
    latency = report["latency_ms"]
    assert latency["p50"] <= latency["p99"] <= latency["p999"]


def test_fleet_run_routing_counts_deterministic():
    config = small_config()
    first = run_fleet(config)
    second = run_fleet(config)
    # Same seed ⇒ same kernels to the same shards, every run.
    assert first["shards"] == second["shards"]
    assert first["goodput"] == second["goodput"]


def test_single_shard_matches_multi_shard_responses():
    # Sample bit-identity holds regardless of fleet size: the check in
    # run_loadgen compares every sampled response against a direct
    # single-process build, so mismatched == 0 here *is* the cross-fleet
    # identity guarantee.
    report = run_fleet(small_config(), shards=1)
    assert report["goodput"] == 24
    assert report["samples"]["mismatched"] == 0
    assert list(report["shards"]) == ["s0"]


# ----------------------------------------------------------------------
# History records and gating
# ----------------------------------------------------------------------
def test_loadgen_record_schema_and_write(tmp_path):
    config = small_config()
    report = run_fleet(config)
    record = loadgen_record(report, config, label="unit")
    assert record["schema"] == 1
    assert record["label"] == "unit"
    assert record["config"]["kind"] == "loadgen"
    assert record["programs"] == {}
    load = record["loadgen"]
    assert load["goodput"] == 24
    assert load["latency_ms"]["p50"] is not None
    path = write_record(record, str(tmp_path), prefix="LOADGEN")
    assert path.split("/")[-1].startswith("LOADGEN_")
    assert json.loads(open(path).read())["loadgen"]["goodput"] == 24


def test_diff_gates_goodput_drop_and_verify_failures():
    config = small_config()
    report = run_fleet(config)
    record = loadgen_record(report, config, label="base")
    clean = diff_records(record, record)
    assert clean.regressions == []
    assert clean.exit_code() == 0

    worse = json.loads(json.dumps(record))
    worse["loadgen"]["goodput"] -= 6
    worse["loadgen"]["failed"] += 6
    result = diff_records(record, worse)
    assert {d.metric for d in result.regressions} == {"goodput", "failed"}
    assert result.has_regressions and result.exit_code() == 1

    bad_verify = json.loads(json.dumps(record))
    bad_verify["loadgen"]["verify_failed"] = 1
    bad_verify["loadgen"]["samples"]["mismatched"] = 2
    result = diff_records(record, bad_verify)
    metrics = {d.metric for d in result.regressions}
    assert {"verify_failed", "sample_mismatched"} <= metrics


def test_diff_latency_and_balance_never_gate():
    config = small_config()
    record = loadgen_record(run_fleet(config), config, label="base")
    slower = json.loads(json.dumps(record))
    slower["loadgen"]["latency_ms"]["p999"] = 9999.0
    slower["loadgen"]["throughput_rps"] = 0.001
    names = list(slower["loadgen"]["shards"])
    slower["loadgen"]["shards"] = {n: 1 for n in names}  # rebalanced
    result = diff_records(record, slower)
    assert result.regressions == []
    assert result.latency_notes  # informational only
    assert result.exit_code() == 0


def test_fingerprint_excludes_fleet_topology():
    # The same scenario must diff across fleet sizes (1 shard vs 3), so
    # the record's config block carries generation parameters only.
    config = small_config()
    fingerprint = config.fingerprint()
    assert fingerprint["kind"] == "loadgen"
    assert "shards" not in fingerprint
    one = loadgen_record(run_fleet(config, shards=1), config, label="one")
    three = loadgen_record(run_fleet(config, shards=3), config, label="three")
    result = diff_records(one, three)
    assert result.config_mismatches == []
    assert result.regressions == []

"""Tests for static conflict statistics."""

from repro.banks import BankedRegisterFile, BankSubgroupRegisterFile
from repro.ir import instruction as ins
from repro.ir import parse_function
from repro.ir.types import PhysicalRegister
from repro.sim import (
    analyze_module_static,
    analyze_static,
    count_conflict_relevant,
    instruction_bank_conflicts,
    instruction_subgroup_violations,
)

P = PhysicalRegister


class TestInstructionBankConflicts:
    def test_same_bank_pair_conflicts(self):
        rf = BankedRegisterFile(8, 2)
        i = ins.arith("fadd", P(4), P(0), P(2))  # banks 0, 0
        assert instruction_bank_conflicts(i, rf) == 1

    def test_cross_bank_pair_clean(self):
        rf = BankedRegisterFile(8, 2)
        i = ins.arith("fadd", P(4), P(0), P(1))  # banks 0, 1
        assert instruction_bank_conflicts(i, rf) == 0

    def test_three_same_bank_reads_cost_two(self):
        rf = BankedRegisterFile(16, 2)
        i = ins.arith("fmadd", P(1), P(0), P(2), P(4))  # all bank 0
        assert instruction_bank_conflicts(i, rf) == 2

    def test_two_pairs_in_two_banks(self):
        rf = BankedRegisterFile(16, 2)
        # fmadd with a 4th operand is unusual; simulate with a synthetic op.
        from repro.ir.instruction import Instruction, OpKind

        i = Instruction("quad", OpKind.ARITH, (P(8),), (P(0), P(2), P(1), P(3)))
        assert instruction_bank_conflicts(i, rf) == 2  # (0,2) and (1,3)

    def test_repeated_register_is_one_port(self):
        rf = BankedRegisterFile(8, 2)
        i = ins.arith("fmul", P(4), P(0), P(0))
        assert instruction_bank_conflicts(i, rf) == 0

    def test_defs_do_not_conflict(self):
        rf = BankedRegisterFile(8, 2)
        i = ins.arith("fadd", P(0), P(1), P(2))  # def bank irrelevant
        assert instruction_bank_conflicts(i, rf) == 0

    def test_virtual_operands_ignored(self):
        from repro.ir.types import VirtualRegister

        rf = BankedRegisterFile(8, 2)
        i = ins.arith("fadd", P(4), VirtualRegister(0), P(2))
        assert instruction_bank_conflicts(i, rf) == 0


class TestSubgroupViolations:
    def test_misaligned_operands(self):
        rf = BankSubgroupRegisterFile(16, 2, 4)
        i = ins.arith("fadd", P(1), P(5), P(10))  # subgroups 1, 1, 2
        assert instruction_subgroup_violations(i, rf) == 1

    def test_aligned_operands(self):
        rf = BankSubgroupRegisterFile(16, 2, 4)
        i = ins.arith("fadd", P(1), P(5), P(13))  # subgroups all 1
        assert instruction_subgroup_violations(i, rf) == 0

    def test_three_distinct_subgroups(self):
        rf = BankSubgroupRegisterFile(16, 2, 4)
        i = ins.arith("fadd", P(0), P(1), P(2))  # subgroups 0, 1, 2
        assert instruction_subgroup_violations(i, rf) == 2

    def test_copies_exempt(self):
        rf = BankSubgroupRegisterFile(16, 2, 4)
        i = ins.copy(P(0), P(1))  # different subgroups, still fine
        assert instruction_subgroup_violations(i, rf) == 0

    def test_loads_exempt(self):
        rf = BankSubgroupRegisterFile(16, 2, 4)
        i = ins.load(P(1), spill_slot=0)
        assert instruction_subgroup_violations(i, rf) == 0


class TestAnalyzeStatic:
    def allocated_function(self):
        return parse_function(
            """
            func @f {
            block entry:
              $fp0 = li #1.0
              $fp2 = li #2.0
              $fp1 = li #3.0
              $fp4 = fadd $fp0, $fp2
              $fp5 = fadd $fp0, $fp1
              ret $fp4
            }
            """
        )

    def test_counts(self):
        rf = BankedRegisterFile(8, 2)
        stats = analyze_static(self.allocated_function(), rf)
        assert stats.instructions == 6
        assert stats.conflict_relevant == 2
        assert stats.bank_conflicts == 1       # fp0+fp2 same bank
        assert stats.conflicting_instructions == 1
        assert stats.subgroup_violations == 0

    def test_conflict_free_classification(self):
        rf = BankedRegisterFile(8, 2)
        stats = analyze_static(self.allocated_function(), rf)
        assert stats.is_conflict_relevant and not stats.is_conflict_free

    def test_weighted_conflicts_use_frequency(self):
        fn = parse_function(
            """
            func @f {
            block entry:
              $fp0 = li #1.0
              $fp2 = li #2.0
              jmp l.header
            block l.header [trip=10]:
              $fp4 = fadd $fp0, $fp2
              br l.header prob=0.9
            block l.exit:
              ret
            }
            """
        )
        rf = BankedRegisterFile(8, 2)
        stats = analyze_static(fn, rf)
        assert stats.bank_conflicts == 1
        assert stats.weighted_conflicts == 10.0

    def test_merge(self):
        rf = BankedRegisterFile(8, 2)
        a = analyze_static(self.allocated_function(), rf)
        merged = a.merge(a)
        assert merged.bank_conflicts == 2 * a.bank_conflicts
        assert merged.instructions == 2 * a.instructions

    def test_module_aggregation(self):
        from repro.ir import Module

        rf = BankedRegisterFile(8, 2)
        m = Module("m")
        m.add(self.allocated_function())
        per_fn = analyze_static(self.allocated_function(), rf)
        assert analyze_module_static(m, rf).bank_conflicts == per_fn.bank_conflicts


class TestCountConflictRelevant:
    def test_counts_on_virtual_ir(self):
        fn = parse_function(
            """
            func @f {
            block entry:
              %v0:fp = li #1.0
              %v1:fp = li #2.0
              %v2:fp = fadd %v0:fp, %v1:fp
              %v3:fp = fneg %v2:fp
              ret %v3:fp
            }
            """
        )
        assert count_conflict_relevant(fn) == 1

"""Unit tests for register/operand value types."""

import pytest

from repro.ir.types import (
    FP,
    GP,
    Immediate,
    PhysicalRegister,
    RegClass,
    VirtualRegister,
    VRegFactory,
    is_preg,
    is_reg,
    is_vreg,
)


class TestRegClass:
    def test_fp_is_bankable(self):
        assert FP.bankable

    def test_gp_is_not_bankable(self):
        assert not GP.bankable

    def test_custom_class(self):
        rc = RegClass("vec512", bankable=True)
        assert rc.name == "vec512"
        assert rc != FP

    def test_hashable(self):
        assert len({FP, GP, FP}) == 2


class TestVirtualRegister:
    def test_identity(self):
        assert VirtualRegister(3) == VirtualRegister(3)
        assert VirtualRegister(3) != VirtualRegister(4)

    def test_class_distinguishes(self):
        assert VirtualRegister(3, FP) != VirtualRegister(3, GP)

    def test_name(self):
        assert VirtualRegister(7).name == "%v7"

    def test_usable_as_dict_key(self):
        d = {VirtualRegister(1): "a"}
        assert d[VirtualRegister(1)] == "a"


class TestPhysicalRegister:
    def test_identity(self):
        assert PhysicalRegister(0) == PhysicalRegister(0)
        assert PhysicalRegister(0) != PhysicalRegister(1)

    def test_name_prefix_by_class(self):
        assert PhysicalRegister(3, FP).name == "$f3"
        assert PhysicalRegister(3, GP).name == "$x3"

    def test_distinct_from_vreg(self):
        assert PhysicalRegister(3) != VirtualRegister(3)


class TestPredicates:
    def test_is_vreg(self):
        assert is_vreg(VirtualRegister(0))
        assert not is_vreg(PhysicalRegister(0))
        assert not is_vreg(Immediate(1.0))

    def test_is_preg(self):
        assert is_preg(PhysicalRegister(0))
        assert not is_preg(VirtualRegister(0))

    def test_is_reg(self):
        assert is_reg(VirtualRegister(0))
        assert is_reg(PhysicalRegister(0))
        assert not is_reg(Immediate(2))
        assert not is_reg("f0")


class TestVRegFactory:
    def test_sequential_ids(self):
        factory = VRegFactory()
        a, b = factory.make(), factory.make()
        assert (a.vid, b.vid) == (0, 1)

    def test_adopt_advances_counter(self):
        factory = VRegFactory()
        factory.adopt(VirtualRegister(10))
        assert factory.make().vid == 11

    def test_adopt_lower_id_keeps_counter(self):
        factory = VRegFactory()
        factory.make()  # 0
        factory.adopt(VirtualRegister(0))
        assert factory.make().vid == 1

    def test_get_returns_created(self):
        factory = VRegFactory()
        reg = factory.make(GP)
        assert factory.get(reg.vid) is reg
        assert reg.regclass == GP

    def test_len(self):
        factory = VRegFactory()
        factory.make()
        factory.make()
        assert len(factory) == 2

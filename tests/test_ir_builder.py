"""Tests for structured IR construction (builder lowering shapes)."""

import pytest

from repro.ir import CFG, IRBuilder, LoopInfo, OpKind, verify_function
from repro.ir.types import GP


class TestBasics:
    def test_entry_block_exists(self):
        b = IRBuilder("f")
        assert b.current_block.label == "entry"

    def test_finish_adds_ret(self):
        fn = IRBuilder("f").finish()
        assert fn.blocks[-1].terminator.kind is OpKind.RET

    def test_finish_keeps_existing_ret(self):
        b = IRBuilder("f")
        b.ret()
        fn = b.finish()
        assert sum(1 for __, i in fn.instructions() if i.kind is OpKind.RET) == 1

    def test_fresh_registers_are_distinct(self):
        b = IRBuilder("f")
        assert b.fresh() != b.fresh()

    def test_fresh_with_class(self):
        b = IRBuilder("f")
        assert b.fresh(GP).regclass == GP

    def test_const_materializes_li(self):
        b = IRBuilder("f")
        b.const(4.0)
        assert b.current_block.instructions[-1].kind is OpKind.LOADIMM

    def test_arith_returns_destination(self):
        b = IRBuilder("f")
        x, y = b.const(1.0), b.const(2.0)
        dst = b.arith("fadd", x, y)
        assert b.current_block.instructions[-1].defs == (dst,)


class TestLoopLowering:
    def test_loop_creates_header_with_trip_count(self):
        b = IRBuilder("f")
        with b.loop(trip_count=7):
            b.const(1.0)
        fn = b.finish()
        headers = [blk for blk in fn.blocks if blk.attrs.get("loop_header")]
        assert len(headers) == 1
        assert headers[0].attrs["trip_count"] == 7

    def test_loop_backedge_detected(self):
        b = IRBuilder("f")
        with b.loop(trip_count=4):
            b.const(1.0)
        fn = b.finish()
        info = LoopInfo.build(fn)
        assert len(info) == 1
        assert list(info)[0].trip_count == 4

    def test_latch_probability_encodes_trip_count(self):
        b = IRBuilder("f")
        with b.loop(trip_count=10):
            b.const(1.0)
        fn = b.finish()
        latch = next(
            i for __, i in fn.instructions()
            if i.kind is OpKind.BRANCH and i.attrs.get("loop_latch")
        )
        assert latch.attrs["taken_prob"] == pytest.approx(0.9)

    def test_nested_loops_nest(self):
        b = IRBuilder("f")
        with b.loop(trip_count=3):
            with b.loop(trip_count=5):
                b.const(1.0)
        fn = b.finish()
        info = LoopInfo.build(fn)
        inner = next(lp for lp in info if lp.trip_count == 5)
        assert inner.parent is not None
        assert inner.parent.trip_count == 3
        assert inner.depth == 2

    def test_zero_trip_count_rejected(self):
        b = IRBuilder("f")
        with pytest.raises(ValueError):
            with b.loop(trip_count=0):
                pass

    def test_verifies(self):
        b = IRBuilder("f")
        with b.loop(trip_count=2):
            with b.loop(trip_count=2):
                b.const(0.0)
        verify_function(b.finish())


class TestIfLowering:
    def test_if_then_reducible(self):
        b = IRBuilder("f")
        x = b.const(1.0)
        with b.if_then(0.5):
            b.arith("fneg", x)
        fn = b.finish()
        verify_function(fn)
        cfg = CFG.build(fn)
        assert cfg.back_edges() == []

    def test_if_else_both_arms(self):
        b = IRBuilder("f")
        x = b.const(1.0)
        with b.if_else(0.5) as orelse:
            b.arith_into(x, "fadd", x, x)
            orelse()
            b.arith_into(x, "fsub", x, x)
        fn = b.finish()
        verify_function(fn)
        labels = [blk.label for blk in fn.blocks]
        assert any(".then" in l for l in labels)
        assert any(".else" in l for l in labels)

    def test_if_else_without_orelse_synthesizes_arm(self):
        b = IRBuilder("f")
        x = b.const(1.0)
        with b.if_else(0.5):
            b.arith("fneg", x)
        fn = b.finish()
        verify_function(fn)

    def test_orelse_twice_raises(self):
        b = IRBuilder("f")
        with pytest.raises(RuntimeError):
            with b.if_else(0.5) as orelse:
                orelse()
                orelse()
        # Builder state is left mid-construction; just don't verify.

    def test_branch_probability_inverted_for_fallthrough(self):
        b = IRBuilder("f")
        x = b.const(1.0)
        with b.if_else(0.8) as orelse:
            b.arith("fneg", x)
            orelse()
            b.arith("fabs", x)
        fn = b.finish()
        branch = next(i for __, i in fn.instructions() if i.kind is OpKind.BRANCH)
        # The branch jumps to the *else* arm, so its probability is 0.2.
        assert branch.attrs["taken_prob"] == pytest.approx(0.2)


class TestComposition:
    def test_loop_with_branch_inside(self):
        b = IRBuilder("f")
        acc = b.const(0.0)
        x = b.const(1.0)
        with b.loop(trip_count=4):
            with b.if_then(0.3):
                b.arith_into(acc, "fadd", acc, x)
        fn = b.finish()
        verify_function(fn)
        info = LoopInfo.build(fn)
        loop = list(info)[0]
        # All conditional blocks are inside the loop body.
        assert sum(1 for blk in fn.blocks if blk.label in loop.body) >= 4

"""Tests for the dynamic simulator and the flow-equation estimator."""

import pytest

from repro.banks import BankedRegisterFile
from repro.ir import IRBuilder, parse_function
from repro.sim import (
    DynamicSimulator,
    estimate_dynamic_conflicts,
    expected_block_frequencies,
)
from tests.conftest import build_mac_kernel, build_nested_loops


def conflicted_loop(trip=10):
    """Physical-register loop with one conflicting instruction."""
    return parse_function(
        f"""
        func @f {{
        block entry:
          $fp0 = li #1.0
          $fp2 = li #2.0
          jmp l.header
        block l.header [trip={trip}]:
          $fp4 = fadd $fp0, $fp2
          br l.header prob={1 - 1/trip}
        block l.exit:
          ret
        }}
        """
    )


def _mark_latch(fn):
    """parse_function does not tag latches; set the attribute by shape."""
    for block in fn.blocks:
        term = block.terminator
        if term is not None and term.kind.value == "branch":
            target = term.attrs["target"]
            if fn.block(target).attrs.get("loop_header"):
                term.attrs["loop_latch"] = True
    return fn


class TestInterpreter:
    def test_loop_executes_trip_count_times(self):
        fn = _mark_latch(conflicted_loop(10))
        rf = BankedRegisterFile(8, 2)
        stats = DynamicSimulator(rf).run(fn)
        assert stats.dynamic_conflicts == 10
        assert stats.executed_conflict_relevant == 10

    def test_trip_one_runs_once(self):
        fn = _mark_latch(conflicted_loop(1))
        rf = BankedRegisterFile(8, 2)
        assert DynamicSimulator(rf).run(fn).dynamic_conflicts == 1

    def test_nested_trip_products(self):
        b = IRBuilder("f")
        acc = b.const(0.0)
        x = b.const(1.0)
        with b.loop(trip_count=3):
            with b.loop(trip_count=4):
                b.arith_into(acc, "fadd", acc, x)
        b.ret(acc)
        fn = b.finish()
        # Rewrite to physical registers via pipeline for conflict decode.
        from repro.prescount import PipelineConfig, run_pipeline

        rf = BankedRegisterFile(8, 2)
        res = run_pipeline(fn, PipelineConfig(rf, "non"))
        stats = DynamicSimulator(rf).run(res.function)
        # The inner op executes 12 times whatever its conflict status.
        assert stats.executed_conflict_relevant in (0, 12)

    def test_branches_follow_seeded_rng(self):
        b = IRBuilder("f")
        acc = b.const(0.0)
        x = b.const(1.0)
        with b.loop(trip_count=50):
            with b.if_then(taken_prob=0.5):
                b.arith_into(acc, "fadd", acc, x)
        b.ret(acc)
        fn = b.finish()
        rf = BankedRegisterFile(8, 2)
        a = DynamicSimulator(rf, seed=1).run(fn)
        b2 = DynamicSimulator(rf, seed=1).run(fn)
        c = DynamicSimulator(rf, seed=2).run(fn)
        assert a.executed_instructions == b2.executed_instructions
        # Different seeds usually take different paths.
        assert a.executed_instructions != c.executed_instructions

    def test_execution_budget_truncates(self):
        fn = _mark_latch(conflicted_loop(10))
        rf = BankedRegisterFile(8, 2)
        stats = DynamicSimulator(rf, max_instructions=5).run(fn)
        assert stats.truncated

    def test_merge(self):
        fn = _mark_latch(conflicted_loop(4))
        rf = BankedRegisterFile(8, 2)
        a = DynamicSimulator(rf).run(fn)
        merged = a.merge(a)
        assert merged.dynamic_conflicts == 2 * a.dynamic_conflicts


class TestExpectedFrequencies:
    def test_loop_frequency_is_trip_count(self):
        fn = build_nested_loops((4, 8))
        freqs = expected_block_frequencies(fn)
        assert max(freqs.values()) == pytest.approx(32.0, rel=1e-6)
        assert freqs["entry"] == pytest.approx(1.0)

    def test_branch_probabilities_split_flow(self):
        b = IRBuilder("f")
        x = b.const(1.0)
        with b.if_then(taken_prob=0.25):
            b.arith("fneg", x)
        b.ret(x)
        fn = b.finish()
        freqs = expected_block_frequencies(fn)
        then = next(l for l in freqs if l.endswith(".then"))
        join = next(l for l in freqs if l.endswith(".join"))
        assert freqs[then] == pytest.approx(0.25)
        assert freqs[join] == pytest.approx(1.0)

    def test_exit_frequencies_follow_nesting(self):
        fn = build_nested_loops((4, 8))
        freqs = expected_block_frequencies(fn)
        # The inner loop's exit runs once per outer iteration; the outer
        # loop's exit exactly once.
        assert freqs["loop2.exit"] == pytest.approx(4.0, rel=1e-6)
        assert freqs["loop1.exit"] == pytest.approx(1.0, rel=1e-6)


class TestEstimatorVsInterpreter:
    def test_exact_match_on_branch_free_code(self):
        fn = _mark_latch(conflicted_loop(10))
        rf = BankedRegisterFile(8, 2)
        interp = DynamicSimulator(rf).run(fn)
        est = estimate_dynamic_conflicts(fn, rf)
        assert est.dynamic_conflicts == interp.dynamic_conflicts
        assert est.executed_conflict_relevant == interp.executed_conflict_relevant

    def test_close_on_branchy_code(self):
        from repro.prescount import PipelineConfig, run_pipeline

        fn = build_mac_kernel(n_pairs=4, trip_count=100)
        rf = BankedRegisterFile(8, 2)
        res = run_pipeline(fn, PipelineConfig(rf, "non"))
        interp = DynamicSimulator(rf).run(res.function)
        est = estimate_dynamic_conflicts(res.function, rf)
        if interp.dynamic_conflicts:
            ratio = est.dynamic_conflicts / interp.dynamic_conflicts
            assert 0.8 < ratio < 1.2


class TestConflictingSites:
    def test_sites_counted_once_per_instruction(self):
        fn = _mark_latch(conflicted_loop(10))
        rf = BankedRegisterFile(8, 2)
        stats = DynamicSimulator(rf).run(fn)
        # One conflicting instruction, executed 10 times: 10 instances but
        # a single site.
        assert stats.dynamic_conflicts == 10
        assert stats.conflicting_sites == 1

    def test_estimator_site_agreement(self):
        fn = _mark_latch(conflicted_loop(10))
        rf = BankedRegisterFile(8, 2)
        est = estimate_dynamic_conflicts(fn, rf)
        assert est.conflicting_sites == pytest.approx(1.0)

    def test_cold_block_sites_fractional(self):
        """A conflict site behind a 25% branch counts ~0.25 expected."""
        fn = parse_function(
            """
            func @f {
            block entry:
              $fp0 = li #1.0
              $fp2 = li #2.0
              br cold.then prob=0.25
            block cold.cont:
              jmp cold.join
            block cold.then:
              $fp4 = fadd $fp0, $fp2
              jmp cold.join
            block cold.join:
              ret
            }
            """
        )
        rf = BankedRegisterFile(8, 2)
        est = estimate_dynamic_conflicts(fn, rf)
        assert est.conflicting_sites == pytest.approx(0.25)

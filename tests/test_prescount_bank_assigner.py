"""Tests for Algorithm 1: the PresCount RCG bank assigner."""

import pytest

from repro.analysis import ConflictGraph, LiveIntervals
from repro.banks import BankedRegisterFile
from repro.ir import IRBuilder
from repro.prescount import PresCountBankAssigner, PresCountPolicy
from repro.ir.types import FP
from tests.conftest import build_mac_kernel


def bipartite_kernel():
    """Conflicts only between group A and group B: 2-colorable RCG."""
    b = IRBuilder("bip")
    group_a = [b.const(float(i)) for i in range(3)]
    group_b = [b.const(float(i + 10)) for i in range(3)]
    acc = b.const(0.0)
    with b.loop(trip_count=4):
        for x in group_a:
            for y in group_b:
                b.arith_into(acc, "fadd", x, y)
    b.ret(acc)
    return b.finish(), group_a, group_b


def triangle_kernel():
    """A 3-cycle in the RCG: not 2-colorable."""
    b = IRBuilder("tri")
    x, y, z = b.const(1.0), b.const(2.0), b.const(3.0)
    acc = b.const(0.0)
    with b.loop(trip_count=8):
        b.arith_into(acc, "fadd", x, y)
        b.arith_into(acc, "fadd", y, z)
        b.arith_into(acc, "fadd", z, x)
    b.ret(acc)
    return b.finish(), (x, y, z)


class TestColoring:
    def test_bipartite_colored_conflict_free(self):
        fn, group_a, group_b = bipartite_kernel()
        rf = BankedRegisterFile(32, 2)
        assignment = PresCountBankAssigner(rf).assign(fn)
        rcg = ConflictGraph.build(fn)
        assert rcg.is_proper_coloring(
            {r: assignment.banks[r] for r in rcg.nodes()}
        )
        assert assignment.residual_cost == 0.0
        assert not assignment.uncolorable

    def test_groups_get_opposite_banks(self):
        fn, group_a, group_b = bipartite_kernel()
        rf = BankedRegisterFile(32, 2)
        assignment = PresCountBankAssigner(rf).assign(fn)
        banks_a = {assignment.banks[r] for r in group_a}
        banks_b = {assignment.banks[r] for r in group_b}
        assert len(banks_a) == 1 and len(banks_b) == 1
        assert banks_a != banks_b

    def test_triangle_marks_uncolorable_with_two_banks(self):
        fn, regs = triangle_kernel()
        rf = BankedRegisterFile(32, 2)
        assignment = PresCountBankAssigner(rf).assign(fn)
        assert len(assignment.uncolorable) == 1
        assert assignment.residual_cost > 0.0

    def test_triangle_colorable_with_three_banks(self):
        fn, regs = triangle_kernel()
        rf = BankedRegisterFile(33, 3)
        assignment = PresCountBankAssigner(rf).assign(fn)
        assert not assignment.uncolorable
        assert assignment.residual_cost == 0.0

    def test_residual_on_cheapest_edge(self):
        """NeighbourCostPrioritize leaves the cheapest conflict behind."""
        b = IRBuilder("t")
        # Triangle with one cold edge: x-y and y-z hot (loop), z-x cold.
        x, y, z = b.const(1.0), b.const(2.0), b.const(3.0)
        acc = b.const(0.0)
        with b.loop(trip_count=50):
            b.arith_into(acc, "fadd", x, y)
            b.arith_into(acc, "fadd", y, z)
        b.arith_into(acc, "fadd", z, x)  # cold edge
        b.ret(acc)
        fn = b.finish()
        rf = BankedRegisterFile(32, 2)
        assignment = PresCountBankAssigner(rf).assign(fn)
        rcg = ConflictGraph.build(fn)
        # Residual cost must be the cold edge (1.0), not a hot one (50).
        assert assignment.residual_cost == pytest.approx(1.0)


class TestCostOrdering:
    def test_hot_nodes_processed_first(self):
        """With limited banks, hot components must win the good colors:
        total residual cost is near the minimum, not the maximum."""
        fn, regs = triangle_kernel()
        rf = BankedRegisterFile(32, 2)
        assignment = PresCountBankAssigner(rf).assign(fn)
        rcg = ConflictGraph.build(fn)
        total = sum(rcg.edge_cost.values())
        assert assignment.residual_cost < total / 2


class TestFreeRegisters:
    def test_free_registers_balanced(self):
        fn = build_mac_kernel(n_pairs=6)
        rf = BankedRegisterFile(32, 2)
        assignment = PresCountBankAssigner(rf).assign(fn)
        # Every FP vreg received a bank (RCG nodes + free registers).
        assert len(assignment) == len(fn.virtual_registers(FP))
        histogram = assignment.bank_histogram()
        assert max(histogram) - min(histogram) <= len(assignment) // 3 + 1

    def test_free_register_balancing_can_be_disabled(self):
        fn = build_mac_kernel(n_pairs=6)
        rf = BankedRegisterFile(32, 2)
        assigner = PresCountBankAssigner(rf, balance_free_registers=False)
        assignment = assigner.assign(fn)
        rcg = ConflictGraph.build(fn)
        assert len(assignment) == len(rcg)


class TestPressureCounting:
    def test_equal_cost_ties_break_by_pressure(self):
        """Nodes with equal conflict costs land in the least-pressured
        bank, keeping the per-bank max overlap balanced."""
        fn = build_mac_kernel(n_pairs=8)
        rf = BankedRegisterFile(32, 2)
        with_pressure = PresCountBankAssigner(rf).assign(fn)
        from repro.analysis import BankPressureTracker

        live = LiveIntervals.build(fn)
        tracker = BankPressureTracker(2)
        for reg, bank in with_pressure.banks.items():
            tracker.assign(bank, live.of(reg))
        assert abs(tracker.pressure(0) - tracker.pressure(1)) <= 2

    def test_ablation_switch_changes_behaviour_or_not_worse(self):
        fn = build_mac_kernel(n_pairs=8)
        rf = BankedRegisterFile(32, 2)
        on = PresCountBankAssigner(rf, use_pressure_counting=True).assign(fn)
        off = PresCountBankAssigner(rf, use_pressure_counting=False).assign(fn)
        assert on.residual_cost <= off.residual_cost + 1e-9 or len(on) == len(off)


class TestPolicy:
    def test_order_prefers_assigned_bank(self):
        fn = build_mac_kernel()
        rf = BankedRegisterFile(8, 2)
        assignment = PresCountBankAssigner(rf).assign(fn)
        policy = PresCountPolicy(rf, assignment)
        vreg = next(iter(assignment.banks))
        bank = assignment.banks[vreg]
        live = LiveIntervals.build(fn)
        order = policy.order(vreg, live.of(vreg))
        prefix = list(order)[: rf.registers_per_bank]
        assert all(rf.bank_of(r) == bank for r in prefix)
        # Soft constraint: the rest of the file follows.
        assert len(order) == rf.num_registers

    def test_strict_policy_restricts(self):
        fn = build_mac_kernel()
        rf = BankedRegisterFile(8, 2)
        assignment = PresCountBankAssigner(rf).assign(fn)
        assignment.strict = True
        policy = PresCountPolicy(rf, assignment)
        vreg = next(iter(assignment.banks))
        live = LiveIntervals.build(fn)
        order = policy.order(vreg, live.of(vreg))
        assert len(order) == rf.registers_per_bank

    def test_split_children_inherit_bank(self):
        fn = build_mac_kernel()
        rf = BankedRegisterFile(8, 2)
        assignment = PresCountBankAssigner(rf).assign(fn)
        policy = PresCountPolicy(rf, assignment)
        parent = next(iter(assignment.banks))
        child = fn.new_vreg()
        policy.on_split(parent, [child])
        assert assignment.bank_of(child) == assignment.bank_of(parent)

    def test_unassigned_vreg_sees_whole_file(self):
        fn = build_mac_kernel()
        rf = BankedRegisterFile(8, 2)
        assignment = PresCountBankAssigner(rf).assign(fn)
        policy = PresCountPolicy(rf, assignment)
        stranger = fn.new_vreg()
        live = LiveIntervals.build(fn)
        some_interval = live.vreg_intervals()[0]
        assert len(policy.order(stranger, some_interval)) == rf.num_registers

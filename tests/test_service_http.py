"""End-to-end HTTP service: submit/poll/result, hits, degradation."""

from __future__ import annotations

import json
import threading

import pytest

from repro.ir import print_function
from repro.service import (
    ServiceConfig,
    ServiceError,
    make_server,
    shutdown_server,
)
from repro.service.client import ServiceClient

from .conftest import build_mac_kernel


@pytest.fixture
def server(tmp_path):
    server = make_server(
        "127.0.0.1", 0, ServiceConfig(workers=0, cache_dir=str(tmp_path / "cache"))
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    shutdown_server(server)
    thread.join(timeout=5)


@pytest.fixture
def client(server):
    host, port = server.server_address[:2]
    return ServiceClient(f"http://{host}:{port}")


IR = print_function(build_mac_kernel())


def test_health_and_stats(client):
    assert client.health() == {"ok": True}
    stats = client.stats()
    assert stats["counters"]["requests"] == 0
    assert stats["queue_depth"] == 0
    assert set(stats["tiers"]) == {"bpc", "bcr", "non"}


def test_submit_poll_result_roundtrip(client):
    status = client.submit(IR, registers=32, banks=2, method="bpc")
    assert status["cache"] == "miss"
    status = client.wait(status["job_id"])
    assert status["status"] == "done"
    assert status["served_method"] == "bpc"
    artifact = client.result_json(status["job_id"])
    assert artifact["function"] == "mac"
    assert artifact["method"] == "bpc"
    assert "%v0" in artifact["assignment"]


def test_second_identical_request_is_bit_identical_hit(client):
    first = client.wait(client.submit(IR, registers=32, banks=2)["job_id"])
    cold = client.result(first["job_id"])
    second = client.submit(IR, registers=32, banks=2)
    assert second["cache"] == "hit"
    assert second["status"] == "done"
    assert client.result(second["job_id"]) == cold
    stats = client.stats()
    assert stats["counters"]["cache_hits"] == 1
    assert stats["counters"]["executed"] == 1


def test_tiny_deadline_degrades_instead_of_timing_out(client):
    status, artifact = client.allocate(
        IR, registers=32, banks=2, method="bpc", deadline_ms=0
    )
    assert status["degraded"] is True
    assert status["served_method"] in ("bcr", "non")
    assert artifact["method"] == status["served_method"]
    assert client.stats()["counters"]["degraded"] == 1


def test_sync_allocate_envelope(client):
    status, artifact = client.allocate(IR, registers=32, banks=2, method="bcr")
    assert status["status"] == "done"
    assert artifact["method"] == "bcr"
    # The embedded artifact is exactly the stored canonical bytes.
    assert json.loads(client.result(status["job_id"])) == artifact


def test_errors_are_json(client):
    with pytest.raises(ServiceError) as excinfo:
        client.submit("definitely not ir", registers=32)
    assert excinfo.value.status == 400
    with pytest.raises(ServiceError) as excinfo:
        client.poll("j999999")
    assert excinfo.value.status == 404
    with pytest.raises(ServiceError) as excinfo:
        client._request("/v1/nope")
    assert excinfo.value.status == 404


def test_dsa_file_spec_over_http(client):
    status, artifact = client.allocate(
        IR, registers=32, banks=2, subgroups=4, method="bpc"
    )
    assert status["status"] == "done"
    assert artifact["file"] == {"registers": 32, "banks": 2, "subgroups": 4}


def test_cache_dir_persists_across_server_restart(server, client, tmp_path):
    first = client.wait(client.submit(IR, registers=32, banks=2)["job_id"])
    cold = client.result(first["job_id"])
    # A second, fresh server over the same cache dir hits immediately.
    other = make_server(
        "127.0.0.1", 0, ServiceConfig(workers=0, cache_dir=str(tmp_path / "cache"))
    )
    thread = threading.Thread(target=other.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = other.server_address[:2]
        reclient = ServiceClient(f"http://{host}:{port}")
        status = reclient.submit(IR, registers=32, banks=2)
        assert status["cache"] == "hit"
        assert reclient.result(status["job_id"]) == cold
    finally:
        shutdown_server(other)
        thread.join(timeout=5)

"""Tests for post-allocation structural verification."""

import pytest

from repro.alloc import AllocationVerificationError, verify_allocation
from repro.alloc.greedy import GreedyAllocator
from repro.banks import BankedRegisterFile
from repro.ir import parse_function, instruction as ins
from repro.ir.types import PhysicalRegister, VirtualRegister
from repro.prescount import PipelineConfig, run_pipeline
from tests.conftest import build_mac_kernel

P = PhysicalRegister
V = VirtualRegister


def clean_function():
    return parse_function(
        """
        func @f {
        block entry:
          $fp0 = li #1.0
          $fp1 = fneg $fp0
          ret $fp1
        }
        """
    )


class TestClean:
    def test_clean_passes(self):
        assert verify_allocation(clean_function()) == []

    def test_pipeline_output_verifies(self, rf_rv2):
        result = run_pipeline(build_mac_kernel(), PipelineConfig(rf_rv2, "bpc"))
        assert verify_allocation(result.function) == []

    def test_spilled_output_verifies(self):
        rf = BankedRegisterFile(8, 2)
        result = GreedyAllocator(rf).run(build_mac_kernel(n_pairs=10))
        assert verify_allocation(result.function) == []


class TestFindings:
    def test_surviving_vreg_detected(self):
        fn = clean_function()
        fn.entry.insert(1, ins.arith("fneg", V(9), P(0)))
        with pytest.raises(AllocationVerificationError, match="survived"):
            verify_allocation(fn)

    def test_reload_before_store_detected(self):
        fn = clean_function()
        fn.entry.insert(0, ins.load(P(2), spill_slot=0, spill=True))
        findings = verify_allocation(fn, raise_on_failure=False)
        assert any("slot 0" in f for f in findings)

    def test_store_then_reload_clean(self):
        fn = clean_function()
        fn.entry.insert(1, ins.store(P(0), spill_slot=0, spill=True))
        fn.entry.insert(2, ins.load(P(2), spill_slot=0, spill=True))
        assert verify_allocation(fn) == []

    def test_read_before_write_detected(self):
        fn = parse_function(
            "func @f {\nblock entry:\n  $fp1 = fneg $fp0\n  ret $fp1\n}"
        )
        findings = verify_allocation(fn, raise_on_failure=False)
        assert any("$f0" in f for f in findings)

    def test_one_armed_store_detected(self):
        """A store on only one branch arm does not dominate the reload."""
        fn = parse_function(
            """
            func @f {
            block entry:
              $fp0 = li #1.0
              br arm.then prob=0.5
            block arm.cont:
              jmp arm.join
            block arm.then:
              store $fp0
              jmp arm.join
            block arm.join:
              ret
            }
            """
        )
        # Tag the store/load as spill ops via attrs.
        then_block = fn.block("arm.then")
        then_block.instructions[0].attrs.update(spill_slot=0, spill=True)
        join = fn.block("arm.join")
        join.insert(0, ins.load(P(2), spill_slot=0, spill=True))
        findings = verify_allocation(fn, raise_on_failure=False)
        assert any("slot 0" in f for f in findings)

    def test_spill_tag_without_slot_detected(self):
        fn = clean_function()
        fn.entry.insert(1, ins.store(P(0), spill=True))
        findings = verify_allocation(fn, raise_on_failure=False)
        assert any("without a slot" in f for f in findings)

    def test_error_stringifies(self):
        error = AllocationVerificationError(["a", "b"])
        assert "a; b" == str(error)

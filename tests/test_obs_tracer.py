"""Span tracer: nesting, ordering, merging, Chrome-trace export."""

from __future__ import annotations

import json

import pytest

from repro.obs.tracer import _NULL_SPAN, Span, Tracer


class TestDisabledPath:
    def test_disabled_span_is_the_shared_noop(self):
        tracer = Tracer()
        assert tracer.span("a") is _NULL_SPAN
        assert tracer.span("b", category="pass", k=1) is _NULL_SPAN

    def test_disabled_records_nothing(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b") as sp:
                sp.note(items=3)
        assert len(tracer) == 0
        assert tracer.snapshot() == []

    def test_enable_disable_roundtrip(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("a"):
            pass
        tracer.enable(False)
        with tracer.span("b"):
            pass
        assert [s.name for s in tracer.spans] == ["a"]


class TestNesting:
    def test_parent_links_reconstruct_the_call_tree(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner1"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("inner2"):
                pass
        tree = tracer.span_tree()
        assert [t["name"] for t in tree] == ["outer"]
        inner = [c["name"] for c in tree[0]["children"]]
        assert inner == ["inner1", "inner2"]
        assert tree[0]["children"][0]["children"][0]["name"] == "leaf"

    def test_sids_assigned_in_open_order(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["a"].sid < by_name["b"].sid < by_name["c"].sid
        assert by_name["b"].parent == by_name["a"].sid
        assert by_name["a"].parent is None
        assert by_name["c"].parent is None

    def test_siblings_ordered_by_open_order_not_completion(self):
        # "a" completes *after* "b" but opened first: span_tree orders by
        # open order, which is what makes trees timestamp-independent.
        tracer = Tracer(enabled=True)
        with tracer.span("root"):
            a = tracer.span("a")
            a.__enter__()
            with tracer.span("b"):  # opens and closes while a is open
                pass
            a.__exit__(None, None, None)
        tree = tracer.span_tree()
        # b opened while a was open, so it nests under a.
        assert [c["name"] for c in tree[0]["children"]] == ["a"]
        assert [c["name"] for c in tree[0]["children"][0]["children"]] == ["b"]

    def test_note_attaches_args(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a", category="stage", fixed=1) as sp:
            sp.note(extra=2)
        (span,) = tracer.spans
        assert span.args == {"fixed": 1, "extra": 2}
        assert span.category == "stage"

    def test_exception_annotates_and_propagates(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("a"):
                raise ValueError("boom")
        (span,) = tracer.spans
        assert span.args["error"] == "ValueError"

    def test_timing_is_monotone(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer.start <= inner.start
        assert inner.end <= outer.end
        assert outer.duration >= inner.duration >= 0.0


class TestSnapshotMerge:
    def _worker_snapshot(self, names):
        worker = Tracer(enabled=True)
        with worker.span(names[0]):
            for inner in names[1:]:
                with worker.span(inner):
                    pass
        return worker.snapshot()

    def test_snapshot_is_plain_data(self):
        snap = self._worker_snapshot(["p", "c"])
        assert all(isinstance(s, dict) for s in snap)
        json.dumps(snap)  # picklable and JSON-able

    def test_merge_rebases_sids_and_remaps_parents(self):
        parent = Tracer(enabled=True)
        with parent.span("local"):
            pass
        parent.merge(self._worker_snapshot(["prog", "fn"]), track="prog")
        tree = parent.span_tree()
        assert [t["name"] for t in tree] == ["local", "prog"]
        assert [c["name"] for c in tree[1]["children"]] == ["fn"]
        sids = [s.sid for s in parent.spans]
        assert len(sids) == len(set(sids))

    def test_merge_order_determines_tracks(self):
        a = Tracer(enabled=True)
        a.merge(self._worker_snapshot(["one"]), track="one")
        a.merge(self._worker_snapshot(["two"]), track="two")
        b = Tracer(enabled=True)
        b.merge(self._worker_snapshot(["one"]), track="one")
        b.merge(self._worker_snapshot(["two"]), track="two")
        assert a.track_names == b.track_names
        assert [t["name"] for t in a.span_tree()] == ["one", "two"]
        assert a.span_tree() == b.span_tree()

    def test_merge_none_or_empty_is_noop(self):
        tracer = Tracer(enabled=True)
        tracer.merge(None)
        tracer.merge([])
        assert len(tracer) == 0

    def test_reset_clears_everything(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            pass
        tracer.merge(self._worker_snapshot(["w"]), track="w")
        tracer.reset()
        assert len(tracer) == 0
        assert tracer.track_names == {}
        with tracer.span("b"):
            pass
        assert tracer.spans[0].sid == 0


class TestChromeTrace:
    def test_event_shape(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", category="pipeline", method="bpc"):
            with tracer.span("inner", category="pass"):
                pass
        doc = tracer.to_chrome_trace()
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert meta[0]["name"] == "process_name"
        assert meta[0]["args"]["name"] == "repro"
        assert [e["name"] for e in complete] == ["outer", "inner"]
        outer = complete[0]
        assert outer["cat"] == "pipeline"
        assert outer["args"] == {"method": "bpc"}
        for e in complete:
            assert e["ts"] >= 0.0 and e["dur"] >= 0.0  # microseconds

    def test_track_names_become_thread_metadata(self):
        worker = Tracer(enabled=True)
        with worker.span("prog"):
            pass
        parent = Tracer(enabled=True)
        parent.merge(worker.snapshot(), track="433.milc")
        names = [
            e["args"]["name"]
            for e in parent.to_chrome_trace()["traceEvents"]
            if e["name"] == "thread_name"
        ]
        assert names == ["433.milc"]

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            pass
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])


class TestSpanDataclass:
    def test_as_dict_roundtrip(self):
        span = Span(sid=3, parent=1, tid=0, name="n", category="c",
                    start=0.5, end=1.25, args={"k": "v"})
        d = span.as_dict()
        assert d["sid"] == 3 and d["parent"] == 1
        assert d["args"] == {"k": "v"}
        assert d["args"] is not span.args  # defensive copy
        assert span.duration == pytest.approx(0.75)

"""Smoke tests: every example script runs to completion.

Examples are documentation; a broken example is a broken promise.  Each
script's ``main()`` is imported and executed (stdout captured by pytest).
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    ["quickstart", "cnn_unrolling", "dsa_subgroups", "paper_walkthrough"],
)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main() if hasattr(module, "main") else None
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


def test_quickstart_shows_methods(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    for method in ("non", "bcr", "bpc"):
        assert method in out
    assert "bank histogram" in out


def test_paper_walkthrough_has_figure5(capsys):
    load_example("paper_walkthrough").main()
    out = capsys.readouterr().out
    assert "Figure 5" in out
    assert "Cost_R(b) = 21" in out

"""Metrics registry: instruments, disabled path, pool-safe merging."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge_tracks_last_and_max(self):
        g = Gauge()
        g.set(3)
        g.set(9)
        g.set(2)
        assert g.value == 2
        assert g.max == 9
        assert g.samples == 3

    def test_histogram_summary(self):
        h = Histogram()
        for v in (2.0, 4.0, 6.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 12.0
        assert h.min == 2.0 and h.max == 6.0
        assert h.mean == pytest.approx(4.0)

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram().mean == 0.0


class TestRegistry:
    def test_disabled_records_nothing(self):
        m = MetricsRegistry()
        m.inc("a")
        m.set_gauge("b", 1)
        m.observe("c", 2.0)
        assert not m.counters and not m.gauges and not m.histograms

    def test_enabled_records(self):
        m = MetricsRegistry(enabled=True)
        m.inc("spills", 2)
        m.inc("spills")
        m.set_gauge("pressure.bank0", 7)
        m.observe("seconds", 0.25)
        assert m.counters["spills"].value == 3
        assert m.gauges["pressure.bank0"].value == 7
        assert m.histograms["seconds"].count == 1

    def test_reset(self):
        m = MetricsRegistry(enabled=True)
        m.inc("a")
        m.reset()
        assert not m.counters


class TestSnapshotMerge:
    def _worker(self):
        m = MetricsRegistry(enabled=True)
        m.inc("spills", 2)
        m.set_gauge("pressure", 5)
        m.observe("cost", 10.0)
        return m.snapshot()

    def test_snapshot_is_plain_json_data(self):
        json.dumps(self._worker())

    def test_counters_and_histograms_add(self):
        m = MetricsRegistry(enabled=True)
        m.merge(self._worker())
        m.merge(self._worker())
        assert m.counters["spills"].value == 4
        assert m.histograms["cost"].count == 2
        assert m.histograms["cost"].total == 20.0

    def test_gauges_combine_max_and_sum_samples(self):
        m = MetricsRegistry(enabled=True)
        w1 = MetricsRegistry(enabled=True)
        w1.set_gauge("pressure", 9)
        w2 = MetricsRegistry(enabled=True)
        w2.set_gauge("pressure", 4)
        m.merge(w1.snapshot())
        m.merge(w2.snapshot())
        assert m.gauges["pressure"].max == 9
        assert m.gauges["pressure"].value == 4  # last in merge order
        assert m.gauges["pressure"].samples == 2

    def test_merge_none_is_noop(self):
        m = MetricsRegistry(enabled=True)
        m.merge(None)
        assert not m.counters

    def test_merge_totals_are_order_independent(self):
        snaps = []
        for spills, pressure in [(1, 3), (2, 8), (3, 5)]:
            w = MetricsRegistry(enabled=True)
            w.inc("spills", spills)
            w.set_gauge("pressure", pressure)
            w.observe("cost", float(spills))
            snaps.append(w.snapshot())
        a = MetricsRegistry(enabled=True)
        b = MetricsRegistry(enabled=True)
        for s in snaps:
            a.merge(s)
        for s in reversed(snaps):
            b.merge(s)
        assert a.counters["spills"].value == b.counters["spills"].value
        assert a.gauges["pressure"].max == b.gauges["pressure"].max
        assert a.histograms["cost"].total == b.histograms["cost"].total


class TestExport:
    def test_to_json_shape(self):
        m = MetricsRegistry(enabled=True)
        m.inc("spills", 2)
        m.set_gauge("pressure", 5)
        m.observe("cost", 10.0)
        doc = m.to_json()
        assert doc["counters"] == {"spills": 2}
        assert doc["gauges"]["pressure"]["max"] == 5
        assert doc["histograms"]["cost"]["mean"] == 10.0
        json.dumps(doc)  # finite everywhere

    def test_write_json(self, tmp_path):
        m = MetricsRegistry(enabled=True)
        m.inc("a")
        path = tmp_path / "metrics.json"
        m.write_json(str(path))
        assert json.loads(path.read_text())["counters"]["a"] == 1

    def test_render_lists_everything(self):
        m = MetricsRegistry(enabled=True)
        m.inc("spills", 2)
        m.set_gauge("pressure", 5)
        m.observe("cost", 10.0)
        text = m.render()
        assert "spills" in text and "pressure" in text and "cost" in text

    def test_render_empty(self):
        assert "(nothing recorded)" in MetricsRegistry().render()

"""Tests for block-level liveness dataflow."""

from repro.analysis import Liveness
from repro.ir import IRBuilder, parse_function
from tests.conftest import build_mac_kernel, build_nested_loops


class TestStraightLine:
    def test_dead_after_last_use(self):
        fn = parse_function(
            """
            func @f {
            block entry:
              %v0:fp = li #1.0
              %v1:fp = fneg %v0:fp
              jmp next
            block next:
              ret %v1:fp
            }
            """
        )
        lv = Liveness.build(fn)
        v0 = next(r for r in fn.virtual_registers() if r.vid == 0)
        v1 = next(r for r in fn.virtual_registers() if r.vid == 1)
        assert v0 not in lv.live_out["entry"]
        assert v1 in lv.live_out["entry"]
        assert v1 in lv.live_in["next"]

    def test_entry_has_no_live_in(self):
        fn = build_mac_kernel()
        lv = Liveness.build(fn)
        assert lv.live_in["entry"] == frozenset()


class TestLoops:
    def test_loop_carried_value_live_at_header(self):
        fn = build_mac_kernel()
        lv = Liveness.build(fn)
        header = next(b.label for b in fn.blocks if b.attrs.get("loop_header"))
        # The accumulator and all inputs are live into the header.
        assert len(lv.live_in[header]) >= 9  # 4 xs + 4 ys + acc

    def test_loop_invariant_live_through_nest(self):
        fn = build_nested_loops((2, 2))
        lv = Liveness.build(fn)
        x = next(r for r in fn.virtual_registers() if r.vid == 0)
        for block in fn.blocks:
            if block.attrs.get("loop_header"):
                assert x in lv.live_in[block.label]

    def test_value_dead_after_loop(self):
        b = IRBuilder("f")
        x = b.const(1.0)
        acc = b.const(0.0)
        with b.loop(trip_count=2):
            b.arith_into(acc, "fadd", acc, x)
        b.ret(acc)
        fn = b.finish()
        lv = Liveness.build(fn)
        exit_label = next(bl.label for bl in fn.blocks if "exit" in bl.label)
        assert x not in lv.live_out[exit_label]
        assert acc in lv.live_in[exit_label]


class TestGenKill:
    def test_gen_is_upward_exposed_only(self):
        fn = parse_function(
            """
            func @f {
            block entry:
              %v0:fp = li #1.0
              %v1:fp = fneg %v0:fp
              ret %v1:fp
            }
            """
        )
        lv = Liveness.build(fn)
        # v0 is defined before its use: not upward-exposed.
        assert all(r.vid != 0 for r in lv.gen["entry"])
        assert {r.vid for r in lv.kill["entry"]} == {0, 1}

    def test_use_before_redef_is_gen(self):
        fn = parse_function(
            """
            func @f {
            block entry:
              %v0:fp = li #1.0
              jmp body
            block body:
              %v1:fp = fneg %v0:fp
              %v0:fp = li #2.0
              ret %v0:fp
            }
            """
        )
        lv = Liveness.build(fn)
        assert any(r.vid == 0 for r in lv.gen["body"])
        assert any(r.vid == 0 for r in lv.kill["body"])


class TestQueries:
    def test_live_across(self):
        fn = build_mac_kernel()
        lv = Liveness.build(fn)
        acc = max(fn.virtual_registers(), key=lambda r: lv.live_across(r).__len__())
        assert len(lv.live_across(acc)) >= 1

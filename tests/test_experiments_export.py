"""Tests for CSV/JSON export of experiment results."""

import csv
import io
import json

import pytest

from repro.experiments import (
    ExperimentContext,
    results_to_csv,
    results_to_json,
    table_to_csv,
    table_to_json,
    figure_to_json,
    write_all,
)
from repro.experiments.tables import TableResult, table6
from repro.experiments.figures import FigureResult


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(spec_scale=0.008, cnn_scale=0.1, idft_points=6)


def sample_table():
    return TableResult("T", ["a", "b"], [[1, 2], [3, 4]])


class TestTableExport:
    def test_csv_round_trips(self):
        text = table_to_csv(sample_table())
        rows = list(csv.reader(io.StringIO(text)))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_json_keys_rows(self):
        doc = json.loads(table_to_json(sample_table()))
        assert doc["name"] == "T"
        assert doc["rows"] == [{"a": 1, "b": 2}, {"a": 3, "b": 4}]

    def test_real_table_exports(self, ctx):
        table = table6(ctx)
        doc = json.loads(table_to_json(table))
        assert any(row["DSA-OP"] == "idft" for row in doc["rows"])


class TestFigureExport:
    def test_series_preserved(self):
        figure = FigureResult("F", series={"x/1": 0.5, "maxima": {"a": 2}})
        doc = json.loads(figure_to_json(figure))
        assert doc["series"]["x/1"] == 0.5
        assert doc["series"]["maxima"]["a"] == 2


class TestResultsExport:
    def test_csv_has_all_fields(self, ctx):
        results = ctx.results("DSA-OP", "dsa", 2, "non")
        text = results_to_csv(results)
        header = text.splitlines()[0].split(",")
        assert "static_conflicts" in header
        assert len(text.splitlines()) == len(results) + 1

    def test_empty_results(self):
        assert results_to_csv([]) == ""

    def test_json_parses(self, ctx):
        results = ctx.results("DSA-OP", "dsa", 2, "non")
        doc = json.loads(results_to_json(results))
        assert len(doc) == len(results)
        assert doc[0]["method"] == "non"


class TestWriteAll:
    def test_writes_selected(self, ctx, tmp_path):
        written = write_all(ctx, tmp_path, tables=["VI"], figures=[])
        assert set(written) == {"table_VI.csv", "table_VI.json"}
        assert (tmp_path / "table_VI.csv").exists()

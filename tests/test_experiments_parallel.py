"""Process-pool harness: jobs resolution and parallel/serial equivalence."""

from __future__ import annotations

import pytest

from repro.experiments.harness import (
    ExperimentContext,
    resolve_jobs,
    run_suite,
)
from repro.sim.machine import platform_rv2
from repro.workloads.specfp import specfp_suite


class TestResolveJobs:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_none_falls_back_to_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_none_without_env_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_floor_is_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1


@pytest.mark.parallel
class TestParallelEquivalence:
    def test_run_suite_jobs4_equals_serial(self):
        suite = specfp_suite(0.02, seed=0)
        register_file = platform_rv2().file_for(2)
        kwargs = dict(file_key="rv2:2", measure_dynamic=True)
        serial = run_suite(suite, register_file, "bpc", jobs=1, **kwargs)
        parallel = run_suite(suite, register_file, "bpc", jobs=4, **kwargs)
        # ProgramResult is a plain dataclass: == compares every field, so
        # this asserts byte-identical aggregates in identical order.
        assert parallel == serial

    def test_context_results_identical_across_job_counts(self):
        shared = dict(spec_scale=0.02, cnn_scale=0.2, idft_points=8, seed=0)
        serial_ctx = ExperimentContext(jobs=1, **shared)
        parallel_ctx = ExperimentContext(jobs=4, **shared)
        for suite_name, platform, banks in [
            ("SPECfp", "rv1", 4),
            ("CNN-KERNEL", "rv2", 2),
            ("DSA-OP", "dsa", 2),
        ]:
            for method in ("non", "bpc"):
                assert parallel_ctx.results(
                    suite_name, platform, banks, method
                ) == serial_ctx.results(suite_name, platform, banks, method)

    def test_env_jobs_drive_context(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        ctx = ExperimentContext(spec_scale=0.02, seed=0)  # jobs=None -> env
        env_results = ctx.results("SPECfp", "rv2", 2, "non")
        serial = ExperimentContext(spec_scale=0.02, seed=0, jobs=1).results(
            "SPECfp", "rv2", 2, "non"
        )
        assert env_results == serial

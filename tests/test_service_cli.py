"""CLI integration: ``allocate --out``, ``repro request``, exit codes."""

from __future__ import annotations

import json
import threading

import pytest

from repro.cli import main
from repro.service import ServiceConfig, make_server, shutdown_server


@pytest.fixture
def server_url():
    server = make_server("127.0.0.1", 0, ServiceConfig(workers=0))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    shutdown_server(server)
    thread.join(timeout=5)


def test_allocate_out_writes_service_schema(tmp_path, capsys):
    out = tmp_path / "artifact.json"
    assert main(["allocate", "--method", "bpc", "--out", str(out)]) == 0
    artifact = json.loads(out.read_bytes())
    assert artifact["schema"] == 1
    assert artifact["function"] == "demo"
    assert artifact["method"] == "bpc"
    assert set(artifact["stats"]) >= {"spills", "bank_conflicts", "copies_inserted"}
    assert "wrote artifact" in capsys.readouterr().out


def test_cli_artifact_diffable_with_service_result(tmp_path, server_url, capsys):
    out = tmp_path / "cli.json"
    assert main(["allocate", "--out", str(out)]) == 0
    remote = tmp_path / "service.json"
    rc = main(
        ["request", "--server", server_url, "--out", str(remote)]
    )
    assert rc == 0
    # Same kernel, same defaults: byte-for-byte identical artifacts.
    assert remote.read_bytes() == out.read_bytes()


def test_request_reports_cache_hit_on_second_run(server_url, capsys):
    assert main(["request", "--server", server_url]) == 0
    first = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
    assert first["cache"] == "miss"
    assert main(["request", "--server", server_url]) == 0
    second = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
    assert second["cache"] == "hit"
    assert second["key"] == first["key"]
    assert second["stats"] == first["stats"]


def test_request_fail_on_degrade_exit_code(server_url, capsys):
    rc = main(
        [
            "request", "--server", server_url, "--trip-count", "64",
            "--deadline-ms", "0", "--fail-on-degrade",
        ]
    )
    assert rc == 3
    summary = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
    assert summary["degraded"] is True
    assert summary["served_method"] in ("bcr", "non")
    assert summary["requested_method"] == "bpc"


def test_request_ir_from_file(tmp_path, server_url, capsys):
    ir = tmp_path / "kernel.ir"
    ir.write_text(
        "func @tiny {\n"
        "block entry:\n"
        "  %v0:fp = li #1.0\n"
        "  %v1:fp = li #2.0\n"
        "  %v2:fp = fadd %v0:fp, %v1:fp\n"
        "  ret %v2:fp\n"
        "}\n",
        encoding="utf-8",
    )
    assert main(["request", "--server", server_url, "--ir", str(ir)]) == 0
    summary = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
    assert summary["served_method"] == "bpc"


def test_request_against_dead_server_fails_cleanly(capsys):
    rc = main(["request", "--server", "http://127.0.0.1:9", "--timeout", "1"])
    assert rc == 1
    assert "request failed" in capsys.readouterr().err

"""``repro measure``: machine selection, sweeps, dumps, history gating.

The parity proof the ``ooo-smoke`` CI job runs with ``cmp`` is asserted
here at the byte level: ``repro measure --out`` dumps for the in-order
machine and the degenerate OoO configuration must be *identical files*,
and the dump must be byte-stable across ``--jobs`` counts.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main

#: Fast global flags: tiny DSA suite, serial, fixed seed.
FAST = ["--idft-points", "6", "--jobs", "1"]


def measure(tmp_path, *extra, jobs="1"):
    argv = ["--idft-points", "6", "--jobs", jobs, "measure", "--suite",
            "DSA-OP", *extra]
    return main(argv)


class TestParser:
    def test_measure_defaults(self):
        args = build_parser().parse_args(["measure"])
        assert args.machine == "dsa"
        assert args.suite == "DSA-OP"
        assert args.platform == "dsa"
        assert args.banks == 0
        assert args.rob == 32 and args.iq == 16
        assert not args.no_rename
        assert args.method is None and args.issue_width is None

    def test_measure_flags_parse(self):
        args = build_parser().parse_args(
            ["measure", "--machine", "ooo", "--issue-width", "1",
             "--issue-width", "4", "--read-ports", "2", "--no-rename",
             "--method", "bpc", "--program", "idft"]
        )
        assert args.machine == "ooo"
        assert args.issue_width == [1, 4]
        assert args.read_ports == [2]
        assert args.no_rename and args.method == ["bpc"]

    def test_rejects_unknown_machine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["measure", "--machine", "vliw"])


class TestDsaMeasure:
    def test_prints_cycle_table(self, capsys):
        assert measure(None) == 0
        out = capsys.readouterr().out
        assert "DSA in-order cycles" in out
        assert "conflict cycles" in out
        for method in ("non", "bcr", "bpc"):
            assert method in out


class TestOooMeasure:
    def test_prints_survival_table(self, capsys):
        assert measure(
            None, "--machine", "ooo",
            "--issue-width", "1", "--read-ports", "1",
        ) == 0
        out = capsys.readouterr().out
        assert "conflict-penalty survival" in out
        assert "survival%" in out
        assert "in-order baseline" in out

    def test_degenerate_survival_is_pinned_at_100(self, capsys):
        assert measure(
            None, "--machine", "ooo", "--no-rename",
            "--issue-width", "1", "--read-ports", "1",
        ) == 0
        assert " 100 " in capsys.readouterr().out
        # Exactly 100.0, not approximately: the parity proof makes the
        # degenerate conflict-cycle delta equal the in-order delta.
        from repro.experiments import ExperimentContext, ooo_sweep

        ctx = ExperimentContext(idft_points=6, jobs=1)
        sweep = ooo_sweep(ctx, widths=(1,), ports=(1,), rename=False)
        for row in sweep["rows"]:
            assert row["survival_pct"] == {"bcr": 100.0, "bpc": 100.0}


class TestParityDump:
    def test_degenerate_dump_is_byte_identical_to_dsa(self, tmp_path, capsys):
        dsa_out = tmp_path / "dsa.json"
        deg_out = tmp_path / "degenerate.json"
        assert measure(tmp_path, "--out", str(dsa_out)) == 0
        assert measure(
            tmp_path, "--machine", "ooo", "--no-rename",
            "--issue-width", "1", "--read-ports", "1",
            "--out", str(deg_out),
        ) == 0
        capsys.readouterr()
        assert dsa_out.read_bytes() == deg_out.read_bytes()
        payload = json.loads(dsa_out.read_text())
        assert set(payload) == {"non", "bcr", "bpc"}
        assert all(payload.values())

    def test_dump_is_byte_stable_across_jobs(self, tmp_path, capsys):
        serial = tmp_path / "serial.json"
        pooled = tmp_path / "pooled.json"
        assert measure(
            tmp_path, "--machine", "ooo", "--issue-width", "2",
            "--read-ports", "2", "--out", str(serial), jobs="1",
        ) == 0
        assert measure(
            tmp_path, "--machine", "ooo", "--issue-width", "2",
            "--read-ports", "2", "--out", str(pooled), jobs="2",
        ) == 0
        capsys.readouterr()
        assert serial.read_bytes() == pooled.read_bytes()

    def test_non_degenerate_dump_differs_from_dsa(self, tmp_path, capsys):
        dsa_out = tmp_path / "dsa.json"
        wide_out = tmp_path / "wide.json"
        assert measure(tmp_path, "--out", str(dsa_out)) == 0
        assert measure(
            tmp_path, "--machine", "ooo",
            "--issue-width", "4", "--read-ports", "4",
            "--out", str(wide_out),
        ) == 0
        capsys.readouterr()
        assert dsa_out.read_bytes() != wide_out.read_bytes()


class TestHistoryGating:
    def run_record(self, tmp_path, capsys):
        history = tmp_path / "history"
        assert measure(
            tmp_path, "--machine", "ooo",
            "--issue-width", "1", "--read-ports", "1",
            "--method", "non", "--method", "bpc",
            "--record", str(history),
        ) == 0
        out = capsys.readouterr().out
        assert "recorded" in out
        records = sorted(history.glob("OOO_*.json"))
        assert len(records) == 1
        return records[0]

    def test_record_and_self_diff_passes(self, tmp_path, capsys):
        record = self.run_record(tmp_path, capsys)
        payload = json.loads(record.read_text())
        assert payload["ooo"]["suite"] == "DSA-OP"
        assert any(k.startswith("OOO/DSA-OP/w1p1/") for k in payload["programs"])
        assert main(
            FAST + ["bench", "diff", str(record), str(record)]
        ) == 0
        assert "regressions: 0" in capsys.readouterr().out.lower()

    def test_diff_flags_cycle_regression(self, tmp_path, capsys):
        record = self.run_record(tmp_path, capsys)
        payload = json.loads(record.read_text())
        worse = dict(payload)
        worse["programs"] = {
            key: dict(entry) for key, entry in payload["programs"].items()
        }
        for entry in worse["programs"].values():
            if entry.get("cycles"):
                entry["cycles"] *= 1.5
        worse["totals"] = dict(payload["totals"])
        worse["totals"]["cycles"] *= 1.5
        regressed = record.parent / "OOO_regressed.json"
        regressed.write_text(json.dumps(worse))
        assert main(
            FAST + ["bench", "diff", str(record), str(regressed)]
        ) == 1
        assert "regression" in capsys.readouterr().out.lower()

"""docs-check: intra-doc links resolve and the public API is documented.

Keeps the documentation site honest as the code moves:

* every relative markdown link in README.md and docs/*.md points at a
  file that exists;
* every ``repro.obs`` public symbol (``__all__``) is documented in
  docs/OBSERVABILITY.md;
* every ``path · symbol`` anchor in docs/GLOSSARY.md names a real file
  and a symbol that actually appears in it;
* the CLI flags the docs advertise exist on the parser.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

import repro.obs
from repro.cli import build_parser

REPO = Path(__file__).resolve().parent.parent
DOCS = sorted(REPO.glob("docs/*.md")) + [REPO / "README.md"]

LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
ANCHOR = re.compile(r"`(src/[\w/.]+\.py)` · `([\w.]+)`")


def doc_ids():
    return [str(p.relative_to(REPO)) for p in DOCS]


@pytest.mark.parametrize("doc", DOCS, ids=doc_ids())
def test_relative_links_resolve(doc):
    broken = []
    for target in LINK.findall(doc.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path = target.split("#", 1)[0]
        if not path:  # pure intra-page anchor
            continue
        if not (doc.parent / path).exists():
            broken.append(target)
    assert not broken, f"{doc.name}: broken links {broken}"


def test_every_public_obs_symbol_is_documented():
    text = (REPO / "docs/OBSERVABILITY.md").read_text(encoding="utf-8")
    missing = [sym for sym in repro.obs.__all__ if f"`{sym}`" not in text]
    assert not missing, (
        f"repro.obs symbols missing from docs/OBSERVABILITY.md: {missing}"
    )


def test_glossary_anchors_name_real_symbols():
    text = (REPO / "docs/GLOSSARY.md").read_text(encoding="utf-8")
    anchors = ANCHOR.findall(text)
    assert len(anchors) >= 30, "glossary lost its anchors?"
    problems = []
    for path, symbol in anchors:
        file = REPO / path
        if not file.exists():
            problems.append(f"{path}: no such file")
            continue
        source = file.read_text(encoding="utf-8")
        for part in symbol.split("."):
            if not re.search(rf"\b{re.escape(part)}\b", source):
                problems.append(f"{path}: no symbol {part!r}")
    assert not problems, problems


def test_documented_cli_flags_exist():
    text = (REPO / "docs/OBSERVABILITY.md").read_text(encoding="utf-8")
    documented = set(re.findall(r"(--[a-z][a-z-]+)", text))
    parser_flags = {
        opt for action in build_parser()._actions for opt in action.option_strings
    }
    # Subcommand-local flags mentioned in examples are fine; the global
    # observability flags must exist.
    for flag in ("--trace", "--metrics", "--explain", "--jobs"):
        assert flag in documented
        assert flag in parser_flags


def test_readme_links_every_doc():
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    for doc in REPO.glob("docs/*.md"):
        assert f"docs/{doc.name}" in readme, f"README does not link {doc.name}"

"""docs-check: intra-doc links resolve and the public API is documented.

Keeps the documentation site honest as the code moves:

* every relative markdown link in README.md and docs/*.md points at a
  file that exists;
* every ``repro.obs`` public symbol (``__all__``) is documented in
  docs/OBSERVABILITY.md;
* every ``path · symbol`` anchor in docs/GLOSSARY.md names a real file
  and a symbol that actually appears in it;
* the CLI flags the docs advertise exist on the parser.
"""

from __future__ import annotations

import argparse
import re
from pathlib import Path

import pytest

import repro.obs
from repro.cli import build_parser

REPO = Path(__file__).resolve().parent.parent
DOCS = sorted(REPO.glob("docs/*.md")) + [REPO / "README.md"]

LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
ANCHOR = re.compile(r"`(src/[\w/.]+\.py)` · `([\w.]+)`")


def doc_ids():
    return [str(p.relative_to(REPO)) for p in DOCS]


@pytest.mark.parametrize("doc", DOCS, ids=doc_ids())
def test_relative_links_resolve(doc):
    broken = []
    for target in LINK.findall(doc.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path = target.split("#", 1)[0]
        if not path:  # pure intra-page anchor
            continue
        if not (doc.parent / path).exists():
            broken.append(target)
    assert not broken, f"{doc.name}: broken links {broken}"


def test_every_public_obs_symbol_is_documented():
    text = (REPO / "docs/OBSERVABILITY.md").read_text(encoding="utf-8")
    missing = [sym for sym in repro.obs.__all__ if f"`{sym}`" not in text]
    assert not missing, (
        f"repro.obs symbols missing from docs/OBSERVABILITY.md: {missing}"
    )


def test_glossary_anchors_name_real_symbols():
    text = (REPO / "docs/GLOSSARY.md").read_text(encoding="utf-8")
    anchors = ANCHOR.findall(text)
    assert len(anchors) >= 30, "glossary lost its anchors?"
    problems = []
    for path, symbol in anchors:
        file = REPO / path
        if not file.exists():
            problems.append(f"{path}: no such file")
            continue
        source = file.read_text(encoding="utf-8")
        for part in symbol.split("."):
            if not re.search(rf"\b{re.escape(part)}\b", source):
                problems.append(f"{path}: no symbol {part!r}")
    assert not problems, problems


def test_documented_cli_flags_exist():
    text = (REPO / "docs/OBSERVABILITY.md").read_text(encoding="utf-8")
    documented = set(re.findall(r"(--[a-z][a-z-]+)", text))
    parser_flags = {
        opt for action in build_parser()._actions for opt in action.option_strings
    }
    # Subcommand-local flags mentioned in examples are fine; the global
    # observability flags must exist.
    for flag in ("--trace", "--metrics", "--explain", "--jobs"):
        assert flag in documented
        assert flag in parser_flags


def test_readme_links_every_doc():
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    for doc in REPO.glob("docs/*.md"):
        assert f"docs/{doc.name}" in readme, f"README does not link {doc.name}"


# ----------------------------------------------------------------------
# CLI flags and HTTP routes: docs vs the actual trees
# ----------------------------------------------------------------------

#: Backticked ``--flags`` in the docs that intentionally belong to other
#: tools (pytest, pip, ...), not to the repro parser.
EXTERNAL_FLAGS = {"--benchmark-only"}

DOC_FLAG = re.compile(r"`[^`]*?(--[a-z][a-z0-9-]*)")


def _walk_parsers(parser):
    """The parser and every (recursively nested) subcommand parser."""
    yield parser
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for sub in action.choices.values():
                yield from _walk_parsers(sub)


def _all_parser_flags():
    return {
        opt
        for p in _walk_parsers(build_parser())
        for action in p._actions
        for opt in action.option_strings
    }


def _subparser(name):
    for action in build_parser()._actions:
        if isinstance(action, argparse._SubParsersAction):
            return action.choices[name]
    raise AssertionError("parser has no subcommands?")


@pytest.mark.parametrize(
    "doc", ["docs/SERVICE.md", "docs/SCALING.md", "docs/SIMULATION.md"]
)
def test_every_documented_flag_exists_on_the_parser(doc):
    text = (REPO / doc).read_text(encoding="utf-8")
    documented = set(DOC_FLAG.findall(text)) - EXTERNAL_FLAGS
    assert documented, f"{doc} documents no flags?"
    known = _all_parser_flags()
    ghosts = sorted(documented - known)
    assert not ghosts, f"{doc} documents flags the CLI lacks: {ghosts}"


def test_serve_and_loadgen_flags_are_documented():
    service = (REPO / "docs/SERVICE.md").read_text(encoding="utf-8")
    scaling = (REPO / "docs/SCALING.md").read_text(encoding="utf-8")
    def _undocumented(subcommand, text):
        missing = []
        for action in _subparser(subcommand)._actions:
            options = [o for o in action.option_strings if o != "--help"]
            # documented under any alias (`-v` covers `--verbose`)
            if options and not any(o in text for o in options):
                missing.append(options[-1])
        return sorted(missing)

    missing = _undocumented("serve", service)
    assert not missing, f"SERVICE.md missing serve flags: {missing}"
    missing = _undocumented("loadgen", scaling)
    assert not missing, f"SCALING.md missing loadgen flags: {missing}"
    assert "--shards" in service  # the pointer row into SCALING.md


def _normalize_route(path):
    path = path.split("?", 1)[0]
    return re.sub(r"<[^>]+>", "<id>", path)


def test_documented_endpoints_match_server_routes():
    from repro.service.server import ROUTES

    served = {_normalize_route(path) for _, path in ROUTES}
    endpoint = re.compile(r"`(?:GET |POST )?(/(?:healthz|v1/)[^`\s]*)`")
    for doc in ("docs/SERVICE.md", "docs/SCALING.md"):
        text = (REPO / doc).read_text(encoding="utf-8")
        documented = {_normalize_route(p) for p in endpoint.findall(text)}
        ghosts = sorted(documented - served)
        assert not ghosts, f"{doc} documents unknown endpoints: {ghosts}"
    service = (REPO / "docs/SERVICE.md").read_text(encoding="utf-8")
    documented = {
        _normalize_route(p) for p in endpoint.findall(service)
    }
    undocumented = sorted(served - documented)
    assert not undocumented, (
        f"SERVICE.md missing endpoints: {undocumented}"
    )


def test_shard_frontend_serves_the_same_routes():
    # The sharded front end must not fork the HTTP surface: every route
    # in ROUTES resolves through ShardFrontendHandler's dispatch too
    # (both handlers 404 unknown paths with a "no such path" marker).
    import inspect

    from repro.service import shard
    from repro.service.server import ROUTES

    source = inspect.getsource(shard.ShardFrontendHandler)
    for _, path in ROUTES:
        # Each literal path segment must appear in the dispatch source
        # (placeholder segments like <id> are matched positionally).
        for segment in path.split("?", 1)[0].split("/"):
            if segment and not segment.startswith("<"):
                assert segment in source, (
                    f"frontend handler lost route {path} (segment "
                    f"{segment!r})"
                )
    assert "no such path" in source


def test_durability_doc_is_wired_in():
    """The durability layer's docs, flags, routes, and glossary entries
    stay attached to the code they describe."""
    from repro.service.server import ROUTES

    resilience = (REPO / "docs/RESILIENCE.md").read_text(encoding="utf-8")
    for term in (
        "Durability & lifecycle",
        "repro-journal/1",
        "`queue.journal`",
        "`kill9`",
        "rolling restart",
        "exactly-once by idempotency",
        "quarantine.jsonl",
        "checkpoint.jsonl",
    ):
        assert term in resilience, f"RESILIENCE.md lost {term!r}"

    glossary = (REPO / "docs/GLOSSARY.md").read_text(encoding="utf-8")
    for term in ("write-ahead journal", "recovery replay", "drain",
                 "rolling restart", "exactly-once by idempotency"):
        assert term in glossary, f"GLOSSARY.md lost {term!r}"

    serve_flags = {
        opt
        for action in _subparser("serve")._actions
        for opt in action.option_strings
    }
    assert "--journal" in serve_flags
    loadgen_flags = {
        opt
        for action in _subparser("loadgen")._actions
        for opt in action.option_strings
    }
    assert {"--journal", "--rolling-restart"} <= loadgen_flags
    request_flags = {
        opt
        for action in _subparser("request")._actions
        for opt in action.option_strings
    }
    assert "--job-id" in request_flags
    assert ("POST", "/v1/admin/drain") in ROUTES


# ----------------------------------------------------------------------
# Fleet telemetry: documented metric names vs a rendered exposition
# ----------------------------------------------------------------------

PROM_NAME = re.compile(r"`(repro_[a-z0-9_]+)`")


def test_documented_metric_names_round_trip_through_exposition():
    """Every ``repro_*`` metric family named in the docs must come out
    of a real service's ``/v1/metrics`` exposition (after stripping the
    histogram/counter suffixes), and every documented dotted service
    metric must flatten to a valid family name."""
    from repro.ir import print_function
    from repro.obs.telemetry import (
        parse_prometheus,
        prometheus_name,
        render_prometheus,
    )
    from repro.service import AllocationService, ServiceConfig

    from .conftest import build_mac_kernel

    service = AllocationService(ServiceConfig())
    job = service.submit(
        {
            "ir": print_function(build_mac_kernel(trip_count=8)),
            "file": {"registers": 32, "banks": 2},
            "method": "bpc",
        }
    )
    service.process_once()
    assert job.status == "done"

    exposition = render_prometheus([({}, service.metrics_sample())])
    families = {name for name, _labels in parse_prometheus(exposition)}
    service.stop()

    def _family(name):
        for suffix in ("_bucket", "_sum", "_count", "_total"):
            if name.endswith(suffix):
                return name[: -len(suffix)]
        return name

    served = {_family(name) for name in families} | set(families)
    documented = set()
    for doc in ("docs/OBSERVABILITY.md", "docs/SERVICE.md", "docs/SCALING.md"):
        documented |= set(PROM_NAME.findall((REPO / doc).read_text(encoding="utf-8")))
    ghosts = sorted({_family(n) for n in documented} - served)
    assert not ghosts, f"docs name metric families the service never serves: {ghosts}"
    # The flattening rule itself stays documented and stable.
    assert prometheus_name("service.queue.depth") == "repro_service_queue_depth"


def test_observability_doc_names_the_telemetry_routes():
    from repro.service.server import ROUTES

    text = (REPO / "docs/OBSERVABILITY.md").read_text(encoding="utf-8")
    served = {_normalize_route(path) for _, path in ROUTES}
    for route in ("/v1/metrics", "/v1/trace/<id>"):
        assert route in served, f"server lost {route}"
    assert "/v1/metrics" in text
    assert "/v1/trace/" in text
    assert "X-Repro-Trace" in text


def test_simulation_doc_is_wired_in():
    architecture = (REPO / "docs/ARCHITECTURE.md").read_text(encoding="utf-8")
    assert "SIMULATION.md" in architecture
    assert "sim/ooo" in architecture
    assert "ooo_sweep.py" in architecture
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    assert "docs/SIMULATION.md" in readme
    simulation = (REPO / "docs/SIMULATION.md").read_text(encoding="utf-8")
    for term in ("degenerate", "survival", "rename", "issue", "retire",
                 "--machine ooo", "OOO_baseline.json", "machine-cycles"):
        assert term in simulation, f"SIMULATION.md lost the {term} story"
    glossary = (REPO / "docs/GLOSSARY.md").read_text(encoding="utf-8")
    for term in ("register renaming", "issue queue", "ROB", "issue width",
                 "read port", "degenerate parity", "penalty survival",
                 "machine spec"):
        assert term in glossary, f"GLOSSARY.md missing {term}"
    experiments = (REPO / "EXPERIMENTS.md").read_text(encoding="utf-8")
    assert "ooo_survival.txt" in experiments
    assert "OOO_baseline.json" in experiments
    # The sweep knobs the docs advertise exist on the measure subcommand.
    flags = {
        opt
        for action in _subparser("measure")._actions
        for opt in action.option_strings
    }
    for flag in ("--machine", "--issue-width", "--read-ports", "--rob",
                 "--iq", "--no-rename", "--record", "--out"):
        assert flag in flags, f"measure lost {flag}"


def test_scaling_doc_is_wired_in():
    architecture = (REPO / "docs/ARCHITECTURE.md").read_text(encoding="utf-8")
    assert "SCALING.md" in architecture
    assert "service/shard.py" in architecture
    assert "service/loadgen.py" in architecture
    service = (REPO / "docs/SERVICE.md").read_text(encoding="utf-8")
    assert "SCALING.md" in service
    scaling = (REPO / "docs/SCALING.md").read_text(encoding="utf-8")
    for term in ("consistent-hash", "goodput", "open-loop", "p999"):
        assert term in scaling, f"SCALING.md lost the {term} story"
    glossary = (REPO / "docs/GLOSSARY.md").read_text(encoding="utf-8")
    for term in ("shard", "consistent hashing", "open-loop", "goodput",
                 "p999"):
        assert term in glossary, f"GLOSSARY.md missing {term}"

"""Tests for live-interval construction and interval arithmetic."""

import pytest

from repro.analysis import LiveInterval, LiveIntervals, Segment, SlotIndexes
from repro.ir import parse_function
from repro.ir.types import VirtualRegister
from tests.conftest import build_mac_kernel

V = VirtualRegister


class TestSegment:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Segment(5, 5)

    def test_overlap(self):
        assert Segment(0, 4).overlaps(Segment(3, 6))
        assert not Segment(0, 4).overlaps(Segment(4, 6))  # half-open

    def test_contains(self):
        s = Segment(2, 5)
        assert s.contains(2) and s.contains(4)
        assert not s.contains(5) and not s.contains(1)


class TestLiveIntervalArithmetic:
    def test_add_disjoint_segments(self):
        iv = LiveInterval(V(0))
        iv.add_segment(0, 2)
        iv.add_segment(6, 8)
        assert len(iv.segments) == 2
        assert iv.start == 0 and iv.end == 8
        assert iv.size == 4 and iv.span == 8

    def test_merge_overlapping(self):
        iv = LiveInterval(V(0))
        iv.add_segment(0, 4)
        iv.add_segment(2, 6)
        assert iv.segments == [Segment(0, 6)]

    def test_merge_adjacent(self):
        iv = LiveInterval(V(0))
        iv.add_segment(0, 3)
        iv.add_segment(3, 5)
        assert iv.segments == [Segment(0, 5)]

    def test_merge_bridging(self):
        iv = LiveInterval(V(0))
        iv.add_segment(0, 2)
        iv.add_segment(4, 6)
        iv.add_segment(1, 5)
        assert iv.segments == [Segment(0, 6)]

    def test_covers(self):
        iv = LiveInterval(V(0))
        iv.add_segment(0, 2)
        iv.add_segment(4, 6)
        assert iv.covers(1) and iv.covers(4)
        assert not iv.covers(2) and not iv.covers(3) and not iv.covers(6)

    def test_overlaps_respects_holes(self):
        a = LiveInterval(V(0))
        a.add_segment(0, 2)
        a.add_segment(6, 8)
        b = LiveInterval(V(1))
        b.add_segment(3, 5)
        assert not a.overlaps(b)
        b.add_segment(7, 9)
        assert a.overlaps(b)

    def test_overlap_amount(self):
        a = LiveInterval(V(0))
        a.add_segment(0, 10)
        b = LiveInterval(V(1))
        b.add_segment(4, 6)
        b.add_segment(8, 12)
        assert a.overlap_amount(b) == 4  # [4,6) + [8,10)

    def test_overlaps_symmetric(self):
        a = LiveInterval(V(0)); a.add_segment(0, 5)
        b = LiveInterval(V(1)); b.add_segment(4, 9)
        assert a.overlaps(b) == b.overlaps(a)


class TestConstruction:
    def test_dead_def_gets_point_interval(self):
        fn = parse_function(
            """
            func @f {
            block entry:
              %v0:fp = li #1.0
              ret
            }
            """
        )
        live = LiveIntervals.build(fn)
        iv = live.of(V(0))
        assert iv.size == 1

    def test_use_extends_to_read_point(self):
        fn = parse_function(
            """
            func @f {
            block entry:
              %v0:fp = li #1.0
              %v1:fp = fneg %v0:fp
              ret %v1:fp
            }
            """
        )
        live = LiveIntervals.build(fn)
        slots = live.slots
        v0 = live.of(V(0))
        # Defined at write point 1, read at slot 2 -> [1, 3).
        assert v0.start == 1 and v0.end == 3
        v1 = live.of(V(1))
        # Defined at write point 3, read by ret at slot 4 -> [3, 5).
        assert v1.start == 3 and v1.end == 5

    def test_source_dying_at_instr_does_not_overlap_dest(self):
        fn = parse_function(
            """
            func @f {
            block entry:
              %v0:fp = li #1.0
              %v1:fp = fneg %v0:fp
              ret %v1:fp
            }
            """
        )
        live = LiveIntervals.build(fn)
        assert not live.of(V(0)).overlaps(live.of(V(1)))

    def test_two_sources_overlap(self):
        fn = parse_function(
            """
            func @f {
            block entry:
              %v0:fp = li #1.0
              %v1:fp = li #2.0
              %v2:fp = fadd %v0:fp, %v1:fp
              ret %v2:fp
            }
            """
        )
        live = LiveIntervals.build(fn)
        assert live.of(V(0)).overlaps(live.of(V(1)))

    def test_loop_carried_interval_covers_block(self):
        fn = build_mac_kernel()
        live = LiveIntervals.build(fn)
        header = next(b for b in fn.blocks if b.attrs.get("loop_header"))
        start, end = live.slots.block_range[header.label]
        acc = fn.virtual_registers()[-2]  # accumulator defined before loop
        # At least one register is live across the whole loop body.
        covering = [
            iv for iv in live.vreg_intervals()
            if all(iv.covers(s) for s in range(start, end, 2))
        ]
        assert covering

    def test_use_def_slots_recorded_sorted(self):
        fn = build_mac_kernel()
        live = LiveIntervals.build(fn)
        for iv in live.vreg_intervals():
            assert iv.use_slots == sorted(iv.use_slots)
            assert iv.def_slots == sorted(iv.def_slots)


class TestPressure:
    def test_max_pressure_simple(self):
        fn = parse_function(
            """
            func @f {
            block entry:
              %v0:fp = li #1.0
              %v1:fp = li #2.0
              %v2:fp = fadd %v0:fp, %v1:fp
              ret %v2:fp
            }
            """
        )
        live = LiveIntervals.build(fn)
        assert live.max_pressure() == 2

    def test_pressure_scales_with_live_values(self):
        small = build_mac_kernel(n_pairs=2)
        large = build_mac_kernel(n_pairs=8)
        assert (
            LiveIntervals.build(large).max_pressure()
            > LiveIntervals.build(small).max_pressure()
        )

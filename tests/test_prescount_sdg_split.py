"""Tests for SDG-based subgroup splitting (Figs. 8/9)."""

from repro.analysis import SameDisplacementGraph
from repro.ir import IRBuilder, OpKind, verify_function
from repro.prescount import SdgSplitConfig, split_subgroups
from repro.sim import observably_equivalent
from repro.workloads import idft_kernel, reduce_kernel, shared_use_kernel


def count_sdg_copies(fn):
    return sum(
        1 for __, i in fn.instructions()
        if i.kind is OpKind.COPY and i.attrs.get("sdg_copy")
    )


def max_component(fn):
    sdg = SameDisplacementGraph.build(fn)
    return max((len(c) for c in sdg.components()), default=0)


class TestInputSharing:
    def test_large_fanout_cut(self):
        fn = shared_use_kernel(consumers=12)
        reference = fn.clone()
        config = SdgSplitConfig(fanout_threshold=4, max_component_size=8)
        result = split_subgroups(fn, config=config)
        assert result.copies_inserted > 0
        assert any(kind == "input_sharing" for kind, __ in result.splits)
        verify_function(fn)
        assert observably_equivalent(reference, fn)

    def test_component_size_reduced(self):
        fn = shared_use_kernel(consumers=12)
        before = max_component(fn)
        split_subgroups(fn, config=SdgSplitConfig(4, 8, 32))
        assert max_component(fn) < before

    def test_copies_tagged_sdg(self):
        fn = shared_use_kernel(consumers=12)
        result = split_subgroups(fn, config=SdgSplitConfig(4, 8, 32))
        assert count_sdg_copies(fn) == result.copies_inserted


class TestOutputSharing:
    def test_reduction_cut(self):
        fn = reduce_kernel(inputs=16, trip_count=2)
        reference = fn.clone()
        config = SdgSplitConfig(fanout_threshold=4, max_component_size=8)
        result = split_subgroups(fn, config=config)
        assert result.copies_inserted > 0
        assert any(kind == "output_sharing" for kind, __ in result.splits)
        verify_function(fn)
        assert observably_equivalent(reference, fn)

    def test_accumulator_value_preserved_exactly(self):
        """The partial-accumulator rewrite must compute the same sum."""
        from repro.sim import ValueInterpreter

        fn = reduce_kernel(inputs=16, trip_count=2)
        expected = ValueInterpreter().run(fn).return_values
        split_subgroups(fn, config=SdgSplitConfig(4, 8, 32))
        actual = ValueInterpreter().run(fn).return_values
        assert expected == actual


class TestControl:
    def test_small_components_untouched(self):
        fn = reduce_kernel(inputs=3)
        result = split_subgroups(fn, config=SdgSplitConfig(4, 64, 8))
        assert result.copies_inserted == 0

    def test_rounds_bounded(self):
        fn = idft_kernel(points=6)
        result = split_subgroups(fn, config=SdgSplitConfig(4, 8, max_rounds=2))
        assert result.rounds <= 2

    def test_idft_requires_many_copies(self):
        """The paper's idft stress case: heavy copy generation."""
        fn = idft_kernel(points=8)
        reference = fn.clone()
        result = split_subgroups(fn, config=SdgSplitConfig(4, 16, 64))
        assert result.copies_inserted >= 8
        verify_function(fn)
        assert observably_equivalent(reference, fn)

    def test_converges_to_fixed_point(self):
        fn = shared_use_kernel(consumers=12)
        split_subgroups(fn, config=SdgSplitConfig(4, 8, 64))
        again = split_subgroups(fn, config=SdgSplitConfig(4, 8, 64))
        # Second run may still find nothing cuttable (centers below
        # threshold): no infinite copy generation.
        assert again.copies_inserted <= 2

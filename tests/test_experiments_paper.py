"""Tests for the paper-vs-measured comparison module."""

import pytest

from repro.experiments import PAPER, ComparisonReport, ExperimentContext, compare
from repro.experiments.paper import ShapeCheck


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(spec_scale=0.008, cnn_scale=0.1, idft_points=6)


class TestPaperConstants:
    def test_headline_values_recorded(self):
        assert PAPER["headline.dsa_reduction_pct"] == 99.85
        assert PAPER["table6.avg_ratio_bpc"] == 0.07
        assert PAPER["table2.confs"][2] == 33374

    def test_table4_dynamic_below_static(self):
        """Sanity on the transcription itself."""
        for banks in (2, 4):
            assert (
                PAPER["table4.dynamic_confs"][banks]
                < PAPER["table4.static_confs"][banks]
            )


class TestComparisonReport:
    def test_render_and_flags(self):
        report = ComparisonReport()
        report.add("X", "q", 1, 2, True, "measured > paper")
        report.add("Y", "r", 3, 0, False, "must be zero")
        assert not report.all_hold
        text = report.render()
        assert "DIVERGES" in text and "ok" in text

    def test_empty_report_holds(self):
        assert ComparisonReport().all_hold


class TestCompare:
    def test_all_shapes_hold_at_small_scale(self, ctx):
        report = compare(ctx)
        failing = [c for c in report.checks if not c.holds]
        assert not failing, failing

    def test_covers_key_experiments(self, ctx):
        report = compare(ctx)
        experiments = {c.experiment for c in report.checks}
        assert {"Fig.1", "Table II", "Table IV", "Table VI", "Table VII"} <= experiments

    def test_checks_are_shape_checks(self, ctx):
        report = compare(ctx)
        assert all(isinstance(c, ShapeCheck) for c in report.checks)
        assert len(report.checks) >= 9

"""Tests for natural-loop detection, nesting, and block frequencies."""

import pytest

from repro.ir import DEFAULT_TRIP_COUNT, IRBuilder, LoopInfo
from tests.conftest import build_diamond_kernel, build_nested_loops


class TestDetection:
    def test_single_loop(self):
        b = IRBuilder("f")
        with b.loop(trip_count=5):
            b.const(1.0)
        info = LoopInfo.build(b.finish())
        assert len(info) == 1
        loop = list(info)[0]
        assert loop.trip_count == 5
        assert loop.header in loop.body

    def test_no_loops_in_diamond(self):
        assert len(LoopInfo.build(build_diamond_kernel())) == 0

    def test_nested_loop_bodies_contained(self):
        info = LoopInfo.build(build_nested_loops((3, 7)))
        inner = next(lp for lp in info if lp.trip_count == 7)
        outer = next(lp for lp in info if lp.trip_count == 3)
        assert inner.body <= outer.body
        assert inner.parent is outer
        assert outer.children == [inner]

    def test_sibling_loops(self):
        b = IRBuilder("f")
        with b.loop(trip_count=2):
            b.const(1.0)
        with b.loop(trip_count=3):
            b.const(2.0)
        info = LoopInfo.build(b.finish())
        assert len(info) == 2
        assert all(lp.parent is None for lp in info)

    def test_default_trip_count_on_missing_metadata(self):
        b = IRBuilder("f")
        with b.loop(trip_count=5):
            b.const(1.0)
        fn = b.finish()
        header = next(blk for blk in fn.blocks if blk.attrs.get("loop_header"))
        del header.attrs["trip_count"]
        info = LoopInfo.build(fn)
        assert list(info)[0].trip_count == DEFAULT_TRIP_COUNT


class TestQueries:
    def test_depth(self):
        info = LoopInfo.build(build_nested_loops((2, 2)))
        inner = next(lp for lp in info if lp.parent is not None)
        assert inner.depth == 2
        assert info.depth(inner.header) == 2
        assert info.depth("entry") == 0

    def test_innermost_loop(self):
        info = LoopInfo.build(build_nested_loops((2, 2)))
        inner = next(lp for lp in info if lp.parent is not None)
        assert info.innermost_loop(inner.header) is inner
        assert info.innermost_loop("entry") is None

    def test_enclosing_loops_order(self):
        info = LoopInfo.build(build_nested_loops((2, 2)))
        inner = next(lp for lp in info if lp.parent is not None)
        chain = info.enclosing_loops(inner.header)
        assert chain[0] is inner
        assert chain[1] is inner.parent

    def test_top_level(self):
        info = LoopInfo.build(build_nested_loops((2, 2)))
        assert len(info.top_level()) == 1


class TestBlockFrequency:
    """Eq. 1: frequency = product of enclosing trip counts."""

    def test_entry_frequency_is_one(self):
        info = LoopInfo.build(build_nested_loops((4, 8)))
        assert info.block_frequency("entry") == 1.0

    def test_nest_frequency_is_product(self):
        info = LoopInfo.build(build_nested_loops((4, 8)))
        inner = next(lp for lp in info if lp.parent is not None)
        assert info.block_frequency(inner.header) == pytest.approx(32.0)

    def test_outer_only_frequency(self):
        info = LoopInfo.build(build_nested_loops((4, 8)))
        outer = next(lp for lp in info if lp.parent is None)
        assert info.block_frequency(outer.header) == pytest.approx(4.0)

    def test_exit_block_outside_loop(self):
        b = IRBuilder("f")
        with b.loop(trip_count=9):
            b.const(1.0)
        fn = b.finish()
        info = LoopInfo.build(fn)
        exit_label = next(blk.label for blk in fn.blocks if "exit" in blk.label)
        assert info.block_frequency(exit_label) == 1.0

"""Decision audit log: Algorithm 1 records on the Fig. 2 toy function."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.banks import BankedRegisterFile
from repro.ir import IRBuilder
from repro.obs.audit import (
    PATH_CONFLICT_FREE,
    PATH_NEIGHBOUR_COST,
    PATH_THRESHOLD_FALLBACK,
    AuditLog,
    AuditRecord,
)
from repro.prescount import PipelineConfig, run_pipeline

from .conftest import build_mac_kernel


@pytest.fixture(autouse=True)
def _restore_global_audit():
    yield
    obs.AUDIT.enable(False)
    obs.AUDIT.reset()


def build_fig2_kernel():
    """The paper's Fig. 2 snippet: RCG edges v0-v1, v1-v2, v3-v0."""
    b = IRBuilder("fig2")
    v0 = b.const(1.0)
    v1 = b.const(2.0)
    v2 = b.arith("fadd", v0, v1)
    v3 = b.arith("fmul", v1, v2)
    out = b.arith("fadd", v3, v0)
    b.ret(out)
    return b.finish()


class TestLogBasics:
    def test_disabled_records_nothing(self):
        log = AuditLog()
        log.record("f", "%v0", "rcg-color", PATH_CONFLICT_FREE, 1)
        assert len(log) == 0

    def test_record_and_query(self):
        log = AuditLog(enabled=True)
        log.record("f", "%v0", "rcg-color", PATH_CONFLICT_FREE, 1, cost=4.0)
        log.record("f", "%v1", "rcg-color", PATH_NEIGHBOUR_COST, 0)
        log.record("g", "%v0", "spill", weight=2.5)
        assert len(log.for_vreg("%v0")) == 2
        assert len(log.for_vreg("%v0", function="f")) == 1
        assert log.for_vreg("%v0")[0].detail["cost"] == 4.0

    def test_explain_unknown_vreg(self):
        log = AuditLog(enabled=True)
        assert "no recorded decisions" in log.explain("%v99")

    def test_snapshot_merge_roundtrip(self):
        worker = AuditLog(enabled=True)
        worker.record("f", "%v0", "rcg-color", PATH_CONFLICT_FREE, 1,
                      candidates=[{"bank": 1, "occupancy": 0}])
        snap = worker.snapshot()
        json.dumps(snap)
        parent = AuditLog(enabled=True)
        parent.merge(snap)
        parent.merge(None)
        assert len(parent) == 1
        assert parent.records[0].detail["candidates"][0]["bank"] == 1

    def test_render_formats_candidates(self):
        rec = AuditRecord(
            "f", "%v0", "rcg-color", PATH_CONFLICT_FREE, 1,
            {"cost": 4.0,
             "candidates": [{"bank": 1, "pressure_if_assigned": 2,
                             "occupancy": 1}]},
        )
        text = rec.render()
        assert "%v0 [f] rcg-color via conflict-free -> bank 1" in text
        assert "cost = 4.0" in text
        assert "bank 1: pressure_if_assigned=2, occupancy=1" in text


class TestAlgorithmOneAudit:
    def run_fig2(self):
        obs.AUDIT.enable()
        obs.AUDIT.reset()
        fn = build_fig2_kernel()
        rf = BankedRegisterFile(num_registers=8, num_banks=2)
        run_pipeline(fn, PipelineConfig(rf, "bpc"))
        return obs.AUDIT

    def test_every_rcg_node_gets_a_decision(self):
        audit = self.run_fig2()
        colored = [r for r in audit.records if r.step == "rcg-color"]
        # Fig. 2's RCG has (at least) the four conflicting registers.
        assert len(colored) >= 4
        for rec in colored:
            assert rec.function == "fig2"
            assert rec.path in (
                PATH_CONFLICT_FREE,
                PATH_THRESHOLD_FALLBACK,
                PATH_NEIGHBOUR_COST,
            )
            assert rec.chosen in (0, 1)
            assert rec.detail["cost"] >= 0.0
            assert rec.detail["degree"] >= 1
            assert isinstance(rec.detail["candidates"], list)
            assert rec.detail["candidates"][0]["bank"] == rec.chosen

    def test_candidates_carry_prioritizer_keys(self):
        audit = self.run_fig2()
        for rec in audit.records:
            if rec.step != "rcg-color":
                continue
            for cand in rec.detail["candidates"]:
                if rec.path == PATH_NEIGHBOUR_COST:
                    assert "neighbour_cost" in cand
                else:
                    assert "pressure_if_assigned" in cand
                    assert "occupancy" in cand

    def test_neighbor_banks_reflect_processing_order(self):
        audit = self.run_fig2()
        colored = [r for r in audit.records if r.step == "rcg-color"]
        # The first processed node has no colored neighbors yet; later
        # ones see earlier choices.
        assert colored[0].detail["neighbor_banks"] == {}
        assert any(r.detail["neighbor_banks"] for r in colored[1:])

    def test_free_registers_are_balanced_and_logged(self):
        audit = self.run_fig2()
        free = [r for r in audit.records if r.step == "free-balance"]
        # `out` is only read by ret -> not in the RCG -> free register.
        assert free, "expected at least one free-register placement"
        for rec in free:
            assert rec.chosen in (0, 1)
            assert rec.detail["candidates"][0]["bank"] == rec.chosen
            assert "pressure_if_assigned" in rec.detail["candidates"][0]

    def test_explain_renders_full_decision(self):
        audit = self.run_fig2()
        vreg = next(r.vreg for r in audit.records if r.step == "rcg-color")
        text = audit.explain(vreg)
        assert "rcg-color via" in text
        assert "candidates (best first):" in text
        assert "no recorded decisions" not in text

    def test_spill_decisions_are_logged(self):
        obs.AUDIT.enable()
        obs.AUDIT.reset()
        fn = build_mac_kernel(n_pairs=8)
        rf = BankedRegisterFile(num_registers=4, num_banks=2)
        result = run_pipeline(fn, PipelineConfig(rf, "bpc"))
        assert result.spill_count > 0
        spills = [r for r in obs.AUDIT.records if r.step == "spill"]
        # One record per spill decision; split children spill separately
        # but share their origin, which is what spill_count counts.
        assert len(spills) >= result.spill_count
        origins = {r.detail["origin"] for r in spills}
        assert len(origins) == result.spill_count
        for rec in spills:
            assert rec.detail["weight"] >= 0.0

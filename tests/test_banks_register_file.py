"""Tests for banked register file decoding (incl. Fig. 6)."""

import pytest

from repro.banks import BankedRegisterFile, BankSubgroupRegisterFile
from repro.ir.types import GP, PhysicalRegister


class TestBankedRegisterFile:
    def test_interleaved_decoding(self):
        rf = BankedRegisterFile(8, 2)
        assert [rf.bank_of(i) for i in range(8)] == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_four_banks(self):
        rf = BankedRegisterFile(8, 4)
        assert [rf.bank_of(i) for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_registers_per_bank(self):
        assert BankedRegisterFile(1024, 8).registers_per_bank == 128

    def test_registers_in_bank(self):
        rf = BankedRegisterFile(8, 2)
        assert [r.index for r in rf.registers_in_bank(1)] == [1, 3, 5, 7]

    def test_registers_complete_partition(self):
        rf = BankedRegisterFile(32, 4)
        union = {r.index for b in range(4) for r in rf.registers_in_bank(b)}
        assert union == set(range(32))

    def test_bank_of_accepts_physical_register(self):
        rf = BankedRegisterFile(8, 2)
        assert rf.bank_of(PhysicalRegister(3)) == 1

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            BankedRegisterFile(10, 4)

    def test_bad_bank_query(self):
        with pytest.raises(ValueError):
            BankedRegisterFile(8, 2).registers_in_bank(5)

    def test_flat_subgroup_api(self):
        rf = BankedRegisterFile(8, 2)
        assert rf.num_subgroups == 1
        assert rf.subgroup_of(5) == 0

    def test_custom_regclass(self):
        rf = BankedRegisterFile(4, 2, GP)
        assert all(r.regclass == GP for r in rf.registers())


class TestBankSubgroupRegisterFile:
    """Fig. 6: bank = (r mod 8) div 4, subgroup = r mod 4 for the 2x4."""

    def test_paper_decoding(self):
        rf = BankSubgroupRegisterFile(16, 2, 4)
        expected_banks = [0, 0, 0, 0, 1, 1, 1, 1] * 2
        expected_subgroups = [0, 1, 2, 3] * 4
        assert [rf.bank_of(i) for i in range(16)] == expected_banks
        assert [rf.subgroup_of(i) for i in range(16)] == expected_subgroups

    def test_fig7_register_numbers(self):
        """The paper's Fig. 7 example: vr1, vr5, vr9, vr10, vr13 decode to
        bank/subgroup 0/1, 1/1, 0/1, 0/2, 1/1."""
        rf = BankSubgroupRegisterFile(16, 2, 4)
        decoded = [
            (rf.bank_of(i), rf.subgroup_of(i)) for i in (1, 5, 9, 10, 13)
        ]
        assert decoded == [(0, 1), (1, 1), (0, 1), (0, 2), (1, 1)]

    def test_displacement_alias(self):
        rf = BankSubgroupRegisterFile(16, 2, 4)
        assert rf.displacement_of(10) == rf.subgroup_of(10)

    def test_registers_conforming(self):
        rf = BankSubgroupRegisterFile(16, 2, 4)
        conforming = rf.registers_conforming(1, 2)
        assert [r.index for r in conforming] == [6, 14]
        for r in conforming:
            assert rf.bank_of(r) == 1 and rf.subgroup_of(r) == 2

    def test_conforming_partition(self):
        rf = BankSubgroupRegisterFile(1024, 2, 4)
        total = sum(
            len(rf.registers_conforming(b, s))
            for b in range(2)
            for s in range(4)
        )
        assert total == 1024

    def test_period_divisibility_enforced(self):
        with pytest.raises(ValueError):
            BankSubgroupRegisterFile(12, 2, 4)  # period 8 does not divide 12

    def test_registers_per_bank(self):
        assert BankSubgroupRegisterFile(1024, 2, 4).registers_per_bank == 512

    def test_describe_mentions_layout(self):
        assert "2x4" in BankSubgroupRegisterFile(16, 2, 4).describe()

"""Observability end to end: zero overhead off, deterministic merged on.

The two ISSUE-level guarantees:

* with every layer disabled, pipeline outputs are byte-identical to a
  run that never heard of ``repro.obs``;
* with tracing on, a ``--jobs 4`` suite run merges worker spans into a
  tree structurally identical to the serial run's.
"""

from __future__ import annotations

import json

import pytest

from repro import cli, obs
from repro.banks import BankedRegisterFile
from repro.experiments.harness import run_suite
from repro.ir import print_function
from repro.prescount import PipelineConfig, run_pipeline
from repro.sim import analyze_static
from repro.sim.machine import platform_rv1
from repro.workloads.specfp import specfp_suite

from .conftest import build_mac_kernel


@pytest.fixture(autouse=True)
def _restore_globals():
    yield
    for layer in (obs.TRACER, obs.METRICS, obs.AUDIT, obs.PROFILE):
        layer.enable(False)
        layer.reset()


def allocate_and_render(method="bpc"):
    fn = build_mac_kernel(n_pairs=4)
    rf = BankedRegisterFile(num_registers=16, num_banks=2)
    result = run_pipeline(fn, PipelineConfig(rf, method))
    stats = analyze_static(result.function, rf)
    return (
        print_function(result.function),
        stats.bank_conflicts,
        result.spill_count,
        result.copies_inserted,
    )


class TestZeroOverheadDisabled:
    def test_disabled_layers_record_nothing(self):
        allocate_and_render()
        assert len(obs.TRACER) == 0
        assert not obs.METRICS.counters
        assert len(obs.AUDIT) == 0
        assert len(obs.PROFILE) == 0

    def test_outputs_identical_with_and_without_observability(self):
        baseline = [allocate_and_render(m) for m in ("non", "bcr", "bpc")]
        obs.TRACER.enable()
        obs.METRICS.enable()
        obs.AUDIT.enable()
        obs.PROFILE.enable()
        observed = [allocate_and_render(m) for m in ("non", "bcr", "bpc")]
        assert observed == baseline
        assert len(obs.TRACER) > 0  # it really was recording

    def test_snapshot_all_is_empty_when_disabled(self):
        assert not obs.any_enabled()
        snap = obs.snapshot_all()
        assert snap == {
            "trace": None, "metrics": None, "audit": None, "profile": None,
        }
        obs.merge_all(snap)  # no-op, no error


class TestFlagsPlumbing:
    def test_enabled_flags_roundtrip(self):
        obs.TRACER.enable()
        obs.AUDIT.enable()
        flags = obs.enabled_flags()
        assert flags == (True, False, True, False)
        obs.TRACER.enable(False)
        obs.AUDIT.enable(False)
        obs.apply_flags(flags)
        assert obs.enabled_flags() == flags
        obs.apply_flags(None)  # tolerated
        assert obs.enabled_flags() == flags

    def test_apply_flags_accepts_legacy_three_tuple(self):
        # Pre-profiler snapshots carried (trace, metrics, audit); a worker
        # receiving one must leave the profiler off rather than crash.
        obs.apply_flags((True, True, False))
        assert obs.enabled_flags() == (True, True, False, False)


@pytest.mark.parallel
class TestParallelDeterminism:
    def _suite_run(self, jobs):
        obs.reset_all()
        suite = specfp_suite(0.02, seed=0)
        rf = platform_rv1().file_for(4)
        run_suite(suite, rf, "bpc", file_key="rv1:4", jobs=jobs)
        return suite

    def test_merged_span_tree_matches_serial(self):
        obs.TRACER.enable()
        suite = self._suite_run(jobs=1)
        serial_tree = obs.TRACER.span_tree()
        self._suite_run(jobs=4)
        parallel_tree = obs.TRACER.span_tree()
        assert parallel_tree == serial_tree
        # One track per program, named, in suite order.
        assert list(obs.TRACER.track_names.values()) == [
            p.name for p in suite.programs
        ]
        # The tree is the phase structure: program -> function -> pipeline.
        assert parallel_tree[0]["category"] == "program"
        fn = parallel_tree[0]["children"][0]
        assert fn["category"] == "function"
        assert fn["children"][0]["name"] == "pipeline"

    def test_merged_chrome_trace_is_valid(self, tmp_path):
        obs.TRACER.enable()
        self._suite_run(jobs=4)
        path = tmp_path / "trace.json"
        obs.TRACER.write_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "X"}

    def test_structural_metrics_match_serial(self):
        obs.METRICS.enable()
        self._suite_run(jobs=1)
        serial = obs.METRICS.to_json()
        self._suite_run(jobs=4)
        parallel = obs.METRICS.to_json()
        assert parallel["counters"] == serial["counters"]
        assert parallel["gauges"].keys() == serial["gauges"].keys()
        for name, g in parallel["gauges"].items():
            assert g["samples"] == serial["gauges"][name]["samples"]
        # Histogram counts are deterministic; wall-clock totals are not.
        for name, h in parallel["histograms"].items():
            assert h["count"] == serial["histograms"][name]["count"]

    def test_audit_merges_across_the_pool(self):
        obs.AUDIT.enable()
        self._suite_run(jobs=1)
        serial = obs.AUDIT.to_json()
        self._suite_run(jobs=4)
        parallel = obs.AUDIT.to_json()
        assert parallel == serial


class TestCliFlags:
    def test_trace_metrics_explain_write_outputs(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        code = cli.main([
            "--trace", str(trace),
            "--metrics", str(metrics),
            "--explain", "v3",
            "allocate", "--method", "bpc",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "wrote" in err
        assert "%v3" in err  # the explain rendering
        tdoc = json.loads(trace.read_text())
        assert any(e.get("cat") == "pass" for e in tdoc["traceEvents"])
        mdoc = json.loads(metrics.read_text())
        assert "prescount.rcg_nodes" in mdoc["counters"]

    def test_metrics_dash_renders_table(self, capsys):
        code = cli.main(["--metrics", "-", "allocate", "--method", "bpc"])
        assert code == 0
        assert "metrics" in capsys.readouterr().err

    def test_explain_normalizes_vreg_spellings(self):
        assert cli._normalize_vreg("5") == "%v5"
        assert cli._normalize_vreg("v5") == "%v5"
        assert cli._normalize_vreg("%v5") == "%v5"

    def test_flags_off_leaves_layers_disabled(self, capsys):
        code = cli.main(["allocate", "--method", "non"])
        assert code == 0
        assert not obs.any_enabled()
        assert len(obs.TRACER) == 0

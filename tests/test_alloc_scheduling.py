"""Tests for the pressure-aware pre-allocation list scheduler."""

from repro.alloc import schedule_function
from repro.analysis import LiveIntervals
from repro.ir import IRBuilder, OpKind, verify_function
from repro.sim import observably_equivalent
from tests.conftest import build_mac_kernel


class TestDependencesRespected:
    def test_true_dependency_order_kept(self):
        b = IRBuilder("f")
        x = b.const(1.0)
        y = b.arith("fneg", x)
        z = b.arith("fabs", y)
        b.ret(z)
        fn = b.finish()
        schedule_function(fn)
        order = [i.opcode for i in fn.entry.instructions]
        assert order.index("fneg") < order.index("fabs")
        verify_function(fn)

    def test_memory_order_kept(self):
        b = IRBuilder("f")
        x = b.const(1.0)
        b.store(x)
        y = b.load()
        b.store(y)
        b.ret()
        fn = b.finish()
        schedule_function(fn)
        kinds = [i.kind for i in fn.entry.instructions]
        store_positions = [k for k in kinds if k in (OpKind.STORE, OpKind.LOAD)]
        assert store_positions == [OpKind.STORE, OpKind.LOAD, OpKind.STORE]

    def test_terminator_stays_last(self):
        fn = build_mac_kernel()
        schedule_function(fn)
        for block in fn.blocks:
            for i, instr in enumerate(block.instructions):
                if instr.is_terminator:
                    assert i == len(block.instructions) - 1

    def test_anti_dependency_respected(self):
        b = IRBuilder("f")
        x = b.const(1.0)
        y = b.arith("fneg", x)   # reads x
        b.loadimm(x, 2.0)        # redefines x: must stay after the read
        z = b.arith("fadd", x, y)
        b.ret(z)
        fn = b.finish()
        reference = fn.clone()
        schedule_function(fn)
        assert observably_equivalent(reference, fn)

    def test_semantics_preserved_on_kernel(self):
        fn = build_mac_kernel()
        reference = fn.clone()
        schedule_function(fn)
        verify_function(fn)
        assert observably_equivalent(reference, fn)


class TestPressureHeuristic:
    def test_killing_ops_scheduled_eagerly(self):
        """A value's last use should move toward its def, shortening the
        live range (or at least not lengthening pressure)."""
        b = IRBuilder("f")
        values = [b.const(float(i)) for i in range(6)]
        # Consume them pairwise, but interleaved with fresh productions.
        acc = b.const(0.0)
        t1 = b.arith("fadd", values[0], values[1])
        t2 = b.arith("fadd", values[2], values[3])
        t3 = b.arith("fadd", values[4], values[5])
        b.arith_into(acc, "fadd", acc, t1)
        b.arith_into(acc, "fadd", acc, t2)
        b.arith_into(acc, "fadd", acc, t3)
        b.ret(acc)
        fn = b.finish()
        before = LiveIntervals.build(fn).max_pressure()
        schedule_function(fn)
        after = LiveIntervals.build(fn).max_pressure()
        assert after <= before

    def test_all_instructions_kept(self):
        fn = build_mac_kernel()
        count = fn.instruction_count()
        result = schedule_function(fn)
        assert fn.instruction_count() == count
        assert result.blocks_scheduled == len(fn.blocks)

    def test_stable_on_second_run(self):
        fn = build_mac_kernel()
        schedule_function(fn)
        snapshot = [repr(i) for __, i in fn.instructions()]
        schedule_function(fn)
        assert [repr(i) for __, i in fn.instructions()] == snapshot

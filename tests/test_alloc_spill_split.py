"""Tests for spill decomposition and live-range (region) splitting."""

import math

import pytest

from repro.alloc.spiller import TINY_WEIGHT, SpillPlan, spill_interval
from repro.alloc.splitter import try_region_split
from repro.analysis import LiveIntervals, SlotIndexes
from repro.ir import IRBuilder, LoopInfo
from tests.conftest import build_mac_kernel


class TestSpillDecomposition:
    def setup_method(self):
        self.fn = build_mac_kernel(n_pairs=3)
        self.slots = SlotIndexes.build(self.fn)
        self.live = LiveIntervals.build(self.fn, slots=self.slots)

    def _spill(self, vreg):
        plan = SpillPlan()
        tinies = spill_interval(self.fn, self.slots, self.live.of(vreg), plan)
        return plan, tinies

    def test_one_tiny_per_touching_instruction(self):
        acc = self.fn.virtual_registers()[-1]
        interval = self.live.of(acc)
        touching = {s for s in interval.use_slots} | {
            w - 1 for w in interval.def_slots
        }
        plan, tinies = self._spill(acc)
        assert len(tinies) == len(touching)

    def test_tiny_intervals_have_infinite_weight(self):
        acc = self.fn.virtual_registers()[-1]
        __, tinies = self._spill(acc)
        assert all(math.isinf(t.weight) for t in tinies)
        assert tinies[0].weight == TINY_WEIGHT

    def test_reload_per_use_store_per_def(self):
        acc = self.fn.virtual_registers()[-1]
        interval = self.live.of(acc)
        plan, __ = self._spill(acc)
        reloads = [a for a in plan.actions if a.kind == "reload"]
        stores = [a for a in plan.actions if a.kind == "store"]
        # One reload per instruction reading acc; one store per writer.
        reading = {s for s in interval.use_slots}
        writing = {w - 1 for w in interval.def_slots}
        assert len(reloads) == len(reading)
        assert len(stores) == len(writing)

    def test_rewrites_target_touching_instructions(self):
        acc = self.fn.virtual_registers()[-1]
        plan, __ = self._spill(acc)
        for instr_id, mapping in plan.rewrites.items():
            assert acc in mapping

    def test_slot_reused_per_vreg(self):
        acc = self.fn.virtual_registers()[-1]
        plan, __ = self._spill(acc)
        slots = {a.slot_id for a in plan.actions}
        assert len(slots) == 1

    def test_tiny_segments_bracket_instruction(self):
        acc = self.fn.virtual_registers()[-1]
        interval = self.live.of(acc)
        __, tinies = self._spill(acc)
        for tiny in tinies:
            assert tiny.span <= 3  # at most [slot-1, slot+2)


class TestRegionSplit:
    def make_split_candidate(self):
        """A value used before, inside, and after a hot loop."""
        b = IRBuilder("f")
        x = b.const(1.0)
        pre = b.arith("fneg", x)
        acc = b.const(0.0)
        with b.loop(trip_count=100):
            b.arith_into(acc, "fadd", acc, x)
        post = b.arith("fadd", x, pre)
        b.ret(post)
        return b.finish(), x

    def test_split_produces_two_children(self):
        fn, x = self.make_split_candidate()
        slots = SlotIndexes.build(fn)
        live = LiveIntervals.build(fn, slots=slots)
        loops = LoopInfo.build(fn)
        result = try_region_split(fn, slots, loops, live.of(x))
        assert result is not None
        assert len(result.children) == 2

    def test_children_partition_uses(self):
        fn, x = self.make_split_candidate()
        slots = SlotIndexes.build(fn)
        live = LiveIntervals.build(fn, slots=slots)
        loops = LoopInfo.build(fn)
        result = try_region_split(fn, slots, loops, live.of(x))
        total_uses = sum(len(c.use_slots) for c in result.children)
        assert total_uses == len(live.of(x).use_slots)

    def test_boundary_copies_emitted(self):
        fn, x = self.make_split_candidate()
        slots = SlotIndexes.build(fn)
        live = LiveIntervals.build(fn, slots=slots)
        loops = LoopInfo.build(fn)
        result = try_region_split(fn, slots, loops, live.of(x))
        # x is live into the loop: at least the entry copy exists.
        assert len(result.copies) >= 1
        positions = {(c.block_label, c.position) for c in result.copies}
        assert any(pos == "end" for __, pos in positions)

    def test_no_split_without_loop(self):
        b = IRBuilder("f")
        x = b.const(1.0)
        t = b.arith("fneg", x)
        b.ret(t)
        fn = b.finish()
        slots = SlotIndexes.build(fn)
        live = LiveIntervals.build(fn, slots=slots)
        loops = LoopInfo.build(fn)
        assert try_region_split(fn, slots, loops, live.of(x)) is None

    def test_no_split_when_interval_entirely_inside_loop(self):
        b = IRBuilder("f")
        acc = b.const(0.0)
        with b.loop(trip_count=10):
            t = b.arith("fneg", acc)  # t lives only inside the loop
            b.arith_into(acc, "fadd", acc, t)
        b.ret(acc)
        fn = b.finish()
        slots = SlotIndexes.build(fn)
        live = LiveIntervals.build(fn, slots=slots)
        loops = LoopInfo.build(fn)
        t_reg = next(r for r in fn.virtual_registers() if len(live.of(r).use_slots) == 1
                     and len(live.of(r).def_slots) == 1 and live.of(r).span < 6)
        assert try_region_split(fn, slots, loops, live.of(t_reg)) is None

    def test_children_weights_ordered(self):
        fn, x = self.make_split_candidate()
        slots = SlotIndexes.build(fn)
        live = LiveIntervals.build(fn, slots=slots)
        loops = LoopInfo.build(fn)
        interval = live.of(x)
        interval.weight = 10.0
        result = try_region_split(fn, slots, loops, interval)
        hot, cold = result.children
        assert hot.weight > interval.weight > cold.weight

"""Incremental reallocation re-runs only the changed functions.

The proof is observable twice over: the
:class:`~repro.service.incremental.IncrementalAllocator` counters report
the reuse/execute split, and the global pass-run instrumentation
(:data:`repro.passes.instrument.GLOBAL`) shows the pipeline passes ran
exactly once per *changed* function — unchanged fragments never touch
the pass manager, and within an executed function the shared analysis
cache keeps hitting (preserved analyses are reused, not recomputed).
"""

from __future__ import annotations

import pytest

from repro.ir import IRBuilder, print_module
from repro.ir.function import Module
from repro.passes.instrument import GLOBAL
from repro.service import (
    AllocationService,
    IncrementalAllocator,
    ServiceConfig,
)

SPEC = {"registers": 16, "banks": 2}

#: Passes the bpc pipeline runs per executed function.
BPC_PASSES = ("coalescing", "scheduling", "bank-assignment", "allocation")


@pytest.fixture(autouse=True)
def _instrumented():
    GLOBAL.reset()
    GLOBAL.enable()
    yield
    GLOBAL.enable(False)
    GLOBAL.reset()


def _kernel(name: str, n: int, trip_count: int = 8):
    b = IRBuilder(name)
    xs = [b.const(float(i + 1)) for i in range(n)]
    acc = b.const(0.0)
    with b.loop(trip_count=trip_count):
        for i in range(len(xs) - 1):
            product = b.arith("fmul", xs[i], xs[i + 1])
            b.arith_into(acc, "fadd", acc, product)
    b.ret(acc)
    return b.finish()


def _module(trips: list[int]) -> str:
    module = Module("inc")
    for i, trip in enumerate(trips):
        module.add(_kernel(f"k{i}", 3 + i % 2, trip_count=trip))
    return print_module(module)


def _pass_runs() -> dict[str, int]:
    return {name: stats.runs for name, stats in GLOBAL.passes.items()}


class TestPassRunCounters:
    def test_only_changed_functions_reexecute(self):
        allocator = IncrementalAllocator()
        allocator.allocate(_module([8, 8, 8, 8]), SPEC, "bpc")
        first = _pass_runs()
        for name in BPC_PASSES:
            assert first[name] == 4, f"{name} should run once per function"

        # One function changes: every pipeline pass runs exactly once
        # more — the three preserved fragments never reach a pass.
        allocator.allocate(_module([24, 8, 8, 8]), SPEC, "bpc")
        second = _pass_runs()
        for name in BPC_PASSES:
            assert second[name] == first[name] + 1, (
                f"{name} re-ran for an unchanged function"
            )
        assert allocator.counters["functions_executed"] == 5
        assert allocator.counters["functions_reused"] == 3

    def test_unchanged_rebuild_runs_no_passes(self):
        allocator = IncrementalAllocator()
        text = _module([8, 8, 8])
        allocator.allocate(text, SPEC, "bpc")
        before = _pass_runs()
        allocator.allocate(text, SPEC, "bpc")
        assert _pass_runs() == before
        assert allocator.counters["functions_reused"] == 3

    def test_preserved_analyses_reused_inside_executed_function(self):
        """The executed function's passes share one analysis cache: the
        scheduler's post-reorder intervals are cache *hits* for the bank
        assigner and allocator, not recomputations."""
        IncrementalAllocator().allocate(_module([8, 8]), SPEC, "bpc")
        intervals = GLOBAL.analyses.get("LiveIntervals")
        assert intervals is not None
        assert intervals.hits >= 2, (
            "live intervals were recomputed instead of reused"
        )


class TestServiceIncrementalCounters:
    def test_service_reports_reuse_split(self):
        service = AllocationService(ServiceConfig())
        job = service.submit(
            {"ir": _module([8, 8, 8]), "file": SPEC, "method": "bpc"}
        )
        service.process_once()
        assert job.status == "done", job.error
        job2 = service.submit(
            {"ir": _module([8, 8, 24]), "file": SPEC, "method": "bpc"}
        )
        service.process_once()
        assert job2.status == "done", job2.error
        assert service.incremental == {
            "modules": 2,
            "functions_total": 6,
            "functions_reused": 2,
            "functions_executed": 4,
        }
        assert service.stats()["incremental"]["functions_reused"] == 2

    def test_function_requests_warm_the_module_path(self):
        """A plain function request caches a fragment the module path
        reuses — function artifacts *are* fragments."""
        from repro.ir import print_function

        service = AllocationService(ServiceConfig())
        fn_job = service.submit(
            {
                "ir": print_function(_kernel("k0", 3, trip_count=8)),
                "file": SPEC,
                "method": "bpc",
            }
        )
        service.process_once()
        assert fn_job.status == "done", fn_job.error
        module_job = service.submit(
            {"ir": _module([8, 8]), "file": SPEC, "method": "bpc"}
        )
        service.process_once()
        assert module_job.status == "done", module_job.error
        assert service.incremental["functions_reused"] == 1
        assert service.incremental["functions_executed"] == 1

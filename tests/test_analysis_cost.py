"""Tests for Eq. 1 / Eq. 2 conflict cost estimation."""

import pytest

from repro.analysis import ConflictCostModel, block_frequencies
from repro.ir import IRBuilder
from tests.conftest import build_nested_loops


def kernel_with_known_costs():
    """acc = acc + x at depth 0; t = x*y at depth 1 (trip 8); u = t*acc at
    depth 2 (trip 8*4=32)."""
    b = IRBuilder("k")
    x, y = b.const(1.0), b.const(2.0)
    acc = b.const(0.0)
    b.arith_into(acc, "fadd", acc, x)          # freq 1
    with b.loop(trip_count=8):
        t = b.arith("fmul", x, y)              # freq 8
        with b.loop(trip_count=4):
            b.arith_into(acc, "fmul", t, acc)  # freq 32
    b.ret(acc)
    return b.finish(), x, y, acc


class TestCostI:
    def test_instruction_cost_is_trip_product(self):
        fn, *_ = kernel_with_known_costs()
        cm = ConflictCostModel.build(fn)
        costs = sorted(
            cm.cost_of_instruction(i)
            for __, i in fn.instructions()
            if i.is_conflict_relevant()
        )
        assert costs == [1.0, 8.0, 32.0]

    def test_straight_line_cost_one(self):
        b = IRBuilder("f")
        x, y = b.const(1.0), b.const(2.0)
        i = b.arith("fadd", x, y)
        b.ret(i)
        fn = b.finish()
        cm = ConflictCostModel.build(fn)
        relevant = next(i for __, i in fn.instructions() if i.is_conflict_relevant())
        assert cm.cost_of_instruction(relevant) == 1.0


class TestCostR:
    def test_register_cost_sums_accesses(self):
        fn, x, y, acc = kernel_with_known_costs()
        cm = ConflictCostModel.build(fn)
        # x is read by the depth-0 fadd (1) and the depth-1 fmul (8).
        assert cm.cost_of_register(x) == pytest.approx(9.0)
        # y only by the depth-1 fmul.
        assert cm.cost_of_register(y) == pytest.approx(8.0)
        # acc by the depth-0 fadd (1) and depth-2 fmul (32).
        assert cm.cost_of_register(acc) == pytest.approx(33.0)

    def test_irrelevant_register_has_zero_cost(self):
        b = IRBuilder("f")
        x = b.const(1.0)
        t = b.arith("fneg", x)  # unary: not conflict-relevant
        b.ret(t)
        fn = b.finish()
        cm = ConflictCostModel.build(fn)
        assert cm.cost_of_register(x) == 0.0

    def test_all_access_mode(self):
        b = IRBuilder("f")
        x = b.const(1.0)
        t = b.arith("fneg", x)
        b.ret(t)
        fn = b.finish()
        cm = ConflictCostModel.build(fn, conflict_relevant_only=False)
        assert cm.cost_of_register(x) > 0.0


class TestSpillWeight:
    def test_hot_register_weighs_more(self):
        fn, x, y, acc = kernel_with_known_costs()
        cm = ConflictCostModel.build(fn)
        assert cm.spill_weight(acc, 10) > cm.spill_weight(y, 10)

    def test_longer_interval_weighs_less(self):
        fn, x, *_ = kernel_with_known_costs()
        cm = ConflictCostModel.build(fn)
        assert cm.spill_weight(x, 100) < cm.spill_weight(x, 10)

    def test_access_cost_counts_defs(self):
        fn, x, y, acc = kernel_with_known_costs()
        cm = ConflictCostModel.build(fn)
        # acc: def (li) + fadd def&use + 32x fmul def&use.
        assert cm.access_cost(acc) > cm.cost_of_register(acc)


class TestBlockFrequencies:
    def test_matches_loop_info(self):
        fn = build_nested_loops((3, 5))
        freqs = block_frequencies(fn)
        assert freqs["entry"] == 1.0
        assert max(freqs.values()) == pytest.approx(15.0)


class TestTotalPotentialCost:
    """The scalar fast path must agree with the full model exactly."""

    def test_matches_full_model_on_known_kernel(self):
        from repro.analysis.cost import total_potential_cost

        fn, *_ = kernel_with_known_costs()
        assert total_potential_cost(fn) == ConflictCostModel.build(fn).total_cost()

    def test_matches_full_model_on_nested_loops(self):
        from repro.analysis.cost import total_potential_cost

        fn = build_nested_loops((3, 5))
        assert total_potential_cost(fn) == ConflictCostModel.build(fn).total_cost()

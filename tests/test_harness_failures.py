"""Harness robustness: worker crashes no longer abort whole suites.

A crashed worker process used to surface as ``BrokenProcessPool`` and
kill the entire run.  :func:`repro.experiments.harness.run_tasks` now
captures per-payload failures, retries once on a fresh pool, and
:func:`run_suite` reports partial results through
:class:`PartialSuiteError` instead of dying.

The crashing/flaky payloads use the filesystem as cross-process state so
first attempts fail and retries succeed deterministically.
"""

from __future__ import annotations

import os

import pytest

from repro.banks import BankedRegisterFile
from repro.experiments import PartialSuiteError, run_suite, run_tasks
from repro.workloads.specfp import Suite, SuiteProgram

from .conftest import build_mac_kernel

# ----------------------------------------------------------------------
# Module-level payload functions/classes: picklable for the pool.
# ----------------------------------------------------------------------


def _double(payload):
    return payload * 2


def _raise_on_odd(payload):
    if payload % 2:
        raise ValueError(f"odd payload {payload}")
    return payload


def _crash_on_marker(payload):
    value, marker = payload
    if value == marker:
        os._exit(13)  # hard crash: no exception, no cleanup
    return value


def _flaky_until_sentinel(payload):
    value, sentinel = payload
    if not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8"):
            pass
        raise RuntimeError("first attempt fails")
    return value


class _Module:
    """Minimal stand-in for ``ir.Module`` with a functions list."""

    def __init__(self, functions):
        self.functions = functions


class _ExplodingModule:
    @property
    def functions(self):
        raise RuntimeError("corrupt program")


class _ExitingModule:
    @property
    def functions(self):
        os._exit(13)


def _program(name, module=None):
    return SuiteProgram(
        name=name, category="kernel", module=module or _Module([build_mac_kernel()])
    )


# ----------------------------------------------------------------------
# run_tasks
# ----------------------------------------------------------------------
def test_run_tasks_happy_path_preserves_order():
    results, failures = run_tasks(_double, [3, 1, 2], jobs=2)
    assert results == [6, 2, 4]
    assert failures == []


def test_run_tasks_captures_per_payload_exceptions():
    results, failures = run_tasks(
        _raise_on_odd, [0, 1, 2, 3], jobs=2, retries=1, labels=list("abcd")
    )
    assert results == [0, None, 2, None]
    assert [f.index for f in failures] == [1, 3]
    assert failures[0].label == "b"
    assert failures[0].attempts == 2  # initial + one retry
    assert "odd payload 1" in failures[0].error


def test_run_tasks_survives_hard_worker_crash():
    payloads = [(i, 2) for i in range(4)]
    results, failures = run_tasks(
        _crash_on_marker, payloads, jobs=2, retries=1
    )
    # The crasher fails after retries; every innocent payload completes.
    assert [f.index for f in failures] == [2]
    assert results == [0, 1, None, 3]


def test_run_tasks_retry_recovers_flaky_payload(tmp_path):
    sentinel = str(tmp_path / "attempted")
    results, failures = run_tasks(
        _flaky_until_sentinel, [(7, sentinel)], jobs=2, retries=1
    )
    assert failures == []
    assert results == [7]


def test_run_tasks_no_retries_reports_first_failure():
    _, failures = run_tasks(_raise_on_odd, [1], jobs=2, retries=0)
    assert failures[0].attempts == 1


# ----------------------------------------------------------------------
# run_suite
# ----------------------------------------------------------------------
def _suite(programs):
    return Suite(name="robust", programs=programs)


def test_run_suite_partial_results_on_persistent_failure():
    suite = _suite(
        [
            _program("ok-one"),
            _program("broken", _ExplodingModule()),
            _program("ok-two"),
        ]
    )
    register_file = BankedRegisterFile(32, 2)
    with pytest.raises(PartialSuiteError) as excinfo:
        run_suite(suite, register_file, "bpc", jobs=2)
    err = excinfo.value
    assert [r.program for r in err.results] == ["ok-one", "ok-two"]
    assert [f.label for f in err.failures] == ["broken"]
    assert err.failures[0].attempts == 2
    assert "corrupt program" in err.failures[0].error
    assert "broken" in err.render()


def test_run_suite_survives_worker_process_death():
    suite = _suite(
        [
            _program("ok-one"),
            _program("fatal", _ExitingModule()),
            _program("ok-two"),
        ]
    )
    register_file = BankedRegisterFile(32, 2)
    with pytest.raises(PartialSuiteError) as excinfo:
        run_suite(suite, register_file, "non", jobs=2)
    err = excinfo.value
    # Innocent neighbours survive (possibly via the retry round).
    assert [r.program for r in err.results] == ["ok-one", "ok-two"]
    assert [f.label for f in err.failures] == ["fatal"]


def test_run_suite_partial_matches_serial_values():
    suite = _suite(
        [_program("ok-one"), _program("broken", _ExplodingModule())]
    )
    register_file = BankedRegisterFile(32, 2)
    with pytest.raises(PartialSuiteError) as excinfo:
        run_suite(suite, register_file, "bpc", jobs=2)
    partial = excinfo.value.results[0]
    serial = run_suite(
        _suite([_program("ok-one")]), register_file, "bpc", jobs=1
    )[0]
    assert partial == serial


def test_cli_exits_nonzero_on_partial_suite(monkeypatch, capsys):
    from repro import cli
    from repro.experiments.harness import TaskFailure

    def boom(args):
        raise PartialSuiteError(
            [], [TaskFailure(0, "prog-x", "RuntimeError: boom", 2)]
        )

    # build_parser() binds handlers from module globals at call time, so
    # patching the global reroutes `repro all` through the failure path.
    monkeypatch.setattr("repro.cli._cmd_all", boom)
    rc = cli.main(["all"])
    assert rc == 1
    err = capsys.readouterr().err
    assert "suite run incomplete" in err
    assert "prog-x" in err

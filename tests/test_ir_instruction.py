"""Unit tests for instruction construction and classification."""

from repro.ir import instruction as ins
from repro.ir.instruction import BASE_LATENCY, Instruction, OpKind
from repro.ir.types import FP, GP, Immediate, PhysicalRegister, VirtualRegister

V = VirtualRegister
P = PhysicalRegister


class TestConstruction:
    def test_arith(self):
        i = ins.arith("fadd", V(0), V(1), V(2))
        assert i.kind is OpKind.ARITH
        assert i.defs == (V(0),)
        assert i.uses == (V(1), V(2))

    def test_copy(self):
        i = ins.copy(V(0), V(1))
        assert i.is_copy
        assert i.kind is OpKind.COPY

    def test_loadimm_wraps_value(self):
        i = ins.loadimm(V(0), 2.5)
        assert i.uses == (Immediate(2.5),)

    def test_branch_carries_target_and_prob(self):
        i = ins.branch("exit", taken_prob=0.3)
        assert i.attrs["target"] == "exit"
        assert i.attrs["taken_prob"] == 0.3
        assert i.is_terminator

    def test_jump_and_ret_are_terminators(self):
        assert ins.jump("bb1").is_terminator
        assert ins.ret().is_terminator
        assert not ins.nop().is_terminator

    def test_spill_attrs(self):
        i = ins.load(V(0), spill_slot=3, spill=True)
        assert i.attrs["spill_slot"] == 3


class TestOperandAccess:
    def test_reg_uses_filters_immediates(self):
        i = ins.arith("fadd", V(0), V(1), Immediate(2.0))
        assert i.reg_uses() == (V(1),)

    def test_regs_iterates_uses_then_defs(self):
        i = ins.arith("fadd", V(0), V(1), V(2))
        assert list(i.regs()) == [V(1), V(2), V(0)]

    def test_vreg_uses_excludes_pregs(self):
        i = ins.arith("fadd", V(0), P(1), V(2))
        assert i.vreg_uses() == (V(2),)


class TestBankableReads:
    def test_dedups_repeated_operand(self):
        i = ins.arith("fmul", V(0), V(1), V(1))
        assert i.bankable_reads() == (V(1),)

    def test_excludes_unbankable_class(self):
        gp = VirtualRegister(5, GP)
        i = ins.arith("fadd", V(0), V(1), gp)
        assert i.bankable_reads() == (V(1),)

    def test_preserves_operand_order(self):
        i = ins.arith("fmadd", V(0), V(3), V(1), V(2))
        assert i.bankable_reads() == (V(3), V(1), V(2))

    def test_filters_by_class_argument(self):
        i = ins.arith("fadd", V(0), V(1), V(2))
        assert i.bankable_reads(GP) == ()


class TestConflictRelevance:
    def test_two_distinct_reads_is_relevant(self):
        assert ins.arith("fadd", V(0), V(1), V(2)).is_conflict_relevant()

    def test_single_read_is_not(self):
        assert not ins.arith("fneg", V(0), V(1)).is_conflict_relevant()

    def test_repeated_operand_is_not(self):
        assert not ins.arith("fmul", V(0), V(1), V(1)).is_conflict_relevant()

    def test_copy_is_never_relevant(self):
        assert not ins.copy(V(0), V(1)).is_conflict_relevant()

    def test_store_is_never_relevant(self):
        assert not ins.store(V(1)).is_conflict_relevant()

    def test_ternary_is_relevant(self):
        assert ins.arith("fmadd", V(0), V(1), V(2), V(3)).is_conflict_relevant()


class TestRewrite:
    def test_rewrites_uses_and_defs(self):
        i = ins.arith("fadd", V(0), V(1), V(2))
        out = i.rewrite({V(0): P(0), V(1): P(1)})
        assert out.defs == (P(0),)
        assert out.uses == (P(1), V(2))

    def test_original_untouched(self):
        i = ins.arith("fadd", V(0), V(1), V(2))
        i.rewrite({V(0): P(0)})
        assert i.defs == (V(0),)

    def test_immediates_pass_through(self):
        i = ins.loadimm(V(0), 1.0)
        out = i.rewrite({V(0): P(9)})
        assert out.uses == (Immediate(1.0),)


class TestLatency:
    def test_default_latency_by_kind(self):
        assert ins.load(V(0)).latency == BASE_LATENCY[OpKind.LOAD]
        assert ins.arith("fadd", V(0), V(1), V(2)).latency == 1

    def test_latency_override(self):
        i = ins.arith("fdiv", V(0), V(1), V(2), latency=8)
        assert i.latency == 8


class TestRepr:
    def test_def_and_uses(self):
        text = repr(ins.arith("fadd", V(0), V(1), V(2)))
        assert "fadd" in text and "%v0" in text and "=" in text

    def test_no_defs(self):
        assert repr(ins.ret()) == "ret"

"""Allocation output must not depend on PYTHONHASHSEED.

The DSA idft kernel historically drifted run-to-run: SDG components are
sets of :class:`VirtualRegister`, and the splitting pass picked
equal-fanout sharing centers in set-iteration (= hash) order, so the
inserted ``sdg_copy`` numbering — and with it bundling and cycle counts —
varied with the interpreter's hash seed.  ``sharing_centers`` now pins
both its iteration and its sort tie-break to register ids; this test
locks that in by running the full bpc pipeline on idft under two
different explicit hash seeds and asserting bit-identical output.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")

SCRIPT = """
import sys
from repro.workloads.dsa_ops import idft_kernel
from repro.prescount.pipeline import PipelineConfig, run_pipeline
from repro.sim.machine import platform_dsa
from repro.sim.dsa import DsaMachine
from repro.sim.static_stats import analyze_static
from repro.ir.printer import print_function

rf = platform_dsa().file_for(0)
pipe = run_pipeline(idft_kernel(points=8), PipelineConfig(rf, "bpc"))
static = analyze_static(pipe.function, rf)
report = DsaMachine(rf).run(pipe.function)
print("conflicts", static.conflicts)
print("copies", pipe.copies_inserted)
print("cycles", round(report.cycles, 6))
print(print_function(pipe.function))
"""


def _run_under_hashseed(seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_idft_output_identical_across_hash_seeds():
    out_a = _run_under_hashseed("0")
    out_b = _run_under_hashseed("1")
    assert out_a == out_b
    # Sanity: the run did real work (idft under bpc inserts split copies).
    assert "copies" in out_a and "func @idft" in out_a

"""Tests for allocator foundations (results, physreg state, policies)."""

from repro.alloc.base import AllocationResult, NaturalOrderPolicy, PhysRegState
from repro.analysis import LiveInterval
from repro.banks import BankedRegisterFile
from repro.ir import Function
from repro.ir.types import PhysicalRegister, VirtualRegister

V = VirtualRegister
P = PhysicalRegister


def interval(vid, *segments):
    iv = LiveInterval(V(vid))
    for start, end in segments:
        iv.add_segment(start, end)
    return iv


class TestPhysRegState:
    def test_free_when_empty(self):
        state = PhysRegState(P(0))
        assert state.is_free_for(interval(0, (0, 10)))

    def test_overlap_detected(self):
        state = PhysRegState(P(0))
        state.add(interval(0, (0, 10)))
        assert not state.is_free_for(interval(1, (5, 6)))
        assert state.is_free_for(interval(2, (10, 12)))

    def test_conflicts_with_lists_overlappers(self):
        state = PhysRegState(P(0))
        a = interval(0, (0, 4))
        b = interval(1, (8, 12))
        state.add(a)
        state.add(b)
        probe = interval(2, (3, 9))
        assert state.conflicts_with(probe) == [a, b]

    def test_remove(self):
        state = PhysRegState(P(0))
        a = interval(0, (0, 4))
        state.add(a)
        state.remove(a)
        assert state.is_free_for(interval(1, (1, 2)))

    def test_hole_is_free(self):
        state = PhysRegState(P(0))
        state.add(interval(0, (0, 2), (10, 12)))
        assert state.is_free_for(interval(1, (4, 8)))


class TestAllocationResult:
    def test_spill_count_counts_ranges(self):
        result = AllocationResult(Function("f"))
        result.spilled.update({V(1), V(2)})
        assert result.spill_count == 2

    def test_defaults(self):
        result = AllocationResult(Function("f"))
        assert result.copies_inserted == 0
        assert result.evictions == 0
        assert result.stats == {}


class TestNaturalOrderPolicy:
    def test_orders_by_index(self):
        rf = BankedRegisterFile(8, 2)
        policy = NaturalOrderPolicy()

        class FakeAllocator:
            register_file = rf

        policy.setup(FakeAllocator())
        order = policy.order(V(0), interval(0, (0, 2)))
        assert [r.index for r in order] == list(range(8))

    def test_index_order_alternates_banks(self):
        """The property that makes 'non' conflict-prone on interleaved
        files: consecutive allocations land in different banks, so operand
        banks are effectively arbitrary."""
        rf = BankedRegisterFile(8, 2)
        policy = NaturalOrderPolicy()

        class FakeAllocator:
            register_file = rf

        policy.setup(FakeAllocator())
        order = list(policy.order(V(0), interval(0, (0, 2))))
        banks = [rf.bank_of(r) for r in order[:4]]
        assert banks == [0, 1, 0, 1]

"""Independent artifact verification: every tamper class is caught."""

from __future__ import annotations

import json

import pytest

from repro.ir import print_function
from repro.resilience import AllocationVerifier
from repro.service import artifact_bytes, build_artifact, cache_key

from .conftest import build_mac_kernel

FILE = {"registers": 32, "banks": 2}
IR = print_function(build_mac_kernel())


@pytest.fixture(scope="module")
def artifact() -> dict:
    return build_artifact(IR, FILE, "bpc")


@pytest.fixture(scope="module")
def data(artifact) -> bytes:
    return artifact_bytes(artifact)


def _tampered(artifact: dict, **overrides) -> bytes:
    mutated = json.loads(json.dumps(artifact))
    for dotted, value in overrides.items():
        target = mutated
        *path, leaf = dotted.split("__")
        for part in path:
            target = target[part]
        target[leaf] = value
    return artifact_bytes(mutated)


# ----------------------------------------------------------------------
# Modes
# ----------------------------------------------------------------------
def test_mode_gating():
    strict = AllocationVerifier("strict")
    cached = AllocationVerifier("cached-only")
    off = AllocationVerifier("off")
    for source in ("computed", "memory", "disk"):
        assert strict.should_verify(source)
        assert not off.should_verify(source)
    assert cached.should_verify("disk")
    assert not cached.should_verify("memory")
    assert not cached.should_verify("computed")
    with pytest.raises(ValueError):
        AllocationVerifier("paranoid")


# ----------------------------------------------------------------------
# Clean artifacts pass every check
# ----------------------------------------------------------------------
def test_clean_artifact_passes_with_and_without_original_ir(data):
    verifier = AllocationVerifier("strict")
    key = cache_key(IR, FILE, "bpc")
    report = verifier.verify_bytes(data, expected_key=key, original_ir=IR)
    assert report.ok, report.render()
    assert "semantic" in report.checks
    report = verifier.verify_bytes(data)
    assert report.ok
    assert "semantic" not in report.checks


# ----------------------------------------------------------------------
# Tamper classes
# ----------------------------------------------------------------------
def test_non_canonical_bytes_rejected(data):
    verifier = AllocationVerifier("strict")
    pretty = json.dumps(json.loads(data), indent=2).encode()
    assert not verifier.verify_bytes(pretty).ok
    assert not verifier.verify_bytes(data + b"\n").ok
    assert not verifier.verify_bytes(b"\x00garbage\xff").ok
    assert not verifier.verify_bytes(b'["not", "an", "object"]').ok


def test_wrong_key_and_schema_rejected(artifact, data):
    verifier = AllocationVerifier("strict")
    report = verifier.verify_bytes(data, expected_key="0" * 64)
    assert any("content address" in f for f in report.findings)
    report = verifier.verify_bytes(_tampered(artifact, schema=99))
    assert any("schema" in f for f in report.findings)
    report = verifier.verify_bytes(_tampered(artifact, key="f" * 64),
                                   original_ir=IR)
    assert not report.ok


def test_tampered_stats_rejected(artifact):
    verifier = AllocationVerifier("strict")
    claimed = artifact["stats"]["bank_conflicts"]
    report = verifier.verify_bytes(
        _tampered(artifact, stats__bank_conflicts=claimed + 5)
    )
    assert any("stats.bank_conflicts" in f for f in report.findings)


def test_out_of_file_assignment_rejected(artifact):
    verifier = AllocationVerifier("strict")
    report = verifier.verify_bytes(_tampered(artifact, assignment__extra=512))
    assert any("outside the" in f for f in report.findings)


def test_corrupted_ir_rejected(artifact):
    verifier = AllocationVerifier("strict")
    broken = _tampered(artifact, ir=artifact["ir"].replace("ret", "retx", 1))
    report = verifier.verify_bytes(broken)
    # Depending on how far the mangled text gets, either the parser or
    # the IR verifier rejects it — never silence.
    assert not report.ok


def test_semantically_wrong_allocation_rejected(artifact):
    # Swap an operand: structurally fine, observably different.
    mutated_ir = artifact["ir"].replace("fadd", "fsub", 1)
    mutated = _tampered(artifact, ir=mutated_ir)
    verifier = AllocationVerifier("strict")
    report = verifier.verify_bytes(mutated, original_ir=IR)
    assert not report.ok


def test_missing_fields_rejected(artifact):
    verifier = AllocationVerifier("strict")
    partial = {k: v for k, v in artifact.items() if k != "assignment"}
    report = verifier.verify_artifact(partial)
    assert any("missing fields" in f for f in report.findings)


def test_report_render_mentions_findings(artifact):
    verifier = AllocationVerifier("strict")
    report = verifier.verify_bytes(
        _tampered(artifact, stats__instructions=0)
    )
    rendered = report.render()
    assert "finding" in rendered
    assert "stats.instructions" in rendered

"""Tests for the bundle-aware RCG extension (soft edges)."""

import pytest

from repro.analysis import ConflictCostModel, ConflictGraph
from repro.banks import BankSubgroupRegisterFile, BankedRegisterFile
from repro.ir import IRBuilder
from repro.prescount import (
    PipelineConfig,
    PresCountBankAssigner,
    add_bundle_edges,
    run_pipeline,
)
from repro.prescount.bundle_aware import _independent
from repro.sim import DsaMachine, analyze_static, observably_equivalent
from repro.ir import instruction as ins
from repro.ir.types import VirtualRegister

V = VirtualRegister


def unary_pairs_kernel(lanes=8, stride=4, trip=32):
    b = IRBuilder("pairs")
    vals = [b.const(float(i)) for i in range(lanes)]
    with b.loop(trip_count=trip):
        for i in range(lanes // 2):
            vals[i] = b.arith("fneg", vals[i])
            vals[(i + stride) % lanes] = b.arith("fabs", vals[(i + stride) % lanes])
    b.ret(*vals)
    return b.finish()


class TestIndependence:
    def test_true_dependency(self):
        first = ins.arith("fneg", V(1), V(0))
        second = ins.arith("fabs", V(2), V(1))
        assert not _independent(first, second)

    def test_output_dependency(self):
        first = ins.arith("fneg", V(1), V(0))
        second = ins.arith("fabs", V(1), V(2))
        assert not _independent(first, second)

    def test_anti_dependency(self):
        first = ins.arith("fneg", V(1), V(0))
        second = ins.arith("fabs", V(0), V(2))
        assert not _independent(first, second)

    def test_independent(self):
        first = ins.arith("fneg", V(1), V(0))
        second = ins.arith("fabs", V(3), V(2))
        assert _independent(first, second)


class TestEdgeConstruction:
    def test_soft_edges_added_not_hard(self):
        fn = unary_pairs_kernel()
        cm = ConflictCostModel.build(fn)
        rcg = ConflictGraph.build(fn, cm)
        hard_before = dict(rcg.edge_cost)
        report = add_bundle_edges(rcg, fn, cm)
        assert report.edges_added > 0
        assert rcg.edge_cost == hard_before  # hard edges untouched
        assert rcg.soft_edge_cost

    def test_soft_penalty_query(self):
        fn = unary_pairs_kernel()
        cm = ConflictCostModel.build(fn)
        rcg = ConflictGraph.build(fn, cm)
        add_bundle_edges(rcg, fn, cm)
        node = next(iter(rcg.soft_adjacency))
        neighbor = next(iter(rcg.soft_adjacency[node]))
        cost = rcg.soft_edge_cost[frozenset((node, neighbor))]
        assert rcg.soft_penalty(node, 0, {neighbor: 0}) == pytest.approx(cost)
        assert rcg.soft_penalty(node, 1, {neighbor: 0}) == 0.0

    def test_disjoint_window_pairing(self):
        """Edges connect (0,1), (2,3), ... — not the full adjacency chain."""
        b = IRBuilder("f")
        vals = [b.const(float(i)) for i in range(4)]
        outs = []
        for i in range(4):
            outs.append(b.arith("fneg", vals[i]))
        b.ret(*outs)
        fn = b.finish()
        cm = ConflictCostModel.build(fn)
        rcg = ConflictGraph.build(fn, cm)
        add_bundle_edges(rcg, fn, cm)
        assert frozenset((vals[0], vals[1])) in rcg.soft_edge_cost
        assert frozenset((vals[2], vals[3])) in rcg.soft_edge_cost
        assert frozenset((vals[1], vals[2])) not in rcg.soft_edge_cost


class TestAssignmentIntegration:
    def test_soft_edges_break_ties(self):
        fn = unary_pairs_kernel()
        rf = BankedRegisterFile(1024, 2)
        from repro.alloc import coalesce, schedule_function

        work = fn.clone()
        coalesce(work)
        schedule_function(work)
        cm = ConflictCostModel.build(work)
        rcg = ConflictGraph.build(work, cm)
        add_bundle_edges(rcg, work, cm)
        assignment = PresCountBankAssigner(rf).assign(work, rcg=rcg)
        # Every soft pair with equal pressure choice should be bi-colored.
        separated = same = 0
        for key in rcg.soft_edge_cost:
            a, b = tuple(key)
            if a in assignment.banks and b in assignment.banks:
                if assignment.banks[a] != assignment.banks[b]:
                    separated += 1
                else:
                    same += 1
        assert separated > same

    def test_pipeline_flag_improves_cycles(self, rf_dsa):
        fn = unary_pairs_kernel()
        machine = DsaMachine(rf_dsa)
        base = run_pipeline(fn, PipelineConfig(rf_dsa, "bpc"))
        aware = run_pipeline(fn, PipelineConfig(rf_dsa, "bpc", bundle_aware=True))
        assert machine.run(aware.function).cycles <= machine.run(base.function).cycles

    def test_no_hazard_regression(self, rf_dsa):
        """Soft edges must never sacrifice true conflict freedom."""
        from repro.workloads import DSA_KERNELS

        for name in ("reduce", "dw-conv2d", "tr15651"):
            fn = DSA_KERNELS[name]()
            base = run_pipeline(fn, PipelineConfig(rf_dsa, "bpc"))
            aware = run_pipeline(fn, PipelineConfig(rf_dsa, "bpc", bundle_aware=True))
            assert (
                analyze_static(aware.function, rf_dsa).conflicts
                <= analyze_static(base.function, rf_dsa).conflicts
            ), name

    def test_semantics_preserved(self, rf_dsa):
        fn = unary_pairs_kernel()
        aware = run_pipeline(fn, PipelineConfig(rf_dsa, "bpc", bundle_aware=True))
        assert observably_equivalent(fn, aware.function)

"""Tests for the Register Interference Graph (RIG)."""

from repro.analysis import InterferenceGraph, LiveIntervals
from repro.ir import parse_function
from repro.ir.types import FP, GP, VirtualRegister
from tests.conftest import build_mac_kernel

V = VirtualRegister


def chain_function():
    return parse_function(
        """
        func @chain {
        block entry:
          %v0:fp = li #1.0
          %v1:fp = fneg %v0:fp
          %v2:fp = fneg %v1:fp
          ret %v2:fp
        }
        """
    )


class TestEdges:
    def test_chain_has_no_interference(self):
        rig = InterferenceGraph.build(chain_function())
        assert rig.edge_count() == 0

    def test_simultaneously_live_interfere(self):
        fn = parse_function(
            """
            func @f {
            block entry:
              %v0:fp = li #1.0
              %v1:fp = li #2.0
              %v2:fp = fadd %v0:fp, %v1:fp
              ret %v2:fp
            }
            """
        )
        rig = InterferenceGraph.build(fn)
        assert rig.interferes(V(0), V(1))
        assert not rig.interferes(V(0), V(2))

    def test_matches_pairwise_overlap(self):
        """The sweep must agree with brute-force interval overlap."""
        fn = build_mac_kernel()
        live = LiveIntervals.build(fn)
        rig = InterferenceGraph.build(fn, live)
        intervals = live.vreg_intervals()
        for i, a in enumerate(intervals):
            for b in intervals[i + 1:]:
                assert rig.interferes(a.reg, b.reg) == a.overlaps(b), (a.reg, b.reg)

    def test_all_vregs_are_nodes(self):
        fn = build_mac_kernel()
        rig = InterferenceGraph.build(fn)
        assert set(rig.nodes()) == set(fn.virtual_registers(FP))


class TestApi:
    def test_degree(self):
        fn = build_mac_kernel(n_pairs=3)
        rig = InterferenceGraph.build(fn)
        for node in rig.nodes():
            assert rig.degree(node) == len(rig.neighbors(node))

    def test_subgraph(self):
        fn = build_mac_kernel(n_pairs=3)
        rig = InterferenceGraph.build(fn)
        keep = set(rig.nodes()[:4])
        sub = rig.subgraph(keep)
        assert set(sub.nodes()) <= keep
        for node in sub.nodes():
            assert sub.neighbors(node) <= keep

    def test_self_edge_rejected(self):
        rig = InterferenceGraph(None)
        try:
            rig.add_edge(V(0), V(0))
        except ValueError:
            pass
        else:
            raise AssertionError("self-interference must be rejected")

    def test_clique_lower_bound_sane(self):
        fn = build_mac_kernel(n_pairs=4)
        rig = InterferenceGraph.build(fn)
        lb = rig.max_clique_lower_bound()
        live = LiveIntervals.build(fn)
        assert 1 <= lb <= len(rig)
        # Clique number >= pressure is not guaranteed, but the greedy bound
        # must never exceed node count and be at least 2 when edges exist.
        if rig.edge_count():
            assert lb >= 2

    def test_regclass_filtering(self):
        fn = parse_function(
            """
            func @f {
            block entry:
              %v0:fp = li #1.0
              %v1:gp = li #2
              %v2:fp = fadd %v0:fp, %v0:fp
              ret %v2:fp
            }
            """
        )
        rig = InterferenceGraph.build(fn, regclass=FP)
        assert all(n.regclass == FP for n in rig.nodes())

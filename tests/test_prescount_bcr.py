"""Tests for the bcr (Intel-style per-instruction hinting) baseline."""

from repro.alloc import GreedyAllocator
from repro.banks import BankedRegisterFile
from repro.ir import IRBuilder
from repro.prescount import BcrPolicy, PipelineConfig, run_pipeline
from repro.sim import analyze_static
from tests.conftest import build_mac_kernel


def simple_pair_kernel():
    b = IRBuilder("pair")
    x, y = b.const(1.0), b.const(2.0)
    acc = b.const(0.0)
    with b.loop(trip_count=8):
        b.arith_into(acc, "fadd", x, y)
    b.ret(acc)
    return b.finish(), x, y


class TestBcrPolicy:
    def test_partner_map_built(self):
        fn, x, y = simple_pair_kernel()
        rf = BankedRegisterFile(8, 2)
        allocator = GreedyAllocator(rf, BcrPolicy(rf))
        allocator.run(fn)
        policy = allocator.policy
        assert any(p[0] == y for p in policy._partners.get(x, []))
        assert any(p[0] == x for p in policy._partners.get(y, []))

    def test_resolves_simple_conflict(self):
        fn, x, y = simple_pair_kernel()
        rf = BankedRegisterFile(8, 2)
        result = run_pipeline(fn, PipelineConfig(rf, "bcr"))
        stats = analyze_static(result.function, rf)
        assert stats.bank_conflicts == 0

    def test_non_method_leaves_conflicts_on_shared_kernel(self):
        """Control: the same kernel under 'non' where operands collide."""
        from repro.workloads import shared_use_kernel

        fn = shared_use_kernel(consumers=6)
        rf = BankedRegisterFile(32, 2)
        non = run_pipeline(fn, PipelineConfig(rf, "non"))
        bcr = run_pipeline(fn, PipelineConfig(rf, "bcr"))
        assert analyze_static(bcr.function, rf).bank_conflicts < analyze_static(
            non.function, rf
        ).bank_conflicts

    def test_local_scope_misses_global_structure(self):
        """bcr is per-instruction-greedy: on cost-skewed RCGs with a rich
        register budget (the paper's RV#1 regime) it leaves more conflicts
        behind than bpc's global coloring.  At tight budgets the paper
        itself shows the two near-tied (Table V), so this checks the rich
        regime."""
        from repro.workloads import KernelSpec, generate_kernel

        rf = BankedRegisterFile(1024, 2)
        bcr_total = bpc_total = 0.0
        for seed in range(8):
            spec = KernelSpec(
                name=f"k{seed}",
                seed=seed,
                live_values=12,
                body_ops=40,
                loop_depth=2,
                trip_counts=(10, 10),
                sharing=0.5,
                accumulate=0.3,
            )
            fn = generate_kernel(spec)
            for method in ("bcr", "bpc"):
                res = run_pipeline(fn, PipelineConfig(rf, method))
                stats = analyze_static(res.function, rf)
                if method == "bcr":
                    bcr_total += stats.weighted_conflicts
                else:
                    bpc_total += stats.weighted_conflicts
        assert bpc_total <= bcr_total

    def test_policy_never_restricts(self):
        """bcr expresses soft preferences only: every register remains a
        candidate (no spill risk from bank hinting)."""
        fn, x, y = simple_pair_kernel()
        rf = BankedRegisterFile(8, 2)
        allocator = GreedyAllocator(rf, BcrPolicy(rf))
        allocator.run(fn)
        policy = allocator.policy
        from repro.analysis import LiveIntervals

        live = LiveIntervals.build(fn)
        for iv in live.vreg_intervals():
            assert len(policy.order(iv.reg, iv)) == rf.num_registers

"""Tests for DOT export of CFG / interference / SDG graphs."""

from repro.analysis import ConflictGraph, InterferenceGraph, SameDisplacementGraph
from repro.ir import cfg_to_dot, interference_to_dot, sdg_to_dot
from tests.conftest import build_mac_kernel


class TestCfgDot:
    def test_all_blocks_present(self):
        fn = build_mac_kernel()
        dot = cfg_to_dot(fn)
        for block in fn.blocks:
            assert f'"{block.label}"' in dot
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")

    def test_edges_follow_cfg(self):
        fn = build_mac_kernel()
        dot = cfg_to_dot(fn)
        header = next(b.label for b in fn.blocks if b.attrs.get("loop_header"))
        assert f'-> "{header}"' in dot  # back edge rendered

    def test_instruction_listing_mode(self):
        fn = build_mac_kernel()
        dot = cfg_to_dot(fn, include_instructions=True)
        assert "fmul" in dot

    def test_loop_annotation(self):
        fn = build_mac_kernel()
        assert "loop x16" in cfg_to_dot(fn)


class TestInterferenceDot:
    def test_nodes_and_edges(self):
        fn = build_mac_kernel(n_pairs=2)
        rig = InterferenceGraph.build(fn)
        dot = interference_to_dot(rig)
        assert dot.startswith("graph")
        assert " -- " in dot

    def test_colors_fill_nodes(self):
        fn = build_mac_kernel(n_pairs=2)
        rig = InterferenceGraph.build(fn)
        colors = {node: i % 2 for i, node in enumerate(rig.nodes())}
        dot = interference_to_dot(rig, colors=colors)
        assert "lightblue" in dot and "lightsalmon" in dot

    def test_edges_not_duplicated(self):
        fn = build_mac_kernel(n_pairs=2)
        rig = InterferenceGraph.build(fn)
        dot = interference_to_dot(rig)
        edge_lines = [l for l in dot.splitlines() if " -- " in l]
        assert len(edge_lines) == rig.edge_count()

    def test_rcg_soft_edges_dashed(self):
        from repro.analysis import ConflictCostModel
        from repro.prescount import add_bundle_edges

        fn = build_mac_kernel(n_pairs=2)
        cm = ConflictCostModel.build(fn)
        rcg = ConflictGraph.build(fn, cm)
        add_bundle_edges(rcg, fn, cm)
        dot = interference_to_dot(rcg)
        if rcg.soft_edge_cost:
            assert "dashed" in dot


class TestSdgDot:
    def test_directed_edges(self):
        fn = build_mac_kernel(n_pairs=2)
        sdg = SameDisplacementGraph.build(fn)
        dot = sdg_to_dot(sdg)
        assert dot.startswith("digraph")
        assert " -> " in dot

"""Tests for chordal graph machinery (MCS, chordality, optimal coloring)."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import (
    InterferenceGraph,
    LiveIntervals,
    chordal_coloring,
    chromatic_number,
    is_chordal,
    maximum_cardinality_search,
)
from repro.ir.types import VirtualRegister
from repro.workloads import random_function
from tests.conftest import build_mac_kernel

V = VirtualRegister


def graph_from_edges(n, edges):
    g = InterferenceGraph(None)
    for i in range(n):
        g.adjacency.setdefault(V(i), set())
    for a, b in edges:
        g.add_edge(V(a), V(b))
    return g


class TestMcs:
    def test_covers_all_nodes_once(self):
        g = graph_from_edges(4, [(0, 1), (1, 2)])
        order = maximum_cardinality_search(g)
        assert sorted(n.vid for n in order) == [0, 1, 2, 3]

    def test_empty_graph(self):
        g = graph_from_edges(0, [])
        assert maximum_cardinality_search(g) == []


class TestChordality:
    def test_triangle_is_chordal(self):
        g = graph_from_edges(3, [(0, 1), (1, 2), (2, 0)])
        assert is_chordal(g)

    def test_four_cycle_is_not_chordal(self):
        g = graph_from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert not is_chordal(g)

    def test_four_cycle_with_chord_is_chordal(self):
        g = graph_from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
        assert is_chordal(g)

    def test_tree_is_chordal(self):
        g = graph_from_edges(5, [(0, 1), (0, 2), (1, 3), (1, 4)])
        assert is_chordal(g)

    def test_rig_from_intervals_is_chordal(self):
        """Interval graphs are chordal: every RIG we build must be."""
        fn = build_mac_kernel(n_pairs=6)
        rig = InterferenceGraph.build(fn)
        assert is_chordal(rig)

    @settings(deadline=None, max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 200))
    def test_random_rigs_are_chordal(self, seed):
        fn = random_function(seed, max_ops=20)
        assert is_chordal(InterferenceGraph.build(fn))


class TestColoring:
    def test_coloring_is_proper(self):
        g = graph_from_edges(5, [(0, 1), (1, 2), (2, 0), (3, 4)])
        colors = chordal_coloring(g)
        for node in g.nodes():
            for neighbor in g.neighbors(node):
                assert colors[node] != colors[neighbor]

    def test_triangle_needs_three(self):
        g = graph_from_edges(3, [(0, 1), (1, 2), (2, 0)])
        assert chromatic_number(g) == 3

    def test_edgeless_needs_one(self):
        g = graph_from_edges(3, [])
        assert chromatic_number(g) == 1

    def test_empty_needs_zero(self):
        assert chromatic_number(graph_from_edges(0, [])) == 0

    @settings(deadline=None, max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 200))
    def test_chromatic_number_equals_pressure(self, seed):
        """On interval graphs chi == max clique == register pressure: the
        optimal chordal coloring uses exactly the pressure many colors."""
        fn = random_function(seed, max_ops=20)
        live = LiveIntervals.build(fn)
        rig = InterferenceGraph.build(fn, live)
        if len(rig) == 0:
            pytest.skip("degenerate function")
        assert chromatic_number(rig) == live.max_pressure()

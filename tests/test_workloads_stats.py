"""Tests for suite statistics."""

import pytest

from repro.workloads import FunctionStats, SuiteStats, cnn_suite, dsa_suite
from tests.conftest import build_mac_kernel, build_nested_loops


class TestFunctionStats:
    def test_basic_counts(self):
        stats = FunctionStats.of(build_mac_kernel(n_pairs=3, trip_count=8))
        assert stats.instructions > 10
        assert stats.loops == 1
        assert stats.max_loop_depth == 1
        assert stats.max_trip_product == 8
        assert stats.conflict_relevant == 6  # 3 fmul + 3 fadd

    def test_nested_depth(self):
        stats = FunctionStats.of(build_nested_loops((3, 5)))
        assert stats.max_loop_depth == 2
        assert stats.max_trip_product == 15

    def test_opcode_mix(self):
        stats = FunctionStats.of(build_mac_kernel(n_pairs=2))
        assert stats.opcode_mix["fmul"] == 2
        assert stats.opcode_mix["fadd"] == 2

    def test_conflict_density(self):
        stats = FunctionStats.of(build_mac_kernel())
        assert 0 < stats.conflict_density < 1


class TestSuiteStats:
    @pytest.fixture(scope="class")
    def cnn_stats(self):
        return SuiteStats.of(cnn_suite(scale=0.15))

    def test_aggregation(self, cnn_stats):
        assert cnn_stats.total_instructions == sum(
            f.instructions for f in cnn_stats.functions
        )

    def test_relevant_share(self, cnn_stats):
        assert 0.5 < cnn_stats.relevant_function_share <= 1.0

    def test_pressure_histogram_partitions(self, cnn_stats):
        histogram = cnn_stats.pressure_histogram()
        assert sum(histogram.values()) == len(cnn_stats.functions)

    def test_render_mentions_suite(self, cnn_stats):
        text = cnn_stats.render()
        assert "CNN-KERNEL" in text
        assert "pressure histogram" in text

    def test_dsa_suite_stats(self):
        stats = SuiteStats.of(dsa_suite(idft_points=6))
        assert len(stats.functions) == 8
        idft = next(f for f in stats.functions if f.name == "idft")
        assert idft.conflict_relevant > 50

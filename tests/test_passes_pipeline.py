"""FunctionPassManager: sequencing, preserved-set invalidation, and the
pass-composed Fig. 4 pipeline's equivalence to the hand-composed phases."""

from __future__ import annotations

import pytest

from repro.alloc.coalescing import coalesce
from repro.alloc.greedy import GreedyAllocator
from repro.alloc.scheduling import schedule_function
from repro.banks import BankedRegisterFile, BankSubgroupRegisterFile
from repro.ir import IRBuilder, print_function
from repro.ir import instruction as ins
from repro.ir.flat import enabled as flat_enabled
from repro.ir.types import FP
from repro.passes import (
    CFG_ONLY,
    PRESERVE_ALL,
    AnalysisManager,
    CFGAnalysis,
    FunctionPassManager,
    InstrumentationRegistry,
    LiveIntervalsAnalysis,
    LivenessAnalysis,
    LoopInfoAnalysis,
    Pass,
    SlotIndexesAnalysis,
)
from repro.prescount import (
    PASS_REGISTRY,
    PipelineConfig,
    PresCountBankAssigner,
    PresCountPolicy,
    build_pipeline,
    run_pipeline,
)

from tests.conftest import build_mac_kernel


class SplitBlockPass(Pass):
    """CFG-mutating transform: appends a block jumped to from the end."""

    name = "split-block"

    def run(self, function, am, state):
        new_label = f"{function.entry.label}_tail"
        block = function.add_block(new_label)
        block.instructions.append(ins.ret())
        return new_label

    # default preserved(): PRESERVE_NONE


class RenameRegisterPass(Pass):
    """Register-renaming transform: rewrites operands, block graph intact."""

    name = "rename"

    def run(self, function, am, state):
        regs = sorted(function.virtual_registers(), key=lambda r: r.vid)
        if not regs:
            return 0
        old = regs[0]
        new = function.new_vreg(old.regclass)
        mapping = {old: new}
        for block in function.blocks:
            block.instructions = [i.rewrite(mapping) for i in block.instructions]
        return 1

    def preserved(self, result):
        # Renaming changes liveness but never labels or terminators.
        return CFG_ONLY


class TestInvalidationThroughPasses:
    def test_cfg_mutation_invalidates_liveness_and_intervals(self, mac_kernel):
        am = AnalysisManager(mac_kernel)
        am.get(LiveIntervalsAnalysis)
        assert am.counter(LiveIntervalsAnalysis).misses == 1

        FunctionPassManager([SplitBlockPass()]).run(mac_kernel, am=am)

        assert LivenessAnalysis not in am
        assert LiveIntervalsAnalysis not in am
        assert CFGAnalysis not in am
        # The next consumer recomputes: a miss, not a stale hit.
        am.get(LiveIntervalsAnalysis)
        assert am.counter(LiveIntervalsAnalysis).misses == 2
        assert am.counter(LiveIntervalsAnalysis).hits == 0
        assert am.counter(LivenessAnalysis).invalidations == 1

    def test_renaming_pass_keeps_cfg_level_cache(self, mac_kernel):
        am = AnalysisManager(mac_kernel)
        am.get(LiveIntervalsAnalysis)
        am.get(LoopInfoAnalysis)
        cfg_before = am.get(CFGAnalysis)

        FunctionPassManager([RenameRegisterPass()]).run(mac_kernel, am=am)

        # Declared preserved: CFG + LoopInfo survive and keep hitting.
        assert am.get(CFGAnalysis) is cfg_before
        assert am.counter(CFGAnalysis).invalidations == 0
        assert am.counter(LoopInfoAnalysis).invalidations == 0
        # Liveness-derived analyses were dropped.
        assert am.counter(LivenessAnalysis).invalidations == 1
        assert am.counter(LiveIntervalsAnalysis).invalidations == 1
        assert am.counter(SlotIndexesAnalysis).invalidations == 1

    def test_state_maps_pass_names_to_results(self, mac_kernel):
        state = FunctionPassManager([RenameRegisterPass()]).run(mac_kernel)
        assert state == {"rename": 1}

    def test_instrumentation_records_per_pass(self, mac_kernel):
        registry = InstrumentationRegistry(enabled=True)
        fpm = FunctionPassManager(
            [SplitBlockPass(), RenameRegisterPass()], instrumentation=registry
        )
        am = AnalysisManager(mac_kernel)
        am.get(LiveIntervalsAnalysis)
        fpm.run(mac_kernel, am=am)
        split = registry.passes["split-block"]
        assert split.runs == 1
        assert split.instructions_delta == 1  # the appended ret
        # cfg/slots/liveness/intervals, plus the flat lowering when
        # REPRO_FAST is active (the default).
        assert split.invalidations == (5 if flat_enabled() else 4)
        assert registry.passes["rename"].runs == 1


class TestFigure4Passes:
    def test_registry_names_all_five_phases(self):
        assert set(PASS_REGISTRY) == {
            "coalescing",
            "sdg-split",
            "scheduling",
            "bank-assignment",
            "allocation",
        }

    @pytest.mark.parametrize(
        "method,dsa,expected",
        [
            ("non", False, ["coalescing", "scheduling", "allocation"]),
            ("bcr", False, ["coalescing", "scheduling", "allocation"]),
            (
                "bpc",
                False,
                ["coalescing", "scheduling", "bank-assignment", "allocation"],
            ),
            (
                "bpc",
                True,
                [
                    "coalescing",
                    "sdg-split",
                    "scheduling",
                    "bank-assignment",
                    "allocation",
                ],
            ),
        ],
    )
    def test_build_pipeline_composition(self, method, dsa, expected):
        file_ = (
            BankSubgroupRegisterFile(64, 2, 4) if dsa else BankedRegisterFile(32, 2)
        )
        fpm = build_pipeline(PipelineConfig(file_, method))
        assert [p.name for p in fpm.passes] == expected

    def test_ablation_switches_prune_passes(self):
        config = PipelineConfig(
            BankedRegisterFile(32, 2),
            "bpc",
            run_coalescing=False,
            run_scheduling=False,
        )
        fpm = build_pipeline(config)
        assert [p.name for p in fpm.passes] == ["bank-assignment", "allocation"]

    @pytest.mark.parametrize("method", ["non", "bcr", "bpc"])
    def test_pipeline_matches_hand_composed_phases(self, method):
        """run_pipeline == the same phases invoked directly, bit for bit."""
        original = build_mac_kernel(6, trip_count=32)
        register_file = BankedRegisterFile(16, 2)

        pipe = run_pipeline(original, PipelineConfig(register_file, method))

        manual = original.clone()
        coalescing = coalesce(manual, FP)
        schedule_function(manual)
        policy = None
        if method == "bpc":
            assignment = PresCountBankAssigner(register_file, FP).assign(manual)
            assignment.strict = False
            policy = PresCountPolicy(register_file, assignment)
        elif method == "bcr":
            from repro.prescount import BcrPolicy

            policy = BcrPolicy(register_file, FP)
        else:
            from repro.alloc.base import NaturalOrderPolicy

            policy = NaturalOrderPolicy()
        allocation = GreedyAllocator(register_file, policy, FP).run(
            manual, clone=False
        )
        allocation.copies_removed += coalescing.copies_removed

        assert print_function(pipe.function) == print_function(manual)
        assert pipe.allocation.spill_count == allocation.spill_count
        assert pipe.allocation.copies_removed == allocation.copies_removed
        if method == "bpc":
            assert pipe.bank_assignment.banks == assignment.banks

    def test_pipeline_result_carries_live_analysis_cache(self, rf_rv2):
        fn = build_mac_kernel(4)
        pipe = run_pipeline(fn, PipelineConfig(rf_rv2, "bpc"))
        am = pipe.analyses
        assert am is not None
        assert am.function is pipe.function
        # Allocation preserved the CFG-level analyses; they keep hitting.
        hits_before = am.counter(CFGAnalysis).hits
        am.get(CFGAnalysis)
        assert am.counter(CFGAnalysis).hits == hits_before + 1

    def test_live_intervals_cache_hits_inside_pipeline(self, rf_rv2):
        fn = build_mac_kernel(6, trip_count=32)
        pipe = run_pipeline(fn, PipelineConfig(rf_rv2, "bpc"))
        counter = pipe.analyses.counter(LiveIntervalsAnalysis)
        # The bank assigner and the allocator both reuse the scheduler's
        # post-reorder intervals: the shared cache must see real hits.
        assert counter.hits >= 1

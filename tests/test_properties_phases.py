"""Property-based tests for the standalone pipeline phases.

Coalescing, scheduling, SDG splitting, and the verifier each run on
random functions with the value interpreter as the oracle — catching
phase bugs without the allocator in the loop.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.alloc import coalesce, schedule_function
from repro.analysis import LiveIntervals
from repro.ir import verify_function
from repro.prescount import SdgSplitConfig, split_subgroups
from repro.sim import observably_equivalent
from repro.workloads import random_function

SETTINGS = dict(
    deadline=None, max_examples=20, suppress_health_check=[HealthCheck.too_slow]
)


class TestCoalescingProperties:
    @settings(**SETTINGS)
    @given(st.integers(0, 400))
    def test_preserves_semantics(self, seed):
        fn = random_function(seed, max_ops=20)
        reference = fn.clone()
        coalesce(fn)
        verify_function(fn)
        assert observably_equivalent(reference, fn, seed=seed)

    @settings(**SETTINGS)
    @given(st.integers(0, 400))
    def test_never_increases_instructions(self, seed):
        fn = random_function(seed, max_ops=20)
        before = fn.instruction_count()
        coalesce(fn)
        assert fn.instruction_count() <= before

    @settings(**SETTINGS)
    @given(st.integers(0, 400))
    def test_idempotent(self, seed):
        fn = random_function(seed, max_ops=15)
        coalesce(fn)
        second = coalesce(fn)
        assert second.copies_removed == 0


class TestSchedulingProperties:
    @settings(**SETTINGS)
    @given(st.integers(0, 400))
    def test_preserves_semantics(self, seed):
        fn = random_function(seed, max_ops=20)
        reference = fn.clone()
        schedule_function(fn)
        verify_function(fn)
        assert observably_equivalent(reference, fn, seed=seed)

    @settings(**SETTINGS)
    @given(st.integers(0, 400))
    def test_permutation_only(self, seed):
        """Scheduling reorders; it never adds, drops, or rewrites."""
        fn = random_function(seed, max_ops=20)
        before = sorted(repr(i) for __, i in fn.instructions())
        schedule_function(fn)
        after = sorted(repr(i) for __, i in fn.instructions())
        assert before == after

    @settings(**SETTINGS)
    @given(st.integers(0, 400))
    def test_never_raises_pressure(self, seed):
        """schedule_function reverts orders that raise pressure, so the
        guarantee is exact."""
        fn = random_function(seed, max_ops=20)
        before = LiveIntervals.build(fn).max_pressure()
        schedule_function(fn)
        assert LiveIntervals.build(fn).max_pressure() <= before


class TestSdgSplitProperties:
    @settings(**SETTINGS)
    @given(st.integers(0, 400))
    def test_preserves_semantics(self, seed):
        fn = random_function(seed, max_ops=20)
        reference = fn.clone()
        split_subgroups(fn, config=SdgSplitConfig(4, 6, 16))
        verify_function(fn)
        assert observably_equivalent(reference, fn, seed=seed)

    @settings(**SETTINGS)
    @given(st.integers(0, 400))
    def test_only_adds_tagged_copies(self, seed):
        fn = random_function(seed, max_ops=20)
        before = fn.instruction_count()
        result = split_subgroups(fn, config=SdgSplitConfig(4, 6, 16))
        assert fn.instruction_count() == before + result.copies_inserted
        tagged = sum(
            1 for __, i in fn.instructions() if i.attrs.get("sdg_copy")
        )
        assert tagged == result.copies_inserted

"""Tests for the Same Displacement Graph (SDG)."""

from repro.analysis import SameDisplacementGraph
from repro.ir import IRBuilder
from repro.workloads import idft_kernel, reduce_kernel, shared_use_kernel


def input_sharing_function(consumers=6):
    b = IRBuilder("in_share")
    hot = b.const(1.0)
    outs = []
    for i in range(consumers):
        other = b.const(float(i))
        outs.append(b.arith("fmul", hot, other))
    b.ret(outs[0])
    return b.finish(), hot


def output_sharing_function(writers=6):
    b = IRBuilder("out_share")
    acc = b.const(0.0)
    for i in range(writers):
        x = b.const(float(i))
        b.arith_into(acc, "fadd", acc, x)
    b.ret(acc)
    return b.finish(), acc


class TestConstruction:
    def test_edges_run_input_to_output(self):
        b = IRBuilder("f")
        x, y = b.const(1.0), b.const(2.0)
        z = b.arith("fadd", x, y)
        b.ret(z)
        sdg = SameDisplacementGraph.build(b.finish())
        assert z in sdg.out_edges[x]
        assert z in sdg.out_edges[y]
        assert x in sdg.in_edges[z]

    def test_self_edge_skipped(self):
        fn, acc = output_sharing_function(2)
        sdg = SameDisplacementGraph.build(fn)
        assert acc not in sdg.out_edges.get(acc, set())

    def test_copies_do_not_align(self):
        b = IRBuilder("f")
        x = b.const(1.0)
        y = b.fresh()
        b.copy(y, x)
        b.ret(y)
        sdg = SameDisplacementGraph.build(b.finish())
        # A mov imposes no alignment: x and y stay disconnected.
        assert y not in sdg.out_edges.get(x, set())


class TestDegrees:
    def test_input_sharing_center_has_high_out_degree(self):
        fn, hot = input_sharing_function(6)
        sdg = SameDisplacementGraph.build(fn)
        assert sdg.out_degree(hot) == 6
        assert sdg.in_degree(hot) == 0

    def test_output_sharing_center_has_high_in_degree(self):
        fn, acc = output_sharing_function(6)
        sdg = SameDisplacementGraph.build(fn)
        assert sdg.in_degree(acc) == 6


class TestComponents:
    def test_connected_kernel_single_component(self):
        fn, hot = input_sharing_function(4)
        sdg = SameDisplacementGraph.build(fn)
        comps = sdg.components()
        assert len(comps) == 1
        assert hot in comps[0]

    def test_component_of_isolated_register(self):
        fn, hot = input_sharing_function(2)
        sdg = SameDisplacementGraph.build(fn)
        from repro.ir.types import VirtualRegister
        stranger = VirtualRegister(999)
        assert sdg.component_of(stranger) == {stranger}

    def test_reduce_kernel_one_component(self):
        fn = reduce_kernel(inputs=6)
        sdg = SameDisplacementGraph.build(fn)
        assert len(sdg.components()) == 1

    def test_idft_has_large_component(self):
        fn = idft_kernel(points=6)
        sdg = SameDisplacementGraph.build(fn)
        assert max(len(c) for c in sdg.components()) > 36


class TestCenters:
    def test_input_center_found(self):
        fn, hot = input_sharing_function(8)
        sdg = SameDisplacementGraph.build(fn)
        comp = sdg.component_of(hot)
        centers = sdg.sharing_centers(comp, threshold=4)
        kinds = {(reg, kind) for reg, kind, __ in centers}
        assert (hot, "input_sharing") in kinds

    def test_output_center_found(self):
        fn, acc = output_sharing_function(8)
        sdg = SameDisplacementGraph.build(fn)
        comp = sdg.component_of(acc)
        centers = sdg.sharing_centers(comp, threshold=4)
        kinds = {(reg, kind) for reg, kind, __ in centers}
        assert (acc, "output_sharing") in kinds

    def test_centers_sorted_by_fanout(self):
        fn = shared_use_kernel(consumers=8)
        sdg = SameDisplacementGraph.build(fn)
        comp = max(sdg.components(), key=len)
        centers = sdg.sharing_centers(comp, threshold=2)
        fanouts = [f for __, __, f in centers]
        assert fanouts == sorted(fanouts, reverse=True)

    def test_threshold_filters(self):
        fn, hot = input_sharing_function(3)
        sdg = SameDisplacementGraph.build(fn)
        comp = sdg.component_of(hot)
        assert sdg.sharing_centers(comp, threshold=10) == []

"""Machine-model threading through the service: keys, artifacts, verify.

The back-compat contract is load-bearing: a request that omits
``machine`` (or spells out the default ``dsa``) must hash to the exact
key a pre-machine-aware service computed, so every cached artifact and
every checked-in baseline stays valid.  Non-default machines get their
own content addresses — artifacts can never alias across models.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.ir import print_function
from repro.resilience import AllocationVerifier
from repro.service import AllocationService, RequestError, ServiceConfig
from repro.service.artifact import (
    FLAG_DEFAULTS,
    SCHEMA_VERSION,
    artifact_bytes,
    build_artifact,
    build_module_artifact,
    cache_key,
    canonical_ir,
    canonical_json,
    module_cache_key,
    normalize_flags,
    normalize_request,
)

from .conftest import build_mac_kernel

FILE = {"registers": 32, "banks": 2}


@pytest.fixture(scope="module")
def ir():
    return print_function(build_mac_kernel(trip_count=8))


def request_for(ir, **extra):
    body = {"ir": ir, "file": dict(FILE), "method": "bpc"}
    body.update(extra)
    return body


class TestKeys:
    def test_default_machine_never_changes_the_key(self, ir):
        base = cache_key(ir, FILE, "bpc")
        assert cache_key(ir, FILE, "bpc", machine=None) == base
        assert cache_key(ir, FILE, "bpc", machine="dsa") == base
        assert cache_key(ir, FILE, "bpc", machine={"model": "dsa"}) == base

    def test_default_key_matches_pre_machine_payload(self, ir):
        """The exact pre-machine hash recipe still produces the key."""
        legacy_payload = {
            "schema": SCHEMA_VERSION,
            "ir": canonical_ir(ir),
            "file": {"registers": 32, "banks": 2, "subgroups": 0},
            "method": "bpc",
            "flags": normalize_flags(None),
        }
        legacy = hashlib.sha256(
            canonical_json(legacy_payload).encode("utf-8")
        ).hexdigest()
        assert cache_key(ir, FILE, "bpc") == legacy

    def test_ooo_machines_get_distinct_keys(self, ir):
        base = cache_key(ir, FILE, "bpc")
        default_ooo = cache_key(ir, FILE, "bpc", machine="ooo")
        wide = cache_key(
            ir, FILE, "bpc", machine={"model": "ooo", "issue_width": 4}
        )
        no_rename = cache_key(
            ir, FILE, "bpc", machine={"model": "ooo", "rename": False}
        )
        assert len({base, default_ooo, wide, no_rename}) == 4

    def test_equivalent_specs_hash_identically(self, ir):
        spelled = cache_key(
            ir, FILE, "bpc",
            machine={"model": "ooo", "issue_width": 2, "read_ports": 2,
                     "rob_size": 32, "iq_size": 16, "rename": True},
        )
        assert spelled == cache_key(ir, FILE, "bpc", machine="ooo")

    def test_module_keys_discriminate_too(self, ir):
        mod = ir + "\n" + ir.replace("@mac", "@mac2")
        assert module_cache_key(mod, FILE, "bpc") != module_cache_key(
            mod, FILE, "bpc", machine="ooo"
        )

    def test_bad_machine_is_a_request_error(self, ir):
        with pytest.raises(RequestError):
            cache_key(ir, FILE, "bpc", machine="vliw")
        with pytest.raises(RequestError):
            normalize_request(request_for(ir, machine={"model": "dsa", "x": 1}))


class TestNormalizeRequest:
    def test_machine_defaults_and_round_trips(self, ir):
        normalized = normalize_request(request_for(ir))
        assert normalized["machine"] == {"model": "dsa"}
        assert normalized["key"] == cache_key(ir, FILE, "bpc")

    def test_machine_spec_normalizes_into_the_key(self, ir):
        normalized = normalize_request(request_for(ir, machine="ooo"))
        assert normalized["machine"]["issue_width"] == 2
        assert normalized["key"] == cache_key(ir, FILE, "bpc", machine="ooo")
        # Idempotent: feeding the canonical spec back reproduces the key.
        again = normalize_request(
            request_for(ir, machine=normalized["machine"])
        )
        assert again["key"] == normalized["key"]


class TestArtifacts:
    def test_default_artifact_is_machine_free(self, ir):
        artifact = build_artifact(ir, FILE, "bpc")
        assert "machine" not in artifact
        assert "cycles" not in artifact["stats"]

    def test_ooo_artifact_carries_spec_and_cycles(self, ir):
        artifact = build_artifact(ir, FILE, "bpc", machine="ooo")
        assert artifact["machine"]["model"] == "ooo"
        stats = artifact["stats"]
        assert stats["cycles"] > 0
        assert "conflict_penalty_cycles" in stats
        assert "alignment_penalty_cycles" in stats
        assert artifact["key"] == cache_key(ir, FILE, "bpc", machine="ooo")

    def test_module_artifact_threads_machine_to_fragments(self, ir):
        mod = ir + "\n" + ir.replace("@mac", "@mac2")
        artifact = build_module_artifact(mod, FILE, "bpc", machine="ooo")
        assert artifact["machine"]["model"] == "ooo"
        assert all("cycles" in f["stats"] for f in artifact["functions"])
        assert artifact["key"] == module_cache_key(
            mod, FILE, "bpc", machine="ooo"
        )


class TestVerifier:
    def test_ooo_artifact_verifies_with_cycle_recheck(self, ir):
        artifact = build_artifact(ir, FILE, "bpc", machine="ooo")
        verifier = AllocationVerifier("strict")
        report = verifier.verify_bytes(
            artifact_bytes(artifact),
            expected_key=artifact["key"], original_ir=ir,
        )
        assert report.ok, report.findings
        assert "machine-cycles" in report.checks

    def test_tampered_cycles_fail_verification(self, ir):
        artifact = build_artifact(ir, FILE, "bpc", machine="ooo")
        artifact["stats"]["cycles"] += 1.0
        report = AllocationVerifier("strict").verify_artifact(
            artifact, expected_key=artifact["key"]
        )
        assert not report.ok
        assert any("recomputes" in f for f in report.findings)

    def test_tampered_machine_spec_fails_key_recheck(self, ir):
        artifact = build_artifact(ir, FILE, "bpc", machine="ooo")
        artifact["machine"]["issue_width"] = 4
        report = AllocationVerifier("strict").verify_artifact(
            artifact, original_ir=ir
        )
        assert not report.ok


class TestService:
    def test_ooo_and_dsa_requests_never_alias(self, ir):
        service = AllocationService(ServiceConfig(workers=0, verify="strict"))
        ooo_job = service.submit(request_for(ir, machine="ooo"))
        dsa_job = service.submit(request_for(ir))
        assert ooo_job.key != dsa_job.key
        service.process_once()
        service.process_once()
        assert ooo_job.status == "done", ooo_job.error
        assert dsa_job.status == "done", dsa_job.error
        assert json.loads(ooo_job.artifact)["machine"]["model"] == "ooo"
        assert "machine" not in json.loads(dsa_job.artifact)
        assert ooo_job.describe()["machine"] == "ooo"
        assert dsa_job.describe()["machine"] == "dsa"

    def test_identical_machine_requests_coalesce_and_hit(self, ir):
        service = AllocationService(ServiceConfig(workers=0))
        spec = {"model": "ooo", "issue_width": 4}
        first = service.submit(request_for(ir, machine=spec))
        second = service.submit(request_for(ir, machine=spec))
        assert second is first and first.coalesced == 1
        service.process_once()
        assert first.status == "done", first.error
        third = service.submit(request_for(ir, machine=spec))
        assert third.cache == "hit"
        assert third.artifact == first.artifact

    def test_pool_workers_carry_the_machine(self, ir):
        service = AllocationService(ServiceConfig(workers=2))
        job = service.submit(request_for(ir, machine="ooo"))
        service.process_once()
        assert job.status == "done", job.error
        artifact = json.loads(job.artifact)
        assert artifact["machine"]["model"] == "ooo"
        assert artifact["stats"]["cycles"] > 0

    def test_legacy_payload_shapes_still_execute(self, ir):
        from repro.service.queue import _execute_request

        # Pre-machine (5-tuple) and pre-telemetry (4-tuple) payloads.
        for payload in (
            (ir, FILE, "bpc", dict(FLAG_DEFAULTS), None),
            (ir, FILE, "bpc", dict(FLAG_DEFAULTS)),
        ):
            outcome = _execute_request(payload)
            assert "machine" not in outcome["artifact"]

    def test_module_request_with_machine(self, ir):
        mod = ir + "\n" + ir.replace("@mac", "@mac2")
        service = AllocationService(ServiceConfig(workers=0, verify="strict"))
        job = service.submit(request_for(mod, machine="ooo"))
        assert job.kind == "module"
        service.process_once()
        assert job.status == "done", job.error
        artifact = json.loads(job.artifact)
        assert artifact["machine"]["model"] == "ooo"
        assert len(artifact["functions"]) == 2

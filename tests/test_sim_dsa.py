"""Tests for the DSA VLIW cycle model."""

import pytest

from repro.banks import BankedRegisterFile, BankSubgroupRegisterFile
from repro.ir import parse_function
from repro.ir.types import PhysicalRegister
from repro.sim import DsaMachine

P = PhysicalRegister


def dsa():
    return BankSubgroupRegisterFile(16, 2, 4)


class TestBundling:
    def test_independent_cross_bank_ops_share_bundle(self):
        fn = parse_function(
            """
            func @f {
            block entry:
              $fp8 = fadd $fp0, $fp4
              $fp9 = fadd $fp1, $fp5
              ret
            }
            """
        )
        machine = DsaMachine(dsa())
        bundles = machine.bundle_block(fn.entry)
        # fadd1 reads banks {0,1}; fadd2 reads banks {0,1}: same-bank clash
        # -> cannot bundle.  Check the constraint applies.
        assert len(bundles[0]) == 1

    def test_disjoint_bank_ops_bundle(self):
        fn = parse_function(
            """
            func @f {
            block entry:
              $fp8 = fneg $fp0
              $fp9 = fneg $fp4
              ret
            }
            """
        )
        machine = DsaMachine(dsa())
        bundles = machine.bundle_block(fn.entry)
        # fp0 is bank 0, fp4 is bank 1: one read each, no clash.
        assert len(bundles[0]) == 2

    def test_dependent_ops_not_bundled(self):
        fn = parse_function(
            """
            func @f {
            block entry:
              $fp8 = fneg $fp0
              $fp9 = fneg $fp8
              ret
            }
            """
        )
        machine = DsaMachine(dsa())
        bundles = machine.bundle_block(fn.entry)
        assert len(bundles[0]) == 1

    def test_issue_width_limits(self):
        fn = parse_function(
            """
            func @f {
            block entry:
              $fp8 = li #1.0
              $fp9 = li #2.0
              $fp10 = li #3.0
              ret
            }
            """
        )
        machine = DsaMachine(dsa(), issue_width=2)
        bundles = machine.bundle_block(fn.entry)
        assert max(len(b) for b in bundles) <= 2

    def test_terminator_gets_own_bundle(self):
        fn = parse_function(
            "func @f {\nblock entry:\n  $fp8 = li #1.0\n  ret\n}"
        )
        machine = DsaMachine(dsa())
        bundles = machine.bundle_block(fn.entry)
        assert bundles[-1][0].kind.value == "ret"


class TestCycleModel:
    def test_conflict_penalty_counted(self):
        clean = parse_function(
            "func @f {\nblock entry:\n  $fp8 = fadd $fp0, $fp4\n  ret\n}"
        )
        # fp0 and fp8 share bank 0 *and* subgroup 0: pure bank conflict.
        dirty = parse_function(
            "func @f {\nblock entry:\n  $fp8 = fadd $fp0, $fp8\n  ret\n}"
        )
        machine = DsaMachine(dsa())
        assert machine.run(dirty).cycles == machine.run(clean).cycles + 1

    def test_alignment_penalty_counted(self):
        aligned = parse_function(
            "func @f {\nblock entry:\n  $fp9 = fadd $fp1, $fp5\n  ret\n}"
        )
        misaligned = parse_function(
            "func @f {\nblock entry:\n  $fp10 = fadd $fp1, $fp6\n  ret\n}"
        )
        machine = DsaMachine(dsa())
        clean_report = machine.run(aligned)
        dirty_report = machine.run(misaligned)
        assert dirty_report.alignment_penalty_cycles > clean_report.alignment_penalty_cycles

    def test_plain_banked_file_has_no_alignment_penalty(self):
        fn = parse_function(
            "func @f {\nblock entry:\n  $fp10 = fadd $fp1, $fp6\n  ret\n}"
        )
        machine = DsaMachine(BankedRegisterFile(16, 2))
        assert machine.run(fn).alignment_penalty_cycles == 0

    def test_loop_frequency_scales_cycles(self):
        body = """
            func @f {{
            block entry:
              $fp0 = li #1.0
              jmp l.header
            block l.header [trip={t}]:
              $fp8 = fneg $fp0
              br l.header prob={p}
            block l.exit:
              ret
            }}
        """
        machine = DsaMachine(dsa())
        short = machine.run(parse_function(body.format(t=2, p=0.5)))
        long = machine.run(parse_function(body.format(t=20, p=0.95)))
        assert long.cycles > short.cycles * 5

    def test_spill_code_counted(self):
        fn = parse_function(
            "func @f {\nblock entry:\n  $fp8 = li #1.0\n  ret\n}"
        )
        from repro.ir import instruction as ins

        fn.entry.insert(1, ins.store(P(8), spill_slot=0, spill=True))
        fn.entry.insert(2, ins.load(P(9), spill_slot=0, spill=True))
        machine = DsaMachine(dsa())
        report = machine.run(fn)
        assert report.spill_instructions == 2
        assert report.memory_penalty_cycles > 0

    def test_copies_counted(self):
        fn = parse_function(
            "func @f {\nblock entry:\n  $fp8 = li #1.0\n  $fp9 = mov $fp8\n  ret\n}"
        )
        machine = DsaMachine(dsa())
        assert machine.run(fn).copy_instructions == 1

    def test_merge(self):
        fn = parse_function(
            "func @f {\nblock entry:\n  $fp8 = fadd $fp0, $fp1\n  ret\n}"
        )
        machine = DsaMachine(dsa())
        a = machine.run(fn)
        merged = a.merge(a)
        assert merged.cycles == 2 * a.cycles

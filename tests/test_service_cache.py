"""Cache correctness: key discrimination, bit-identical hits, layers."""

from __future__ import annotations

import json

import pytest

from repro.banks import BankedRegisterFile
from repro.ir import print_function
from repro.prescount import PipelineConfig, run_pipeline
from repro.service import (
    AllocationCache,
    RequestError,
    artifact_bytes,
    build_artifact,
    cache_key,
    canonical_ir,
)
from repro.service.cache import DISK_FORMAT, _unframe
from repro.sim import analyze_static

from .conftest import build_mac_kernel

FILE = {"registers": 32, "banks": 2}


@pytest.fixture
def ir() -> str:
    return print_function(build_mac_kernel())


# ----------------------------------------------------------------------
# Key definition
# ----------------------------------------------------------------------
def test_key_is_stable_and_whitespace_insensitive(ir):
    key = cache_key(ir, FILE, "bpc")
    assert key == cache_key(ir, FILE, "bpc")
    ragged = "\n".join("  " + line + "   ; a comment" for line in ir.splitlines())
    assert cache_key(ragged, FILE, "bpc") == key


def test_key_changes_with_ir_config_method_flags(ir):
    base = cache_key(ir, FILE, "bpc")
    other_ir = print_function(build_mac_kernel(trip_count=32))
    assert cache_key(other_ir, FILE, "bpc") != base
    assert cache_key(ir, {"registers": 32, "banks": 4}, "bpc") != base
    assert cache_key(ir, {"registers": 16, "banks": 2}, "bpc") != base
    assert cache_key(ir, {"registers": 32, "banks": 2, "subgroups": 4}, "bpc") != base
    assert cache_key(ir, FILE, "bcr") != base
    assert cache_key(ir, FILE, "non") != base
    assert cache_key(ir, FILE, "bpc", {"thres_ratio": 0.5}) != base


def test_default_flags_hash_like_empty_flags(ir):
    explicit = {"run_coalescing": True, "thres_ratio": 0.8}
    assert cache_key(ir, FILE, "bpc", explicit) == cache_key(ir, FILE, "bpc")
    assert cache_key(ir, FILE, "bpc", {}) == cache_key(ir, FILE, "bpc", None)


def test_bad_requests_raise(ir):
    with pytest.raises(RequestError):
        cache_key("not ir at all", FILE, "bpc")
    with pytest.raises(RequestError):
        cache_key(ir, FILE, "fastest")
    with pytest.raises(RequestError):
        cache_key(ir, {"registers": 32, "lanes": 9}, "bpc")
    with pytest.raises(RequestError):
        cache_key(ir, FILE, "bpc", {"turbo": True})
    with pytest.raises(RequestError):
        canonical_ir("func @x {")


# ----------------------------------------------------------------------
# Artifact schema
# ----------------------------------------------------------------------
def test_artifact_matches_direct_pipeline_run(ir):
    artifact = build_artifact(ir, FILE, "bpc")
    register_file = BankedRegisterFile(32, 2)
    pipe = run_pipeline(build_mac_kernel(), PipelineConfig(register_file, "bpc"))
    static = analyze_static(pipe.function, register_file, am=pipe.analyses)
    assert artifact["ir"] == print_function(pipe.function)
    assert artifact["stats"]["spills"] == pipe.spill_count
    assert artifact["stats"]["bank_conflicts"] == static.bank_conflicts
    assert artifact["key"] == cache_key(ir, FILE, "bpc")
    # Canonical bytes round-trip and are deterministic.
    data = artifact_bytes(artifact)
    assert json.loads(data) == artifact
    assert artifact_bytes(build_artifact(ir, FILE, "bpc")) == data


# ----------------------------------------------------------------------
# Cache layers
# ----------------------------------------------------------------------
def test_hit_after_miss_is_bit_identical(ir):
    cache = AllocationCache()
    key = cache_key(ir, FILE, "bpc")
    assert cache.get(key) is None
    cold = artifact_bytes(build_artifact(ir, FILE, "bpc"))
    cache.put(key, cold)
    assert cache.get(key) == cold
    assert cache.stats() == {
        "entries": 1,
        "hits": 1,
        "misses": 1,
        "quarantined": 0,
        "disk_write_errors": 0,
    }


def test_disk_layer_round_trips_and_survives_restart(tmp_path, ir):
    key = cache_key(ir, FILE, "non")
    data = artifact_bytes(build_artifact(ir, FILE, "non"))
    cache = AllocationCache(cache_dir=str(tmp_path))
    cache.put(key, data)
    # On disk the payload sits behind a checksummed header frame.
    raw = (tmp_path / key[:2] / f"{key}.json").read_bytes()
    assert raw.startswith(DISK_FORMAT + b" ")
    assert raw.endswith(data)
    assert _unframe(raw) == data
    # A fresh instance over the same directory serves the same bytes.
    reopened = AllocationCache(cache_dir=str(tmp_path))
    assert reopened.get(key) == data
    assert key in reopened


def test_lru_eviction_keeps_most_recent():
    cache = AllocationCache(max_entries=2)
    cache.put("a" * 64, b"1")
    cache.put("b" * 64, b"2")
    assert cache.get("a" * 64) == b"1"  # refresh a
    cache.put("c" * 64, b"3")  # evicts b
    assert cache.get("b" * 64) is None
    assert cache.get("a" * 64) == b"1"
    assert cache.get("c" * 64) == b"3"
    assert len(cache) == 2

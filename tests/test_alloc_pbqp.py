"""Tests for the bank-aware PBQP allocator."""

import pytest

from repro.alloc import PbqpAllocator
from repro.analysis import InterferenceGraph, LiveIntervals
from repro.banks import BankedRegisterFile
from repro.ir.types import FP, VirtualRegister
from repro.prescount import PresCountBankAssigner
from repro.sim import analyze_static, observably_equivalent
from tests.conftest import build_mac_kernel


def remaining_vregs(function):
    return [
        r
        for __, i in function.instructions()
        for r in i.regs()
        if isinstance(r, VirtualRegister) and r.regclass == FP
    ]


class TestBasics:
    def test_all_rewritten(self, rf_rv2):
        result = PbqpAllocator(rf_rv2).run(build_mac_kernel())
        assert remaining_vregs(result.function) == []

    def test_no_spill_when_roomy(self, rf_rv2):
        result = PbqpAllocator(rf_rv2).run(build_mac_kernel())
        assert result.spill_count == 0

    def test_interference_respected(self, rf_rv2):
        fn = build_mac_kernel()
        result = PbqpAllocator(rf_rv2).run(fn)
        rig = InterferenceGraph.build(fn)
        for a in rig.nodes():
            for b in rig.neighbors(a):
                if a in result.assignment and b in result.assignment:
                    assert result.assignment[a] != result.assignment[b]

    def test_semantics_preserved(self, rf_rv2):
        fn = build_mac_kernel(n_pairs=6)
        result = PbqpAllocator(rf_rv2).run(fn)
        assert observably_equivalent(fn, result.function)

    def test_spills_under_pressure_with_semantics(self):
        rf = BankedRegisterFile(8, 2)
        fn = build_mac_kernel(n_pairs=10)
        result = PbqpAllocator(rf).run(fn)
        assert result.spill_count > 0
        assert observably_equivalent(fn, result.function)

    def test_input_untouched(self, rf_rv2):
        fn = build_mac_kernel()
        PbqpAllocator(rf_rv2).run(fn)
        assert remaining_vregs(fn)


class TestBankAwareness:
    def test_quadratic_terms_remove_conflicts(self, rf_rv2):
        fn = build_mac_kernel(n_pairs=6)
        aware = PbqpAllocator(rf_rv2, bank_conflict_weight=1.0).run(fn)
        blind = PbqpAllocator(rf_rv2, bank_conflict_weight=0.0).run(fn)
        aware_conflicts = analyze_static(aware.function, rf_rv2).bank_conflicts
        blind_conflicts = analyze_static(blind.function, rf_rv2).bank_conflicts
        assert aware_conflicts <= blind_conflicts
        assert aware_conflicts == 0

    def test_prescount_assignment_integrates(self, rf_rv2):
        """Feeding Algorithm 1's decision as linear nudges steers PBQP."""
        fn = build_mac_kernel(n_pairs=4)
        assignment = PresCountBankAssigner(rf_rv2).assign(fn)
        result = PbqpAllocator(
            rf_rv2, bank_conflict_weight=0.0, bank_assignment=assignment
        ).run(fn)
        agreements = sum(
            1
            for vreg, preg in result.assignment.items()
            if assignment.bank_of(vreg) is not None
            and rf_rv2.bank_of(preg) == assignment.bank_of(vreg)
        )
        assert agreements >= len(result.assignment) * 0.7

    def test_domain_truncation_keeps_all_banks(self):
        rf = BankedRegisterFile(1024, 4)
        allocator = PbqpAllocator(rf, max_registers_per_node=16)
        domain = allocator._domain()
        assert len(domain) == 16
        assert {rf.bank_of(r) for r in domain} == {0, 1, 2, 3}

    def test_large_file_allocation(self):
        rf = BankedRegisterFile(1024, 2)
        fn = build_mac_kernel(n_pairs=8)
        result = PbqpAllocator(rf).run(fn)
        assert result.spill_count == 0
        assert analyze_static(result.function, rf).bank_conflicts == 0

"""Tests for platform descriptors (RV#1 / RV#2 / DSA of §IV-A2)."""

import pytest

from repro.banks import BankSubgroupRegisterFile, BankedRegisterFile
from repro.sim import (
    DSA_SUBGROUPED,
    interleaved_files,
    platform_dsa,
    platform_rv1,
    platform_rv2,
)


class TestRv1:
    def test_setting_matches_paper(self):
        """1024 registers, 2/4/8 banks -> 512/256/128 per bank."""
        platform = platform_rv1()
        assert platform.bank_settings == [2, 4, 8]
        for banks in (2, 4, 8):
            rf = platform.file_for(banks)
            assert rf.num_registers == 1024
            assert rf.registers_per_bank == 1024 // banks

    def test_static_only(self):
        assert not platform_rv1().collects_dynamic


class TestRv2:
    def test_setting_matches_paper(self):
        """riscv-64's 32 registers, 2/4 banks -> 16/8 per bank."""
        platform = platform_rv2()
        assert platform.bank_settings == [2, 4]
        assert platform.file_for(2).registers_per_bank == 16
        assert platform.file_for(4).registers_per_bank == 8

    def test_collects_dynamic(self):
        assert platform_rv2().collects_dynamic

    def test_unknown_setting_raises(self):
        with pytest.raises(KeyError, match="available"):
            platform_rv2().file_for(8)


class TestDsa:
    def test_subgrouped_file(self):
        platform = platform_dsa()
        rf = platform.file_for(DSA_SUBGROUPED)
        assert isinstance(rf, BankSubgroupRegisterFile)
        assert rf.num_banks == 2 and rf.num_subgroups == 4
        assert rf.num_registers == 1024

    def test_comparison_hardware_points(self):
        platform = platform_dsa()
        for banks in (2, 4, 8, 16):
            rf = platform.file_for(banks)
            assert isinstance(rf, BankedRegisterFile)
            assert rf.num_banks == banks


class TestInterleavedFiles:
    def test_default_sweep(self):
        files = interleaved_files(1024)
        assert sorted(files) == [2, 4, 8, 16]
        assert all(f.num_registers == 1024 for f in files.values())

    def test_custom_settings(self):
        files = interleaved_files(64, (2,))
        assert list(files) == [2]

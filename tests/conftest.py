"""Shared fixtures: small kernels and register files used across tests."""

from __future__ import annotations

import os

import pytest

from repro.banks import BankedRegisterFile, BankSubgroupRegisterFile
from repro.ir import IRBuilder


def pytest_collection_modifyitems(config, items):
    """Skip process-pool tests where there is nothing to parallelize."""
    if (os.cpu_count() or 1) >= 2:
        return
    skip = pytest.mark.skip(reason="parallel harness tests need >= 2 CPUs")
    for item in items:
        if "parallel" in item.keywords:
            item.add_marker(skip)


def build_mac_kernel(n_pairs: int = 4, trip_count: int = 16):
    """Multiply-accumulate kernel: ``acc += x_i * y_i`` in a loop.

    Every fmul reads two distinct registers (conflict-relevant), every
    fadd reads the accumulator plus the product.
    """
    b = IRBuilder("mac")
    xs = [b.const(float(i + 1)) for i in range(n_pairs)]
    ys = [b.const(float(i + 2)) for i in range(n_pairs)]
    acc = b.const(0.0)
    with b.loop(trip_count=trip_count):
        for x, y in zip(xs, ys):
            product = b.arith("fmul", x, y)
            b.arith_into(acc, "fadd", acc, product)
    b.ret(acc)
    return b.finish()


def build_diamond_kernel():
    """Straight-line + if/else diamond, no loops."""
    b = IRBuilder("diamond")
    x = b.const(1.0)
    y = b.const(2.0)
    acc = b.const(0.0)
    with b.if_else(taken_prob=0.25) as orelse:
        b.arith_into(acc, "fadd", acc, x)
        orelse()
        b.arith_into(acc, "fsub", acc, y)
    b.ret(acc)
    return b.finish()


def build_nested_loops(trips=(4, 8)):
    """A two-deep loop nest with one op per level."""
    b = IRBuilder("nested")
    x = b.const(1.0)
    acc = b.const(0.0)
    with b.loop(trip_count=trips[0]):
        b.arith_into(acc, "fadd", acc, x)
        with b.loop(trip_count=trips[1]):
            b.arith_into(acc, "fmul", acc, x)
    b.ret(acc)
    return b.finish()


@pytest.fixture
def mac_kernel():
    return build_mac_kernel()

@pytest.fixture
def diamond_kernel():
    return build_diamond_kernel()


@pytest.fixture
def nested_kernel():
    return build_nested_loops()


@pytest.fixture
def rf_small():
    """Tight 2-banked file: 8 registers."""
    return BankedRegisterFile(8, 2)


@pytest.fixture
def rf_rv2():
    """Platform-RV#2-style: 32 registers, 2 banks."""
    return BankedRegisterFile(32, 2)


@pytest.fixture
def rf_rich():
    """Platform-RV#1-style: 1024 registers, 4 banks."""
    return BankedRegisterFile(1024, 4)


@pytest.fixture
def rf_dsa():
    """The paper's DSA file: 1024 registers, 2 banks x 4 subgroups."""
    return BankSubgroupRegisterFile(1024, 2, 4)

"""Tests for the value-level reference interpreter."""

import math

import pytest

from repro.ir import IRBuilder, parse_function
from repro.sim import ExecutionError, ValueInterpreter, observably_equivalent


class TestArithmetic:
    def run_ret(self, text):
        return ValueInterpreter().run(parse_function(text)).return_values[0]

    def test_fadd(self):
        assert self.run_ret(
            "func @f {\nblock entry:\n  %v0:fp = li #1.5\n  %v1:fp = li #2.5\n"
            "  %v2:fp = fadd %v0:fp, %v1:fp\n  ret %v2:fp\n}"
        ) == 4.0

    def test_fmadd(self):
        assert self.run_ret(
            "func @f {\nblock entry:\n  %v0:fp = li #2\n  %v1:fp = li #3\n"
            "  %v2:fp = li #4\n  %v3:fp = fmadd %v0:fp, %v1:fp, %v2:fp\n"
            "  ret %v3:fp\n}"
        ) == 10.0

    def test_frelu(self):
        assert self.run_ret(
            "func @f {\nblock entry:\n  %v0:fp = li #-3\n"
            "  %v1:fp = frelu %v0:fp\n  ret %v1:fp\n}"
        ) == 0.0

    def test_division_by_zero_is_inf(self):
        value = self.run_ret(
            "func @f {\nblock entry:\n  %v0:fp = li #1\n  %v1:fp = li #0\n"
            "  %v2:fp = fdiv %v0:fp, %v1:fp\n  ret %v2:fp\n}"
        )
        assert math.isinf(value)

    def test_unknown_opcode_raises(self):
        fn = parse_function(
            "func @f {\nblock entry:\n  %v0:fp = li #1\n"
            "  %v1:fp = warp %v0:fp, %v0:fp\n  ret %v1:fp\n}"
        )
        with pytest.raises(ExecutionError, match="semantics"):
            ValueInterpreter().run(fn)

    def test_undefined_read_raises(self):
        fn = parse_function(
            "func @f {\nblock entry:\n  ret %v9:fp\n}"
        )
        with pytest.raises(ExecutionError, match="undefined"):
            ValueInterpreter().run(fn)


class TestControlFlow:
    def test_loop_accumulates(self):
        b = IRBuilder("f")
        acc = b.const(0.0)
        one = b.const(1.0)
        with b.loop(trip_count=7):
            b.arith_into(acc, "fadd", acc, one)
        b.ret(acc)
        trace = ValueInterpreter().run(b.finish())
        assert trace.return_values == (7.0,)

    def test_nested_loops_multiply(self):
        b = IRBuilder("f")
        acc = b.const(0.0)
        one = b.const(1.0)
        with b.loop(trip_count=3):
            with b.loop(trip_count=5):
                b.arith_into(acc, "fadd", acc, one)
        b.ret(acc)
        assert ValueInterpreter().run(b.finish()).return_values == (15.0,)

    def test_branches_deterministic_per_seed(self):
        b = IRBuilder("f")
        acc = b.const(0.0)
        one = b.const(1.0)
        with b.loop(trip_count=20):
            with b.if_then(taken_prob=0.5):
                b.arith_into(acc, "fadd", acc, one)
        b.ret(acc)
        fn = b.finish()
        a = ValueInterpreter(seed=5).run(fn).return_values
        b2 = ValueInterpreter(seed=5).run(fn).return_values
        assert a == b2

    def test_budget_truncates(self):
        b = IRBuilder("f")
        acc = b.const(0.0)
        with b.loop(trip_count=1000):
            b.arith_into(acc, "fadd", acc, acc)
        b.ret(acc)
        trace = ValueInterpreter(max_instructions=50).run(b.finish())
        assert trace.truncated


class TestSpillMemory:
    def test_spill_round_trip(self):
        fn = parse_function(
            "func @f {\nblock entry:\n  $fp0 = li #42\n  ret $fp1\n}"
        )
        from repro.ir import instruction as ins
        from repro.ir.types import PhysicalRegister as P

        fn.entry.insert(1, ins.store(P(0), spill_slot=7, spill=True))
        fn.entry.insert(2, ins.load(P(1), spill_slot=7, spill=True))
        assert ValueInterpreter().run(fn).return_values == (42.0,)

    def test_reload_before_store_raises(self):
        fn = parse_function("func @f {\nblock entry:\n  ret $fp1\n}")
        from repro.ir import instruction as ins
        from repro.ir.types import PhysicalRegister as P

        fn.entry.insert(0, ins.load(P(1), spill_slot=0, spill=True))
        with pytest.raises(ExecutionError, match="slot"):
            ValueInterpreter().run(fn)

    def test_plain_stores_are_observable(self):
        b = IRBuilder("f")
        x = b.const(3.0)
        b.store(x)
        b.ret()
        trace = ValueInterpreter().run(b.finish())
        assert trace.stored_values == [3.0]


class TestEquivalence:
    def test_identical_functions_equivalent(self):
        from tests.conftest import build_mac_kernel

        fn = build_mac_kernel()
        assert observably_equivalent(fn, fn.clone())

    def test_different_results_detected(self):
        a = parse_function(
            "func @f {\nblock entry:\n  %v0:fp = li #1\n  ret %v0:fp\n}"
        )
        b = parse_function(
            "func @f {\nblock entry:\n  %v0:fp = li #2\n  ret %v0:fp\n}"
        )
        assert not observably_equivalent(a, b)

    def test_nan_matches_nan(self):
        text = (
            "func @f {{\nblock entry:\n  %v0:fp = li #{a}\n  %v1:fp = li #0\n"
            "  %v2:fp = fdiv %v0:fp, %v1:fp\n  ret %v2:fp\n}}"
        )
        a = parse_function(text.format(a=0))
        b = parse_function(text.format(a=0))
        assert observably_equivalent(a, b)

    def test_store_count_mismatch_detected(self):
        a = parse_function(
            "func @f {\nblock entry:\n  %v0:fp = li #1\n  store %v0:fp\n  ret\n}"
        )
        b = parse_function("func @f {\nblock entry:\n  ret\n}")
        assert not observably_equivalent(a, b)

"""Integration tests: full pipeline over all three suites at small scale,
checking the paper's qualitative results end to end."""

import pytest

from repro.banks import BankedRegisterFile, BankSubgroupRegisterFile
from repro.prescount import PipelineConfig, run_pipeline
from repro.sim import DsaMachine, analyze_static, observably_equivalent
from repro.workloads import cnn_suite, dsa_suite, specfp_suite


@pytest.fixture(scope="module")
def spec_functions():
    return specfp_suite(scale=0.01).functions()


@pytest.fixture(scope="module")
def cnn_functions():
    return cnn_suite(scale=0.15).functions()


@pytest.fixture(scope="module")
def dsa_functions():
    return dsa_suite(idft_points=6).functions()


def total_conflicts(functions, rf, method):
    total = 0
    for fn in functions:
        result = run_pipeline(fn, PipelineConfig(rf, method))
        total += analyze_static(result.function, rf).conflicts
    return total


class TestSuiteWideOrdering:
    """The paper's headline: non >= bcr >= bpc in aggregate."""

    @pytest.mark.parametrize("banks", [2, 4])
    def test_rv1_ordering_on_spec(self, spec_functions, banks):
        rf = BankedRegisterFile(1024, banks)
        non = total_conflicts(spec_functions, rf, "non")
        bcr = total_conflicts(spec_functions, rf, "bcr")
        bpc = total_conflicts(spec_functions, rf, "bpc")
        assert non > bcr >= bpc

    def test_rv1_ordering_on_cnn(self, cnn_functions):
        rf = BankedRegisterFile(1024, 2)
        non = total_conflicts(cnn_functions, rf, "non")
        bpc = total_conflicts(cnn_functions, rf, "bpc")
        assert non > bpc

    def test_more_banks_fewer_conflicts_under_non(self, spec_functions):
        counts = [
            total_conflicts(spec_functions, BankedRegisterFile(1024, banks), "non")
            for banks in (2, 4, 8)
        ]
        assert counts[0] > counts[1] > counts[2]

    def test_roughly_linear_bank_scaling(self, spec_functions):
        """Paper: conflicts roughly halve when banks double (under non)."""
        two = total_conflicts(spec_functions, BankedRegisterFile(1024, 2), "non")
        four = total_conflicts(spec_functions, BankedRegisterFile(1024, 4), "non")
        assert 0.25 < four / two < 0.75


class TestSemanticsAcrossSuites:
    def test_spec_semantics(self, spec_functions):
        rf = BankedRegisterFile(32, 2)
        for fn in spec_functions[:20]:
            result = run_pipeline(fn, PipelineConfig(rf, "bpc"))
            assert observably_equivalent(fn, result.function), fn.name

    def test_cnn_semantics(self, cnn_functions):
        rf = BankedRegisterFile(32, 2)
        for fn in cnn_functions:
            result = run_pipeline(fn, PipelineConfig(rf, "bpc"))
            assert observably_equivalent(fn, result.function), fn.name

    def test_dsa_semantics(self, dsa_functions):
        rf = BankSubgroupRegisterFile(1024, 2, 4)
        for fn in dsa_functions:
            result = run_pipeline(fn, PipelineConfig(rf, "bpc"))
            assert observably_equivalent(fn, result.function), fn.name


class TestDsaHeadline:
    def test_bpc_near_eliminates_dsa_conflicts(self, dsa_functions):
        """Table VI: ~99.9% reduction on the 2x4 DSA."""
        rf = BankSubgroupRegisterFile(1024, 2, 4)
        base_rf = BankedRegisterFile(1024, 2)
        base = total_conflicts(dsa_functions, base_rf, "non")
        bpc = total_conflicts(dsa_functions, rf, "bpc")
        assert bpc <= base * 0.05

    def test_bpc_beats_16_banked_hardware(self, dsa_functions):
        """Table VI: 2x4-bpc beats even 16-non."""
        rf = BankSubgroupRegisterFile(1024, 2, 4)
        hw16 = BankedRegisterFile(1024, 16)
        bpc = total_conflicts(dsa_functions, rf, "bpc")
        non16 = total_conflicts(dsa_functions, hw16, "non")
        assert bpc < non16

    def test_cycle_model_favors_bpc_on_reductions(self):
        """Table VII: compute-intensive reductions gain cycles."""
        from repro.workloads import reduce_unrolled_kernel

        fn = reduce_unrolled_kernel()
        dsa_rf = BankSubgroupRegisterFile(1024, 2, 4)
        hw_rf = BankedRegisterFile(1024, 2)
        machine_bpc = DsaMachine(dsa_rf)
        machine_hw = DsaMachine(hw_rf)
        bpc = run_pipeline(fn, PipelineConfig(dsa_rf, "bpc"))
        non = run_pipeline(fn, PipelineConfig(hw_rf, "non"))
        assert machine_bpc.run(bpc.function).cycles < machine_hw.run(non.function).cycles


class TestSpillBehaviour:
    def test_rich_file_spill_free(self, spec_functions):
        rf = BankedRegisterFile(1024, 2)
        for fn in spec_functions:
            result = run_pipeline(fn, PipelineConfig(rf, "bpc"))
            assert result.spill_count == 0, fn.name

    def test_tight_file_spills_somewhere(self, spec_functions):
        rf = BankedRegisterFile(32, 2)
        total = sum(
            run_pipeline(fn, PipelineConfig(rf, "non")).spill_count
            for fn in spec_functions
        )
        assert total > 0  # Table I: high-pressure benchmarks spill at 32

    def test_bpc_spill_increment_is_modest(self, spec_functions):
        """Tables III/V: SI stays small relative to conflict reduction."""
        rf = BankedRegisterFile(32, 2)
        non_spills = non_conf = bpc_spills = bpc_conf = 0
        for fn in spec_functions:
            non = run_pipeline(fn, PipelineConfig(rf, "non"))
            bpc = run_pipeline(fn, PipelineConfig(rf, "bpc"))
            non_spills += non.spill_count
            bpc_spills += bpc.spill_count
            non_conf += analyze_static(non.function, rf).conflicts
            bpc_conf += analyze_static(bpc.function, rf).conflicts
        conflict_reduction = non_conf - bpc_conf
        spill_increment = bpc_spills - non_spills
        assert conflict_reduction > 0
        assert spill_increment < conflict_reduction

"""Tests for the IR structural verifier."""

import pytest

from repro.ir import (
    Function,
    IRBuilder,
    Module,
    VerificationError,
    instruction as ins,
    verify_function,
    verify_module,
)
from repro.ir.types import VirtualRegister
from tests.conftest import build_mac_kernel

V = VirtualRegister


def make_ok():
    fn = Function("ok")
    blk = fn.add_block("entry")
    v = fn.new_vreg()
    blk.append(ins.loadimm(v, 1.0))
    blk.append(ins.ret(v))
    return fn


class TestAccepts:
    def test_minimal(self):
        verify_function(make_ok())

    def test_generated_kernel(self):
        verify_function(build_mac_kernel())


class TestRejects:
    def test_empty_function(self):
        with pytest.raises(VerificationError):
            verify_function(Function("empty"))

    def test_duplicate_labels(self):
        fn = make_ok()
        # Bypass add_block's own check.
        fn.blocks.append(type(fn.blocks[0])("entry"))
        with pytest.raises(VerificationError, match="duplicate"):
            verify_function(fn)

    def test_missing_branch_target(self):
        fn = Function("f")
        blk = fn.add_block("entry")
        blk.append(ins.jump("nowhere"))
        with pytest.raises(VerificationError, match="target"):
            verify_function(fn)

    def test_terminator_not_last(self):
        fn = make_ok()
        fn.entry.instructions.insert(0, ins.ret())
        with pytest.raises(VerificationError, match="terminator"):
            verify_function(fn)

    def test_fall_off_function_end(self):
        fn = Function("f")
        blk = fn.add_block("entry")
        blk.append(ins.loadimm(fn.new_vreg(), 1.0))
        with pytest.raises(VerificationError, match="falls off"):
            verify_function(fn)

    def test_undefined_vreg_use(self):
        fn = Function("f")
        blk = fn.add_block("entry")
        blk.append(ins.ret(V(99)))
        with pytest.raises(VerificationError, match="never"):
            verify_function(fn)

    def test_undefined_use_allowed_when_disabled(self):
        fn = Function("f")
        blk = fn.add_block("entry")
        blk.append(ins.ret(V(99)))
        verify_function(fn, require_defs=False)

    def test_no_reachable_ret(self):
        fn = Function("f")
        a = fn.add_block("entry")
        a.append(ins.jump("entry"))  # infinite self-loop, no ret
        with pytest.raises(VerificationError, match="ret"):
            verify_function(fn)

    def test_bad_trip_count(self):
        b = IRBuilder("f")
        with b.loop(trip_count=3):
            b.const(1.0)
        fn = b.finish()
        header = next(blk for blk in fn.blocks if blk.attrs.get("loop_header"))
        header.attrs["trip_count"] = 0
        with pytest.raises(VerificationError, match="trip_count"):
            verify_function(fn)


class TestModule:
    def test_module_ok(self):
        m = Module("m")
        m.add(make_ok())
        verify_module(m)

    def test_duplicate_function_names(self):
        m = Module("m")
        m.add(make_ok())
        m.add(make_ok())
        with pytest.raises(VerificationError, match="duplicate"):
            verify_module(m)

    def test_module_propagates_function_errors(self):
        m = Module("m")
        m.add(Function("empty"))
        with pytest.raises(VerificationError):
            verify_module(m)

"""Shard layer: hash ring, routing invariants, eviction/respawn, chaos."""

from __future__ import annotations

import threading
import time

import pytest

from repro.ir import print_function
from repro.resilience import FAULTS, FaultPlan
from repro.service import (
    HashRing,
    LocalShard,
    NoShardAvailableError,
    RequestError,
    ServiceConfig,
    ServiceError,
    ShardError,
    ShardRouter,
    artifact_bytes,
    build_artifact,
    normalize_request,
)
from repro.service.client import ServiceClient
from repro.service.shard import (
    ShardFrontendServer,
    shard_cache_dir,
    shutdown_shard_server,
)

from .conftest import build_mac_kernel


@pytest.fixture(autouse=True)
def disarm():
    """Never leak an armed fault plan into other tests."""
    yield
    FAULTS.disarm()


def make_request(method="bpc", trip_count=16, **extra):
    request = {
        "ir": print_function(build_mac_kernel(trip_count=trip_count)),
        "file": {"registers": 32, "banks": 2},
        "method": method,
    }
    request.update(extra)
    return request


def make_router(n=3, **kwargs):
    shards = [LocalShard(f"s{i}", ServiceConfig()) for i in range(n)]
    return ShardRouter(shards, **kwargs)


# ----------------------------------------------------------------------
# Hash ring
# ----------------------------------------------------------------------
def test_ring_lookup_deterministic_and_total():
    ring = HashRing(replicas=64)
    for name in ("s0", "s1", "s2"):
        ring.add(name)
    keys = [f"key-{i}" for i in range(200)]
    first = {k: ring.lookup(k) for k in keys}
    assert set(first.values()) == {"s0", "s1", "s2"}  # no starved member
    assert {k: ring.lookup(k) for k in keys} == first


def test_ring_remove_remaps_only_the_dead_members_keys():
    ring = HashRing(replicas=64)
    for name in ("s0", "s1", "s2"):
        ring.add(name)
    keys = [f"key-{i}" for i in range(300)]
    before = {k: ring.lookup(k) for k in keys}
    ring.remove("s1")
    after = {k: ring.lookup(k) for k in keys}
    for key in keys:
        if before[key] == "s1":
            assert after[key] in ("s0", "s2")
        else:  # survivors keep their slices untouched
            assert after[key] == before[key]


def test_ring_re_add_restores_exact_ownership():
    # vnode positions derive from the member *name*, so a respawned
    # worker reclaims precisely its old key slice (cache stays warm).
    ring = HashRing(replicas=64)
    for name in ("s0", "s1", "s2"):
        ring.add(name)
    keys = [f"key-{i}" for i in range(300)]
    before = {k: ring.lookup(k) for k in keys}
    ring.remove("s1")
    ring.add("s1")
    assert {k: ring.lookup(k) for k in keys} == before


def test_ring_preference_chain_distinct_and_headed_by_owner():
    ring = HashRing(replicas=64)
    for name in ("s0", "s1", "s2"):
        ring.add(name)
    for i in range(50):
        chain = ring.preference(f"key-{i}")
        assert len(chain) == len(set(chain)) == 3
        assert chain[0] == ring.lookup(f"key-{i}")


def test_ring_empty_and_membership():
    ring = HashRing()
    assert ring.lookup("k") is None
    assert ring.preference("k") == []
    ring.add("s0")
    ring.add("s0")  # idempotent: no duplicate vnodes
    assert ring.members == ["s0"]
    assert len(ring._positions) == ring.replicas
    ring.remove("s0")
    ring.remove("s0")  # idempotent
    assert len(ring) == 0
    with pytest.raises(ValueError):
        HashRing(replicas=0)


def test_shard_cache_dir():
    assert shard_cache_dir(None, "s0") is None
    path = shard_cache_dir("/tmp/base", "s1")
    assert path.endswith("shard-s1")


# ----------------------------------------------------------------------
# Routing invariants
# ----------------------------------------------------------------------
def test_same_key_routes_to_same_live_shard():
    router = make_router()
    try:
        first = router.submit(make_request())
        assert router.wait(first["job_id"])["status"] == "done"
        second = router.submit(make_request())
        assert first["shard"] == second["shard"]
        done = router.wait(second["job_id"])
        assert done["status"] == "done"
        assert done["cache"] == "hit"  # same key → same shard → warm cache
    finally:
        router.close()


def test_job_ids_are_shard_qualified_and_round_trip():
    router = make_router()
    try:
        status = router.submit(make_request())
        assert status["job_id"].endswith(f"@{status['shard']}")
        done = router.wait(status["job_id"])
        assert done["status"] == "done"
        blob = router.result(status["job_id"])
        assert blob.startswith(b"{")
        with pytest.raises(RequestError):
            router.poll("j000001")  # unqualified
        with pytest.raises(ShardError):
            router.poll("j000001@nope")  # unknown shard
        with pytest.raises(ServiceError):
            router.poll(f"j999999@{status['shard']}")  # unknown job
    finally:
        router.close()


def test_concurrent_duplicate_submits_execute_exactly_once():
    router = make_router()
    request = make_request()
    statuses: list[dict] = []
    lock = threading.Lock()

    def worker():
        status = router.submit(dict(request))
        done = router.wait(status["job_id"])
        with lock:
            statuses.append(done)

    try:
        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(statuses) == 8
        assert {s["status"] for s in statuses} == {"done"}
        assert len({s["shard"] for s in statuses}) == 1  # one owner
        stats = router.stats()
        assert stats["counters"]["executed"] == 1  # fleet-wide
        blobs = {router.result(s["job_id"]) for s in statuses}
        assert len(blobs) == 1  # bit-identical
    finally:
        router.close()


def test_requests_spread_across_shards():
    router = make_router()
    try:
        for trip in range(4, 24):
            router.submit(make_request(trip_count=trip))
        routed = router.stats()["router"]["routed"]
        assert sum(routed.values()) == 20
        assert sum(1 for count in routed.values() if count > 0) >= 2
    finally:
        router.close()


def test_bad_request_propagates_without_eviction():
    router = make_router()
    try:
        with pytest.raises(RequestError):
            router.submit({"ir": ""})
        assert len(router.ring) == 3
    finally:
        router.close()


# ----------------------------------------------------------------------
# Eviction / respawn
# ----------------------------------------------------------------------
def test_dead_shard_keys_hand_off_then_return_after_respawn():
    router = make_router(auto_respawn=False, breaker_threshold=1)
    request = make_request()
    key = normalize_request(request)["key"]
    try:
        owner = router.ring.lookup(key)
        router.shards[owner].kill()
        status = router.submit(request)  # walks the preference chain
        assert status["shard"] != owner
        assert router.wait(status["job_id"])["status"] == "done"
        stats = router.stats()
        assert stats["router"]["counters"]["handoffs"] >= 1
        assert owner in stats["router"]["evicted"]
        # Respawn: the name-derived vnodes hand the slice straight back.
        router.respawn(owner)
        assert router.ring.lookup(key) == owner
        assert router.submit(request)["shard"] == owner
    finally:
        router.close()


def test_all_shards_dead_raises_no_shard_available():
    router = make_router(auto_respawn=False, breaker_threshold=1)
    try:
        for shard in list(router.shards.values()):
            shard.kill()
        with pytest.raises(NoShardAvailableError):
            router.submit(make_request())
        assert router.stats()["router"]["counters"]["no_shard"] == 1
    finally:
        router.close()


def test_health_check_evicts_then_respawns():
    router = make_router(breaker_threshold=1, breaker_cooldown_s=0.05)
    try:
        victim = sorted(router.shards)[0]
        router.shards[victim].kill()
        report = router.check_health()
        assert victim in report["evicted"]
        assert victim not in router.ring.members
        # Once the breaker cooldown lapses the next sweep trial-restarts.
        time.sleep(0.06)
        report = router.check_health()
        assert victim in report["respawned"]
        assert victim in router.ring.members
        status = router.submit(make_request())
        assert router.wait(status["job_id"])["status"] == "done"
    finally:
        router.close()


# ----------------------------------------------------------------------
# Chaos: fault-driven death and handoff
# ----------------------------------------------------------------------
def test_chaos_worker_death_is_verifier_clean_and_bit_identical():
    shards = [
        LocalShard(f"s{i}", ServiceConfig(verify="strict")) for i in range(3)
    ]
    router = ShardRouter(shards, breaker_threshold=1, breaker_cooldown_s=0.05)
    request = make_request()
    direct = artifact_bytes(
        build_artifact(
            request["ir"], {"registers": 32, "banks": 2}, "bpc"
        )
    )
    try:
        before = router.submit(request)
        assert router.wait(before["job_id"])["status"] == "done"
        FAULTS.arm(
            FaultPlan.from_dict(
                {"faults": [{"site": "shard.worker", "mode": "death",
                             "times": 1}]}
            )
        )
        report = router.check_health()  # fault kills one worker
        FAULTS.disarm()
        assert len(report["evicted"]) == 1
        time.sleep(0.06)
        router.check_health()  # cooldown elapsed: respawn
        status = router.submit(request)
        done = router.wait(status["job_id"])
        assert done["status"] == "done"
        assert router.result(status["job_id"]) == direct
        assert router.stats()["counters"]["verify_failed"] == 0
    finally:
        FAULTS.disarm()
        router.close()


def test_route_handoff_fault_skips_the_owner():
    router = make_router()
    request = make_request()
    key = normalize_request(request)["key"]
    try:
        owner = router.ring.lookup(key)
        FAULTS.arm(
            FaultPlan.from_dict(
                {"faults": [{"site": "shard.route", "mode": "handoff",
                             "times": 1}]}
            )
        )
        status = router.submit(request)
        assert status["shard"] != owner
        assert router.wait(status["job_id"])["status"] == "done"
        assert router.stats()["router"]["counters"]["handoffs"] == 1
    finally:
        FAULTS.disarm()
        router.close()


# ----------------------------------------------------------------------
# HTTP front end (in-process shards — no child processes in tier 1)
# ----------------------------------------------------------------------
@pytest.fixture
def frontend():
    router = make_router()
    server = ShardFrontendServer(("127.0.0.1", 0), router)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", retries=0)
    try:
        yield client, router
    finally:
        shutdown_shard_server(server)
        thread.join(timeout=5)


def test_frontend_allocate_stats_and_errors(frontend):
    client, router = frontend
    request = make_request()
    status, artifact = client.allocate(request["ir"], registers=32, banks=2)
    assert artifact["method"] == "bpc"
    assert "@" in status["job_id"]
    status = client.submit(request["ir"], registers=32, banks=2)
    done = client.wait(status["job_id"])
    assert done["status"] == "done"
    assert client.result(status["job_id"]).startswith(b"{")
    stats = client.stats()
    assert stats["router"]["ring"]["members"] == ["s0", "s1", "s2"]
    assert stats["counters"]["executed"] == 1
    assert client.health()["shards"] == 3
    with pytest.raises(ServiceError) as excinfo:
        client.poll("j000001")  # unqualified id → 400
    assert excinfo.value.status == 400
    with pytest.raises(ServiceError) as excinfo:
        client.poll("j000001@nope")  # unknown shard → 503
    assert excinfo.value.status == 503

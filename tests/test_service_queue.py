"""Job queue: coalescing, batching, degradation, crash-tolerant workers."""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.ir import print_function
from repro.service import (
    AllocationService,
    RequestError,
    ServiceConfig,
    TierCostModel,
    cache_key,
    ladder_from,
    select_tier,
)

from .conftest import build_mac_kernel


def make_request(method="bpc", trip_count=16, **extra):
    request = {
        "ir": print_function(build_mac_kernel(trip_count=trip_count)),
        "file": {"registers": 32, "banks": 2},
        "method": method,
    }
    request.update(extra)
    return request


@pytest.fixture
def service():
    return AllocationService(ServiceConfig(workers=0))


# ----------------------------------------------------------------------
# Degradation ladder
# ----------------------------------------------------------------------
def test_ladder():
    assert ladder_from("bpc") == ("bpc", "bcr", "non")
    assert ladder_from("bcr") == ("bcr", "non")
    assert ladder_from("non") == ("non",)
    with pytest.raises(ValueError):
        ladder_from("best")


def test_select_tier_walks_down_by_budget():
    model = TierCostModel(priors={"bpc": 0.05, "bcr": 0.02, "non": 0.01})
    assert select_tier("bpc", None, model) == ("bpc", False)
    assert select_tier("bpc", 1.0, model) == ("bpc", False)
    assert select_tier("bpc", 0.03, model) == ("bcr", True)
    assert select_tier("bpc", 0.015, model) == ("non", True)
    # Exhausted budget: straight to the bottom rung, never a timeout.
    assert select_tier("bpc", 0.0, model) == ("non", True)
    assert select_tier("bpc", -1.0, model) == ("non", True)
    assert select_tier("non", -1.0, model) == ("non", False)


def test_cost_model_ewma_converges():
    model = TierCostModel(alpha=0.5, priors={"bpc": 1.0})
    model.observe("bpc", 0.0)  # first observation replaces the prior
    assert model.estimate("bpc") == 0.0
    model.observe("bpc", 1.0)
    assert model.estimate("bpc") == pytest.approx(0.5)
    snap = model.snapshot()
    assert snap["bpc"]["observations"] == 2


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
def test_cold_run_then_hit_bit_identical(service):
    job = service.submit(make_request())
    assert (job.status, job.cache) == ("queued", "miss")
    assert service.process_once() == 1
    assert job.status == "done"
    assert job.served_method == "bpc" and not job.degraded

    again = service.submit(make_request())
    assert (again.status, again.cache) == ("done", "hit")
    assert again.artifact == job.artifact  # bit-identical bytes
    assert json.loads(again.artifact)["key"] == job.key


def test_coalescing_executes_exactly_once(service):
    first = service.submit(make_request())
    dupes = [service.submit(make_request()) for _ in range(4)]
    assert all(d is first for d in dupes)
    assert first.coalesced == 4
    assert service.process_once() == 1  # one queued job, one execution
    assert service.process_once() == 0  # nothing left
    assert first.status == "done"
    assert service.counters["executed"] == 1
    assert service.counters["coalesced"] == 4


def test_concurrent_duplicate_submissions_execute_once():
    service = AllocationService(ServiceConfig(workers=0))
    request = make_request()
    jobs, errors = [], []

    def submit():
        try:
            jobs.append(service.submit(request))
        except Exception as exc:  # pragma: no cover - defensive
            errors.append(exc)

    threads = [threading.Thread(target=submit) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    while service.process_once():
        pass
    assert all(job.status == "done" for job in jobs)
    assert len({id(job) for job in jobs}) == 1  # all coalesced
    assert service.counters["executed"] == 1
    assert service.counters["requests"] == 8


def test_batching_drains_in_submission_order(service):
    jobs = [
        service.submit(make_request(trip_count=8 + i)) for i in range(5)
    ]
    assert service.process_once() == 5  # one batch (batch_size=8)
    assert [j.status for j in jobs] == ["done"] * 5
    assert service.counters["executed"] == 5


def test_batch_size_caps_one_dispatch():
    service = AllocationService(ServiceConfig(workers=0, batch_size=2))
    jobs = [service.submit(make_request(trip_count=8 + i)) for i in range(3)]
    assert service.process_once() == 2
    assert [j.status for j in jobs] == ["done", "done", "queued"]
    assert service.process_once() == 1
    assert jobs[2].status == "done"


def test_deadline_exhausted_degrades_to_bottom_tier(service):
    job = service.submit(make_request(deadline_ms=0))
    service.process_once()
    assert job.status == "done"
    assert job.served_method == "non"
    assert job.degraded
    assert job.requested_method == "bpc"
    assert service.counters["degraded"] == 1
    assert service.counters["tier_non"] == 1
    # The degraded artifact is cached under the *served* tier's key, so
    # an explicit non request now hits.
    non = service.submit(make_request(method="non"))
    assert (non.status, non.cache) == ("done", "hit")
    assert non.artifact == job.artifact
    # ... while a fresh bpc request still executes the full tier.
    full = service.submit(make_request())
    service.process_once()
    assert full.served_method == "bpc" and not full.degraded


def test_degradation_emits_metrics_and_audit(service):
    obs.METRICS.enable()
    obs.AUDIT.enable()
    obs.reset_all()
    try:
        service.submit(make_request(deadline_ms=0))
        service.process_once()
        snapshot = obs.METRICS.snapshot()
        assert snapshot["counters"]["service.degraded"] == 1
        assert snapshot["counters"]["service.tier.non"] == 1
        records = [r for r in obs.AUDIT.records if r.step == "service-degrade"]
        assert len(records) == 1
        assert records[0].detail["requested"] == "bpc"
        assert records[0].detail["served"] == "non"
    finally:
        obs.METRICS.enable(False)
        obs.AUDIT.enable(False)
        obs.reset_all()


def test_cached_request_beats_deadline_at_full_tier(service):
    service.submit(make_request())
    service.process_once()
    # Same content, hopeless deadline: the hit is free, so the full tier
    # is served rather than degraded.
    job = service.submit(make_request(deadline_ms=0))
    assert (job.status, job.served_method, job.degraded) == ("done", "bpc", False)


def test_invalid_requests_rejected(service):
    with pytest.raises(RequestError):
        service.submit({"ir": ""})
    with pytest.raises(RequestError):
        service.submit({"ir": "func @x { garbage }", "file": {"registers": 8}})
    with pytest.raises(RequestError):
        service.submit(make_request(method="fastest"))
    with pytest.raises(RequestError):
        service.submit({**make_request(), "mystery": 1})
    assert service.counters["executed"] == 0


def test_unallocatable_request_fails_job_not_service(service):
    # 2 registers in 2 banks cannot hold the kernel's pressure; the job
    # fails with a captured error and the service keeps serving.
    job = service.submit(
        {
            "ir": make_request()["ir"],
            "file": {"registers": 2, "banks": 2},
            "method": "non",
        }
    )
    service.process_once()
    assert job.status == "failed"
    assert job.error
    assert service.counters["failed"] == 1
    ok = service.submit(make_request())
    service.process_once()
    assert ok.status == "done"


@pytest.mark.parallel
def test_process_pool_execution_matches_inline():
    inline = AllocationService(ServiceConfig(workers=0))
    pooled = AllocationService(ServiceConfig(workers=2))
    a = inline.submit(make_request())
    inline.process_once()
    b = pooled.submit(make_request())
    pooled.process_once()
    assert a.artifact == b.artifact
    assert pooled.counters["executed"] == 1


def test_dispatcher_thread_serves_in_background():
    service = AllocationService(ServiceConfig(workers=0))
    service.start()
    try:
        job = service.submit(make_request())
        assert job.wait(timeout=30)
        assert job.status == "done"
    finally:
        service.stop()


def test_key_matches_artifact_key(service):
    request = make_request()
    job = service.submit(request)
    service.process_once()
    assert job.key == cache_key(
        request["ir"], request["file"], request["method"]
    )
    assert json.loads(job.artifact)["key"] == job.key

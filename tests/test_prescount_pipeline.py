"""Tests for the full Fig. 4 pipeline."""

import pytest

from repro.banks import BankedRegisterFile, BankSubgroupRegisterFile
from repro.ir.types import FP, VirtualRegister
from repro.prescount import METHODS, PipelineConfig, run_pipeline
from repro.sim import analyze_static, observably_equivalent
from tests.conftest import build_mac_kernel
from repro.workloads import reduce_kernel, shared_use_kernel


class TestConfig:
    def test_unknown_method_rejected(self, rf_rv2):
        with pytest.raises(ValueError):
            PipelineConfig(rf_rv2, "magic")

    def test_dsa_inferred_from_register_file(self, rf_dsa, rf_rv2):
        assert PipelineConfig(rf_dsa, "bpc").dsa is True
        assert PipelineConfig(rf_rv2, "bpc").dsa is False

    def test_strict_defaults_follow_dsa(self, rf_dsa, rf_rv2):
        assert PipelineConfig(rf_dsa, "bpc").strict_banks is True
        assert PipelineConfig(rf_rv2, "bpc").strict_banks is False

    def test_methods_constant(self):
        assert METHODS == ("non", "bcr", "bpc")


class TestPipelineRuns:
    @pytest.mark.parametrize("method", METHODS)
    def test_all_methods_complete_and_rewrite(self, rf_rv2, method):
        fn = build_mac_kernel()
        result = run_pipeline(fn, PipelineConfig(rf_rv2, method))
        leftovers = [
            r
            for __, i in result.function.instructions()
            for r in i.regs()
            if isinstance(r, VirtualRegister) and r.regclass == FP
        ]
        assert leftovers == []

    @pytest.mark.parametrize("method", METHODS)
    def test_semantics_preserved(self, rf_rv2, method):
        fn = build_mac_kernel(n_pairs=6)
        result = run_pipeline(fn, PipelineConfig(rf_rv2, method))
        assert observably_equivalent(fn, result.function)

    def test_source_function_untouched(self, rf_rv2):
        fn = build_mac_kernel()
        text_before = repr([i for __, i in fn.instructions()])
        run_pipeline(fn, PipelineConfig(rf_rv2, "bpc"))
        assert repr([i for __, i in fn.instructions()]) == text_before

    def test_bank_assignment_only_for_bpc(self, rf_rv2):
        fn = build_mac_kernel()
        assert run_pipeline(fn, PipelineConfig(rf_rv2, "non")).bank_assignment is None
        assert run_pipeline(fn, PipelineConfig(rf_rv2, "bcr")).bank_assignment is None
        assert run_pipeline(fn, PipelineConfig(rf_rv2, "bpc")).bank_assignment is not None

    def test_sdg_phase_only_on_dsa_bpc(self, rf_dsa, rf_rv2):
        fn = shared_use_kernel(consumers=12)
        assert run_pipeline(fn, PipelineConfig(rf_dsa, "bpc")).sdg_split is not None
        assert run_pipeline(fn, PipelineConfig(rf_dsa, "non")).sdg_split is None
        assert run_pipeline(fn, PipelineConfig(rf_rv2, "bpc")).sdg_split is None

    def test_phases_can_be_disabled(self, rf_rv2):
        fn = build_mac_kernel()
        config = PipelineConfig(
            rf_rv2, "bpc", run_coalescing=False, run_scheduling=False
        )
        result = run_pipeline(fn, config)
        assert result.coalescing is None


class TestMethodOrdering:
    """The paper's headline shape: non >= bcr >= bpc conflicts."""

    def test_bpc_beats_non(self, rf_rv2):
        fn = build_mac_kernel(n_pairs=6)
        non = run_pipeline(fn, PipelineConfig(rf_rv2, "non"))
        bpc = run_pipeline(fn, PipelineConfig(rf_rv2, "bpc"))
        assert (
            analyze_static(bpc.function, rf_rv2).bank_conflicts
            <= analyze_static(non.function, rf_rv2).bank_conflicts
        )

    def test_bpc_eliminates_bipartite_conflicts(self, rf_rv2):
        fn = build_mac_kernel(n_pairs=6)
        bpc = run_pipeline(fn, PipelineConfig(rf_rv2, "bpc"))
        assert analyze_static(bpc.function, rf_rv2).bank_conflicts == 0


class TestDsaPipeline:
    def test_bpc_clears_dsa_hazards(self, rf_dsa):
        fn = reduce_kernel()
        result = run_pipeline(fn, PipelineConfig(rf_dsa, "bpc"))
        stats = analyze_static(result.function, rf_dsa)
        assert stats.conflicts == 0

    def test_non_leaves_dsa_hazards(self, rf_dsa):
        fn = reduce_kernel()
        result = run_pipeline(fn, PipelineConfig(rf_dsa, "non"))
        stats = analyze_static(result.function, rf_dsa)
        assert stats.conflicts > 0

    def test_dsa_semantics_preserved(self, rf_dsa):
        fn = shared_use_kernel(consumers=12)
        result = run_pipeline(fn, PipelineConfig(rf_dsa, "bpc"))
        assert observably_equivalent(fn, result.function)

    def test_dsa_requires_subgroup_file_for_bpc(self, rf_rv2):
        fn = reduce_kernel()
        config = PipelineConfig(rf_rv2, "bpc", dsa=True)
        with pytest.raises(TypeError):
            run_pipeline(fn, config)

    def test_copies_accounted(self, rf_dsa):
        fn = shared_use_kernel(consumers=12)
        result = run_pipeline(fn, PipelineConfig(rf_dsa, "bpc"))
        assert result.copies_inserted >= (
            result.sdg_split.copies_inserted if result.sdg_split else 0
        )

"""Tests for the workload generators (suite calibration and validity)."""

import pytest

from repro.ir import verify_function
from repro.sim import count_conflict_relevant
from repro.workloads import (
    CNN_CATEGORIES,
    DSA_KERNELS,
    SPECFP_BENCHMARKS,
    KernelSpec,
    cnn_suite,
    dsa_suite,
    generate_benchmark,
    generate_kernel,
    generate_scalar_function,
    idft_kernel,
    random_function,
    specfp_suite,
)


class TestSynth:
    def test_kernel_verifies(self):
        fn = generate_kernel(KernelSpec("k", seed=1))
        verify_function(fn)

    def test_deterministic_per_seed(self):
        from repro.ir import print_function

        a = generate_kernel(KernelSpec("k", seed=7))
        b = generate_kernel(KernelSpec("k", seed=7))
        assert print_function(a) == print_function(b)

    def test_different_seeds_differ(self):
        from repro.ir import print_function

        a = generate_kernel(KernelSpec("k", seed=1))
        b = generate_kernel(KernelSpec("k", seed=2))
        assert print_function(a) != print_function(b)

    def test_body_ops_scale_relevant_count(self):
        small = generate_kernel(KernelSpec("s", seed=3, body_ops=10))
        large = generate_kernel(KernelSpec("l", seed=3, body_ops=100))
        assert count_conflict_relevant(large) > count_conflict_relevant(small)

    def test_unroll_multiplies_ops(self):
        base = generate_kernel(KernelSpec("b", seed=4, unroll=1, branch_prob=0.0))
        unrolled = generate_kernel(KernelSpec("u", seed=4, unroll=4, branch_prob=0.0))
        assert unrolled.instruction_count() > 2 * base.instruction_count()

    def test_scalar_function_is_irrelevant(self):
        fn = generate_scalar_function("s", 0)
        assert count_conflict_relevant(fn) == 0

    @pytest.mark.parametrize("seed", range(8))
    def test_random_functions_verify(self, seed):
        verify_function(random_function(seed))


class TestSpecfp:
    def test_eight_benchmarks(self):
        suite = specfp_suite(scale=0.02)
        assert len(suite) == 8
        assert {p.name for p in suite.programs} == {
            b.name for b in SPECFP_BENCHMARKS
        }

    def test_scale_controls_function_count(self):
        small = specfp_suite(scale=0.02)
        large = specfp_suite(scale=0.05)
        assert len(large.functions()) > len(small.functions())

    def test_reles_scale_with_table1(self):
        """Total conflict-relevant instructions track Table I ratios."""
        suite = specfp_suite(scale=0.05)
        by_name = {
            p.name: sum(count_conflict_relevant(f) for f in p.functions())
            for p in suite.programs
        }
        # povray (19749) must dwarf sphinx3 (361).
        assert by_name["453.povray"] > 5 * by_name["482.sphinx3"]

    def test_relevant_fraction_reasonable(self):
        suite = specfp_suite(scale=0.05)
        fns = suite.functions()
        relevant = sum(1 for f in fns if count_conflict_relevant(f) > 0)
        share = relevant / len(fns)
        assert 0.35 < share < 0.75  # paper: 56.37%

    def test_all_functions_verify(self):
        for fn in specfp_suite(scale=0.02).functions():
            verify_function(fn)

    def test_deterministic(self):
        a = specfp_suite(scale=0.02, seed=3)
        b = specfp_suite(scale=0.02, seed=3)
        assert [f.name for f in a.functions()] == [f.name for f in b.functions()]


class TestCnn:
    def test_category_geometry(self):
        suite = cnn_suite(scale=1.0)
        by_cat = suite.by_category()
        for category in CNN_CATEGORIES:
            assert len(by_cat[category.name]) == category.count

    def test_total_64_kernels_at_full_scale(self):
        assert len(cnn_suite(scale=1.0)) == 64

    def test_conv_kernels_are_relevant(self):
        suite = cnn_suite(scale=0.2)
        for program in suite.by_category()["conv2d.relu"]:
            assert count_conflict_relevant(program.functions()[0]) > 0

    def test_irrelevant_category_exists(self):
        suite = cnn_suite(scale=1.0)
        irrelevant = suite.by_category()["irrelevant"]
        for program in irrelevant:
            assert count_conflict_relevant(program.functions()[0]) == 0

    def test_unroll_sweep_varies_sizes(self):
        suite = cnn_suite(scale=0.5)
        sizes = {
            count_conflict_relevant(p.functions()[0])
            for p in suite.by_category()["conv2d.relu"]
        }
        assert len(sizes) > 3

    def test_all_verify(self):
        for fn in cnn_suite(scale=0.3).functions():
            verify_function(fn)


class TestDsaOps:
    def test_all_eight_kernels(self):
        suite = dsa_suite(idft_points=6)
        assert [p.name for p in suite.programs] == list(DSA_KERNELS)

    def test_all_verify(self):
        for fn in dsa_suite(idft_points=6).functions():
            verify_function(fn)

    def test_idft_size_scales_quadratically(self):
        small = idft_kernel(points=6)
        large = idft_kernel(points=12)
        assert large.instruction_count() > 3 * small.instruction_count()

    def test_idft_computes_inverse_dft(self):
        """The idft kernel is real math: executing it must reproduce the
        analytic IDFT real output for index 0."""
        import math

        from repro.sim import ValueInterpreter

        points = 8
        fn = idft_kernel(points=points)
        result = ValueInterpreter().run(fn).return_values[0]
        xre = [round(math.sin(0.7 * k + 0.3), 6) for k in range(points)]
        xim = [round(math.cos(1.3 * k), 6) for k in range(points)]
        expected = sum(
            xre[k] * round(math.cos(0.0), 8) - xim[k] * round(math.sin(0.0), 8)
            for k in range(points)
        ) * round(1.0 / points, 8)
        assert result == pytest.approx(expected, rel=1e-9)

    def test_shared_use_kernel_consumer_count(self):
        from repro.workloads import shared_use_kernel

        fn = shared_use_kernel(consumers=10)
        assert count_conflict_relevant(fn) == 10

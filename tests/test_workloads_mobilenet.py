"""Tests for the MobileNet-v1 layer table and kernel derivation."""

import pytest

from repro.ir import verify_function
from repro.sim import count_conflict_relevant
from repro.workloads import (
    MOBILENET_V1_LAYERS,
    ConvLayer,
    layer_kernel,
    mobilenet_conv_kernels,
)


class TestLayerTable:
    def test_twenty_seven_conv_layers(self):
        """1 standard conv + 13 dw/pw pairs."""
        assert len(MOBILENET_V1_LAYERS) == 27

    def test_first_layer_is_standard_conv(self):
        first = MOBILENET_V1_LAYERS[0]
        assert first.kind == "std"
        assert first.in_channels == 3 and first.out_channels == 32
        assert first.stride == 2

    def test_dw_pw_alternate(self):
        blocks = MOBILENET_V1_LAYERS[1:]
        assert all(l.kind == "dw" for l in blocks[0::2])
        assert all(l.kind == "pw" for l in blocks[1::2])

    def test_channel_chaining(self):
        """Each layer's input channels equal the previous output channels."""
        for prev, cur in zip(MOBILENET_V1_LAYERS, MOBILENET_V1_LAYERS[1:]):
            assert cur.in_channels == prev.out_channels

    def test_final_width(self):
        assert MOBILENET_V1_LAYERS[-1].out_channels == 1024

    def test_macs_per_output(self):
        dw = next(l for l in MOBILENET_V1_LAYERS if l.kind == "dw")
        assert dw.macs_per_output == 9
        pw = next(l for l in MOBILENET_V1_LAYERS if l.kind == "pw")
        assert pw.macs_per_output == pw.in_channels


class TestLayerKernel:
    @pytest.mark.parametrize("layer", MOBILENET_V1_LAYERS[:6])
    def test_kernels_verify(self, layer):
        verify_function(layer_kernel(layer))

    def test_kernel_is_conflict_relevant(self):
        kernel = layer_kernel(MOBILENET_V1_LAYERS[1])
        assert count_conflict_relevant(kernel) > 0

    def test_unroll_scales_size(self):
        layer = MOBILENET_V1_LAYERS[2]
        small = layer_kernel(layer, unroll=1)
        large = layer_kernel(layer, unroll=6)
        assert large.instruction_count() > 2 * small.instruction_count()

    def test_depthwise_uses_nine_taps(self):
        dw = next(l for l in MOBILENET_V1_LAYERS if l.kind == "dw")
        kernel = layer_kernel(dw, unroll=1)
        # 9 fmul per output position.
        fmuls = sum(1 for __, i in kernel.instructions() if i.opcode == "fmul")
        assert fmuls == 9

    def test_layer_metadata_attached(self):
        layer = MOBILENET_V1_LAYERS[0]
        kernel = layer_kernel(layer)
        assert kernel.attrs["layer"] is layer


class TestPopulation:
    def test_count(self):
        assert len(mobilenet_conv_kernels(42)) == 42

    def test_size_variety(self):
        kernels = mobilenet_conv_kernels(42)
        sizes = {count_conflict_relevant(k) for k in kernels}
        assert len(sizes) >= 10  # the unroll sweep creates many levels

    def test_names_unique(self):
        names = [k.name for k in mobilenet_conv_kernels(42)]
        assert len(names) == len(set(names))

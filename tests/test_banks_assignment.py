"""Tests for bank/subgroup assignment result types."""

import pytest

from repro.banks import BankAssignment, SubgroupAssignment
from repro.ir.types import VirtualRegister

V = VirtualRegister


class TestBankAssignment:
    def test_assign_and_lookup(self):
        ba = BankAssignment(2)
        ba.assign(V(0), 1)
        assert ba.bank_of(V(0)) == 1
        assert ba.bank_of(V(1)) is None
        assert V(0) in ba and V(1) not in ba

    def test_out_of_range_rejected(self):
        ba = BankAssignment(2)
        with pytest.raises(ValueError):
            ba.assign(V(0), 2)
        with pytest.raises(ValueError):
            ba.assign(V(0), -1)

    def test_histogram(self):
        ba = BankAssignment(3)
        for vid, bank in [(0, 0), (1, 0), (2, 2)]:
            ba.assign(V(vid), bank)
        assert ba.bank_histogram() == [2, 0, 1]

    def test_reassignment_overwrites(self):
        ba = BankAssignment(2)
        ba.assign(V(0), 0)
        ba.assign(V(0), 1)
        assert ba.bank_of(V(0)) == 1
        assert len(ba) == 1


class TestSubgroupAssignment:
    def test_assign_and_lookup(self):
        sa = SubgroupAssignment(4)
        sa.assign(V(0), 2)
        assert sa.displacement_of(V(0)) == 2
        assert sa.displacement_of(V(1)) is None

    def test_out_of_range_rejected(self):
        sa = SubgroupAssignment(4)
        with pytest.raises(ValueError):
            sa.assign(V(0), 4)

    def test_min_used_prefers_untouched(self):
        sa = SubgroupAssignment(4)
        sa.assign(V(0), 0)
        sa.assign(V(1), 0)
        sa.assign(V(2), 1)
        assert sa.min_used() in (2, 3)

    def test_min_used_ties_break_low(self):
        sa = SubgroupAssignment(4)
        assert sa.min_used() == 0

    def test_usage_tracked(self):
        sa = SubgroupAssignment(2)
        sa.assign(V(0), 1)
        sa.assign(V(1), 1)
        assert sa.usage[1] == 2

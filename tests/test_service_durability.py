"""Crash durability: write-ahead journal, recovery replay, drain, restart.

The invariant under test, end to end: **every accepted job reaches a
terminal state across a crash**, successes are verifier-clean and
bit-identical to the fault-free run, and a rolling restart under load
loses zero goodput (see ``docs/RESILIENCE.md``, "Durability &
lifecycle").
"""

from __future__ import annotations

import json
import threading
import time
from types import SimpleNamespace

import pytest

from repro.ir import print_function
from repro.resilience import FAULTS, FaultPlan
from repro.resilience.faults import FaultPoint
from repro.service import (
    AllocationService,
    JobJournal,
    ServiceConfig,
    ServiceDrainingError,
    ServiceError,
    ServiceOverloadError,
    artifact_bytes,
    build_artifact,
    make_server,
    shutdown_server,
)
from repro.service.client import ServiceClient
from repro.service.durability import frame_record, parse_frame
from repro.service.loadgen import LoadgenConfig, RouterTarget, run_loadgen
from repro.service.shard import LocalShard, ShardRouter, shard_cache_dir

from .conftest import build_mac_kernel

FILE = {"registers": 32, "banks": 2}
IR = print_function(build_mac_kernel())
REQUEST = {"ir": IR, "file": FILE, "method": "bpc"}

#: The fault-free artifact every recovered success must be identical to.
BASELINE = artifact_bytes(build_artifact(IR, FILE, "bpc"))


@pytest.fixture(autouse=True)
def disarm():
    yield
    FAULTS.disarm()


def arm(*points: FaultPoint, seed: int = 0) -> None:
    FAULTS.arm(FaultPlan(seed=seed, points=list(points)))


def make_service(tmp_path, **overrides) -> AllocationService:
    config = ServiceConfig(
        workers=0,
        journal_dir=str(tmp_path / "journal"),
        cache_dir=str(tmp_path / "cache"),
        **overrides,
    )
    return AllocationService(config)


def fake_job(job_id="j000001", **overrides):
    fields = {
        "job_id": job_id,
        "key": "k" * 64,
        "kind": "function",
        "ir": IR,
        "file_spec": dict(FILE),
        "requested_method": "bpc",
        "flags": {},
        "machine": None,
        "deadline_s": None,
    }
    fields.update(overrides)
    return SimpleNamespace(**fields)


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------
def test_frame_roundtrip():
    record = {"type": "accepted", "job_id": "j000001", "ir": IR}
    frame = frame_record(record)
    assert frame.startswith(b"repro-journal/1 ")
    assert frame.endswith(b"\n")
    assert parse_frame(frame) == record


def test_frame_rejects_corruption():
    frame = frame_record({"type": "terminal", "job_id": "j000001"})
    assert parse_frame(frame[:-1]) is None  # missing commit newline
    assert parse_frame(frame[: len(frame) // 2]) is None  # torn prefix
    corrupt = frame.replace(b"terminal", b"terminaX")
    assert parse_frame(corrupt) is None  # checksum mismatch
    assert parse_frame(b"not a frame at all\n") is None


# ----------------------------------------------------------------------
# Journal unit behaviour
# ----------------------------------------------------------------------
def test_journal_accept_terminal_replay(tmp_path):
    journal = JobJournal(str(tmp_path))
    journal.record_accepted(fake_job("j000001"))
    journal.record_accepted(fake_job("j000002"))
    journal.record_terminal("j000001", "done", key="k" * 64,
                            served_method="bpc")
    journal.close()

    replay = JobJournal(str(tmp_path)).replay()
    assert [r["job_id"] for r in replay.pending] == ["j000002"]
    assert replay.pending[0]["ir"] == IR
    assert replay.pending[0]["file"] == FILE
    assert [r["job_id"] for r in replay.finished] == ["j000001"]
    assert (replay.truncated, replay.quarantined) == (0, 0)


def test_torn_final_frame_truncated_on_replay(tmp_path):
    journal = JobJournal(str(tmp_path))
    journal.record_accepted(fake_job("j000001"))
    journal.close()
    # Crash mid-append: a prefix of the next frame, no commit newline.
    torn = frame_record({"type": "accepted", "job_id": "j000002"})
    with open(journal.journal_path, "ab") as fh:
        fh.write(torn[: len(torn) // 2].rstrip(b"\n"))

    fresh = JobJournal(str(tmp_path))
    replay = fresh.replay()
    # The torn job never acked its submit, so dropping it is correct.
    assert [r["job_id"] for r in replay.pending] == ["j000001"]
    assert replay.truncated == 1
    assert replay.quarantined == 0
    # The file was healed: a second replay sees only clean frames.
    again = JobJournal(str(tmp_path)).replay()
    assert again.truncated == 0
    assert [r["job_id"] for r in again.pending] == ["j000001"]


def test_corrupt_midfile_frame_quarantined(tmp_path):
    journal = JobJournal(str(tmp_path))
    journal.record_accepted(fake_job("j000001"))
    journal.record_accepted(fake_job("j000002"))
    journal.record_accepted(fake_job("j000003"))
    journal.close()
    # Flip bytes inside the middle frame (bit rot, not a torn tail).
    raw = open(journal.journal_path, "rb").read()
    lines = raw.split(b"\n")
    lines[1] = lines[1].replace(b"j000002", b"jXXXXXX")
    with open(journal.journal_path, "wb") as fh:
        fh.write(b"\n".join(lines))

    fresh = JobJournal(str(tmp_path))
    replay = fresh.replay()
    assert [r["job_id"] for r in replay.pending] == ["j000001", "j000003"]
    assert replay.quarantined == 1
    assert replay.truncated == 0
    # Quarantined, not silently dropped: the bad frame is preserved.
    quarantined = open(fresh.quarantine_path, "rb").read()
    assert b"jXXXXXX" in quarantined
    # And the journal healed itself for the next replay.
    assert JobJournal(str(tmp_path)).replay().quarantined == 0


def test_compaction_equivalence(tmp_path):
    journal = JobJournal(str(tmp_path))
    for i in range(6):
        journal.record_accepted(fake_job(f"j{i:06d}"))
    dead = {"job_id": "j000004", "error": "boom", "key": "k" * 64}
    journal.record_terminal("j000001", "done", key="k" * 64)
    journal.record_terminal("j000004", "failed", error="boom",
                            dead_letter=dead)
    before = JobJournal(str(tmp_path)).replay()

    journal.compact()
    journal.close()
    # Compaction folded everything into the checkpoint; the journal
    # restarts empty but a replay yields the same live set.
    after = JobJournal(str(tmp_path)).replay()
    assert ([r["job_id"] for r in after.pending]
            == [r["job_id"] for r in before.pending])
    assert after.dead_letter == before.dead_letter == [dead]


def test_maybe_compact_waits_for_terminal_dominance(tmp_path):
    journal = JobJournal(str(tmp_path), compact_min_frames=4)
    for i in range(8):
        journal.record_accepted(fake_job(f"j{i:06d}"))
    # Plenty of frames, but nothing terminal yet: compaction would buy
    # nothing (every frame describes live work).
    assert not journal.maybe_compact()
    for i in range(8):
        journal.record_terminal(f"j{i:06d}", "done", key="k" * 64)
    # Terminal frames now dominate the (empty) live set.
    assert journal.counters["compactions"] >= 1
    assert journal.pending_count() == 0


def test_double_replay_idempotent(tmp_path):
    journal = JobJournal(str(tmp_path))
    journal.record_accepted(fake_job("j000001"))
    journal.record_terminal("j000001", "done", key="k" * 64)
    journal.record_accepted(fake_job("j000002"))
    journal.close()
    fresh = JobJournal(str(tmp_path))
    first = fresh.replay()
    second = fresh.replay()
    assert ([r["job_id"] for r in first.pending]
            == [r["job_id"] for r in second.pending] == ["j000002"])
    assert fresh.pending_count() == 1


# ----------------------------------------------------------------------
# Service crash / recovery
# ----------------------------------------------------------------------
def test_crash_recovery_runs_job_bit_identical(tmp_path):
    crashed = make_service(tmp_path)
    job = crashed.submit(dict(REQUEST))
    assert job.status == "queued"
    # SIGKILL: no stop(), no drain — the journal alone must carry it.

    recovered = make_service(tmp_path)
    report = recovered.recover()
    assert report["recovered"] == 1
    assert recovered.process_once() == 1
    replayed = recovered.get(job.job_id)
    assert replayed.status == "done"
    assert replayed.artifact == BASELINE
    recovered.stop()


def test_recovery_is_idempotent_and_skips_terminal(tmp_path):
    crashed = make_service(tmp_path)
    done = crashed.submit(dict(REQUEST))
    crashed.process_once()
    assert done.status == "done"
    pending = crashed.submit(
        {"ir": IR, "file": {"registers": 16, "banks": 2}, "method": "bpc"}
    )

    recovered = make_service(tmp_path)
    report = recovered.recover()
    # Only the non-terminal job replays; the finished one is restored
    # as a pollable tombstone, result bytes intact from the cache.
    assert report["recovered"] == 1
    assert report["restored"] == 1
    tombstone = recovered.get(done.job_id)
    assert tombstone.status == "done"
    assert tombstone.artifact == BASELINE
    assert recovered.process_once() == 1
    assert recovered.get(pending.job_id).status == "done"
    # recover() is one-shot per incarnation.
    assert recovered.recover()["recovered"] == 0
    recovered.stop()


def test_recovered_job_hits_cache_when_artifact_landed(tmp_path):
    """Exactly-once by idempotency: the artifact reached the cache
    before the crash, so the replayed job resolves as a hit — the work
    is never redone and the bytes cannot fork."""
    crashed = make_service(tmp_path)
    done = crashed.submit(dict(REQUEST))
    crashed.process_once()
    assert done.status == "done"
    # Simulate losing the terminal frame but not the cache insert: a
    # crash in the window between cache write and journal append.
    crashed.journal.close()
    with open(crashed.journal.journal_path, "rb") as fh:
        frames = [line for line in fh.read().splitlines(keepends=True)
                  if b'"terminal"' not in line]
    with open(crashed.journal.journal_path, "wb") as fh:
        fh.writelines(frames)

    recovered = make_service(tmp_path)
    report = recovered.recover()
    assert report["recovered"] == 1
    replayed = recovered.get(done.job_id)
    assert replayed.status == "done"  # resolved at submit, no dispatch
    assert replayed.cache == "hit"
    assert replayed.artifact == BASELINE
    recovered.stop()


def test_warm_hits_are_never_journaled(tmp_path):
    service = make_service(tmp_path)
    miss = service.submit(dict(REQUEST))
    service.process_once()
    assert miss.status == "done"
    appended = service.journal.counters["appended"]
    hit = service.submit(dict(REQUEST))
    assert hit.cache == "hit"
    # A hit is accepted-and-terminal in one step: no crash window, no
    # frame — which is also why the journal costs nothing when warm.
    assert service.journal.counters["appended"] == appended
    service.stop()


def test_dead_letter_survives_restart_and_answers_lookup(tmp_path):
    arm(FaultPoint(site="queue.execute", mode="error", times=8))
    crashed = make_service(tmp_path, job_retries=1, job_backoff_s=0.0)
    job = crashed.submit(dict(REQUEST))
    for _ in range(8):
        if job.finished:
            break
        crashed.process_once()
    assert job.status == "failed"
    assert crashed.dead_letter
    FAULTS.disarm()

    recovered = make_service(tmp_path)
    report = recovered.recover()
    assert report["dead_letter"] == 1
    view = recovered.lookup(job.job_id)
    assert view["status"] == "failed"
    assert view["dead_lettered"] is True
    assert view["error"]
    recovered.stop()


def test_journal_torn_write_fault_drops_unacked_job(tmp_path):
    arm(FaultPoint(site="queue.journal", mode="torn-write", times=1))
    crashed = make_service(tmp_path)
    # The torn write models a crash *mid-append*: only a prefix of the
    # frame reached disk and the process died before the submit's ack
    # made it anywhere — so the job legitimately never happened.
    crashed.submit(dict(REQUEST))
    FAULTS.disarm()

    recovered = make_service(tmp_path)
    report = recovered.recover()
    assert report["recovered"] == 0
    assert report["truncated"] == 1
    recovered.stop()


def test_journal_append_error_degrades_durability_not_service(tmp_path):
    arm(FaultPoint(site="queue.journal", mode="error", times=1))
    service = make_service(tmp_path)
    job = service.submit(dict(REQUEST))  # must not raise
    service.process_once()
    assert job.status == "done"
    assert job.artifact == BASELINE
    assert service.journal.counters["append_errors"] == 1
    service.stop()


# ----------------------------------------------------------------------
# Drain
# ----------------------------------------------------------------------
def test_drain_rejects_new_work_and_resume_reopens(tmp_path):
    service = make_service(tmp_path)
    accepted = service.submit(dict(REQUEST))
    state = service.drain()
    assert state["draining"] is True
    with pytest.raises(ServiceDrainingError):
        service.submit(dict(REQUEST))
    assert isinstance(ServiceDrainingError(), ServiceOverloadError)
    # In-flight work still completes while draining.
    service.process_once()
    assert accepted.status == "done"
    assert service.lifecycle()["drained"] is True
    service.resume()
    assert service.submit(dict(REQUEST)).cache == "hit"
    service.stop()


def test_drain_over_http_marks_503_and_client_does_not_retry(tmp_path):
    server = make_server(
        "127.0.0.1", 0,
        ServiceConfig(workers=0, cache_dir=str(tmp_path / "cache")),
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", retries=3)
    try:
        state = client.drain()
        assert state["draining"] is True
        started = time.monotonic()
        with pytest.raises(ServiceError) as err:
            client.submit(IR, registers=32, banks=2, method="bpc")
        assert err.value.status == 503
        assert err.value.draining is True
        # A draining 503 is definitive: no retry/backoff burned on it.
        assert time.monotonic() - started < 1.0
        assert client.breaker.state == "closed"
    finally:
        shutdown_server(server)
        thread.join(timeout=5)


# ----------------------------------------------------------------------
# Fleet: drain handoff, kill9, rolling restart
# ----------------------------------------------------------------------
def fleet(tmp_path, n=3) -> ShardRouter:
    shards = [
        LocalShard(
            f"s{i}",
            ServiceConfig(
                workers=0,
                cache_dir=shard_cache_dir(str(tmp_path / "cache"), f"s{i}"),
                journal_dir=shard_cache_dir(str(tmp_path / "wal"), f"s{i}"),
            ),
        )
        for i in range(n)
    ]
    return ShardRouter(shards)


def test_router_drain_takes_shard_off_ring_but_keeps_it_pollable(tmp_path):
    router = fleet(tmp_path)
    try:
        status = router.submit(dict(REQUEST))
        owner = status["job_id"].rsplit("@", 1)[1]
        state = router.drain(owner)
        assert state["draining"] is True
        assert owner not in router.ring.members
        # The drained shard's accepted work still resolves…
        final = router.wait(status["job_id"], timeout=10.0)
        assert final["status"] == "done"
        assert router.result(status["job_id"]) == BASELINE
        # …and new work (same key!) lands on a survivor.
        rerouted = router.submit(dict(REQUEST))
        assert rerouted["job_id"].rsplit("@", 1)[1] != owner
        assert sorted(router.stats()["router"]["draining"]) == [owner]
    finally:
        router.close()


def test_kill9_then_respawn_recovers_accepted_jobs(tmp_path):
    router = fleet(tmp_path)
    try:
        status = router.submit(dict(REQUEST))
        job_id = status["job_id"]
        owner = job_id.rsplit("@", 1)[1]
        shard = router.shards[owner]
        shard.service.drain_wait(timeout=10.0)  # let it finish cleanly
        shard.service.resume()

        arm(FaultPoint(site="shard.worker", mode="kill9", times=1,
                       match=owner))
        report = router.check_health()  # hard kill, no drain, no sync
        FAULTS.disarm()
        assert owner not in report["healthy"]
        for _ in range(200):
            router.check_health()  # breaker → evict → cooldown → respawn
            if owner in router.shards and router.shards[owner].healthy():
                break
            time.sleep(0.01)
        assert router.shards[owner].healthy()
        # The respawned worker recovered the journal: the pre-kill job
        # is still pollable and its bytes are the fault-free bytes.
        final = router.wait(job_id, timeout=10.0)
        assert final["status"] == "done"
        assert router.result(job_id) == BASELINE
    finally:
        router.close()


def test_rolling_restart_cycles_every_shard(tmp_path):
    router = fleet(tmp_path)
    try:
        submitted = [
            router.submit({"ir": IR, "file": {"registers": 16 + 8 * i,
                                              "banks": 2},
                           "method": "bpc"})
            for i in range(3)
        ]
        for status in submitted:
            router.wait(status["job_id"], timeout=10.0)
        report = router.rolling_restart()
        assert report["restarted"] == ["s0", "s1", "s2"]
        assert report["timed_out"] == []
        assert sorted(router.ring.members) == ["s0", "s1", "s2"]
        # Pre-restart jobs survived the restart (journal tombstones).
        for status in submitted:
            assert router.poll(status["job_id"])["status"] == "done"
        # And the fleet still takes new work.
        assert router.wait(router.submit(dict(REQUEST))["job_id"],
                           timeout=10.0)["status"] == "done"
    finally:
        router.close()


def test_rolling_restart_under_load_loses_zero_goodput(tmp_path):
    router = fleet(tmp_path)
    config = LoadgenConfig(
        seed=7, requests=40, pool=6,
        phases=((0.8, 50.0),), method="bpc",
        registers=16, banks=2, sample=2, timeout_s=30.0,
    )
    restart_report: dict = {}

    def _restart():
        time.sleep(0.4)  # halfway through the arrival schedule
        restart_report.update(router.rolling_restart())

    restarter = threading.Thread(target=_restart, daemon=True)
    try:
        restarter.start()
        report = run_loadgen(RouterTarget(router), config)
        restarter.join(timeout=60.0)
    finally:
        router.close()
    assert restart_report["restarted"] == ["s0", "s1", "s2"]
    # The invariant this PR exists for: a rolling restart under load
    # loses zero goodput and forks zero bytes.
    assert report["failed"] == 0, report["failures"]
    assert report["goodput"] == report["requests"] == 40
    assert report["samples"]["mismatched"] == 0
    assert report["verify_failed"] == 0

"""Tests for the Register Conflict Graph (RCG)."""

import pytest

from repro.analysis import ConflictGraph, InterferenceGraph, LiveIntervals
from repro.ir import IRBuilder
from repro.ir.types import VirtualRegister

V = VirtualRegister


def fig5_like_kernel():
    """Five conflict-relevant instructions over shared registers, echoing
    the Fig. 5 worked example (different trip counts -> different costs)."""
    b = IRBuilder("fig5")
    vb, vc, vd, ve = (b.const(float(i)) for i in range(4))
    acc = b.const(0.0)
    with b.loop(trip_count=10):
        b.arith_into(acc, "fadd", vb, vc)   # A
        b.arith_into(acc, "fadd", vb, vd)   # B
    b.arith_into(acc, "fadd", vc, vd)       # C
    b.arith_into(acc, "fadd", vd, ve)       # D
    b.arith_into(acc, "fadd", ve, vb)       # E
    b.ret(acc)
    return b.finish(), (vb, vc, vd, ve)


class TestStructure:
    def test_nodes_are_conflict_operands(self):
        fn, (vb, vc, vd, ve) = fig5_like_kernel()
        rcg = ConflictGraph.build(fn)
        assert {vb, vc, vd, ve} <= set(rcg.nodes())

    def test_edges_from_co_reads(self):
        fn, (vb, vc, vd, ve) = fig5_like_kernel()
        rcg = ConflictGraph.build(fn)
        assert vc in rcg.neighbors(vb)
        assert vd in rcg.neighbors(vb)
        assert ve in rcg.neighbors(vd)
        assert ve not in rcg.neighbors(vc)

    def test_edge_costs_accumulate_per_instruction(self):
        fn, (vb, vc, vd, ve) = fig5_like_kernel()
        rcg = ConflictGraph.build(fn)
        # vb-vc co-read in the loop: cost 10; vc-vd outside: cost 1.
        assert rcg.edge_conflict_cost(vb, vc) == pytest.approx(10.0)
        assert rcg.edge_conflict_cost(vc, vd) == pytest.approx(1.0)

    def test_node_costs_follow_eq2(self):
        fn, (vb, vc, vd, ve) = fig5_like_kernel()
        rcg = ConflictGraph.build(fn)
        # vb appears in A (10), B (10), E (1).
        assert rcg.cost(vb) == pytest.approx(21.0)
        # ve appears in D (1) and E (1).
        assert rcg.cost(ve) == pytest.approx(2.0)

    def test_rcg_is_subgraph_of_rig(self):
        fn, __ = fig5_like_kernel()
        live = LiveIntervals.build(fn)
        rig = InterferenceGraph.build(fn, live)
        rcg = ConflictGraph.build(fn)
        for key in rcg.edge_cost:
            a, b = tuple(key)
            assert rig.interferes(a, b), f"{a} {b} in RCG but not RIG"

    def test_unary_ops_excluded(self):
        b = IRBuilder("f")
        x = b.const(1.0)
        t = b.arith("fneg", x)
        b.ret(t)
        rcg = ConflictGraph.build(b.finish())
        assert len(rcg) == 0

    def test_repeated_operand_excluded(self):
        b = IRBuilder("f")
        x = b.const(1.0)
        t = b.arith("fmul", x, x)
        b.ret(t)
        rcg = ConflictGraph.build(b.finish())
        assert len(rcg) == 0


class TestComponents:
    def test_disjoint_subgraphs(self):
        b = IRBuilder("f")
        a1, a2 = b.const(1.0), b.const(2.0)
        b1, b2 = b.const(3.0), b.const(4.0)
        r1 = b.arith("fadd", a1, a2)
        r2 = b.arith("fadd", b1, b2)
        b.ret(b.arith("fneg", r1))
        fn = b.finish()
        rcg = ConflictGraph.build(fn)
        comps = rcg.components()
        assert len(comps) == 2
        assert {frozenset(c) for c in comps} == {
            frozenset({a1, a2}),
            frozenset({b1, b2}),
        }


class TestColoringChecks:
    def test_proper_coloring_detected(self):
        fn, (vb, vc, vd, ve) = fig5_like_kernel()
        rcg = ConflictGraph.build(fn)
        colors = {vb: 0, vc: 1, vd: 0, ve: 1}
        # vd-ve edge: 0 vs 1 ok; vb-vd edge: 0 vs 0 -> improper.
        assert not rcg.is_proper_coloring(colors)
        colors = {vb: 0, vc: 1, vd: 1, ve: ...}
        # A valid 2-coloring may not exist if there is an odd cycle; use 3.
        colors = {vb: 0, vc: 1, vd: 2, ve: 1}
        assert rcg.is_proper_coloring(colors)

    def test_residual_cost_of_monochromatic_edges(self):
        fn, (vb, vc, vd, ve) = fig5_like_kernel()
        rcg = ConflictGraph.build(fn)
        all_same = {r: 0 for r in rcg.nodes()}
        assert rcg.coloring_conflict_cost(all_same) == pytest.approx(
            sum(rcg.edge_cost.values())
        )

    def test_partial_coloring_cost_ignores_uncolored(self):
        fn, (vb, vc, vd, ve) = fig5_like_kernel()
        rcg = ConflictGraph.build(fn)
        assert rcg.coloring_conflict_cost({vb: 0}) == 0.0

    def test_incomplete_coloring_is_improper(self):
        fn, (vb, *_ ) = fig5_like_kernel()
        rcg = ConflictGraph.build(fn)
        assert not rcg.is_proper_coloring({vb: 0})

"""AnalysisManager: lazy caching, parameter keys, precise invalidation."""

from __future__ import annotations

import pytest

from repro.analysis import ConflictCostModel, LiveIntervals
from repro.ir.cfg import CFG
from repro.ir.flat import enabled as flat_enabled
from repro.ir.types import FP
from repro.passes import (
    CFG_ONLY,
    PRESERVE_ALL,
    PRESERVE_NONE,
    AnalysisManager,
    CFGAnalysis,
    ConflictCostAnalysis,
    ConflictGraphAnalysis,
    LiveIntervalsAnalysis,
    LivenessAnalysis,
    LoopInfoAnalysis,
    SDGAnalysis,
    SlotIndexesAnalysis,
    caching_disabled,
)

from tests.conftest import build_mac_kernel


class TestCaching:
    def test_second_get_is_a_hit_and_same_object(self, mac_kernel):
        am = AnalysisManager(mac_kernel)
        first = am.get(CFGAnalysis)
        second = am.get(CFGAnalysis)
        assert first is second
        assert isinstance(first, CFG)
        counter = am.counter(CFGAnalysis)
        assert (counter.hits, counter.misses) == (1, 1)

    def test_results_match_direct_builds(self, mac_kernel):
        am = AnalysisManager(mac_kernel)
        live = am.get(LiveIntervalsAnalysis)
        direct = LiveIntervals.build(mac_kernel)
        assert set(live.intervals) == set(direct.intervals)
        assert live.max_pressure() == direct.max_pressure()
        cost = am.get(ConflictCostAnalysis, regclass=FP)
        direct_cost = ConflictCostModel.build(mac_kernel, regclass=FP)
        for _, instr in mac_kernel.instructions():
            assert cost.cost_of_instruction(instr) == pytest.approx(
                direct_cost.cost_of_instruction(instr)
            )

    def test_dependencies_are_cached_through_the_manager(self, mac_kernel):
        am = AnalysisManager(mac_kernel)
        am.get(LiveIntervalsAnalysis)
        # Building intervals populated CFG, slots, and liveness too.
        for dep in (CFGAnalysis, SlotIndexesAnalysis, LivenessAnalysis):
            assert dep in am
            assert am.counter(dep).misses == 1
        # A later direct request for a dependency is a pure hit.
        am.get(LivenessAnalysis)
        assert am.counter(LivenessAnalysis).hits == 1

    def test_params_key_the_cache(self, mac_kernel):
        am = AnalysisManager(mac_kernel)
        fp = am.get(ConflictCostAnalysis, regclass=FP)
        unrestricted = am.get(ConflictCostAnalysis, regclass=None)
        assert fp is not unrestricted
        assert am.counter(ConflictCostAnalysis).misses == 2
        assert am.get(ConflictCostAnalysis, regclass=FP) is fp
        assert am.counter(ConflictCostAnalysis).hits == 1

    def test_cached_peeks_without_counting(self, mac_kernel):
        am = AnalysisManager(mac_kernel)
        assert am.cached(SDGAnalysis, regclass=FP) is None
        sdg = am.get(SDGAnalysis, regclass=FP)
        assert am.cached(SDGAnalysis, regclass=FP) is sdg
        assert am.counter(SDGAnalysis).requests == 1

    def test_caching_disabled_recomputes_every_time(self, mac_kernel):
        with caching_disabled():
            am = AnalysisManager(mac_kernel)
            first = am.get(CFGAnalysis)
            second = am.get(CFGAnalysis)
        assert first is not second
        assert am.counter(CFGAnalysis).misses == 2
        assert len(am) == 0


class TestInvalidation:
    def test_preserve_none_drops_everything(self, mac_kernel):
        am = AnalysisManager(mac_kernel)
        am.get(LiveIntervalsAnalysis)
        dropped = am.invalidate(PRESERVE_NONE)
        # intervals + cfg + slots + liveness, plus the flat lowering when
        # REPRO_FAST is active (the default).
        expected = 5 if flat_enabled() else 4
        assert dropped == expected
        assert len(am) == 0
        assert am.total_invalidations() == expected

    def test_preserve_all_drops_nothing(self, mac_kernel):
        am = AnalysisManager(mac_kernel)
        am.get(LiveIntervalsAnalysis)
        assert am.invalidate(PRESERVE_ALL) == 0
        assert LiveIntervalsAnalysis in am

    def test_cfg_only_keeps_block_level_analyses(self, mac_kernel):
        am = AnalysisManager(mac_kernel)
        am.get(LiveIntervalsAnalysis)
        am.get(LoopInfoAnalysis)
        am.invalidate(CFG_ONLY)
        assert CFGAnalysis in am
        assert LoopInfoAnalysis in am
        for dropped in (SlotIndexesAnalysis, LivenessAnalysis, LiveIntervalsAnalysis):
            assert dropped not in am

    def test_dependency_closure(self, mac_kernel):
        """Preserving an analysis without its dependencies drops it too."""
        am = AnalysisManager(mac_kernel)
        am.get(LiveIntervalsAnalysis)
        # Liveness is missing from the preserved set, so LiveIntervals
        # cannot survive even though it is named.
        am.invalidate(
            frozenset({CFGAnalysis, SlotIndexesAnalysis, LiveIntervalsAnalysis})
        )
        assert LiveIntervalsAnalysis not in am
        assert CFGAnalysis in am
        assert SlotIndexesAnalysis in am

    def test_transitive_dependency_closure(self, mac_kernel):
        """The closure recurses: RCG <- cost model <- loop info."""
        am = AnalysisManager(mac_kernel)
        am.get(ConflictGraphAnalysis, regclass=FP)
        am.invalidate(
            frozenset({ConflictGraphAnalysis, ConflictCostAnalysis})
        )  # LoopInfo missing -> whole chain falls
        assert ConflictGraphAnalysis not in am
        assert ConflictCostAnalysis not in am

    def test_invalidation_then_reget_recomputes(self, mac_kernel):
        am = AnalysisManager(mac_kernel)
        before = am.get(LiveIntervalsAnalysis)
        am.invalidate(CFG_ONLY)
        after = am.get(LiveIntervalsAnalysis)
        assert before is not after
        assert am.counter(LiveIntervalsAnalysis).misses == 2


class TestReporting:
    def test_snapshot_is_plain_data(self, mac_kernel):
        am = AnalysisManager(mac_kernel)
        am.get(LiveIntervalsAnalysis)
        am.get(LiveIntervalsAnalysis)
        snap = am.stats_snapshot()
        assert snap["LiveIntervals"] == {
            "hits": 1,
            "misses": 1,
            "invalidations": 0,
        }

    def test_totals(self, mac_kernel):
        am = AnalysisManager(mac_kernel)
        # Intervals miss 4 analyses (5 with the flat lowering); Liveness's
        # internal CFG request hits, and with REPRO_FAST active the flat
        # lowering is requested twice (Liveness, then LiveIntervals).
        am.get(LiveIntervalsAnalysis)
        am.get(CFGAnalysis)
        if flat_enabled():
            assert am.total_hits() == 3
            assert am.total_misses() == 5
        else:
            assert am.total_hits() == 2
            assert am.total_misses() == 4
        counter = am.counter(CFGAnalysis)
        assert counter.hit_rate == pytest.approx(2 / 3)


class TestBinding:
    def test_manager_is_bound_to_one_function(self):
        fn_a = build_mac_kernel(2)
        fn_b = build_mac_kernel(2)
        from repro.passes import FunctionPassManager

        am = AnalysisManager(fn_a)
        with pytest.raises(ValueError):
            FunctionPassManager().run(fn_b, am=am)

"""Fleet telemetry: trace coherence, exposition round-trips, SLO stats.

The distributed-tracing contract under test: one request produces one
trace whose spans stitch into a single tree (no orphans) across every
layer it crossed — frontend, routed shard, worker pool, retries, and
fault injections — and turning telemetry on never changes a byte of any
artifact.
"""

from __future__ import annotations

import json

import pytest

from repro.ir import print_function
from repro.obs import reset_all
from repro.obs.telemetry import (
    EVENTS,
    TELEMETRY,
    TRACE_HEADER,
    SLOTracker,
    TraceContext,
    chrome_trace,
    orphan_spans,
    parse_prometheus,
    render_prometheus,
)
from repro.resilience import FAULTS, FaultPlan, load_plan
from repro.service import (
    AllocationService,
    LocalShard,
    ServiceConfig,
    ShardRouter,
)
from repro.service.loadgen import LoadgenConfig, RouterTarget, run_loadgen

from .conftest import build_mac_kernel


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Each test starts and ends with telemetry dark and faults disarmed."""
    reset_all()
    yield
    FAULTS.disarm()
    reset_all()


def make_request(method="bpc", trip_count=16, **extra):
    request = {
        "ir": print_function(build_mac_kernel(trip_count=trip_count)),
        "file": {"registers": 32, "banks": 2},
        "method": method,
    }
    request.update(extra)
    return request


def make_router(n=3, **kwargs):
    shards = [LocalShard(f"s{i}", ServiceConfig()) for i in range(n)]
    return ShardRouter(shards, **kwargs)


def span_names(spans):
    return [s["name"] for s in spans]


def parent_of(spans, name):
    """The span whose sid is the named span's parent, or None."""
    by_sid = {s["sid"]: s for s in spans}
    target = next(s for s in spans if s["name"] == name)
    return by_sid.get(target["parent"])


# ----------------------------------------------------------------------
# TraceContext wire format
# ----------------------------------------------------------------------
def test_trace_context_header_round_trip():
    ctx = TraceContext.new(kernel="mac", tier="bpc")
    parsed = TraceContext.parse(ctx.header())
    assert parsed.trace_id == ctx.trace_id
    assert parsed.span_id == ctx.span_id
    assert parsed.bag() == {"kernel": "mac", "tier": "bpc"}


def test_trace_context_parse_rejects_garbage():
    assert TraceContext.parse(None) is None
    assert TraceContext.parse("") is None
    assert TraceContext.parse(";;;") is None


def test_child_context_links_to_parent_span():
    ctx = TraceContext.new()
    child = ctx.child(1234)
    assert child.trace_id == ctx.trace_id
    assert child.span_id == 1234


# ----------------------------------------------------------------------
# One request, one coherent trace
# ----------------------------------------------------------------------
def test_router_submit_produces_single_coherent_trace():
    TELEMETRY.enable(process="frontend")
    router = make_router()
    ctx = TraceContext.new(kernel="mac")
    status = router.submit(make_request(), trace=ctx)
    assert router.wait(status["job_id"])["status"] == "done"

    spans = TELEMETRY.spans_for(ctx.trace_id)
    assert spans, "router must record spans under the request's trace id"
    assert orphan_spans(spans) == []
    names = span_names(spans)
    assert "route" in names
    assert "service.job" in names
    # The queue's job span hangs off the router's route span.
    assert parent_of(spans, "service.job")["name"] == "route"


def test_trace_stays_coherent_across_shard_handoff():
    plan = FaultPlan.from_dict(
        {"seed": 7, "faults": [{"site": "shard.route", "mode": "handoff", "times": 1}]}
    )
    FAULTS.arm(plan)
    TELEMETRY.enable(process="frontend")
    router = make_router()
    ctx = TraceContext.new()
    status = router.submit(make_request(), trace=ctx)
    assert router.wait(status["job_id"])["status"] == "done"

    spans = TELEMETRY.spans_for(ctx.trace_id)
    assert orphan_spans(spans) == []
    route = next(s for s in spans if s["name"] == "route")
    # The injected handoff is visible as instantaneous event spans
    # hanging off the route span: the fault fired, and the key landed on
    # a shard other than the ring's first choice.
    events = {s["name"]: s for s in spans if s["cat"] == "event"}
    assert "fault.shard.route" in events
    assert events["fault.shard.route"]["parent"] == route["sid"]
    assert "router.fault_handoff" in events
    # The job span still stitches under the (rerouted) route span.
    assert parent_of(spans, "service.job")["name"] == "route"


def test_trace_records_client_retry_as_event():
    # A service that fails the first executor attempt; the queue retries
    # and the trace shows both the failure and the served result.
    plan = FaultPlan.from_dict(
        {"seed": 3, "faults": [{"site": "queue.execute", "mode": "error", "times": 1}]}
    )
    FAULTS.arm(plan)
    TELEMETRY.enable(process="service")
    service = AllocationService(ServiceConfig())
    ctx = TraceContext.new()
    job = service.submit(make_request(), trace=ctx)
    for _ in range(4):  # first dispatch fails and requeues; second serves
        service.process_once()
        if job.status == "done":
            break
    assert job.status == "done"
    assert job.attempts == 2

    spans = TELEMETRY.spans_for(ctx.trace_id)
    assert orphan_spans(spans) == []
    retry = next(s for s in spans if s["name"] == "service.retry")
    assert retry["cat"] == "event"
    assert retry["args"]["attempt"] == 1
    assert "injected fault" in retry["args"]["error"]
    # The eventual service.job span reports the successful attempt.
    job_span = next(s for s in spans if s["name"] == "service.job")
    assert job_span["args"]["job"] == job.job_id
    service.stop()


def test_ci_chaos_plan_replay_keeps_traces_coherent():
    FAULTS.arm(load_plan("examples/faultplans/ci-chaos.json"))
    TELEMETRY.enable(process="frontend")
    router = make_router()
    contexts = []
    for i in range(6):
        ctx = TraceContext.new(kernel=f"k{i}")
        contexts.append(ctx)
        status = router.submit(make_request(trip_count=8 + i), trace=ctx)
        assert router.wait(status["job_id"])["status"] == "done"

    fired = FAULTS.stats()["injected_total"]
    assert fired > 0, "the chaos plan must actually inject on this sequence"
    event_names = []
    for ctx in contexts:
        spans = TELEMETRY.spans_for(ctx.trace_id)
        assert spans
        assert orphan_spans(spans) == []
        event_names.extend(s["name"] for s in spans if s["cat"] == "event")
    # The injected queue failure surfaces as a retry event in its trace.
    assert "service.retry" in event_names


def test_chrome_trace_export_groups_by_process():
    TELEMETRY.enable(process="frontend")
    router = make_router()
    ctx = TraceContext.new()
    status = router.submit(make_request(), trace=ctx)
    assert router.wait(status["job_id"])["status"] == "done"
    payload = {"trace_id": ctx.trace_id, "spans": TELEMETRY.spans_for(ctx.trace_id)}
    doc = chrome_trace(payload)
    events = doc["traceEvents"]
    assert any(e["ph"] == "X" for e in events)
    # One metadata lane per process, named after the span's proc label.
    lanes = {
        e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert "frontend" in lanes
    # Valid JSON end to end (what `repro trace fetch` writes to disk).
    json.dumps(doc)


# ----------------------------------------------------------------------
# Telemetry must never change results
# ----------------------------------------------------------------------
def test_artifacts_byte_identical_with_telemetry_on_and_off(tmp_path):
    request = make_request()

    service_off = AllocationService(ServiceConfig())
    job_off = service_off.submit(request)
    service_off.process_once()
    assert job_off.status == "done"
    service_off.stop()

    TELEMETRY.enable(process="service")
    EVENTS.enable(str(tmp_path / "events.jsonl"))
    service_on = AllocationService(ServiceConfig())
    job_on = service_on.submit(request, trace=TraceContext.new())
    service_on.process_once()
    assert job_on.status == "done"
    service_on.stop()

    assert job_off.artifact == job_on.artifact  # bit-identical bytes
    assert job_off.key == job_on.key
    # The trace id never leaks into the artifact or its cache key.
    assert job_on.trace.trace_id not in job_on.artifact.decode("utf-8")


def test_structured_events_log_one_line_per_request(tmp_path):
    path = tmp_path / "events.jsonl"
    TELEMETRY.enable(process="service")
    EVENTS.enable(str(path))
    service = AllocationService(ServiceConfig())
    ctx = TraceContext.new()
    job = service.submit(make_request(), trace=ctx)
    service.process_once()
    assert job.status == "done"
    service.stop()
    EVENTS.close()

    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(lines) == 1  # one structured record per request
    record = lines[0]
    assert record["trace"] == ctx.trace_id
    assert record["status"] == "done"
    assert record["proc"] == "service"
    assert record["retries"] == 0
    assert record["latency_ms"] >= 0.0
    assert "alloc" in record["stages_ms"]


# ----------------------------------------------------------------------
# /v1/metrics exposition
# ----------------------------------------------------------------------
def test_router_prometheus_exposition_round_trips():
    TELEMETRY.enable(process="frontend")
    router = make_router()
    for i in range(5):
        status = router.submit(make_request(trip_count=4 + i))
        assert router.wait(status["job_id"])["status"] == "done"

    samples = router.metrics_samples()
    text = render_prometheus(samples)
    parsed = parse_prometheus(text)

    routed = sum(
        value
        for (name, labels), value in parsed.items()
        if name == "repro_router_routed_total" and labels
    )
    assert routed == 5.0
    served = sum(
        value
        for (name, labels), value in parsed.items()
        if name == "repro_service_requests_total"
    )
    assert served == 5.0
    # Histogram series parse too, with cumulative bucket counts.
    route_counts = [
        value
        for (name, labels), value in parsed.items()
        if name == "repro_router_route_s_count"
    ]
    assert route_counts and route_counts[0] == 5.0


def test_parse_prometheus_rejects_malformed_lines():
    with pytest.raises(ValueError):
        parse_prometheus("this is not an exposition line\n")


def test_metrics_sample_includes_stage_histograms():
    service = AllocationService(ServiceConfig())
    job = service.submit(make_request())
    service.process_once()
    assert job.status == "done"
    service.stop()

    labels, sample = ({}, service.metrics_sample())
    assert sample["counters"]["service.requests"] == 1.0
    stage_names = [k for k in sample["histograms"] if k.startswith("service.stage_s.")]
    assert "service.stage_s.alloc" in stage_names
    assert "service.stage_s.queue_wait" in stage_names
    text = render_prometheus([(labels, sample)])
    assert "repro_service_stage_s_alloc_bucket" in text


# ----------------------------------------------------------------------
# SLO tracking and /v1/stats
# ----------------------------------------------------------------------
def test_slo_tracker_error_budget_burn():
    slo = SLOTracker(availability_target=0.9)
    for _ in range(18):
        slo.record(ok=True, latency_s=0.01, good=True)
    slo.record(ok=False)
    slo.record(ok=False)
    snap = slo.snapshot()
    assert snap["requests"] == 20
    assert snap["availability"] == pytest.approx(0.9)
    # 10% budget on 20 requests = 2 allowed failures, both consumed.
    assert snap["error_budget"]["allowed"] == pytest.approx(2.0)
    assert snap["error_budget"]["consumed"] == 2
    assert snap["error_budget"]["burn"] == pytest.approx(1.0)
    assert snap["latency_ms"]["p99"] >= snap["latency_ms"]["p50"]


def test_router_stats_expose_slo_and_per_shard_health():
    router = make_router()
    for _ in range(3):
        status = router.submit(make_request())
        assert router.wait(status["job_id"])["status"] == "done"
    router.check_health()
    stats = router.stats()
    block = stats["router"]

    slo = block["slo"]
    assert slo["requests"] == 3
    assert slo["availability"] == 1.0
    assert slo["meets"]["availability"] is True

    shards = block["shards"]
    assert set(shards) == {"s0", "s1", "s2"}
    for entry in shards.values():
        assert entry["uptime_s"] >= 0.0
        assert entry["last_health_check"] is not None


def test_loadgen_report_carries_slo_and_stage_breakdown():

    TELEMETRY.enable(process="loadgen")
    router = make_router()
    config = LoadgenConfig(requests=8, seed=11)
    report = run_loadgen(RouterTarget(router), config)
    assert report["slo"]["requests"] == 8
    assert report["slo"]["goodput_ratio"] > 0.0
    assert report["stages_ms"], "stage breakdown must be populated"
    for stage, entry in report["stages_ms"].items():
        assert entry["count"] > 0
        assert entry["p99"] >= 0.0
    assert report["trace_ids"], "telemetry-on runs record sample trace ids"
    assert TELEMETRY.spans_for(report["trace_ids"][0])

"""Conflict hotspot profiler: site attribution, merging, rendering.

The load-bearing guarantee is **100% attribution**: with the profiler on,
the sum of per-site stall cycles equals the aggregate conflict penalty
the simulators report — nothing is lost, nothing double-counted.  The
hand-allocated Fig. 2-style kernel pins the exact sites: registers are
chosen so the bank and subgroup decodes (2x4 file: ``bank=(r%8)//4``,
``subgroup=r%4``) are known in advance.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.banks import BankedRegisterFile, BankSubgroupRegisterFile
from repro.ir import parse_function
from repro.obs import ConflictProfiler, loop_paths
from repro.prescount import PipelineConfig, run_pipeline
from repro.sim import DsaMachine, DynamicSimulator, estimate_dynamic_conflicts
from repro.sim.exec import ValueInterpreter
from repro.sim.machine import platform_rv2
from repro.workloads.specfp import specfp_suite

from .conftest import build_mac_kernel


@pytest.fixture(autouse=True)
def _restore_global_profile():
    yield
    obs.PROFILE.enable(False)
    obs.PROFILE.reset()


#: Fig. 2's v0..v3 dependence shape, hand-allocated on a 2x4 file so
#: every hazard is known: fadd reads $fp0/$fp1 (both bank 0 -> one bank
#: conflict; subgroups 0/1 -> one misalignment), fmul reads $fp4/$fp8
#: (banks 1/0, conflict-free; def $fp9 is subgroup 1 vs operands'
#: subgroup 0 -> one misalignment).  The loop body runs 10 times.
FIG2_ALLOCATED = """
func @fig2 {
block entry:
  $fp0 = li #1.0
  $fp1 = li #2.0
  $fp4 = li #3.0
  jmp loop1.header
block loop1.header [trip=10]:
  $fp8 = fadd $fp0, $fp1
  $fp9 = fmul $fp4, $fp8
  br loop1.header prob=0.9
block loop1.exit:
  ret $fp9
}
"""


def fig2():
    return parse_function(FIG2_ALLOCATED)


def dsa_file():
    return BankSubgroupRegisterFile(16, 2, 4)


class TestSiteAttribution:
    def test_dsa_sites_and_full_cycle_attribution(self):
        obs.PROFILE.enable()
        report = DsaMachine(dsa_file()).run(fig2())
        # Aggregate ground truth: 1 bank conflict + 2 misalignments per
        # iteration, 10 iterations.
        assert report.conflict_penalty_cycles == pytest.approx(10.0)
        assert report.alignment_penalty_cycles == pytest.approx(20.0)
        # 100% attribution: every stall cycle lands on a site.
        assert obs.PROFILE.total_cycles() == pytest.approx(
            report.conflict_penalty_cycles + report.alignment_penalty_cycles
        )
        sites = obs.PROFILE.sites
        nest = ("loop1.header",)
        assert sites[
            ("fig2", nest, "loop1.header", 0, "fadd", "bank0($fp0,$fp1)")
        ].cycles == pytest.approx(10.0)
        assert sites[
            ("fig2", nest, "loop1.header", 0, "fadd", "align(sg0|sg1)")
        ].cycles == pytest.approx(10.0)
        assert sites[
            ("fig2", nest, "loop1.header", 1, "fmul", "align(sg0|sg1)")
        ].cycles == pytest.approx(10.0)
        assert len(sites) == 3
        # The conflict-free entry/exit blocks contribute nothing.
        assert all(key[2] == "loop1.header" for key in sites)

    def test_estimator_attribution_matches_aggregate(self):
        obs.PROFILE.enable()
        stats = estimate_dynamic_conflicts(fig2(), dsa_file())
        assert stats.dynamic_conflicts == 10
        assert stats.dynamic_subgroup_violations == 20
        assert obs.PROFILE.total_conflicts() == pytest.approx(
            stats.total_hazards
        )

    def test_interpreter_attribution_matches_aggregate(self):
        # The interpreted run takes whatever path the seeded RNG picks;
        # attribution must equal the aggregate on *that* path.
        fn = build_mac_kernel(n_pairs=4)
        rf = BankedRegisterFile(16, 2)
        allocated = run_pipeline(fn, PipelineConfig(rf, "non")).function
        obs.PROFILE.enable()
        stats = DynamicSimulator(rf).run(allocated)
        assert obs.PROFILE.total_conflicts() == stats.total_hazards

    def test_execution_heat_covers_every_executed_instruction(self):
        obs.PROFILE.enable()
        trace = ValueInterpreter(seed=0).run(fig2())
        total_heat = sum(s.executions for s in obs.PROFILE.sites.values())
        assert total_heat == trace.executed_instructions
        # Pure heat: no hazard decode, so no cycles are claimed.
        assert obs.PROFILE.total_cycles() == 0.0
        assert all(key[5] == "" for key in obs.PROFILE.sites)

    def test_disabled_records_nothing(self):
        assert not obs.PROFILE.enabled
        DsaMachine(dsa_file()).run(fig2())
        estimate_dynamic_conflicts(fig2(), dsa_file())
        ValueInterpreter().run(fig2())
        assert len(obs.PROFILE) == 0


class TestLoopPaths:
    def test_paths_are_outer_to_inner(self):
        from .conftest import build_nested_loops

        paths = loop_paths(build_nested_loops())
        inner = [p for p in paths.values() if len(p) == 2]
        assert inner and all(p[0].startswith("loop1") for p in inner)
        assert paths["entry"] == ()


class TestSnapshotMerge:
    def test_roundtrip_restores_tuple_keys(self):
        worker = ConflictProfiler(enabled=True)
        key = ("f", ("loop1.header",), "b", 3, "fadd", "bank0($fp0,$fp8)")
        worker.record(key, conflicts=2.0, cycles=2.0, executions=4.0)
        snap = worker.snapshot()
        json.dumps(snap)  # picklable and JSON-safe
        parent = ConflictProfiler(enabled=True)
        parent.merge(snap)
        parent.merge(snap)
        parent.merge(None)
        assert parent.sites[key].cycles == 4.0
        assert parent.sites[key].executions == 8.0

    @pytest.mark.parallel
    def test_parallel_suite_profile_matches_serial(self):
        from repro.experiments.harness import run_suite

        def sweep(jobs):
            obs.reset_all()
            suite = specfp_suite(0.02, seed=0)
            run_suite(
                suite, platform_rv2().file_for(2), "non",
                file_key="rv2:2", measure_dynamic=True, jobs=jobs,
            )
            return obs.PROFILE.to_json()

        obs.PROFILE.enable()
        serial = sweep(jobs=1)
        parallel = sweep(jobs=4)
        assert parallel == serial
        assert serial["sites"]  # the sweep really found hotspots


class TestRendering:
    def _profiled_fig2(self):
        obs.PROFILE.enable()
        fn = fig2()
        DsaMachine(dsa_file()).run(fn)
        return fn

    def test_render_top_table(self):
        self._profiled_fig2()
        text = obs.PROFILE.render(n=2)
        assert "3 sites, 30 attributed stall cycles" in text
        assert "fig2:loop1.header#0 fadd bank0($fp0,$fp1)" in text
        assert "[loop1.header]" in text
        assert "1 cooler sites elided" in text

    def test_render_empty(self):
        assert "(nothing recorded)" in ConflictProfiler().render()

    def test_folded_stacks_format(self):
        self._profiled_fig2()
        lines = obs.PROFILE.folded_stacks().splitlines()
        assert (
            "fig2;loop1.header;loop1.header;fadd#0[bank0($fp0,$fp1)] 10"
            in lines
        )
        # Every line is "<frame;frame;...> <integer>".
        for line in lines:
            frames, value = line.rsplit(" ", 1)
            assert int(value) > 0 and ";" in frames

    def test_annotated_listing_roundtrips(self):
        fn = self._profiled_fig2()
        listing = obs.PROFILE.annotate(fn)
        assert "; 20 stall cycles" in listing  # fadd: bank + align
        assert "bank0($fp0,$fp1)" in listing
        # Annotations are comments: the listing still parses back.
        reparsed = parse_function(listing)
        assert reparsed.instruction_count() == fn.instruction_count()

    def test_json_schema(self, tmp_path):
        self._profiled_fig2()
        path = tmp_path / "profile.json"
        obs.PROFILE.write_json(str(path))
        doc = json.loads(path.read_text())
        assert doc["schema"] == 1
        assert doc["total_cycles"] == pytest.approx(30.0)
        assert len(doc["sites"]) == 3
        assert {s["detail"] for s in doc["sites"]} == {
            "bank0($fp0,$fp1)", "align(sg0|sg1)", "align(sg0|sg1)",
        }

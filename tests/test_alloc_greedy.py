"""Tests for the greedy allocator (assign / evict / split / spill)."""

import pytest

from repro.alloc import AllocationError, GreedyAllocator
from repro.banks import BankedRegisterFile
from repro.ir import IRBuilder
from repro.ir.types import FP, PhysicalRegister, VirtualRegister
from repro.sim import observably_equivalent
from tests.conftest import build_mac_kernel


def remaining_vregs(function, regclass=FP):
    return [
        r
        for __, i in function.instructions()
        for r in i.regs()
        if isinstance(r, VirtualRegister) and r.regclass == regclass
    ]


class TestBasicAllocation:
    def test_all_vregs_rewritten(self, rf_rv2):
        fn = build_mac_kernel()
        result = GreedyAllocator(rf_rv2).run(fn)
        assert remaining_vregs(result.function) == []

    def test_no_spills_with_plenty_of_registers(self, rf_rich):
        fn = build_mac_kernel(n_pairs=8)
        result = GreedyAllocator(rf_rich).run(fn)
        assert result.spill_count == 0
        assert result.spill_instructions == 0

    def test_assignment_covers_all_original_vregs_or_spills(self, rf_rv2):
        fn = build_mac_kernel()
        result = GreedyAllocator(rf_rv2).run(fn)
        for vreg in fn.virtual_registers(FP):
            assert vreg in result.assignment or vreg in result.spilled

    def test_input_function_untouched_by_default(self, rf_rv2):
        fn = build_mac_kernel()
        before = fn.instruction_count()
        GreedyAllocator(rf_rv2).run(fn)
        assert fn.instruction_count() == before
        assert remaining_vregs(fn)  # still virtual

    def test_clone_false_mutates_in_place(self, rf_rv2):
        fn = build_mac_kernel()
        result = GreedyAllocator(rf_rv2).run(fn, clone=False)
        assert result.function is fn
        assert remaining_vregs(fn) == []

    def test_semantics_preserved_rich(self, rf_rich):
        fn = build_mac_kernel(n_pairs=6)
        result = GreedyAllocator(rf_rich).run(fn)
        assert observably_equivalent(fn, result.function)


class TestSpilling:
    def test_tight_file_spills(self):
        fn = build_mac_kernel(n_pairs=10)  # ~21 live values
        rf = BankedRegisterFile(8, 2)
        result = GreedyAllocator(rf).run(fn)
        assert result.spill_count > 0
        assert result.spill_instructions > 0
        assert remaining_vregs(result.function) == []

    def test_spill_code_is_tagged(self):
        fn = build_mac_kernel(n_pairs=10)
        rf = BankedRegisterFile(8, 2)
        result = GreedyAllocator(rf).run(fn)
        spill_ops = [
            i for __, i in result.function.instructions() if i.attrs.get("spill")
        ]
        assert len(spill_ops) == result.spill_instructions

    def test_semantics_preserved_under_spilling(self):
        fn = build_mac_kernel(n_pairs=10)
        rf = BankedRegisterFile(8, 2)
        result = GreedyAllocator(rf).run(fn)
        assert observably_equivalent(fn, result.function)

    def test_impossibly_small_file_raises(self):
        # One register cannot hold three simultaneous operands.
        b = IRBuilder("f")
        x, y, z = b.const(1.0), b.const(2.0), b.const(3.0)
        t = b.arith("fmadd", x, y, z)
        b.ret(t)
        fn = b.finish()
        rf = BankedRegisterFile(1, 1)
        with pytest.raises(AllocationError):
            GreedyAllocator(rf).run(fn)


class TestEviction:
    def test_eviction_happens_under_pressure(self):
        fn = build_mac_kernel(n_pairs=10)
        rf = BankedRegisterFile(16, 2)
        result = GreedyAllocator(rf).run(fn)
        # Pressure exceeds the file: something must have been evicted or
        # spilled; both recorded.
        assert result.evictions + result.spill_count > 0

    def test_eviction_bounded(self):
        fn = build_mac_kernel(n_pairs=12)
        rf = BankedRegisterFile(8, 2)
        allocator = GreedyAllocator(rf, max_evictions_per_vreg=2)
        result = allocator.run(fn)  # must terminate
        assert remaining_vregs(result.function) == []


class TestPolicyIntegration:
    def test_policy_order_restricts_registers(self, rf_rv2):
        class OnlyBankZero:
            def setup(self, allocator):
                self.regs = rf_rv2.registers_in_bank(0)

            def order(self, vreg, interval):
                return self.regs

            def on_assign(self, vreg, preg):
                pass

            def on_unassign(self, vreg, preg):
                pass

        fn = build_mac_kernel(n_pairs=2)
        result = GreedyAllocator(rf_rv2, OnlyBankZero()).run(fn)
        used_banks = {
            rf_rv2.bank_of(r)
            for __, i in result.function.instructions()
            for r in i.regs()
            if isinstance(r, PhysicalRegister)
        }
        assert used_banks == {0}

    def test_policy_callbacks_fire(self, rf_rv2):
        events = []

        class Recorder:
            def setup(self, allocator):
                events.append("setup")

            def order(self, vreg, interval):
                return []

            def on_assign(self, vreg, preg):
                events.append("assign")

            def on_unassign(self, vreg, preg):
                events.append("unassign")

        fn = build_mac_kernel(n_pairs=2)
        GreedyAllocator(rf_rv2, Recorder()).run(fn)
        assert events[0] == "setup"
        assert events.count("assign") >= 5


class TestStats:
    def test_bank_histogram_sums_to_assignments(self, rf_rv2):
        fn = build_mac_kernel()
        result = GreedyAllocator(rf_rv2).run(fn)
        histogram = result.stats["bank_histogram"]
        assert sum(histogram) == len(result.assignment)

    def test_max_pressure_reported(self, rf_rv2):
        fn = build_mac_kernel()
        result = GreedyAllocator(rf_rv2).run(fn)
        assert result.stats["max_pressure"] >= 9

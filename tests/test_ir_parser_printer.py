"""Round-trip and error-handling tests for the textual IR format."""

import pytest

from repro.ir import (
    ParseError,
    parse_function,
    parse_module,
    print_function,
    print_module,
    verify_function,
)
from repro.ir.types import Immediate, PhysicalRegister, VirtualRegister
from tests.conftest import build_diamond_kernel, build_mac_kernel, build_nested_loops


class TestRoundTrip:
    @pytest.mark.parametrize(
        "builder", [build_mac_kernel, build_diamond_kernel, build_nested_loops]
    )
    def test_print_parse_print_fixed_point(self, builder):
        fn = builder()
        text = print_function(fn)
        fn2 = parse_function(text)
        assert print_function(fn2) == text
        verify_function(fn2)

    def test_trip_count_round_trips(self):
        fn = build_nested_loops((6, 11))
        fn2 = parse_function(print_function(fn))
        headers = [b for b in fn2.blocks if b.attrs.get("loop_header")]
        assert sorted(h.attrs["trip_count"] for h in headers) == [6, 11]

    def test_branch_probability_round_trips(self):
        fn = build_diamond_kernel()
        fn2 = parse_function(print_function(fn))
        branches = [
            i for __, i in fn2.instructions() if i.kind.value == "branch"
        ]
        assert branches[0].attrs["taken_prob"] == pytest.approx(0.75)

    def test_module_round_trip(self):
        from repro.ir import Module

        module = Module("m")
        module.add(build_mac_kernel())
        module.add(build_diamond_kernel())
        text = print_module(module)
        module2 = parse_module(text)
        assert [f.name for f in module2.functions] == ["mac", "diamond"]


class TestOperandParsing:
    def test_physical_registers(self):
        fn = parse_function(
            """
            func @p {
            block entry:
              $fp3 = fadd $fp1, $fp2
              ret
            }
            """
        )
        instr = fn.entry.instructions[0]
        assert instr.defs == (PhysicalRegister(3),)
        assert instr.uses == (PhysicalRegister(1), PhysicalRegister(2))

    def test_integer_immediate(self):
        fn = parse_function(
            "func @i {\nblock entry:\n  %v0:fp = li #3\n  ret\n}"
        )
        assert fn.entry.instructions[0].uses == (Immediate(3),)

    def test_float_immediate(self):
        fn = parse_function(
            "func @i {\nblock entry:\n  %v0:fp = li #3.5\n  ret\n}"
        )
        assert fn.entry.instructions[0].uses == (Immediate(3.5),)

    def test_vreg_factory_adopts_parsed_ids(self):
        fn = parse_function(
            "func @i {\nblock entry:\n  %v41:fp = li #1\n  ret %v41:fp\n}"
        )
        assert fn.new_vreg().vid == 42

    def test_comments_ignored(self):
        fn = parse_function(
            "func @c { ; trailing\nblock entry: ; comment\n  ret ; done\n}"
        )
        assert len(fn.entry.instructions) == 1


class TestErrors:
    def test_instruction_outside_function(self):
        with pytest.raises(ParseError):
            parse_module("ret")

    def test_instruction_before_block(self):
        with pytest.raises(ParseError):
            parse_module("func @f {\n  ret\n}")

    def test_unterminated_function(self):
        with pytest.raises(ParseError):
            parse_module("func @f {\nblock entry:\n  ret")

    def test_bad_operand(self):
        with pytest.raises(ParseError):
            parse_module("func @f {\nblock entry:\n  %v0:fp = fadd ??\n}")

    def test_branch_without_target(self):
        with pytest.raises(ParseError):
            parse_module("func @f {\nblock entry:\n  br\n}")

    def test_unknown_block_attribute(self):
        with pytest.raises(ParseError):
            parse_module("func @f {\nblock entry [foo=1]:\n  ret\n}")

    def test_multiple_functions_rejected_by_parse_function(self):
        text = "func @a {\nblock entry:\n  ret\n}\nfunc @b {\nblock entry:\n  ret\n}"
        with pytest.raises(ValueError):
            parse_function(text)
        assert len(parse_module(text).functions) == 2

"""Tests for Function and Module containers."""

import pytest

from repro.ir import Function, Module, instruction as ins
from repro.ir.types import FP, GP, VirtualRegister
from tests.conftest import build_mac_kernel

V = VirtualRegister


class TestBlocks:
    def test_add_block_unique_labels(self):
        fn = Function("f")
        fn.add_block("a")
        with pytest.raises(ValueError):
            fn.add_block("a")

    def test_block_lookup(self):
        fn = Function("f")
        blk = fn.add_block("a")
        assert fn.block("a") is blk
        with pytest.raises(KeyError):
            fn.block("missing")

    def test_entry_is_first_block(self):
        fn = Function("f")
        a = fn.add_block("a")
        fn.add_block("b")
        assert fn.entry is a

    def test_entry_of_empty_function_raises(self):
        with pytest.raises(ValueError):
            Function("f").entry

    def test_next_label(self):
        fn = Function("f")
        a = fn.add_block("a")
        b = fn.add_block("b")
        assert fn.next_label(a) == "b"
        assert fn.next_label(b) is None

    def test_successors_resolve_blocks(self):
        fn = build_mac_kernel()
        for block in fn.blocks:
            for succ in fn.successors(block):
                assert succ in fn.blocks


class TestRegisters:
    def test_virtual_registers_first_appearance_order(self):
        fn = Function("f")
        blk = fn.add_block("entry")
        blk.append(ins.arith("fadd", V(5), V(3), V(7)))
        blk.append(ins.ret())
        regs = fn.virtual_registers()
        assert [r.vid for r in regs] == [3, 7, 5]  # uses before defs

    def test_virtual_registers_filter_class(self):
        fn = Function("f")
        blk = fn.add_block("entry")
        gp = VirtualRegister(1, GP)
        blk.append(ins.arith("fadd", V(0), gp, V(2)))
        blk.append(ins.ret())
        assert gp not in fn.virtual_registers(FP)
        assert gp in fn.virtual_registers(GP)

    def test_new_vreg_unique_after_parse(self):
        fn = build_mac_kernel()
        existing = {r.vid for r in fn.virtual_registers()}
        fresh = fn.new_vreg()
        assert fresh.vid not in existing

    def test_rewrite_registers(self):
        fn = Function("f")
        blk = fn.add_block("entry")
        blk.append(ins.arith("fadd", V(0), V(1), V(2)))
        blk.append(ins.ret(V(0)))
        fn.rewrite_registers({V(0): V(9)})
        assert V(9) in fn.virtual_registers()
        assert V(0) not in fn.virtual_registers()


class TestClone:
    def test_clone_is_deep(self):
        fn = build_mac_kernel()
        copy = fn.clone()
        copy.entry.instructions.clear()
        assert len(fn.entry.instructions) > 0

    def test_clone_preserves_structure(self):
        from repro.ir import print_function

        fn = build_mac_kernel()
        assert print_function(fn.clone()) == print_function(fn)

    def test_clone_vreg_factory_independent(self):
        fn = build_mac_kernel()
        copy = fn.clone()
        a = fn.new_vreg()
        b = copy.new_vreg()
        assert a.vid == b.vid  # same starting point, separate counters


class TestModule:
    def test_add_and_lookup(self):
        m = Module("m")
        fn = build_mac_kernel()
        m.add(fn)
        assert m.function("mac") is fn
        with pytest.raises(KeyError):
            m.function("nope")

    def test_iteration_and_len(self):
        m = Module("m")
        m.add(build_mac_kernel())
        assert len(m) == 1
        assert [f.name for f in m] == ["mac"]

"""Fault-injection framework: plan validation, determinism, accounting."""

from __future__ import annotations

import json

import pytest

from repro.resilience import FAULTS, FaultError, FaultPlan, load_plan
from repro.resilience.faults import FaultInjector, FaultPoint


@pytest.fixture(autouse=True)
def disarm():
    """Never leak an armed plan into other tests."""
    yield
    FAULTS.disarm()


# ----------------------------------------------------------------------
# Plan validation
# ----------------------------------------------------------------------
def test_unknown_site_and_mode_rejected():
    with pytest.raises(FaultError):
        FaultPoint(site="cache.disk.mangle", mode="bitflip")
    with pytest.raises(FaultError):
        FaultPoint(site="cache.disk.read", mode="duplicate")
    with pytest.raises(FaultError):
        FaultPoint(site="queue.execute", mode="death", prob=1.5)
    with pytest.raises(FaultError):
        FaultPoint(site="queue.execute", mode="death", after=-1)


def test_unknown_site_error_lists_valid_sites():
    """A typo'd plan must say what *would* have been accepted — the
    difference between a 5-second fix and a debugging session."""
    from repro.resilience.faults import SITES

    with pytest.raises(FaultError) as err:
        FaultPoint(site="queue.jornal", mode="torn-write")
    message = str(err.value)
    assert "queue.jornal" in message
    for site in SITES:
        assert site in message


def test_unknown_mode_error_lists_site_modes():
    with pytest.raises(FaultError) as err:
        FaultPoint(site="queue.journal", mode="torn")
    message = str(err.value)
    assert "queue.journal" in message
    for mode in ("torn-write", "error"):
        assert mode in message


def test_non_dict_detail_rejected():
    with pytest.raises(FaultError) as err:
        FaultPoint(site="queue.journal", mode="torn-write", detail=0.5)
    assert "detail" in str(err.value)
    # The valid spelling of the same intent.
    FaultPoint(site="queue.journal", mode="torn-write", detail={"keep": 0.5})


def test_durability_sites_registered():
    """The chaos suite's new sites exist with exactly these modes."""
    from repro.resilience.faults import SITES

    assert SITES["queue.journal"] == ("torn-write", "error")
    assert "kill9" in SITES["shard.worker"]


def test_plan_from_dict_validates_keys():
    plan = FaultPlan.from_dict(
        {"seed": 7, "faults": [{"site": "queue.execute", "mode": "error"}]}
    )
    assert plan.seed == 7
    assert len(plan.points) == 1
    with pytest.raises(FaultError):
        FaultPlan.from_dict({"seeds": 7})
    with pytest.raises(FaultError):
        FaultPlan.from_dict({"faults": [{"site": "queue.execute"}]})
    with pytest.raises(FaultError):
        FaultPlan.from_dict({"faults": [{"site": "queue.execute", "mode": "error", "when": 3}]})


def test_load_plan_round_trips(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(json.dumps({
        "seed": 42,
        "faults": [{"site": "cache.disk.read", "mode": "bitflip", "times": 1}],
    }))
    plan = load_plan(str(path))
    assert plan.seed == 42
    assert plan.points[0].mode == "bitflip"
    with pytest.raises(FaultError):
        load_plan(str(tmp_path / "missing.json"))
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(FaultError):
        load_plan(str(bad))


# ----------------------------------------------------------------------
# Firing semantics
# ----------------------------------------------------------------------
def test_times_after_and_match_accounting():
    plan = FaultPlan(points=[
        FaultPoint(site="queue.execute", mode="error",
                   times=2, after=1, match="bpc"),
    ])
    # Encounter 1 is skipped by `after`; non-matching labels never count.
    assert plan.fire("queue.execute", "non") is None
    assert plan.fire("queue.execute", "bpc") is None      # after=1
    assert plan.fire("queue.execute", "bpc") is not None  # inject 1
    assert plan.fire("queue.execute", "bpc") is not None  # inject 2
    assert plan.fire("queue.execute", "bpc") is None      # budget spent
    stats = plan.stats()
    assert stats["injected_total"] == 2
    assert stats["rules"][0]["encounters"] == 4


def test_probabilistic_rules_are_deterministic_per_seed():
    def pattern(seed: int) -> list[bool]:
        plan = FaultPlan(seed=seed, points=[
            FaultPoint(site="server.request", mode="error", prob=0.5),
        ])
        return [plan.fire("server.request") is not None for _ in range(32)]

    assert pattern(0) == pattern(0)
    assert pattern(1) == pattern(1)
    assert pattern(0) != pattern(1)  # astronomically unlikely to match
    assert any(pattern(0)) and not all(pattern(0))


def test_corrupt_modes_are_deterministic():
    injector = FaultInjector()
    injector.arm(FaultPlan(points=[
        FaultPoint(site="cache.disk.read", mode="bitflip",
                   detail={"byte": 3, "bit": 0}),
    ]))
    data = b"0123456789"
    corrupted, point = injector.corrupt("cache.disk.read", data)
    assert point is not None
    assert corrupted != data
    assert corrupted[3] == data[3] ^ 1
    assert len(corrupted) == len(data)

    injector.arm(FaultPlan(points=[
        FaultPoint(site="cache.disk.read", mode="truncate", detail={"keep": 4}),
    ]))
    corrupted, _ = injector.corrupt("cache.disk.read", data)
    assert corrupted == data[:4]

    injector.arm(FaultPlan(points=[
        FaultPoint(site="cache.disk.read", mode="garbage"),
    ]))
    corrupted, _ = injector.corrupt("cache.disk.read", data)
    assert b"garbage" in corrupted


def test_disarmed_injector_is_inert():
    injector = FaultInjector()
    assert injector.enabled is False
    assert injector.fire("queue.execute") is None
    assert injector.corrupt("cache.disk.read", b"abc") == (b"abc", None)
    assert injector.stats() is None


def test_env_arming(tmp_path, monkeypatch):
    path = tmp_path / "plan.json"
    path.write_text(json.dumps({
        "faults": [{"site": "queue.execute", "mode": "stall"}],
    }))
    monkeypatch.setenv("REPRO_FAULTS", str(path))
    from repro.resilience.faults import _arm_from_env

    _arm_from_env()
    assert FAULTS.enabled
    assert FAULTS.plan is not None
    assert FAULTS.plan.points[0].mode == "stall"

"""Tests for Algorithm 2: subgroup displacement assignment and hints."""

from repro.analysis import LiveIntervals
from repro.banks import BankSubgroupRegisterFile
from repro.ir import IRBuilder
from repro.prescount import (
    DsaPresCountPolicy,
    PresCountBankAssigner,
    SubgroupState,
)
from repro.ir.types import VirtualRegister
from repro.workloads import reduce_kernel

V = VirtualRegister


def small_dsa():
    return BankSubgroupRegisterFile(32, 2, 4)


class TestSubgroupState:
    def test_components_from_function(self):
        fn = reduce_kernel(inputs=4)
        state = SubgroupState.from_function(fn, 4)
        # Reduction: everything aligns into one component.
        comp_ids = set(state.component_of.values())
        assert len(comp_ids) == 1

    def test_component_shares_displacement(self):
        fn = reduce_kernel(inputs=4)
        state = SubgroupState.from_function(fn, 4)
        displacements = {
            state.displacement_for(reg) for reg in state.component_of
        }
        assert len(displacements) == 1

    def test_min_used_balances(self):
        state = SubgroupState(4)
        ids = [state.add_component({V(i)}) for i in range(8)]
        for i in range(8):
            state.displacement_for(V(i))
        # Eight singleton components over four subgroups: two each.
        usage = [state.usage.get(d, 0) for d in range(4)]
        assert usage == [2, 2, 2, 2]

    def test_usage_charged_by_component_size(self):
        state = SubgroupState(2)
        state.add_component({V(0), V(1), V(2)})
        state.add_component({V(3)})
        state.displacement_for(V(0))  # charges 3 to subgroup 0
        displ = state.displacement_for(V(3))
        assert displ == 1  # the smaller usage side

    def test_adopt_into_existing_component(self):
        state = SubgroupState(4)
        state.add_component({V(0)})
        d0 = state.displacement_for(V(0))
        state.adopt(V(1), like=V(0))
        assert state.displacement_for(V(1)) == d0

    def test_adopt_orphan_gets_fresh_component(self):
        state = SubgroupState(4)
        state.adopt(V(9))
        assert V(9) in state.component_of

    def test_as_assignment_flattens(self):
        fn = reduce_kernel(inputs=3)
        state = SubgroupState.from_function(fn, 4)
        for reg in list(state.component_of):
            state.displacement_for(reg)
        flat = state.as_assignment()
        assert len(flat) == len(state.component_of)


class TestDsaPolicy:
    def _setup(self):
        fn = reduce_kernel(inputs=4)
        rf = small_dsa()
        assignment = PresCountBankAssigner(rf).assign(fn)
        assignment.strict = True
        state = SubgroupState.from_function(fn, rf.num_subgroups)
        policy = DsaPresCountPolicy(rf, assignment, state)
        live = LiveIntervals.build(fn)
        return fn, rf, assignment, state, policy, live

    def test_hints_conform_to_bank_and_displacement(self):
        fn, rf, assignment, state, policy, live = self._setup()
        vreg = next(iter(assignment.banks))
        order = policy.order(vreg, live.of(vreg))
        bank = assignment.bank_of(vreg)
        displ = state.displacement_for(vreg)
        hint_count = len(rf.registers_conforming(bank, displ))
        for preg in list(order)[:hint_count]:
            assert rf.bank_of(preg) == bank
            assert rf.subgroup_of(preg) == displ

    def test_same_bank_before_other_banks(self):
        fn, rf, assignment, state, policy, live = self._setup()
        vreg = next(iter(assignment.banks))
        order = list(policy.order(vreg, live.of(vreg)))
        bank = assignment.bank_of(vreg)
        same_bank = rf.registers_per_bank
        assert all(rf.bank_of(r) == bank for r in order[:same_bank])
        assert all(rf.bank_of(r) != bank for r in order[same_bank:])

    def test_full_file_remains_reachable(self):
        fn, rf, assignment, state, policy, live = self._setup()
        vreg = next(iter(assignment.banks))
        assert len(policy.order(vreg, live.of(vreg))) == rf.num_registers

    def test_split_children_inherit_bank_and_subgroup(self):
        fn, rf, assignment, state, policy, live = self._setup()
        parent = next(iter(assignment.banks))
        parent_displ = state.displacement_for(parent)
        child = fn.new_vreg()
        policy.on_split(parent, [child])
        assert assignment.bank_of(child) == assignment.bank_of(parent)
        assert state.displacement_for(child) == parent_displ

    def test_unknown_vreg_sees_whole_file(self):
        fn, rf, assignment, state, policy, live = self._setup()
        stranger = fn.new_vreg()
        some = live.vreg_intervals()[0]
        assert len(policy.order(stranger, some)) == rf.num_registers

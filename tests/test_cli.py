"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_global_scale_flags(self):
        args = build_parser().parse_args(
            ["--spec-scale", "0.5", "--seed", "9", "table", "II"]
        )
        assert args.spec_scale == 0.5
        assert args.seed == 9

    def test_allocate_defaults(self):
        args = build_parser().parse_args(["allocate"])
        assert args.method == "bpc"
        assert args.registers == 32


class TestCommands:
    def test_unknown_table(self, capsys):
        assert main(["table", "XII"]) == 2
        assert "unknown table" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "99"]) == 2

    def test_allocate_runs(self, capsys):
        assert main(["allocate", "--registers", "16", "--banks", "2"]) == 0
        out = capsys.readouterr().out
        assert "static bank conflicts" in out
        assert "func @demo" in out

    def test_allocate_non_method(self, capsys):
        assert main(["allocate", "--method", "non"]) == 0

    def test_suite_listing(self, capsys):
        assert main(["--idft-points", "6", "suite", "DSA-OP"]) == 0
        out = capsys.readouterr().out
        assert "8 programs" in out
        assert "idft" in out

    def test_table_vi_small(self, capsys):
        assert main(["--idft-points", "6", "table", "VI"]) == 0
        out = capsys.readouterr().out
        assert "2x4-bpc" in out

    def test_figure1_small(self, capsys):
        code = main(
            ["--spec-scale", "0.008", "--cnn-scale", "0.1", "figure", "1"]
        )
        assert code == 0
        assert "conflict-relevant" in capsys.readouterr().out

"""Property-based tests (hypothesis) on core data structures and the
end-to-end pipeline invariants."""

import math

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import (
    BankPressureTracker,
    ConflictGraph,
    InterferenceGraph,
    LiveInterval,
    LiveIntervals,
)
from repro.banks import BankedRegisterFile, BankSubgroupRegisterFile
from repro.ir.types import FP, VirtualRegister
from repro.prescount import PipelineConfig, PresCountBankAssigner, run_pipeline
from repro.sim import analyze_static, observably_equivalent
from repro.workloads import random_function

V = VirtualRegister

segments_strategy = st.lists(
    st.tuples(st.integers(0, 200), st.integers(1, 20)).map(
        lambda p: (p[0], p[0] + p[1])
    ),
    min_size=1,
    max_size=8,
)


class TestIntervalProperties:
    @given(segments_strategy)
    def test_segments_sorted_and_disjoint(self, raw):
        iv = LiveInterval(V(0))
        for start, end in raw:
            iv.add_segment(start, end)
        for a, b in zip(iv.segments, iv.segments[1:]):
            assert a.end < b.start  # sorted, disjoint, non-adjacent

    @given(segments_strategy)
    def test_covers_matches_inputs(self, raw):
        iv = LiveInterval(V(0))
        for start, end in raw:
            iv.add_segment(start, end)
        for start, end in raw:
            assert iv.covers(start)
            assert iv.covers(end - 1)

    @given(segments_strategy, segments_strategy)
    def test_overlap_symmetric_and_matches_amount(self, raw_a, raw_b):
        a = LiveInterval(V(0))
        b = LiveInterval(V(1))
        for start, end in raw_a:
            a.add_segment(start, end)
        for start, end in raw_b:
            b.add_segment(start, end)
        assert a.overlaps(b) == b.overlaps(a)
        assert a.overlap_amount(b) == b.overlap_amount(a)
        assert a.overlaps(b) == (a.overlap_amount(b) > 0)

    @given(segments_strategy)
    def test_size_at_most_span(self, raw):
        iv = LiveInterval(V(0))
        for start, end in raw:
            iv.add_segment(start, end)
        assert 0 < iv.size <= iv.span


class TestPressureProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 1), segments_strategy), min_size=1, max_size=12
        )
    )
    def test_incremental_matches_recompute(self, assignments):
        tracker = BankPressureTracker(2)
        reference: dict[int, list[LiveInterval]] = {0: [], 1: []}
        for vid, (bank, raw) in enumerate(assignments):
            iv = LiveInterval(V(vid))
            for start, end in raw:
                iv.add_segment(start, end)
            predicted = tracker.pressure_if_assigned(bank, iv)
            tracker.assign(bank, iv)
            reference[bank].append(iv)
            assert tracker.pressure(bank) == predicted
            # Brute-force recompute: max over all points of active count.
            points = {
                p
                for other in reference[bank]
                for seg in other.segments
                for p in (seg.start, seg.end - 1)
            }
            brute = max(
                sum(1 for other in reference[bank] if other.covers(p))
                for p in points
            )
            assert tracker.pressure(bank) == brute


class TestBankDecodingProperties:
    @given(st.integers(0, 1023), st.sampled_from([2, 4, 8, 16]))
    def test_interleaved_bank_in_range(self, index, banks):
        rf = BankedRegisterFile(1024, banks)
        assert 0 <= rf.bank_of(index) < banks

    @given(st.integers(0, 1023))
    def test_fig6_decoding_formula(self, index):
        rf = BankSubgroupRegisterFile(1024, 2, 4)
        assert rf.bank_of(index) == (index % 8) // 4
        assert rf.subgroup_of(index) == index % 4

    @given(st.sampled_from([2, 4, 8]))
    def test_banks_partition_registers(self, banks):
        rf = BankedRegisterFile(32, banks)
        seen = set()
        for bank in range(banks):
            regs = {r.index for r in rf.registers_in_bank(bank)}
            assert not (regs & seen)
            seen |= regs
        assert seen == set(range(32))


class TestGraphProperties:
    @settings(deadline=None, max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 300))
    def test_rcg_subgraph_of_rig(self, seed):
        fn = random_function(seed)
        live = LiveIntervals.build(fn)
        rig = InterferenceGraph.build(fn, live)
        rcg = ConflictGraph.build(fn)
        for key in rcg.edge_cost:
            a, b = tuple(key)
            assert rig.interferes(a, b)

    @settings(deadline=None, max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 300))
    def test_rig_matches_brute_force(self, seed):
        fn = random_function(seed, max_ops=15)
        live = LiveIntervals.build(fn)
        rig = InterferenceGraph.build(fn, live)
        intervals = live.vreg_intervals()
        for i, a in enumerate(intervals):
            for b in intervals[i + 1:]:
                assert rig.interferes(a.reg, b.reg) == a.overlaps(b)

    @settings(deadline=None, max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 300), st.sampled_from([2, 4]))
    def test_coloring_conflict_cost_nonnegative(self, seed, banks):
        fn = random_function(seed, max_ops=20)
        rf = BankedRegisterFile(32, banks)
        assignment = PresCountBankAssigner(rf).assign(fn)
        assert assignment.residual_cost >= 0.0
        rcg = ConflictGraph.build(fn)
        # Residual cost zero iff the RCG coloring is proper.
        restricted = {r: assignment.banks[r] for r in rcg.nodes()}
        assert (assignment.residual_cost == 0.0) == rcg.is_proper_coloring(
            restricted
        ) or not rcg.nodes()


class TestPipelineProperties:
    @settings(deadline=None, max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 500), st.sampled_from(["non", "bcr", "bpc"]))
    def test_semantics_preserved(self, seed, method):
        fn = random_function(seed, max_ops=25)
        rf = BankedRegisterFile(16, 2)
        result = run_pipeline(fn, PipelineConfig(rf, method))
        assert observably_equivalent(fn, result.function, seed=seed)

    @settings(deadline=None, max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 500))
    def test_no_virtual_registers_survive(self, seed):
        fn = random_function(seed, max_ops=25)
        rf = BankedRegisterFile(16, 2)
        result = run_pipeline(fn, PipelineConfig(rf, "bpc"))
        leftovers = [
            r
            for __, i in result.function.instructions()
            for r in i.regs()
            if isinstance(r, VirtualRegister) and r.regclass == FP
        ]
        assert leftovers == []

    @settings(deadline=None, max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 500))
    def test_bpc_realizes_its_predicted_residual_when_rich(self, seed):
        """In the register-rich regime the allocator honors the bank
        assignment fully: the weighted conflicts that remain are exactly
        the residual cost Algorithm 1 itself predicted (the monochromatic
        RCG edges it could not avoid).  `non` can occasionally get lucky
        on an uncolorable RCG, so bpc <= non is only a *statistical*
        claim (checked in test_prescount_bcr); this is the per-function
        invariant."""
        fn = random_function(seed, max_ops=25)
        rf = BankedRegisterFile(1024, 2)
        bpc = run_pipeline(fn, PipelineConfig(rf, "bpc"))
        bpc_cost = analyze_static(bpc.function, rf).weighted_conflicts
        assert bpc.bank_assignment is not None
        assert bpc_cost <= bpc.bank_assignment.residual_cost + 1e-9

    @settings(deadline=None, max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 500))
    def test_dsa_semantics_preserved(self, seed):
        fn = random_function(seed, max_ops=20)
        rf = BankSubgroupRegisterFile(1024, 2, 4)
        result = run_pipeline(fn, PipelineConfig(rf, "bpc"))
        assert observably_equivalent(fn, result.function, seed=seed)

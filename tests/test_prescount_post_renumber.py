"""Tests for the post-allocation renumbering baseline."""

import pytest

from repro.alloc.verify import verify_allocation
from repro.banks import BankedRegisterFile
from repro.ir import parse_function
from repro.ir.types import PhysicalRegister
from repro.prescount import PipelineConfig, run_pipeline
from repro.prescount.post_renumber import renumber_banks
from repro.sim import analyze_static, observably_equivalent
from tests.conftest import build_mac_kernel

P = PhysicalRegister


def conflicted_function():
    """One same-bank conflict ($fp0 and $fp2 are both bank 0 of 2)."""
    return parse_function(
        """
        func @f {
        block entry:
          $fp0 = li #1.0
          $fp2 = li #2.0
          $fp4 = fadd $fp0, $fp2
          ret $fp4
        }
        """
    )


class TestRenumbering:
    def test_global_renumber_resolves_conflict(self):
        fn = conflicted_function()
        rf = BankedRegisterFile(8, 2)
        result = renumber_banks(fn, rf)
        assert result.conflicts_found == 1
        assert result.renumbered == 1
        assert analyze_static(fn, rf).bank_conflicts == 0

    def test_renumber_preserves_semantics(self):
        fn = conflicted_function()
        reference = fn.clone()
        renumber_banks(fn, BankedRegisterFile(8, 2))
        assert observably_equivalent(reference, fn)
        assert verify_allocation(fn) == []

    def test_copy_fallback_when_registers_scarce(self):
        """With every other-bank register occupied across the range, the
        pass must fall back to a local copy (the paper's critique)."""
        fn = parse_function(
            """
            func @f {
            block entry:
              $fp0 = li #1.0
              $fp2 = li #2.0
              $fp1 = li #3.0
              $fp3 = li #4.0
              $fp4 = fadd $fp0, $fp2
              $fp5 = fadd $fp1, $fp3
              $fp6 = fadd $fp4, $fp5
              $fp7 = fadd $fp6, $fp6
              ret $fp7
            }
            """
        )
        rf = BankedRegisterFile(8, 2)
        result = renumber_banks(fn, rf)
        # fp0/fp2 conflict; banks: odd registers all get used (1,3,5,7),
        # so a whole-range renumber may or may not exist — the pass must
        # resolve through one mechanism or report unresolved.
        assert result.conflicts_found >= 1
        assert result.renumbered + result.copies_inserted + result.unresolved >= 1
        assert verify_allocation(fn) == []

    def test_no_conflicts_noop(self):
        fn = parse_function(
            "func @f {\nblock entry:\n  $fp0 = li #1.0\n  $fp1 = li #2.0\n"
            "  $fp2 = fadd $fp0, $fp1\n  ret $fp2\n}"
        )
        rf = BankedRegisterFile(8, 2)
        result = renumber_banks(fn, rf)
        assert result.conflicts_found == 0
        assert result.renumbered == 0


class TestAgainstPipeline:
    def test_post_method_reduces_non_conflicts(self, rf_rich):
        fn = build_mac_kernel(n_pairs=6)
        res = run_pipeline(fn, PipelineConfig(rf_rich, "non"))
        before = analyze_static(res.function, rf_rich).bank_conflicts
        renumber_banks(res.function, rf_rich)
        after = analyze_static(res.function, rf_rich).bank_conflicts
        assert after <= before
        assert observably_equivalent(fn, res.function)

    def test_post_needs_spare_registers(self):
        """Rich file: mostly renumbering.  Tight file: more copies or
        unresolved conflicts — the paper's argument for pre-allocation."""
        fn = build_mac_kernel(n_pairs=8)
        rich = BankedRegisterFile(1024, 2)
        tight = BankedRegisterFile(18, 2)
        res_rich = run_pipeline(fn, PipelineConfig(rich, "non"))
        res_tight = run_pipeline(fn, PipelineConfig(tight, "non"))
        post_rich = renumber_banks(res_rich.function, rich)
        post_tight = renumber_banks(res_tight.function, tight)
        rich_fallbacks = post_rich.copies_inserted + post_rich.unresolved
        tight_fallbacks = post_tight.copies_inserted + post_tight.unresolved
        assert tight_fallbacks >= rich_fallbacks

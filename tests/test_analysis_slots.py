"""Tests for slot indexing (the read/write point convention)."""

import pytest

from repro.analysis import SlotIndexes
from tests.conftest import build_mac_kernel


class TestNumbering:
    def test_slots_are_even_and_sequential(self):
        fn = build_mac_kernel()
        slots = SlotIndexes.build(fn)
        all_slots = [slots.slot(i) for __, i in fn.instructions()]
        assert all_slots == list(range(0, 2 * len(all_slots), 2))

    def test_read_and_write_points(self):
        fn = build_mac_kernel()
        slots = SlotIndexes.build(fn)
        instr = fn.entry.instructions[0]
        assert slots.read_point(instr) == slots.slot(instr)
        assert slots.write_point(instr) == slots.slot(instr) + 1

    def test_instruction_lookup_inverse(self):
        fn = build_mac_kernel()
        slots = SlotIndexes.build(fn)
        for __, instr in fn.instructions():
            assert slots.instruction(slots.slot(instr)) is instr

    def test_len_matches_instruction_count(self):
        fn = build_mac_kernel()
        slots = SlotIndexes.build(fn)
        assert len(slots) == fn.instruction_count()

    def test_last_slot(self):
        fn = build_mac_kernel()
        slots = SlotIndexes.build(fn)
        assert slots.last_slot == 2 * fn.instruction_count()


class TestBlockRanges:
    def test_ranges_are_contiguous_and_cover(self):
        fn = build_mac_kernel()
        slots = SlotIndexes.build(fn)
        cursor = 0
        for block in fn.blocks:
            start, end = slots.block_range[block.label]
            assert start == cursor
            assert end - start == 2 * len(block.instructions)
            cursor = end
        assert cursor == slots.last_slot

    def test_block_of_slot(self):
        fn = build_mac_kernel()
        slots = SlotIndexes.build(fn)
        for block in fn.blocks:
            start, end = slots.block_range[block.label]
            if start < end:
                assert slots.block_of_slot(start).label == block.label
                assert slots.block_of_slot(end - 1).label == block.label

    def test_block_of_slot_out_of_range(self):
        fn = build_mac_kernel()
        slots = SlotIndexes.build(fn)
        with pytest.raises(KeyError):
            slots.block_of_slot(slots.last_slot + 10)

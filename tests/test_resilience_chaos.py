"""Chaos suite: under any seeded fault plan, **fail-stop or correct**.

Every test arms a deterministic fault schedule, drives the service, and
asserts the invariant: a successful response is verifier-clean and
bit-identical to the fault-free run; a failure is explicit (failed job,
dead-letter record, 5xx) — never silent corruption.
"""

from __future__ import annotations

import threading

import pytest

from repro.ir import print_function
from repro.resilience import FAULTS, FaultPlan
from repro.resilience.faults import FaultPoint
from repro.service import (
    AllocationService,
    ServiceConfig,
    ServiceError,
    ServiceOverloadError,
    artifact_bytes,
    build_artifact,
    cache_key,
    make_server,
    shutdown_server,
)
from repro.service.client import CircuitOpenError, ServiceClient

from .conftest import build_mac_kernel

FILE = {"registers": 32, "banks": 2}
IR = print_function(build_mac_kernel())
REQUEST = {"ir": IR, "file": FILE, "method": "bpc"}

#: The fault-free run every chaos outcome must be bit-identical to.
BASELINE = artifact_bytes(build_artifact(IR, FILE, "bpc"))


@pytest.fixture(autouse=True)
def disarm():
    yield
    FAULTS.disarm()


def arm(*points: FaultPoint, seed: int = 0) -> None:
    FAULTS.arm(FaultPlan(seed=seed, points=list(points)))


def run_to_done(service: AllocationService, request: dict, rounds: int = 8):
    job = service.submit(request)
    for _ in range(rounds):
        if job.status in ("done", "failed"):
            break
        service.process_once()
    return job


# ----------------------------------------------------------------------
# Disk corruption: quarantine and recompute
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["bitflip", "truncate", "garbage"])
def test_corrupted_disk_entry_heals_bit_identical(tmp_path, mode):
    cache_dir = str(tmp_path / "cache")
    warm = AllocationService(ServiceConfig(cache_dir=cache_dir))
    assert run_to_done(warm, REQUEST).artifact == BASELINE

    arm(FaultPoint(site="cache.disk.read", mode=mode, times=1))
    # A fresh service has a cold memory layer, so the probe hits disk —
    # where the fault corrupts the bytes in flight.
    service = AllocationService(ServiceConfig(cache_dir=cache_dir))
    job = run_to_done(service, REQUEST)
    assert job.status == "done"
    assert job.artifact == BASELINE
    assert service.cache.stats()["quarantined"] >= 1
    quarantined = list((tmp_path / "cache").rglob("*.quarantined"))
    assert quarantined, "corrupt entry should be kept for post-mortem"


def test_partial_disk_write_never_serves_malformed_bytes(tmp_path):
    cache_dir = str(tmp_path / "cache")
    arm(FaultPoint(site="cache.disk.write", mode="partial", times=1))
    torn = AllocationService(ServiceConfig(cache_dir=cache_dir))
    job = run_to_done(torn, REQUEST)
    # The submitter still gets the correct artifact (memory layer).
    assert job.artifact == BASELINE
    FAULTS.disarm()

    # A restart reads the torn file: the checksum rejects it and the
    # service recomputes — the reader never returns malformed bytes.
    service = AllocationService(ServiceConfig(cache_dir=cache_dir))
    job = run_to_done(service, REQUEST)
    assert job.status == "done"
    assert job.artifact == BASELINE
    assert service.cache.stats()["quarantined"] >= 1


def test_disk_write_error_degrades_to_memory_only(tmp_path):
    arm(FaultPoint(site="cache.disk.write", mode="error", times=1))
    service = AllocationService(
        ServiceConfig(cache_dir=str(tmp_path / "cache"))
    )
    job = run_to_done(service, REQUEST)
    assert job.status == "done"
    assert job.artifact == BASELINE
    assert service.cache.stats()["disk_write_errors"] == 1
    # The entry still serves from memory.
    assert service.submit(REQUEST).cache == "hit"


def test_poisoned_cache_entry_caught_by_verifier(tmp_path):
    # A checksum-valid entry holding the *wrong* artifact (cross-key
    # poisoning) passes the frame check; only the independent verifier
    # can catch it on the disk-load path.
    cache_dir = str(tmp_path / "cache")
    key = cache_key(IR, FILE, "bpc", canonical=False)
    wrong = artifact_bytes(build_artifact(IR, FILE, "non"))
    poisoner = AllocationService(ServiceConfig(cache_dir=cache_dir))
    poisoner.cache.put(key, wrong)

    service = AllocationService(
        ServiceConfig(cache_dir=cache_dir, verify="cached-only")
    )
    job = run_to_done(service, REQUEST)
    assert job.status == "done"
    assert job.artifact == BASELINE
    assert service.counters["verify_failed"] == 1
    assert service.cache.stats()["quarantined"] == 1


# ----------------------------------------------------------------------
# Queue: worker faults, retries, dead-letter, duplicates
# ----------------------------------------------------------------------
def test_transient_execute_fault_retries_to_success():
    arm(FaultPoint(site="queue.execute", mode="error", times=1))
    service = AllocationService(ServiceConfig(job_backoff_s=0.0))
    job = run_to_done(service, REQUEST)
    assert job.status == "done"
    assert job.artifact == BASELINE
    assert job.attempts == 2
    assert service.counters["retried"] == 1
    assert service.dead_letter == []


def test_persistent_execute_fault_dead_letters():
    arm(FaultPoint(site="queue.execute", mode="error"))  # unbounded
    service = AllocationService(
        ServiceConfig(job_retries=2, job_backoff_s=0.0)
    )
    job = run_to_done(service, REQUEST)
    assert job.status == "failed"
    assert job.attempts == 3  # 1 try + 2 retries
    assert "injected fault" in job.error
    stats = service.stats()
    assert len(stats["dead_letter"]) == 1
    assert stats["dead_letter"][0]["job_id"] == job.job_id
    assert stats["counters"]["dead_lettered"] == 1

    # The service keeps serving after a dead-letter.
    FAULTS.disarm()
    ok = run_to_done(service, REQUEST)
    assert ok.status == "done"
    assert ok.artifact == BASELINE


def test_worker_stall_still_serves_correct_bytes():
    arm(FaultPoint(site="queue.execute", mode="stall",
                   detail={"stall_s": 0.01}, times=1))
    service = AllocationService(ServiceConfig())
    job = run_to_done(service, REQUEST)
    assert job.status == "done"
    assert job.artifact == BASELINE


def test_duplicate_dispatch_is_absorbed():
    arm(FaultPoint(site="queue.dispatch", mode="duplicate", times=1))
    service = AllocationService(ServiceConfig())
    job = run_to_done(service, REQUEST)
    assert job.status == "done"
    assert job.artifact == BASELINE
    assert service.counters["duplicate_deliveries"] >= 1
    assert service.counters["executed"] == 1


def test_fault_accounting_surfaces_in_stats():
    arm(FaultPoint(site="queue.execute", mode="error", times=1))
    service = AllocationService(ServiceConfig(job_backoff_s=0.0))
    run_to_done(service, REQUEST)
    stats = service.stats()
    assert stats["faults"]["injected_total"] == 1
    assert stats["faults"]["rules"][0]["site"] == "queue.execute"


# ----------------------------------------------------------------------
# Load shedding
# ----------------------------------------------------------------------
def test_full_queue_sheds_with_overload_error():
    service = AllocationService(ServiceConfig(max_queue_depth=1))
    first = service.submit(REQUEST)
    assert first.status == "queued"
    other = dict(REQUEST, method="non")
    with pytest.raises(ServiceOverloadError) as err:
        service.submit(other)
    assert err.value.retry_after_s > 0
    assert service.counters["shed"] == 1
    # Draining the queue restores service.
    service.process_once()
    ok = run_to_done(service, other)
    assert ok.status == "done"


# ----------------------------------------------------------------------
# HTTP layer under faults
# ----------------------------------------------------------------------
@pytest.fixture
def http_server(tmp_path):
    server = make_server(
        "127.0.0.1", 0,
        ServiceConfig(cache_dir=str(tmp_path / "cache"), verify="strict"),
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    shutdown_server(server)
    thread.join(timeout=5)


def _client(server, **kwargs) -> ServiceClient:
    host, port = server.server_address[:2]
    return ServiceClient(f"http://{host}:{port}", **kwargs)


def test_injected_server_503_is_retried_transparently(http_server):
    arm(FaultPoint(site="server.request", mode="error",
                   detail={"status": 503}, times=1))
    client = _client(http_server, backoff_s=0.01)
    status, artifact = client.allocate(IR, registers=32, banks=2, method="bpc")
    assert status["status"] == "done"
    assert artifact_bytes(artifact) == BASELINE


def test_connection_reset_is_retried_transparently(http_server):
    arm(FaultPoint(site="server.request", mode="reset", times=1))
    client = _client(http_server, backoff_s=0.01)
    status, artifact = client.allocate(IR, registers=32, banks=2, method="bpc")
    assert status["status"] == "done"
    assert artifact_bytes(artifact) == BASELINE


def test_injected_client_timeout_is_retried(http_server):
    arm(FaultPoint(site="client.request", mode="timeout", times=1))
    client = _client(http_server, backoff_s=0.01)
    assert client.health() == {"ok": True}


def test_circuit_breaker_fails_fast_after_consecutive_failures(http_server):
    arm(FaultPoint(site="client.request", mode="connreset"))  # every call
    client = _client(
        http_server, backoff_s=0.0, retries=1,
        breaker_threshold=2, breaker_cooldown_s=60.0,
    )
    with pytest.raises(ServiceError):
        client.health()
    assert client.breaker.state == "open"
    # While open, calls fail fast without touching the network.
    with pytest.raises(CircuitOpenError):
        client.health()


def test_concurrency_shed_returns_429(http_server):
    client = _client(http_server, retries=0)
    slots = http_server.request_slots
    held = 0
    while slots.acquire(blocking=False):
        held += 1
    try:
        with pytest.raises(ServiceError) as err:
            client.health()
        assert err.value.status == 429
    finally:
        for _ in range(held):
            slots.release()
    assert client.health() == {"ok": True}


def test_http_responses_under_mixed_fault_plan_are_bit_identical(http_server):
    # The headline invariant over a mixed schedule: disk corruption,
    # one worker fault, one shed response, one client timeout — every
    # 200 that comes back is bit-identical to the fault-free run.
    arm(
        FaultPoint(site="queue.execute", mode="error", times=1),
        FaultPoint(site="server.request", mode="error",
                   detail={"status": 503}, times=1, match="/v1/"),
        FaultPoint(site="client.request", mode="timeout", times=1,
                   after=1),
        FaultPoint(site="cache.disk.read", mode="bitflip", times=1),
    )
    client = _client(http_server, backoff_s=0.01)
    for _ in range(3):
        status, artifact = client.allocate(
            IR, registers=32, banks=2, method="bpc"
        )
        assert status["status"] == "done"
        assert artifact_bytes(artifact) == BASELINE
    stats = client.stats()
    assert stats["counters"]["failed"] == 0
    assert stats["faults"]["injected_total"] >= 2


# ----------------------------------------------------------------------
# Bounded retention (the unbounded-growth fix)
# ----------------------------------------------------------------------
def test_finished_jobs_are_evicted_beyond_retention():
    service = AllocationService(
        ServiceConfig(job_retention=3, verify="off")
    )
    jobs = []
    for trips in range(2, 10):
        kernel = print_function(build_mac_kernel(trip_count=2 ** trips))
        jobs.append(run_to_done(service, {"ir": kernel, "file": FILE,
                                          "method": "non"}))
    assert all(j.status == "done" for j in jobs)
    retained = [j for j in jobs if service.get(j.job_id) is not None]
    assert len(retained) <= 3
    assert service.counters["jobs_evicted"] >= 5
    # The most recent job is always still pollable.
    assert service.get(jobs[-1].job_id) is not None
    # The coalescing map never retains finished jobs.
    assert service._inflight == {}


def test_cache_hit_flood_stays_bounded():
    # Hits resolve without ever touching the queue; they must still
    # count toward retention or a hot key grows the jobs table forever.
    service = AllocationService(
        ServiceConfig(job_retention=4, verify="off")
    )
    run_to_done(service, REQUEST)
    for _ in range(20):
        job = service.submit(REQUEST)
        assert job.cache == "hit"
    with service._lock:
        retained = len(service._jobs)
    assert retained <= 4 + 1  # retention + the in-flight margin
    assert service.counters["jobs_evicted"] >= 16


def test_ttl_eviction_expires_old_finished_jobs():
    service = AllocationService(
        ServiceConfig(job_ttl_s=0.0, verify="off")
    )
    job = run_to_done(service, REQUEST)
    assert job.status == "done"
    # Any later submission sweeps the (instantly) expired job.
    other = print_function(build_mac_kernel(trip_count=32))
    run_to_done(service, {"ir": other, "file": FILE, "method": "non"})
    assert service.get(job.job_id) is None
    assert service.counters["jobs_evicted"] >= 1

"""Out-of-order machine model: hazards, backpressure, parity, determinism.

The load-bearing guarantee is the **degenerate parity proof**: at issue
width 1, a single read port per bank, and rename off, the
:class:`~repro.sim.ooo.OooMachine` must reproduce the in-order
:class:`~repro.sim.dsa.DsaMachine` bank-conflict and alignment cycle
counts *bit-identically* across the full paper workload set — every
other point of the width x ports sweep is only meaningful relative to
that anchor.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.banks import BankedRegisterFile, BankSubgroupRegisterFile
from repro.experiments import ExperimentContext, build_machine
from repro.ir import parse_function
from repro.ir.types import PhysicalRegister
from repro.sim import DsaMachine, OooConfig, OooMachine, normalize_machine_spec
from repro.sim.ooo import (
    IssueQueue,
    ReadPortArbiter,
    RegisterRenamer,
    ReorderBuffer,
)

P = PhysicalRegister


@pytest.fixture(autouse=True)
def _restore_global_profile():
    yield
    obs.PROFILE.enable(False)
    obs.PROFILE.reset()


def dsa_file():
    return BankSubgroupRegisterFile(16, 2, 4)


def flat_file():
    return BankedRegisterFile(16, 2)


def machine(config=None, register_file=None):
    return OooMachine(
        register_file if register_file is not None else flat_file(),
        config=config or OooConfig(),
    )


#: The paper workload set x methods the degenerate parity proof covers,
#: at the CLI-default scales (fast enough for tier-1, identical to what
#: the ``ooo-smoke`` CI job byte-compares via ``repro measure --out``).
PARITY_SUITES = ("SPECfp", "CNN-KERNEL", "DSA-OP")
PARITY_METHODS = ("non", "bcr", "bpc")


def small_ctx(jobs=None):
    return ExperimentContext(
        spec_scale=0.02, cnn_scale=0.2, idft_points=8, seed=0, jobs=jobs
    )


# ----------------------------------------------------------------------
# Components
# ----------------------------------------------------------------------
class TestComponents:
    def test_renamer_allocates_and_releases(self):
        r = RegisterRenamer(2)
        tag0, displaced0 = r.rename_def(P(0))
        assert displaced0 is None
        tag1, displaced1 = r.rename_def(P(0))
        assert displaced1 == tag0 and tag1 != tag0
        assert not r.can_allocate(1)
        r.release(tag0)
        assert r.can_allocate(1)
        r.release(None)  # no-op

    def test_renamer_exhaustion_raises_without_check(self):
        r = RegisterRenamer(1)
        r.rename_def(P(0))
        with pytest.raises(RuntimeError):
            r.rename_def(P(1))

    def test_issue_queue_selects_oldest_ready_first(self):
        iq = IssueQueue(4)
        for i in (3, 1, 2):
            iq.insert(i)
        assert iq.select(2, lambda i: i != 1) == [3, 2]
        assert len(iq) == 1 and not iq.select(2, lambda i: False)

    def test_rob_retires_in_order_up_to_width(self):
        rob = ReorderBuffer(4)
        for i in range(3):
            rob.push(i)
        # Head not complete: nothing retires even though 1 and 2 are.
        assert rob.retire(4, lambda i: i != 0) == []
        assert rob.retire(2, lambda i: True) == [0, 1]
        assert rob.retire(2, lambda i: True) == [2]


# ----------------------------------------------------------------------
# Read-port arbitration
# ----------------------------------------------------------------------
class TestArbitration:
    def test_extra_cycles_sum_over_banks(self):
        # Bank 0: fp0, fp2, fp8 (3 reads); bank 1: fp1 (1 read).
        arb = ReadPortArbiter(flat_file(), ports_per_bank=1)
        result = arb.arbitrate([(0, (P(0), P(1))), (1, (P(2), P(8)))])
        assert result.extra_cycles == 2  # ceil(3/1)-1 for bank 0 only

    def test_more_ports_absorb_conflicts(self):
        group = [(0, (P(0), P(2))), (1, (P(4), P(6)))]
        assert ReadPortArbiter(flat_file(), 1).arbitrate(group).extra_cycles == 3
        assert ReadPortArbiter(flat_file(), 2).arbitrate(group).extra_cycles == 1
        assert ReadPortArbiter(flat_file(), 4).arbitrate(group).extra_cycles == 0

    def test_oldest_first_read_never_pays(self):
        # All four reads hit bank 0; the oldest instruction's first read
        # rides the free wave, the recirculation waves are attributed to
        # whoever owns their first read.
        arb = ReadPortArbiter(flat_file(), ports_per_bank=1)
        result = arb.arbitrate([(0, (P(0),)), (1, (P(2), P(8)))])
        assert result.extra_cycles == 2
        assert result.per_instruction == {1: 2}  # the younger pays

    def test_attribution_reconciles_with_total(self):
        arb = ReadPortArbiter(flat_file(), ports_per_bank=1)
        result = arb.arbitrate(
            [(0, (P(0), P(2))), (1, (P(4), P(8))), (2, (P(1), P(6)))]
        )
        assert sum(result.per_instruction.values()) == result.extra_cycles
        assert sum(e for _, _, e in result.sites) == result.extra_cycles

    def test_single_instruction_group_matches_paper_penalty(self):
        from repro.sim import instruction_bank_conflicts

        fn = parse_function(
            "func @f {\nblock entry:\n  $fp8 = fmadd $fp0, $fp2, $fp4\n  ret\n}"
        )
        instr = list(fn.entry)[0]
        arb = ReadPortArbiter(flat_file(), ports_per_bank=1)
        reads = tuple(instr.bankable_reads(P(0).regclass))
        result = arb.arbitrate([(0, reads)])
        assert result.extra_cycles == instruction_bank_conflicts(
            instr, flat_file(), P(0).regclass
        )


# ----------------------------------------------------------------------
# Hazard ordering
# ----------------------------------------------------------------------
class TestHazards:
    def test_raw_dependence_serializes(self):
        dependent = parse_function(
            "func @f {\nblock entry:\n"
            "  $fp8 = fneg $fp0\n  $fp9 = fneg $fp8\n  ret\n}"
        )
        independent = parse_function(
            "func @f {\nblock entry:\n"
            "  $fp8 = fneg $fp0\n  $fp9 = fneg $fp4\n  ret\n}"
        )
        wide = machine(OooConfig(issue_width=4, read_ports=4))
        assert wide.run(dependent).cycles > wide.run(independent).cycles

    def test_rename_eliminates_waw_war(self):
        # $fp8 is reused for two unrelated chains: a WAW on the redefine
        # and a WAR against the first chain's reader.  With rename the
        # second chain proceeds in parallel; the scoreboard serializes.
        fn_text = (
            "func @f {\nblock entry:\n"
            "  $fp8 = fneg $fp0\n"
            "  $fp1 = fneg $fp8\n"
            "  $fp8 = fneg $fp4\n"
            "  $fp5 = fneg $fp8\n"
            "  ret\n}"
        )
        renamed = machine(OooConfig(issue_width=4, read_ports=4, rename=True))
        scoreboard = machine(
            OooConfig(issue_width=4, read_ports=4, rename=False)
        )
        assert (
            renamed.run(parse_function(fn_text)).cycles
            < scoreboard.run(parse_function(fn_text)).cycles
        )

    def test_waw_respected_without_rename(self):
        # Without rename the redefinition of $fp8 must wait for the
        # first write, so the WAW pair costs a cycle two independent
        # writes do not pay at the same width.
        waw = parse_function(
            "func @f {\nblock entry:\n"
            "  $fp8 = fneg $fp0\n  $fp8 = fneg $fp4\n  ret\n}"
        )
        independent = parse_function(
            "func @f {\nblock entry:\n"
            "  $fp8 = fneg $fp0\n  $fp9 = fneg $fp4\n  ret\n}"
        )
        wide = machine(OooConfig(issue_width=4, read_ports=4, rename=False))
        assert wide.run(waw).cycles > wide.run(independent).cycles


# ----------------------------------------------------------------------
# Backpressure
# ----------------------------------------------------------------------
def long_chain(n=12):
    lines = ["func @f {", "block entry:"]
    lines.append("  $fp8 = fneg $fp0")
    for _ in range(n - 1):
        lines.append("  $fp8 = fneg $fp8")
    lines.append("  ret")
    lines.append("}")
    return parse_function("\n".join(lines))


class TestBackpressure:
    def test_rob_full_stalls_dispatch(self):
        fn = long_chain()
        tiny = machine(OooConfig(issue_width=4, read_ports=4, rob_size=2))
        roomy = machine(OooConfig(issue_width=4, read_ports=4, rob_size=64))
        assert tiny.run(fn).rob_stall_cycles > 0
        assert roomy.run(fn).rob_stall_cycles == 0

    def test_iq_full_stalls_dispatch(self):
        fn = long_chain()
        tiny = machine(
            OooConfig(issue_width=4, read_ports=4, rob_size=64, iq_size=1)
        )
        assert tiny.run(fn).iq_stall_cycles > 0

    def test_rename_pool_stalls_then_progresses(self):
        fn = long_chain(4)
        # Enough tags to make progress, few enough to stall dispatch.
        tight = machine(
            OooConfig(issue_width=4, read_ports=4, rob_size=64, phys_regs=2)
        )
        report = tight.run(fn)
        assert report.rename_stall_cycles > 0
        assert report.cycles >= 4  # still retires everything

    def test_exhausted_rename_pool_deadlocks_loudly(self):
        fn = parse_function(
            "func @f {\nblock entry:\n"
            "  $fp8 = fneg $fp0\n  $fp9 = fneg $fp4\n  ret\n}"
        )
        broken = machine(OooConfig(issue_width=1, read_ports=1, phys_regs=1))
        with pytest.raises(RuntimeError, match="deadlock"):
            broken.run(fn)


# ----------------------------------------------------------------------
# Profiler reconciliation
# ----------------------------------------------------------------------
class TestProfiler:
    def test_sites_sum_to_penalty_totals(self):
        fn = parse_function(
            "func @f {\nblock entry:\n"
            "  $fp8 = fadd $fp0, $fp8\n"      # bank conflict
            "  $fp10 = fadd $fp1, $fp6\n"     # subgroup misalignment
            "  ret\n}"
        )
        obs.PROFILE.enable()
        report = machine(
            OooConfig(issue_width=1, read_ports=1, rename=False),
            register_file=dsa_file(),
        ).run(fn)
        total = report.conflict_penalty_cycles + report.alignment_penalty_cycles
        assert total > 0
        assert obs.PROFILE.total_cycles() == pytest.approx(total)
        details = {key[5] for key in obs.PROFILE.sites}
        assert any(d.startswith("port(") for d in details)
        assert any(d.startswith("align(") for d in details)


# ----------------------------------------------------------------------
# Degenerate parity: the anchor of the whole sweep
# ----------------------------------------------------------------------
class TestDegenerateParity:
    def test_degenerate_config_is_flagged(self):
        assert OooConfig.degenerate().is_degenerate
        assert not OooConfig().is_degenerate

    def test_parity_on_full_paper_workload_set(self):
        ctx = small_ctx()
        spec = OooConfig.degenerate().to_dict()
        for suite in PARITY_SUITES:
            inorder = ctx.results(
                suite, "dsa", 0, "bpc",
                measure_dynamic=False, measure_cycles=True,
            )
            degenerate = ctx.results(
                suite, "dsa", 0, "bpc",
                measure_dynamic=False, measure_cycles=True,
                machine_spec=spec,
            )
            assert len(inorder) == len(degenerate) > 0
            for a, b in zip(inorder, degenerate):
                assert a.program == b.program
                # Bit-identical floats, not approx: same integer counts
                # folded in the same accumulation order.
                assert a.conflict_cycles == b.conflict_cycles
                assert a.alignment_cycles == b.alignment_cycles

    @pytest.mark.parametrize("method", PARITY_METHODS)
    def test_parity_across_methods_on_dsa_suite(self, method):
        ctx = small_ctx()
        spec = OooConfig.degenerate().to_dict()
        inorder = ctx.results(
            "DSA-OP", "dsa", 0, method,
            measure_dynamic=False, measure_cycles=True,
        )
        degenerate = ctx.results(
            "DSA-OP", "dsa", 0, method,
            measure_dynamic=False, measure_cycles=True, machine_spec=spec,
        )
        for a, b in zip(inorder, degenerate):
            assert (a.conflict_cycles, a.alignment_cycles) == (
                b.conflict_cycles, b.alignment_cycles
            )

    def test_direct_machine_parity_on_conflict_kernel(self):
        fn = parse_function(
            "func @f {\nblock entry:\n"
            "  $fp8 = fadd $fp0, $fp8\n"
            "  $fp10 = fadd $fp1, $fp6\n"
            "  $fp9 = fmul $fp4, $fp12\n"
            "  ret\n}"
        )
        dsa = DsaMachine(dsa_file())
        deg = OooMachine(dsa_file(), config=OooConfig.degenerate())
        a = dsa.run(fn)
        b = deg.run(fn)
        assert a.conflict_penalty_cycles == b.conflict_penalty_cycles
        assert a.alignment_penalty_cycles == b.alignment_penalty_cycles


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_identical_across_fresh_runs(self):
        spec = {"model": "ooo", "issue_width": 2, "read_ports": 2}
        first = small_ctx().results(
            "DSA-OP", "dsa", 0, "bpc",
            measure_dynamic=False, measure_cycles=True, machine_spec=spec,
        )
        second = small_ctx().results(
            "DSA-OP", "dsa", 0, "bpc",
            measure_dynamic=False, measure_cycles=True, machine_spec=spec,
        )
        assert [(r.program, r.cycles, r.conflict_cycles) for r in first] == [
            (r.program, r.cycles, r.conflict_cycles) for r in second
        ]

    def test_identical_across_job_counts(self):
        spec = {"model": "ooo", "issue_width": 4, "read_ports": 1}
        serial = small_ctx(jobs=1).results(
            "DSA-OP", "dsa", 0, "bcr",
            measure_dynamic=False, measure_cycles=True, machine_spec=spec,
        )
        pooled = small_ctx(jobs=2).results(
            "DSA-OP", "dsa", 0, "bcr",
            measure_dynamic=False, measure_cycles=True, machine_spec=spec,
        )
        assert [(r.program, r.cycles, r.conflict_cycles) for r in serial] == [
            (r.program, r.cycles, r.conflict_cycles) for r in pooled
        ]


# ----------------------------------------------------------------------
# Spec plumbing
# ----------------------------------------------------------------------
class TestSpec:
    def test_normalize_accepts_name_dict_none(self):
        assert normalize_machine_spec(None) == {"model": "dsa"}
        assert normalize_machine_spec("dsa") == {"model": "dsa"}
        ooo = normalize_machine_spec("ooo")
        assert ooo["model"] == "ooo" and ooo["issue_width"] == 2
        assert normalize_machine_spec({"model": "ooo", "issue_width": 4}) == (
            OooConfig(issue_width=4).to_dict()
        )

    def test_normalize_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            normalize_machine_spec("vliw")
        with pytest.raises(ValueError):
            normalize_machine_spec({"model": "dsa", "issue_width": 2})
        with pytest.raises(ValueError):
            normalize_machine_spec({"model": "ooo", "warp_size": 32})

    def test_build_machine_dispatches_on_model(self):
        assert isinstance(build_machine(flat_file()), DsaMachine)
        assert isinstance(build_machine(flat_file(), machine_spec="dsa"), DsaMachine)
        m = build_machine(flat_file(), machine_spec={"model": "ooo", "read_ports": 4})
        assert isinstance(m, OooMachine) and m.config.read_ports == 4

    def test_config_round_trips_through_dict(self):
        config = OooConfig(issue_width=4, read_ports=1, rename=False)
        assert OooConfig.from_dict(config.to_dict()) == config

    def test_wider_machines_hide_conflict_penalty(self):
        ctx = small_ctx()
        rows = {}
        for width, ports in ((1, 1), (4, 4)):
            spec = {"model": "ooo", "issue_width": width, "read_ports": ports}
            results = ctx.results(
                "DSA-OP", "dsa", 0, "non",
                measure_dynamic=False, measure_cycles=True, machine_spec=spec,
            )
            rows[(width, ports)] = sum(r.cycles or 0.0 for r in results)
        assert rows[(4, 4)] < rows[(1, 1)]

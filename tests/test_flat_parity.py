"""Flat-core parity: the ``REPRO_FAST`` backends are invisible in output.

Every workload suite × method must produce byte-identical result
artifacts whichever backend runs (``off`` = object graph, ``python``,
``numpy``), and an incremental module rebuild must equal the
from-scratch build bit for bit whether 1, K, or all N functions
changed.  The observability layers must keep rendering original
register names (never interned rids) while the flat path is active.
"""

from __future__ import annotations

import os
import re

import pytest

from repro import obs
from repro.banks import BankedRegisterFile
from repro.ir import IRBuilder, print_function, print_module
from repro.ir.function import Module
from repro.prescount import PipelineConfig, run_pipeline
from repro.selfcheck import SelfCheckError, run_selfcheck
from repro.service import (
    IncrementalAllocator,
    artifact_bytes,
    build_artifact,
    build_module_artifact,
)
from repro.workloads import cnn_suite, dsa_suite, specfp_suite

METHODS = ("non", "bcr", "bpc")
FILE_SPEC = {"registers": 32, "banks": 4}

try:
    import numpy  # noqa: F401

    MODES = ("off", "python", "numpy")
except ImportError:  # pragma: no cover - numpy is baked into the image
    MODES = ("off", "python")


def _forced(mode: str):
    """Context manager forcing ``REPRO_FAST`` for one build."""
    import contextlib

    @contextlib.contextmanager
    def _inner():
        previous = os.environ.get("REPRO_FAST")
        os.environ["REPRO_FAST"] = mode
        try:
            yield
        finally:
            if previous is None:
                os.environ.pop("REPRO_FAST", None)
            else:
                os.environ["REPRO_FAST"] = previous

    return _inner()


def _workload_functions():
    """One representative function per suite program, small ones only."""
    suites = (
        specfp_suite(scale=0.02),
        cnn_suite(scale=0.1),
        dsa_suite(idft_points=8),
    )
    picked = []
    for suite in suites:
        for program in suite.programs:
            for fn in program.functions()[:1]:
                if fn.instruction_count() <= 400:
                    picked.append((f"{suite.name}/{program.name}", fn))
    return picked


WORKLOADS = _workload_functions()


class TestWorkloadParity:
    @pytest.mark.parametrize("method", METHODS)
    def test_artifacts_identical_across_backends(self, method):
        """workload × method: off/python/numpy artifacts byte-identical."""
        for label, fn in WORKLOADS:
            ir = print_function(fn)
            produced = {}
            for mode in MODES:
                with _forced(mode):
                    produced[mode] = artifact_bytes(
                        build_artifact(ir, FILE_SPEC, method)
                    )
            baseline = produced["off"]
            for mode in MODES[1:]:
                assert produced[mode] == baseline, (
                    f"{label} method={method}: REPRO_FAST={mode} diverged "
                    "from the object path"
                )

    def test_selfcheck_passes(self):
        summary = run_selfcheck()
        assert summary["ok"]

    def test_selfcheck_detects_divergence(self, monkeypatch):
        """A poisoned fast build must hard-fail, not slip through."""
        import repro.selfcheck as sc

        real = sc._artifact_under

        def poisoned(mode, ir, method):
            data = real(mode, ir, method)
            return data + b" " if mode != "off" else data

        monkeypatch.setattr(sc, "_artifact_under", poisoned)
        with pytest.raises(SelfCheckError):
            run_selfcheck(methods=("non",))


def _kernel(name: str, n: int, trip_count: int = 8):
    b = IRBuilder(name)
    xs = [b.const(float(i + 1)) for i in range(n)]
    acc = b.const(0.0)
    with b.loop(trip_count=trip_count):
        for i in range(len(xs) - 1):
            product = b.arith("fmul", xs[i], xs[i + 1])
            b.arith_into(acc, "fadd", acc, product)
    b.ret(acc)
    return b.finish()


def _module(trips: list[int]) -> str:
    module = Module("parity")
    for i, trip in enumerate(trips):
        module.add(_kernel(f"k{i}", 3 + i % 3, trip_count=trip))
    return print_module(module)


class TestIncrementalEqualsScratch:
    """incremental rebuild == from-scratch build, bit for bit."""

    SPEC = {"registers": 16, "banks": 2}

    @pytest.mark.parametrize("changed", [1, 2, 5])
    def test_rebuild_matches_scratch(self, changed):
        base = [8, 8, 8, 8, 8]
        allocator = IncrementalAllocator()
        first = artifact_bytes(
            allocator.allocate(_module(base), self.SPEC, "bpc")
        )
        scratch_first = artifact_bytes(
            build_module_artifact(_module(base), self.SPEC, "bpc")
        )
        assert first == scratch_first

        after = list(base)
        for i in range(changed):
            after[i] += 8  # a different trip count changes the function
        rebuilt = artifact_bytes(
            allocator.allocate(_module(after), self.SPEC, "bpc")
        )
        scratch = artifact_bytes(
            build_module_artifact(_module(after), self.SPEC, "bpc")
        )
        assert rebuilt == scratch
        assert allocator.counters["functions_total"] == 10
        assert allocator.counters["functions_executed"] == 5 + changed
        assert allocator.counters["functions_reused"] == 5 - changed


class TestNamesSurviveFlatPath:
    """Observability output renders %vN / $fN names, never interned rids."""

    @pytest.fixture(autouse=True)
    def _restore_obs(self):
        yield
        obs.AUDIT.enable(False)
        obs.AUDIT.reset()
        obs.PROFILE.enable(False)
        obs.PROFILE.reset()

    def test_audit_decision_paths_use_vreg_names(self):
        obs.AUDIT.enable()
        obs.AUDIT.reset()
        fn = _kernel("audit", 5, trip_count=16)
        run_pipeline(fn, PipelineConfig(BankedRegisterFile(16, 2), "bpc"))
        records = [r for r in obs.AUDIT.records if r.vreg != "-"]
        assert records, "bpc pipeline recorded no vreg decisions"
        for record in records:
            assert re.fullmatch(r"%v\d+", record.vreg), (
                f"audit record leaked a non-name register id: "
                f"{record.vreg!r}"
            )

    def test_profile_listing_uses_register_names(self):
        from repro.sim import estimate_dynamic_conflicts

        obs.PROFILE.enable()
        obs.PROFILE.reset()
        register_file = BankedRegisterFile(8, 2)
        fn = _kernel("hotspot", 6, trip_count=16)
        result = run_pipeline(fn, PipelineConfig(register_file, "non"))
        estimate_dynamic_conflicts(result.function, register_file)
        listing = obs.PROFILE.annotate(result.function)
        # The annotated listing is real printed IR: physical registers
        # appear as $f<N>; a leaked interned id would print as a bare
        # integer operand, which the grammar has no place for.
        assert "$f" in listing
        assert print_function(result.function).splitlines()[0] in listing

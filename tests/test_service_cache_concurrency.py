"""On-disk cache under concurrency and partial writes.

The disk layer is shared state: multiple server processes may insert
the same content-addressed entry at once, and a crashed writer can
leave a torn file behind.  The invariants:

* racing writers never produce a torn *visible* entry (atomic rename);
* a reader that does meet a torn/truncated file never returns malformed
  bytes — the checksum frame rejects it and the entry is quarantined.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os

import pytest

from repro.service.cache import AllocationCache, DISK_FORMAT, _frame, _unframe


def _key(tag: str) -> str:
    return hashlib.sha256(tag.encode()).hexdigest()


def _writer_proc(args) -> bool:
    cache_dir, key, payload = args
    cache = AllocationCache(cache_dir=cache_dir)
    cache.put(key, payload)
    return cache.get(key) == payload


# ----------------------------------------------------------------------
# Frame primitives
# ----------------------------------------------------------------------
def test_frame_round_trip_and_rejections():
    payload = b'{"k":1}'
    framed = _frame(payload)
    assert framed.startswith(DISK_FORMAT + b" ")
    assert _unframe(framed) == payload
    # Every torn prefix of a framed entry is rejected, never misread.
    for cut in range(len(framed)):
        assert _unframe(framed[:cut]) is None
    # A flipped payload bit breaks the digest.
    corrupt = bytearray(framed)
    corrupt[-1] ^= 1
    assert _unframe(bytes(corrupt)) is None
    # Legacy/foreign files (no header) are rejected.
    assert _unframe(payload) is None
    assert _unframe(b"") is None


# ----------------------------------------------------------------------
# Racing processes
# ----------------------------------------------------------------------
@pytest.mark.parallel
def test_racing_processes_same_key_converge(tmp_path):
    cache_dir = str(tmp_path)
    key = _key("shared")
    payload = b'{"artifact": "' + b"x" * 4096 + b'"}'
    with multiprocessing.Pool(4) as pool:
        outcomes = pool.map(
            _writer_proc, [(cache_dir, key, payload)] * 8
        )
    assert all(outcomes)
    reader = AllocationCache(cache_dir=cache_dir)
    assert reader.get(key) == payload
    assert reader.stats()["quarantined"] == 0


@pytest.mark.parallel
def test_racing_processes_distinct_keys_all_land(tmp_path):
    cache_dir = str(tmp_path)
    jobs = [
        (cache_dir, _key(f"k{i}"), b'{"i": ' + str(i).encode() + b"}")
        for i in range(16)
    ]
    with multiprocessing.Pool(4) as pool:
        outcomes = pool.map(_writer_proc, jobs)
    assert all(outcomes)
    reader = AllocationCache(cache_dir=cache_dir)
    for _, key, payload in jobs:
        assert reader.get(key) == payload


# ----------------------------------------------------------------------
# Torn files on disk
# ----------------------------------------------------------------------
def test_truncated_entry_never_returns_malformed_bytes(tmp_path):
    cache_dir = str(tmp_path)
    key = _key("torn")
    payload = b'{"assignment": {"v0": 0}}'
    writer = AllocationCache(cache_dir=cache_dir)
    writer.put(key, payload)
    path = os.path.join(cache_dir, key[:2], f"{key}.json")
    framed = open(path, "rb").read()

    # Simulate a crash mid-write at every possible torn length.
    for cut in (0, 1, len(DISK_FORMAT), len(framed) // 2, len(framed) - 1):
        with open(path, "wb") as fh:
            fh.write(framed[:cut])
        reader = AllocationCache(cache_dir=cache_dir)
        assert reader.get(key) is None  # never malformed bytes
        assert reader.stats()["quarantined"] == 1
        assert not os.path.exists(path)  # moved aside
        quarantined = path[: -len(".json")] + ".quarantined"
        assert os.path.exists(quarantined)
        os.unlink(quarantined)
        # Restore for the next cut.
        with open(path, "wb") as fh:
            fh.write(framed)

    # The intact entry still reads cleanly afterwards.
    assert AllocationCache(cache_dir=cache_dir).get(key) == payload


def test_tmp_droppings_are_ignored(tmp_path):
    cache_dir = str(tmp_path)
    key = _key("clean")
    cache = AllocationCache(cache_dir=cache_dir)
    cache.put(key, b'{"ok": true}')
    # A crashed writer's temp file next to the entry changes nothing.
    shard = os.path.join(cache_dir, key[:2])
    with open(os.path.join(shard, "zzz.tmp"), "wb") as fh:
        fh.write(b"\x00partial")
    reader = AllocationCache(cache_dir=cache_dir)
    assert reader.get(key) == b'{"ok": true}'
    assert reader.stats()["quarantined"] == 0


def test_concurrent_threads_one_cache_instance(tmp_path):
    import threading

    cache = AllocationCache(cache_dir=str(tmp_path), max_entries=64)
    errors: list[Exception] = []

    def hammer(worker: int) -> None:
        try:
            for i in range(50):
                key = _key(f"{worker}:{i % 8}")
                payload = b'{"w": ' + str(i % 8).encode() + b"}"
                cache.put(key, payload)
                got = cache.get(key)
                assert got == payload
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(w,)) for w in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert cache.stats()["quarantined"] == 0

"""Tests for basic-block mechanics (terminators, successors)."""

from repro.ir import BasicBlock, instruction as ins
from repro.ir.types import VirtualRegister

V = VirtualRegister


class TestAppend:
    def test_append_keeps_terminator_last(self):
        blk = BasicBlock("b")
        blk.append(ins.ret())
        blk.append(ins.loadimm(V(0), 1.0))
        assert blk.instructions[-1].kind.value == "ret"
        assert len(blk) == 2

    def test_terminator_property(self):
        blk = BasicBlock("b")
        assert blk.terminator is None
        blk.append(ins.loadimm(V(0), 1.0))
        assert blk.terminator is None
        blk.append(ins.jump("x"))
        assert blk.terminator.kind.value == "jump"

    def test_insert_at_index(self):
        blk = BasicBlock("b")
        blk.append(ins.loadimm(V(0), 1.0))
        blk.insert(0, ins.nop())
        assert blk.instructions[0].kind.value == "nop"


class TestSuccessors:
    def test_fallthrough_without_terminator(self):
        blk = BasicBlock("b")
        assert blk.successor_labels("next") == ["next"]
        assert blk.successor_labels(None) == []

    def test_jump(self):
        blk = BasicBlock("b")
        blk.append(ins.jump("t"))
        assert blk.successor_labels("next") == ["t"]

    def test_branch_has_target_and_fallthrough(self):
        blk = BasicBlock("b")
        blk.append(ins.branch("t", taken_prob=0.5))
        assert blk.successor_labels("next") == ["t", "next"]

    def test_branch_to_fallthrough_not_duplicated(self):
        blk = BasicBlock("b")
        blk.append(ins.branch("next", taken_prob=0.5))
        assert blk.successor_labels("next") == ["next"]

    def test_ret_has_no_successors(self):
        blk = BasicBlock("b")
        blk.append(ins.ret())
        assert blk.successor_labels("next") == []


class TestIteration:
    def test_body_excludes_terminator(self):
        blk = BasicBlock("b")
        blk.append(ins.loadimm(V(0), 1.0))
        blk.append(ins.ret())
        assert [i.kind.value for i in blk.body()] == ["loadimm"]

    def test_len_and_iter(self):
        blk = BasicBlock("b")
        blk.append(ins.loadimm(V(0), 1.0))
        blk.append(ins.ret())
        assert len(blk) == 2
        assert len(list(blk)) == 2

"""Tests for CFG construction, reverse postorder, and dominators."""

from repro.ir import CFG, IRBuilder, parse_function
from tests.conftest import build_diamond_kernel, build_nested_loops


def linear_function():
    return parse_function(
        """
        func @lin {
        block entry:
          %v0:fp = li #1.0
          jmp mid
        block mid:
          %v1:fp = fneg %v0:fp
          jmp end
        block end:
          ret %v1:fp
        }
        """
    )


class TestEdges:
    def test_linear_chain(self):
        cfg = CFG.build(linear_function())
        assert cfg.succs["entry"] == ["mid"]
        assert cfg.succs["mid"] == ["end"]
        assert cfg.preds["end"] == ["mid"]
        assert cfg.succs["end"] == []

    def test_diamond_edges(self):
        fn = build_diamond_kernel()
        cfg = CFG.build(fn)
        entry_succs = cfg.succs["entry"]
        assert len(entry_succs) == 2  # branch target + fall-through

    def test_loop_has_back_edge(self):
        fn = build_nested_loops((3, 3))
        cfg = CFG.build(fn)
        edges = cfg.back_edges()
        assert len(edges) == 2  # one per loop
        for tail, head in edges:
            assert cfg.dominates(head, tail)

    def test_acyclic_has_no_back_edges(self):
        assert CFG.build(build_diamond_kernel()).back_edges() == []


class TestRpo:
    def test_entry_first(self):
        cfg = CFG.build(linear_function())
        assert cfg.rpo[0] == "entry"

    def test_rpo_covers_reachable(self):
        fn = build_nested_loops()
        cfg = CFG.build(fn)
        assert set(cfg.rpo) == {b.label for b in fn.blocks}

    def test_unreachable_excluded(self):
        fn = parse_function(
            """
            func @u {
            block entry:
              ret
            block orphan:
              ret
            }
            """
        )
        cfg = CFG.build(fn)
        assert not cfg.is_reachable("orphan")
        assert cfg.is_reachable("entry")


class TestDominators:
    def test_entry_dominates_all(self):
        fn = build_nested_loops()
        cfg = CFG.build(fn)
        for label in cfg.rpo:
            assert cfg.dominates("entry", label)

    def test_reflexive(self):
        cfg = CFG.build(linear_function())
        assert cfg.dominates("mid", "mid")

    def test_linear_chain_dominance(self):
        cfg = CFG.build(linear_function())
        assert cfg.dominates("mid", "end")
        assert not cfg.dominates("end", "mid")

    def test_diamond_arms_do_not_dominate_join(self):
        fn = build_diamond_kernel()
        cfg = CFG.build(fn)
        join = next(l for l in cfg.rpo if l.endswith(".join"))
        then = next(l for l in cfg.rpo if l.endswith(".then"))
        assert not cfg.dominates(then, join)
        assert cfg.dominates("entry", join)

    def test_immediate_dominator_of_entry_is_none(self):
        cfg = CFG.build(linear_function())
        assert cfg.immediate_dominator("entry") is None

    def test_immediate_dominator_chain(self):
        cfg = CFG.build(linear_function())
        assert cfg.immediate_dominator("end") == "mid"
        assert cfg.immediate_dominator("mid") == "entry"

    def test_loop_header_dominates_body(self):
        b = IRBuilder("f")
        acc = b.const(0.0)
        with b.loop(trip_count=2):
            with b.if_then(0.5):
                b.arith_into(acc, "fadd", acc, acc)
        fn = b.finish()
        cfg = CFG.build(fn)
        header = next(
            blk.label for blk in fn.blocks if blk.attrs.get("loop_header")
        )
        then = next(l for l in cfg.rpo if l.endswith(".then"))
        assert cfg.dominates(header, then)

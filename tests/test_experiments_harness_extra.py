"""Extra harness coverage: config overrides, program-level metrics."""

import pytest

from repro.banks import BankedRegisterFile
from repro.experiments import ExperimentContext, run_program, run_suite
from repro.workloads import dsa_suite


@pytest.fixture(scope="module")
def suite():
    return dsa_suite(idft_points=6)


class TestRunProgram:
    def test_basic_metrics(self, suite):
        rf = BankedRegisterFile(1024, 2)
        result = run_program(suite.programs[0], rf, "non", suite_name="DSA-OP")
        assert result.program == "reduce"
        assert result.method == "non"
        assert result.functions == 1
        assert result.conflict_relevant > 0

    def test_config_overrides_forwarded(self, suite):
        rf = BankedRegisterFile(1024, 2)
        loose = run_program(
            suite.programs[0], rf, "bpc",
            config_overrides={"run_coalescing": False, "run_scheduling": False},
        )
        assert loose.static_conflicts >= 0  # ran without the phases

    def test_bundle_aware_override(self, suite):
        from repro.banks import BankSubgroupRegisterFile

        rf = BankSubgroupRegisterFile(1024, 2, 4)
        result = run_program(
            suite.programs[0], rf, "bpc",
            config_overrides={"bundle_aware": True},
            measure_cycles=True,
        )
        assert result.cycles is not None

    def test_dynamic_measure_populates_both_metrics(self, suite):
        rf = BankedRegisterFile(32, 2)
        result = run_program(suite.programs[0], rf, "non", measure_dynamic=True)
        assert result.dynamic_conflicts is not None
        assert result.dynamic_instances is not None
        # Instances accumulate loop repetitions; sites do not.
        assert result.dynamic_instances >= result.dynamic_conflicts

    def test_conflict_free_classification(self, suite):
        rf = BankedRegisterFile(1024, 16)
        result = run_program(suite.programs[0], rf, "non")
        assert result.is_conflict_relevant
        # reduce under 16 banks: paper's Table VI row reaches 0.
        if result.static_conflicts == 0:
            assert result.is_conflict_free


class TestRunSuite:
    def test_one_result_per_program(self, suite):
        rf = BankedRegisterFile(1024, 2)
        results = run_suite(suite, rf, "non", file_key="dsa:2")
        assert len(results) == len(suite.programs)
        assert all(r.file_key == "dsa:2" for r in results)

    def test_methods_differ(self, suite):
        rf = BankedRegisterFile(1024, 2)
        non = sum(r.static_conflicts for r in run_suite(suite, rf, "non"))
        bpc = sum(r.static_conflicts for r in run_suite(suite, rf, "bpc"))
        assert bpc < non


class TestContextConfiguration:
    def test_scales_apply(self):
        small = ExperimentContext(spec_scale=0.005, cnn_scale=0.1, idft_points=6)
        large = ExperimentContext(spec_scale=0.01, cnn_scale=0.1, idft_points=6)
        assert len(large.suite("SPECfp").functions()) > len(
            small.suite("SPECfp").functions()
        )

    def test_seed_changes_workloads(self):
        a = ExperimentContext(spec_scale=0.005, seed=1)
        b = ExperimentContext(spec_scale=0.005, seed=2)
        from repro.ir import print_function

        fa = a.suite("SPECfp").functions()[0]
        fb = b.suite("SPECfp").functions()[0]
        assert print_function(fa) != print_function(fb)

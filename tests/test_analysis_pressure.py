"""Tests for the bank pressure counting heuristic's data structure."""

import pytest

from repro.analysis import BankPressureTracker, LiveInterval
from repro.ir.types import VirtualRegister

V = VirtualRegister


def interval(vid, *segments):
    iv = LiveInterval(V(vid))
    for start, end in segments:
        iv.add_segment(start, end)
    return iv


class TestBasic:
    def test_requires_positive_banks(self):
        with pytest.raises(ValueError):
            BankPressureTracker(0)

    def test_empty_pressure_zero(self):
        tr = BankPressureTracker(2)
        assert tr.pressure(0) == 0 and tr.pressure(1) == 0

    def test_single_interval_pressure_one(self):
        tr = BankPressureTracker(2)
        tr.assign(0, interval(0, (0, 10)))
        assert tr.pressure(0) == 1
        assert tr.pressure(1) == 0

    def test_overlapping_intervals_stack(self):
        tr = BankPressureTracker(2)
        tr.assign(0, interval(0, (0, 10)))
        tr.assign(0, interval(1, (5, 15)))
        tr.assign(0, interval(2, (7, 9)))
        assert tr.pressure(0) == 3

    def test_disjoint_intervals_do_not_stack(self):
        tr = BankPressureTracker(2)
        tr.assign(0, interval(0, (0, 5)))
        tr.assign(0, interval(1, (5, 10)))
        assert tr.pressure(0) == 1

    def test_holes_respected(self):
        tr = BankPressureTracker(1)
        tr.assign(0, interval(0, (0, 2), (8, 10)))
        tr.assign(0, interval(1, (3, 7)))
        assert tr.pressure(0) == 1


class TestWhatIf:
    def test_pressure_if_assigned_no_mutation(self):
        tr = BankPressureTracker(2)
        tr.assign(0, interval(0, (0, 10)))
        probe = interval(1, (2, 6))
        assert tr.pressure_if_assigned(0, probe) == 2
        assert tr.pressure(0) == 1  # unchanged

    def test_pressure_if_assigned_outside_peak(self):
        tr = BankPressureTracker(2)
        tr.assign(0, interval(0, (0, 4)))
        tr.assign(0, interval(1, (0, 4)))
        probe = interval(2, (10, 12))
        # The existing peak (2) dominates; the probe adds 1 elsewhere.
        assert tr.pressure_if_assigned(0, probe) == 2

    def test_added_pressure(self):
        tr = BankPressureTracker(2)
        tr.assign(0, interval(0, (0, 10)))
        assert tr.added_pressure(0, interval(1, (0, 10))) == 1
        assert tr.added_pressure(0, interval(2, (20, 30))) == 0

    def test_consistency_with_recompute(self):
        """pressure_if_assigned == pressure after actually assigning."""
        tr = BankPressureTracker(1)
        ivs = [
            interval(0, (0, 6)),
            interval(1, (2, 9)),
            interval(2, (4, 5), (8, 12)),
            interval(3, (1, 3), (7, 10)),
        ]
        for iv in ivs:
            predicted = tr.pressure_if_assigned(0, iv)
            tr.assign(0, iv)
            assert tr.pressure(0) == predicted


class TestSelection:
    def test_least_pressured_banks_prefers_empty(self):
        tr = BankPressureTracker(3)
        tr.assign(0, interval(0, (0, 10)))
        order = tr.least_pressured_banks(interval(1, (0, 10)))
        assert order[0] in (1, 2)
        assert order[-1] == 0

    def test_occupancy_breaks_ties(self):
        tr = BankPressureTracker(2)
        # Same pressure; bank 1 holds fewer registers.
        tr.assign(0, interval(0, (0, 5)))
        tr.assign(0, interval(1, (6, 8)))
        tr.assign(1, interval(2, (0, 5)))
        probe = interval(3, (20, 22))
        assert tr.least_pressured_banks(probe)[0] == 1

    def test_members(self):
        tr = BankPressureTracker(2)
        tr.assign(1, interval(5, (0, 2)))
        assert tr.members(1) == {V(5)}
        assert tr.occupancy(1) == 1

"""Tests for the experiment harness and table/figure regeneration.

These use a tiny ExperimentContext so the whole file stays fast; the
benches exercise the calibrated defaults.
"""

import pytest

from repro.experiments import (
    ALL_FIGURES,
    ALL_TABLES,
    ExperimentContext,
    geomean,
    percent,
    render_table,
    run_program,
    table1,
    table2,
    table4,
    table6,
    table7,
    figure1,
    figure10,
)


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(spec_scale=0.008, cnn_scale=0.1, idft_points=6)


class TestReportHelpers:
    def test_geomean(self):
        assert geomean([2, 8]) == pytest.approx(4.0)
        assert geomean([]) == 0.0

    def test_geomean_clamps_zeros(self):
        assert geomean([0, 100]) > 0.0

    def test_percent(self):
        assert percent(1, 4) == 25.0
        assert percent(1, 0) == 0.0

    def test_render_table_alignment(self):
        text = render_table("T", ["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(l) == len(lines[1]) for l in lines[1:])


class TestHarness:
    def test_results_cached(self, ctx):
        first = ctx.results("DSA-OP", "dsa", 2, "non")
        second = ctx.results("DSA-OP", "dsa", 2, "non")
        assert first is second

    def test_program_results_have_metrics(self, ctx):
        results = ctx.results("DSA-OP", "dsa", 2, "non")
        assert len(results) == 8
        for result in results:
            assert result.functions >= 1
            assert result.static_conflicts >= 0

    def test_dynamic_measured_on_rv2(self, ctx):
        results = ctx.results("SPECfp", "rv2", 2, "non")
        assert any(r.dynamic_conflicts is not None for r in results)

    def test_cycles_measured_on_dsa(self, ctx):
        results = ctx.results("DSA-OP", "dsa", 2, "non")
        assert all(r.cycles is not None for r in results)

    def test_combined_results_concatenate(self, ctx):
        combined = ctx.combined_results("rv2", 2, "non")
        spec = ctx.results("SPECfp", "rv2", 2, "non")
        cnn = ctx.results("CNN-KERNEL", "rv2", 2, "non")
        assert len(combined) == len(spec) + len(cnn)

    def test_unknown_suite_rejected(self, ctx):
        with pytest.raises(KeyError):
            ctx.suite("LINPACK")

    def test_unknown_platform_rejected(self, ctx):
        with pytest.raises(KeyError):
            ctx.register_file("tpu", 2)


class TestTables:
    def test_registry_complete(self):
        assert set(ALL_TABLES) == {"I", "II", "III", "IV", "V", "VI", "VII"}
        assert set(ALL_FIGURES) == {"1", "10", "11"}

    def test_table1_rows(self, ctx):
        table = table1(ctx)
        names = [row[0] for row in table.rows]
        assert any("milc" in n for n in names)
        assert any("conv2d" in n for n in names)
        table.render()  # must not raise

    def test_table2_shape(self, ctx):
        """non conflicts decrease with banks; bpc reduction >= 0."""
        table = table2(ctx)
        confs = [row[1] for row in table.rows]
        assert confs == sorted(confs, reverse=True)
        for row in table.rows:
            assert row[3] >= 0  # bpc reduction never negative here

    def test_table4_has_static_and_dynamic(self, ctx):
        table = table4(ctx)
        kinds = {row[0].split("-")[1] for row in table.rows}
        assert kinds == {"STATIC", "DYNAMIC"}

    def test_table6_bpc_nearly_eliminates(self, ctx):
        table = table6(ctx)
        average = table.row_map()["average"]
        bpc_ratio = average[2]
        assert bpc_ratio < 10.0  # paper: 0.07%
        # 2-non is the 100% baseline.
        assert average[3] == pytest.approx(100.0)

    def test_table6_non_improves_with_banks(self, ctx):
        average = table6(ctx).row_map()["average"]
        __, __, __, non2, non4, non8, non16 = average
        assert non2 >= non4 >= non8 >= non16

    def test_table7_columns(self, ctx):
        table = table7(ctx)
        assert len(table.rows) == 8
        for row in table.rows:
            assert all(isinstance(v, (int, float)) for v in row[1:])


class TestFigures:
    def test_figure1_shares(self, ctx):
        figure = figure1(ctx, bank_settings=(2, 4))
        spec_share = figure.series["SPECfp/relevant_share"]
        cnn_share = figure.series["CNN-KERNEL/relevant_share"]
        assert 0 < spec_share < 100
        # The paper: CNN suite is more conflict-relevant than SPECfp.
        assert cnn_share > spec_share

    def test_figure10_normalized_series(self, ctx):
        figure = figure10(ctx)
        for key, value in figure.series.items():
            if key.endswith("/bcr") or key.endswith("/bpc"):
                assert 0.0 <= value <= 1.5  # normalized to non
        assert "maxima" in figure.series
        figure.render()

"""Tests for the linear scan baseline allocator."""

from repro.alloc import LinearScanAllocator
from repro.banks import BankedRegisterFile
from repro.ir.types import FP, VirtualRegister
from repro.sim import observably_equivalent
from tests.conftest import build_mac_kernel


def remaining_vregs(function):
    return [
        r
        for __, i in function.instructions()
        for r in i.regs()
        if isinstance(r, VirtualRegister) and r.regclass == FP
    ]


class TestLinearScan:
    def test_all_rewritten(self, rf_rv2):
        result = LinearScanAllocator(rf_rv2).run(build_mac_kernel())
        assert remaining_vregs(result.function) == []

    def test_no_spill_when_roomy(self, rf_rich):
        result = LinearScanAllocator(rf_rich).run(build_mac_kernel())
        assert result.spill_count == 0

    def test_spills_under_pressure(self):
        rf = BankedRegisterFile(8, 2)
        result = LinearScanAllocator(rf).run(build_mac_kernel(n_pairs=10))
        assert result.spill_count > 0
        assert remaining_vregs(result.function) == []

    def test_semantics_preserved(self, rf_rv2):
        fn = build_mac_kernel(n_pairs=6)
        result = LinearScanAllocator(rf_rv2).run(fn)
        assert observably_equivalent(fn, result.function)

    def test_semantics_preserved_with_spills(self):
        rf = BankedRegisterFile(8, 2)
        fn = build_mac_kernel(n_pairs=10)
        result = LinearScanAllocator(rf).run(fn)
        assert observably_equivalent(fn, result.function)

    def test_scratch_registers_reserved(self):
        rf = BankedRegisterFile(16, 2)
        allocator = LinearScanAllocator(rf)
        assert allocator._scratch_count() == 3

    def test_tiny_file_scratch_shrinks(self):
        rf = BankedRegisterFile(4, 2)
        assert LinearScanAllocator(rf)._scratch_count() == 0

    def test_input_untouched(self, rf_rv2):
        fn = build_mac_kernel()
        LinearScanAllocator(rf_rv2).run(fn)
        assert remaining_vregs(fn)

    def test_spill_weight_of_victims(self):
        """Furthest-end spilling: spilled registers are long-lived ones."""
        rf = BankedRegisterFile(8, 2)
        fn = build_mac_kernel(n_pairs=10)
        result = LinearScanAllocator(rf).run(fn)
        # The spilled vregs must be inputs (live across the loop), not the
        # short-lived products.
        from repro.analysis import LiveIntervals

        live = LiveIntervals.build(fn)
        min_span = min(iv.span for iv in live.vreg_intervals())
        for spilled in result.spilled:
            # Products have the minimal span (def feeding the next add);
            # the furthest-end heuristic never picks those.
            assert live.of(spilled).span > min_span

"""Tests for the Chaitin-Briggs coloring baseline."""

from repro.alloc import ChaitinBriggsAllocator
from repro.analysis import InterferenceGraph, LiveIntervals
from repro.banks import BankedRegisterFile
from repro.ir.types import FP, VirtualRegister
from repro.sim import observably_equivalent
from tests.conftest import build_mac_kernel


def remaining_vregs(function):
    return [
        r
        for __, i in function.instructions()
        for r in i.regs()
        if isinstance(r, VirtualRegister) and r.regclass == FP
    ]


class TestChaitinBriggs:
    def test_colors_without_spill_when_roomy(self, rf_rv2):
        result = ChaitinBriggsAllocator(rf_rv2).run(build_mac_kernel())
        assert result.spill_count == 0
        assert remaining_vregs(result.function) == []

    def test_coloring_is_proper(self, rf_rv2):
        fn = build_mac_kernel()
        result = ChaitinBriggsAllocator(rf_rv2).run(fn)
        rig = InterferenceGraph.build(fn)
        for node in rig.nodes():
            for neighbor in rig.neighbors(node):
                if node in result.assignment and neighbor in result.assignment:
                    assert result.assignment[node] != result.assignment[neighbor]

    def test_spills_under_pressure_and_terminates(self):
        rf = BankedRegisterFile(8, 2)
        result = ChaitinBriggsAllocator(rf).run(build_mac_kernel(n_pairs=10))
        assert result.spill_count > 0
        assert remaining_vregs(result.function) == []

    def test_semantics_preserved(self, rf_rv2):
        fn = build_mac_kernel(n_pairs=6)
        result = ChaitinBriggsAllocator(rf_rv2).run(fn)
        assert observably_equivalent(fn, result.function)

    def test_semantics_preserved_with_spills(self):
        rf = BankedRegisterFile(8, 2)
        fn = build_mac_kernel(n_pairs=10)
        result = ChaitinBriggsAllocator(rf).run(fn)
        assert observably_equivalent(fn, result.function)

    def test_optimistic_coloring_beats_degree_bound(self):
        """Briggs optimism: high-degree nodes can still get colors."""
        fn = build_mac_kernel(n_pairs=5)  # pressure ~11
        rf = BankedRegisterFile(12, 2)
        result = ChaitinBriggsAllocator(rf).run(fn)
        assert result.spill_count == 0

    def test_spill_instruction_count_recorded(self):
        rf = BankedRegisterFile(8, 2)
        result = ChaitinBriggsAllocator(rf).run(build_mac_kernel(n_pairs=10))
        spill_ops = [
            i for __, i in result.function.instructions() if i.attrs.get("spill")
        ]
        assert result.spill_instructions == len(spill_ops) > 0

#!/usr/bin/env python3
"""The paper's worked examples (Figures 2, 3, and 5) reconstructed.

* Fig. 2 — a code snippet with its Register Interference Graph and the
  Register Conflict Graph (a subgraph of the RIG);
* Fig. 3 — the "unbalanced bank assignment" problem: one 2-coloring of
  the RCG keeps the per-bank sub-RIGs colorable, the other does not;
* Fig. 5 — cost-annotated RCG coloring: the prioritized order resolves
  the hot conflicts and leaves only the cheapest edge monochromatic.

Run:  python examples/paper_walkthrough.py
"""

from repro.analysis import (
    BankPressureTracker,
    ConflictGraph,
    InterferenceGraph,
    LiveIntervals,
)
from repro.banks import BankedRegisterFile
from repro.ir import IRBuilder, print_function
from repro.prescount import PresCountBankAssigner


def figure_2_and_3():
    print("=" * 70)
    print("Figures 2/3: RIG, RCG, and the unbalanced bank assignment")
    print("=" * 70)
    # Four values with overlapping lifetimes; two instructions induce the
    # RCG edges among a subset of them.
    b = IRBuilder("fig2")
    v0 = b.const(1.0)
    v1 = b.const(2.0)
    v2 = b.arith("fadd", v0, v1)   # conflict edge v0-v1
    v3 = b.arith("fmul", v1, v2)   # conflict edge v1-v2
    out = b.arith("fadd", v3, v0)  # conflict edge v3-v0
    b.ret(out)
    fn = b.finish()
    print(print_function(fn))

    live = LiveIntervals.build(fn)
    rig = InterferenceGraph.build(fn, live)
    rcg = ConflictGraph.build(fn)
    print("\nRIG edges (live ranges that overlap):")
    seen = set()
    for node in sorted(rig.nodes(), key=lambda r: r.vid):
        for nb in sorted(rig.neighbors(node), key=lambda r: r.vid):
            if (nb, node) not in seen:
                seen.add((node, nb))
                print(f"  {node!r} -- {nb!r}")
    print("RCG edges (operands read together — a subgraph of the RIG):")
    for key in rcg.edge_cost:
        a, c = sorted(key, key=lambda r: r.vid)
        print(f"  {a!r} -- {c!r}")

    # Fig. 3: with 2 banks x 2 registers, a bad RCG coloring crams three
    # overlapping values into one 2-register bank (uncolorable sub-RIG);
    # the pressure-aware choice keeps both banks at pressure <= 2.
    print("\nFig. 3: bank pressure of two alternative 2-colorings")
    tracker_bad = BankPressureTracker(2)
    tracker_good = BankPressureTracker(2)
    regs = sorted(rcg.nodes(), key=lambda r: r.vid)
    bad = {regs[0]: 0, regs[1]: 1, regs[2]: 0, regs[3]: 0}
    good = {regs[0]: 0, regs[1]: 1, regs[2]: 0, regs[3]: 1}
    for reg, bank in bad.items():
        tracker_bad.assign(bank, live.of(reg))
    for reg, bank in good.items():
        tracker_good.assign(bank, live.of(reg))
    print(f"  unbalanced coloring -> bank pressures "
          f"{[tracker_bad.pressure(b) for b in range(2)]}  (needs 3 regs in bank 0)")
    print(f"  balanced coloring   -> bank pressures "
          f"{[tracker_good.pressure(b) for b in range(2)]}  (fits 2 regs per bank)")


def figure_5():
    print()
    print("=" * 70)
    print("Figure 5: cost-prioritized RCG coloring")
    print("=" * 70)
    # Five conflict-relevant instructions A-E; the loop makes A and B hot.
    b = IRBuilder("fig5")
    vb, vc, vd, ve = (b.const(float(i)) for i in range(4))
    acc = b.const(0.0)
    with b.loop(trip_count=10):
        b.arith_into(acc, "fadd", vb, vc)   # A (hot)
        b.arith_into(acc, "fadd", vb, vd)   # B (hot)
    b.arith_into(acc, "fadd", vc, vd)       # C
    b.arith_into(acc, "fadd", vd, ve)       # D
    b.arith_into(acc, "fadd", ve, vb)       # E
    b.ret(acc)
    fn = b.finish()

    rcg = ConflictGraph.build(fn)
    names = {vb: "b", vc: "c", vd: "d", ve: "e"}
    print("conflict costs (Eq. 2):")
    for reg in (vb, vc, vd, ve):
        print(f"  Cost_R({names[reg]}) = {rcg.cost(reg):g}")

    rf = BankedRegisterFile(8, 2)
    assignment = PresCountBankAssigner(rf).assign(fn)
    print("\n2-bank PresCount coloring (processed in decreasing cost):")
    for reg in (vb, vc, vd, ve):
        marker = "  <- uncolorable, conflicting color accepted" if reg in assignment.uncolorable else ""
        print(f"  {names[reg]} -> BANK{assignment.banks[reg]}{marker}")
    print(f"residual conflict cost: {assignment.residual_cost:g} "
          f"(the cheapest edge was left monochromatic, as in the paper)")


def main():
    figure_2_and_3()
    figure_5()


if __name__ == "__main__":
    main()

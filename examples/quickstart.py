#!/usr/bin/env python3
"""Quickstart: the three register allocation methods on one kernel.

Builds a multiply-accumulate loop, allocates it with `non` (default),
`bcr` (Intel-style per-instruction hinting), and `bpc` (PresCount), and
prints the resulting bank conflicts, spills, and the allocated code.

`run_pipeline` executes the Fig. 4 phases as an LLVM-style pass pipeline
over a shared analysis cache (see docs/ARCHITECTURE.md); to watch it
work, the same run is traceable from the CLI:
`python -m repro --trace t.json --explain v3 allocate --method bpc`
(docs/OBSERVABILITY.md).

Run:  python examples/quickstart.py
"""

from repro.banks import BankedRegisterFile
from repro.ir import IRBuilder, print_function
from repro.prescount import METHODS, PipelineConfig, run_pipeline
from repro.sim import DynamicSimulator, analyze_static


def build_kernel():
    """acc += x_i * y_i over four input pairs, 64 iterations."""
    b = IRBuilder("mac4")
    xs = [b.const(float(i + 1)) for i in range(4)]
    ys = [b.const(0.5 * (i + 1)) for i in range(4)]
    acc = b.const(0.0)
    with b.loop(trip_count=64):
        for x, y in zip(xs, ys):
            product = b.arith("fmul", x, y)
            b.arith_into(acc, "fadd", acc, product)
    b.ret(acc)
    return b.finish()


def main():
    kernel = build_kernel()
    register_file = BankedRegisterFile(num_registers=32, num_banks=2)
    print(f"Register file: {register_file.describe()}")
    print(f"Kernel: {kernel.instruction_count()} instructions\n")

    results = {}
    for method in METHODS:
        result = run_pipeline(kernel, PipelineConfig(register_file, method))
        stats = analyze_static(result.function, register_file)
        dynamic = DynamicSimulator(register_file).run(result.function)
        results[method] = result
        print(
            f"{method:>4}: {stats.bank_conflicts:3d} static conflicts, "
            f"{dynamic.dynamic_conflicts:5d} dynamic instances, "
            f"{result.spill_count} spills, "
            f"{result.copies_inserted} copies inserted"
        )

    print("\n--- allocated loop body under 'non' (note same-bank pairs) ---")
    print(print_function(results["non"].function))
    print("\n--- allocated loop body under 'bpc' ---")
    print(print_function(results["bpc"].function))

    assignment = results["bpc"].bank_assignment
    print("\nPresCount bank assignment (vreg -> bank):")
    for vreg, bank in sorted(assignment.banks.items(), key=lambda kv: kv[0].vid):
        marker = " (uncolorable)" if vreg in assignment.uncolorable else ""
        print(f"  {vreg!r} -> bank {bank}{marker}")
    print(f"bank histogram: {assignment.bank_histogram()}")
    print(f"predicted residual conflict cost: {assignment.residual_cost}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Every allocator in the repository on one workload, side by side.

Compares the paper's three methods (non/bcr/bpc over the greedy
allocator), the classic baselines (linear scan, Chaitin-Briggs), the
bank-aware PBQP formulation, and post-allocation renumbering — on the
same convolution kernel at a rich and a tight register budget.

The non/bcr/bpc rows run the Fig. 4 pass pipeline (`run_pipeline`, a
thin builder over `FunctionPassManager` — docs/ARCHITECTURE.md); the
classic baselines are standalone allocator classes driven directly.

Run:  python examples/allocator_comparison.py
"""

from repro.alloc import (
    ChaitinBriggsAllocator,
    LinearScanAllocator,
    PbqpAllocator,
)
from repro.banks import BankedRegisterFile
from repro.prescount import PipelineConfig, run_pipeline
from repro.prescount.post_renumber import renumber_banks
from repro.sim import analyze_static, observably_equivalent
from repro.workloads import conv2d_relu_kernel


def measure(kernel, register_file):
    """(label, conflicts, spills, copies) per approach."""
    rows = []

    for method in ("non", "bcr", "bpc"):
        result = run_pipeline(kernel, PipelineConfig(register_file, method))
        stats = analyze_static(result.function, register_file)
        assert observably_equivalent(kernel, result.function)
        rows.append(
            (f"greedy/{method}", stats.bank_conflicts, result.spill_count,
             result.copies_inserted)
        )

    # Post-allocation renumbering applied to the non result.
    non = run_pipeline(kernel, PipelineConfig(register_file, "non"))
    post = renumber_banks(non.function, register_file)
    stats = analyze_static(non.function, register_file)
    assert observably_equivalent(kernel, non.function)
    rows.append(
        ("non + post-renumber", stats.bank_conflicts, non.spill_count,
         post.copies_inserted)
    )

    for label, allocator in (
        ("linear scan", LinearScanAllocator(register_file)),
        ("chaitin-briggs", ChaitinBriggsAllocator(register_file)),
        ("pbqp (bank-aware)", PbqpAllocator(register_file)),
        ("pbqp (bank-blind)", PbqpAllocator(register_file, bank_conflict_weight=0.0)),
    ):
        result = allocator.run(kernel)
        stats = analyze_static(result.function, register_file)
        assert observably_equivalent(kernel, result.function)
        rows.append(
            (label, stats.bank_conflicts, result.spill_count,
             result.copies_inserted)
        )
    return rows


def main():
    kernel = conv2d_relu_kernel("conv_demo", channels=6, unroll=4, seed=3)
    print(f"kernel: {kernel.name}, {kernel.instruction_count()} instructions\n")
    for name, register_file in (
        ("register-rich (1024 x 2 banks)", BankedRegisterFile(1024, 2)),
        ("register-tight (32 x 2 banks)", BankedRegisterFile(32, 2)),
    ):
        print(f"--- {name} ---")
        print(f"{'approach':<20} {'conflicts':>9} {'spills':>7} {'copies':>7}")
        for label, conflicts, spills, copies in measure(kernel, register_file):
            print(f"{label:<20} {conflicts:>9} {spills:>7} {copies:>7}")
        print()
    print(
        "Every row passed the semantic-equivalence oracle; differences are\n"
        "pure allocation quality.  bpc holds conflicts at/near zero in both\n"
        "regimes; the post-allocation and PBQP alternatives pay copies or\n"
        "spills for comparable conflict counts, as the paper argues."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The bank-subgroup DSA: alignment violations, SDG splitting, Algorithm 2.

Walks the paper's §III-C machinery on real kernels:

1. decodes registers through the Fig. 6 bank/subgroup formulas;
2. shows the Same Displacement Graph of a reduction and a shared-input
   kernel, with their sharing centers;
3. runs the full DSA pass pipeline (coalescing → SDG splitting →
   scheduling → bank assignment → allocation with Algorithm 2 hints;
   docs/ARCHITECTURE.md) and compares hazards and cycles against plain
   N-banked hardware running the default allocator — the Table VI/VII
   co-design experiment.

Run:  python examples/dsa_subgroups.py
"""

from repro.analysis import SameDisplacementGraph
from repro.banks import BankedRegisterFile, BankSubgroupRegisterFile
from repro.prescount import PipelineConfig, run_pipeline
from repro.sim import DsaMachine, analyze_static
from repro.workloads import idft_kernel, reduce_kernel, shared_use_kernel


def show_decoding(register_file):
    print(f"Register file: {register_file.describe()}")
    print("  reg:      ", "  ".join(f"{i:3d}" for i in range(12)))
    print(
        "  bank:     ",
        "  ".join(f"{register_file.bank_of(i):3d}" for i in range(12)),
    )
    print(
        "  subgroup: ",
        "  ".join(f"{register_file.subgroup_of(i):3d}" for i in range(12)),
    )
    print()


def show_sdg(name, kernel):
    sdg = SameDisplacementGraph.build(kernel)
    components = sdg.components()
    largest = max(components, key=len)
    centers = sdg.sharing_centers(largest, threshold=4)
    print(
        f"{name}: SDG has {len(sdg)} vertices in {len(components)} "
        f"component(s); largest = {len(largest)} registers"
    )
    for reg, kind, fanout in centers[:3]:
        print(f"  center {reg!r}: {kind} with fanout {fanout}")
    print()


def main():
    dsa_rf = BankSubgroupRegisterFile(1024, 2, 4)
    show_decoding(dsa_rf)

    kernels = {
        "reduce (output sharing)": reduce_kernel(),
        "shruse (input sharing)": shared_use_kernel(consumers=12),
        "idft (both, at scale)": idft_kernel(points=10),
    }
    for name, kernel in kernels.items():
        show_sdg(name, kernel)

    print("kernel                    | hazards: 2x4-bpc  2-non  16-non | cycles: bpc  2-non")
    print("-" * 86)
    hw2 = BankedRegisterFile(1024, 2)
    hw16 = BankedRegisterFile(1024, 16)
    for name, kernel in kernels.items():
        bpc = run_pipeline(kernel, PipelineConfig(dsa_rf, "bpc"))
        non2 = run_pipeline(kernel, PipelineConfig(hw2, "non"))
        non16 = run_pipeline(kernel, PipelineConfig(hw16, "non"))
        hazards_bpc = analyze_static(bpc.function, dsa_rf).conflicts
        hazards_2 = analyze_static(non2.function, hw2).conflicts
        hazards_16 = analyze_static(non16.function, hw16).conflicts
        cycles_bpc = DsaMachine(dsa_rf).run(bpc.function).cycles
        cycles_2 = DsaMachine(hw2).run(non2.function).cycles
        print(
            f"{name:<26}| {hazards_bpc:16d} {hazards_2:6d} {hazards_16:7d} "
            f"| {cycles_bpc:10.0f} {cycles_2:6.0f}"
        )
        if bpc.sdg_split is not None and bpc.sdg_split.copies_inserted:
            print(
                f"{'':<26}  (SDG splitting inserted "
                f"{bpc.sdg_split.copies_inserted} copies in "
                f"{bpc.sdg_split.rounds} round(s))"
            )

    print(
        "\nThe 2x4 bank-subgroup file with PresCount (simplified hardware +"
        "\nsmart compiler) matches or beats the 16-banked crossbar design"
        "\nrunning the default allocator — the paper's co-design headline."
    )


if __name__ == "__main__":
    main()

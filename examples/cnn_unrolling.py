#!/usr/bin/env python3
"""The paper's CNN story: unrolling raises bank pressure; bpc absorbs it.

Most MobileNet kernels have only a handful of FP operations per loop body,
so the paper unrolls them manually to create different levels of bank
pressure (§IV-A1).  This example sweeps the unroll factor of a conv2d+relu
kernel and shows how static bank conflicts grow under the default
allocator while PresCount keeps them near zero — until the register budget
itself becomes the constraint.

Run:  python examples/cnn_unrolling.py
"""

from repro.banks import BankedRegisterFile
from repro.prescount import PipelineConfig, run_pipeline
from repro.sim import analyze_static, count_conflict_relevant
from repro.workloads import conv2d_relu_kernel


def measure(kernel, register_file, method):
    result = run_pipeline(kernel, PipelineConfig(register_file, method))
    stats = analyze_static(result.function, register_file)
    return stats.bank_conflicts, result.spill_count


def main():
    rich = BankedRegisterFile(1024, 2)   # RV#1-style
    tight = BankedRegisterFile(32, 2)    # RV#2-style

    header = (
        f"{'unroll':>6} {'reles':>6} | {'non':>5} {'bcr':>5} {'bpc':>5} "
        f"| {'non/32':>7} {'bpc/32':>7} {'spills(bpc/32)':>15}"
    )
    print("conv2d+relu, 8 channels, static bank conflicts by method")
    print(header)
    print("-" * len(header))

    for unroll in (1, 2, 4, 6, 8, 12):
        kernel = conv2d_relu_kernel(
            f"conv_u{unroll}", channels=8, unroll=unroll, seed=7
        )
        reles = count_conflict_relevant(kernel)
        non_rich, __ = measure(kernel, rich, "non")
        bcr_rich, __ = measure(kernel, rich, "bcr")
        bpc_rich, __ = measure(kernel, rich, "bpc")
        non_tight, __ = measure(kernel, tight, "non")
        bpc_tight, bpc_tight_spills = measure(kernel, tight, "bpc")
        print(
            f"{unroll:>6} {reles:>6} | {non_rich:>5} {bcr_rich:>5} "
            f"{bpc_rich:>5} | {non_tight:>7} {bpc_tight:>7} "
            f"{bpc_tight_spills:>15}"
        )

    print(
        "\nReading the table: with rich registers (RV#1 columns) bpc stays"
        "\nnear zero as unrolling multiplies the conflict-relevant"
        "\ninstructions; with the 32-register budget (RV#2 columns) the"
        "\nallocator must reuse banks and some conflicts/spills return —"
        "\nthe same erosion the paper reports in Tables IV/V."
    )


if __name__ == "__main__":
    main()

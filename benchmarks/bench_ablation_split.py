"""Ablation: SDG-based subgroup splitting on/off (Figs. 8/9).

Two operating points bracket the paper's trade-off (§IV-B3):

* **Capacity-constrained DSA** (64 registers, 2x4): a single alignment
  component's live pressure exceeds one displacement's total capacity, so
  without splitting the allocator drowns in alignment violations;
  splitting spreads the component across displacements and reduces
  combined hazards+spills, at a copy cost.
* **Paper-scale DSA** (1024 registers, 2x4): splitting is not needed for
  correctness (one displacement could hold everything), but it is how the
  balanced assignment of Table VI is maintained; it must keep hazards at
  zero while only paying copies — the idft trade-off the paper reports
  (2936 copies, a cycle increase, "justified from a co-design
  perspective").

Timed unit: the splitting pass itself on the idft kernel.
"""

from repro.banks import BankSubgroupRegisterFile
from repro.experiments import render_table
from repro.prescount import PipelineConfig, SdgSplitConfig, run_pipeline, split_subgroups
from repro.sim import analyze_static
from repro.workloads import idft_kernel

NO_SPLIT = SdgSplitConfig(max_component_size=10**9)


def run_point(register_file, kernel, sdg_config):
    result = run_pipeline(
        kernel, PipelineConfig(register_file, "bpc", sdg_config=sdg_config)
    )
    stats = analyze_static(result.function, register_file)
    return stats.conflicts, result.copies_inserted, result.spill_count


def test_ablation_sdg_split(benchmark, record_text):
    rows = []

    # Point 1: capacity-constrained file; pressure (24) exceeds one
    # displacement's capacity (64/4 = 16).
    tight = BankSubgroupRegisterFile(64, 2, 4)
    kernel = idft_kernel("idft-8", points=8)
    on_tight = run_point(tight, kernel, None)
    off_tight = run_point(tight, kernel, NO_SPLIT)
    rows.append(["64-reg idft-8", "split ON", *on_tight])
    rows.append(["64-reg idft-8", "split OFF", *off_tight])

    # Point 2: paper-scale file.
    paper = BankSubgroupRegisterFile(1024, 2, 4)
    kernel_large = idft_kernel("idft-12", points=12)
    on_paper = run_point(paper, kernel_large, None)
    off_paper = run_point(paper, kernel_large, NO_SPLIT)
    rows.append(["1024-reg idft-12", "split ON", *on_paper])
    rows.append(["1024-reg idft-12", "split OFF", *off_paper])

    text = render_table(
        "Ablation: SDG subgroup splitting",
        ["point", "variant", "hazards", "copies", "spills"],
        rows,
    )
    record_text("ablation_split", text)

    # Constrained point: splitting reduces combined hazards + spills.
    assert on_tight[0] + on_tight[2] < off_tight[0] + off_tight[2]
    # Paper-scale point: splitting keeps the kernel hazard-free while
    # paying only copies (the Table VII idft trade-off).
    assert on_paper[0] == 0
    assert on_paper[1] > off_paper[1]

    benchmark(split_subgroups, idft_kernel("idft-bench", points=8).clone())

"""Shared benchmark fixtures.

One :class:`ExperimentContext` is shared across the whole benchmark
session, so the expensive suite sweeps (SPECfp x platforms x methods) are
computed once and reused by every table/figure bench.  Rendered outputs
are also written to ``benchmarks/results/`` so EXPERIMENTS.md can be
refreshed from a bench run.

Scale knobs (environment variables):

* ``REPRO_SPEC_SCALE``  (default 0.04) — SPECfp function-count scale;
* ``REPRO_CNN_SCALE``   (default 0.4)  — CNN-KERNEL kernel-count scale;
* ``REPRO_IDFT_POINTS`` (default 16)   — IDFT size on the DSA.

Set them higher for a closer-to-paper run, e.g.::

    REPRO_SPEC_SCALE=0.2 pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments import ExperimentContext

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext(
        spec_scale=float(os.environ.get("REPRO_SPEC_SCALE", "0.04")),
        cnn_scale=float(os.environ.get("REPRO_CNN_SCALE", "0.4")),
        idft_points=int(os.environ.get("REPRO_IDFT_POINTS", "16")),
    )


@pytest.fixture(scope="session", autouse=True)
def bench_history(ctx):
    """Opt-in history recording: ``REPRO_BENCH_HISTORY=1`` appends one
    ``BENCH_<timestamp>.json`` record (see ``repro.experiments.history``)
    to ``benchmarks/results/history/`` after the bench session.  The
    canonical matrix is memoized on the shared *ctx*, so a full bench run
    pays almost nothing extra."""
    yield
    if os.environ.get("REPRO_BENCH_HISTORY", "") != "1":
        return
    from repro.experiments import collect_record, write_record

    record = collect_record(ctx, label="bench-session")
    path = write_record(record, str(RESULTS_DIR / "history"))
    print(f"\nbench history: recorded {len(record['programs'])} entries "
          f"to {path}")


@pytest.fixture(scope="session")
def record_text():
    """Writer: record_text(name, text) -> saved under benchmarks/results."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return write

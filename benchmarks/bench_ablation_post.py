"""Ablation: pre-allocation (PresCount) vs post-allocation renumbering.

The paper's related work (§V) critiques post-allocation bank mitigation
(register renumbering / ICG recoloring): it "requires many unassigned
registers" and generates "massive register copies".  This bench makes the
critique quantitative: on the register-rich RV#1 file, post-renumbering
works almost as well as bpc; on the tight RV#2 budget it degrades into
copies and unresolved conflicts while bpc's integrated assignment keeps
working.

Timed unit: one renumbering pass over an allocated CNN kernel.
"""

from repro.banks import BankedRegisterFile
from repro.experiments import render_table
from repro.prescount import PipelineConfig, run_pipeline
from repro.prescount.post_renumber import renumber_banks
from repro.sim import analyze_static
from repro.workloads import cnn_suite


def run_point(functions, register_file):
    non_conf = post_conf = bpc_conf = copies = unresolved = 0
    for fn in functions:
        non = run_pipeline(fn, PipelineConfig(register_file, "non"))
        non_conf += analyze_static(non.function, register_file).bank_conflicts
        post = renumber_banks(non.function, register_file)
        post_conf += analyze_static(non.function, register_file).bank_conflicts
        copies += post.copies_inserted
        unresolved += post.unresolved
        bpc = run_pipeline(fn, PipelineConfig(register_file, "bpc"))
        bpc_conf += analyze_static(bpc.function, register_file).bank_conflicts
    return non_conf, post_conf, bpc_conf, copies, unresolved


def test_ablation_post_renumbering(benchmark, record_text):
    functions = cnn_suite(scale=0.2).functions()
    functions = [f for f in functions if f.instruction_count() > 20][:8]

    rich = BankedRegisterFile(1024, 2)
    tight = BankedRegisterFile(32, 2)
    rows = []
    results = {}
    for label, register_file in (("RV#1 (1024 regs)", rich), ("RV#2 (32 regs)", tight)):
        non, post, bpc, copies, unresolved = run_point(functions, register_file)
        rows.append([label, non, post, bpc, copies, unresolved])
        results[label] = (non, post, bpc, copies, unresolved)

    text = render_table(
        "Ablation: pre- vs post-allocation bank mitigation (CNN kernels)",
        ["setting", "non", "post-renumber", "bpc", "post copies", "post unresolved"],
        rows,
    )
    record_text("ablation_post", text)

    rich_row = results["RV#1 (1024 regs)"]
    tight_row = results["RV#2 (32 regs)"]
    # Both mitigations beat non everywhere.
    assert rich_row[1] < rich_row[0] and rich_row[2] < rich_row[0]
    assert tight_row[1] <= tight_row[0]
    # The tight budget punishes the post-allocation approach: it needs
    # copies/unresolved conflicts where the rich file needed (almost) none.
    assert tight_row[3] + tight_row[4] >= rich_row[3] + rich_row[4]

    non = run_pipeline(functions[0], PipelineConfig(tight, "non"))

    def renumber_fresh():
        return renumber_banks(non.function.clone(), tight)

    benchmark(renumber_fresh)

"""Regenerates Table V: RV#2 conflict reduction vs spill increment.

Paper shape: at the tight 32-register budget the spill increments grow
relative to RV#1 (Table III) and the 4-bank setting brings CR and SI much
closer together — the regime where heuristic bank assignment starts to
fight the allocator (the paper reports negative CNN reductions there).

Timed unit: one non pipeline run over a CNN program on RV#2.
"""

from repro.experiments import table3, table5
from repro.experiments.harness import run_program


def test_table5(benchmark, ctx, record_text):
    table = table5(ctx)
    record_text("table5", table.render())

    rows = table.row_map()
    # Shape 1: 2-bank SPEC reductions remain positive.
    assert rows["SPEC.CR"][1] > 0  # 2-bcr
    assert rows["SPEC.CR"][2] > 0  # 2-bpc
    # Shape 2: the tight budget makes spill increments non-trivial
    # compared to the rich platform: total |SI| grows vs Table III.
    rich = table3(ctx).row_map()
    tight_si = sum(abs(v) for v in rows["SPEC.SI"][1:])
    rich_si_2_4 = sum(abs(v) for v in rich["SPEC.SI"][1:3])
    assert tight_si >= rich_si_2_4 * 0.5  # same order or larger
    # Shape 3: 4-bank reductions erode relative to 2-bank.
    assert rows["SPEC.CR"][3] <= rows["SPEC.CR"][1]

    program = ctx.suite("CNN-KERNEL").programs[0]
    register_file = ctx.register_file("rv2", 4)
    benchmark(run_program, program, register_file, "non")

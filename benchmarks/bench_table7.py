"""Regenerates Table VII: DSA spills, copies, and cycles.

Paper shape: bank-conflict elimination pays off in cycles for the
reduction-style kernels (reduce, red-ur, tr15651 in the paper); the copy
traffic from subgroup splitting concentrates on the shared-operand stress
cases (idft dominates with 2936 copies in the paper); spills stay at or
near zero everywhere.

Timed unit: the DSA cycle model on the allocated idft kernel.
"""

from repro.experiments import table7
from repro.sim import DsaMachine


def test_table7(benchmark, ctx, record_text):
    table = table7(ctx)
    record_text("table7", table.render())

    rows = table.row_map()
    # Shape 1: spills at or near zero under both methods (the paper has
    # a single idft spill pair).
    for name, row in rows.items():
        assert row[1] <= 4 and row[2] <= 4, name
    # Shape 2: bpc inserts copies; non does not need them.
    total_bpc_copies = sum(row[3] for row in rows.values())
    total_non_copies = sum(row[4] for row in rows.values())
    assert total_bpc_copies > total_non_copies
    # Shape 3: copies concentrate on the shared-operand stress kernels;
    # idft is among the top two (the absolute leader flips with the
    # configured IDFT size; the paper's 16269-conflict idft dominates).
    top2 = sorted((row[3] for row in rows.values()), reverse=True)[:2]
    assert rows["idft"][3] in top2
    # Shape 4: reductions gain cycles under bpc vs 2-banked non.
    assert rows["reduce"][5] < rows["reduce"][6]
    assert rows["red-ur"][5] < rows["red-ur"][6]

    bpc = {r.program: r for r in ctx.results("DSA-OP", "dsa", 0, "bpc")}
    register_file = ctx.register_file("dsa", 0)
    machine = DsaMachine(register_file)
    # Re-run the allocated idft through the cycle model as the timed unit.
    from repro.prescount import PipelineConfig, run_pipeline

    idft = next(p for p in ctx.suite("DSA-OP").programs if p.name == "idft")
    allocated = run_pipeline(
        idft.functions()[0], PipelineConfig(register_file, "bpc")
    ).function
    benchmark(machine.run, allocated)

"""Ablation: the THRES register-pressure threshold of Algorithm 1.

When an RCG node is uncolorable, Algorithm 1 chooses between minimizing
register pressure (regPressure > THRES) and minimizing residual conflict
cost (otherwise).  Sweeping THRES trades spills against conflicts: a very
low threshold always favors pressure (fewer spills, more residual
conflicts), a very high one always favors conflict cost.

Timed unit: one bpc pipeline at the default threshold.
"""

from repro.banks import BankedRegisterFile
from repro.experiments import render_table
from repro.prescount import PipelineConfig, run_pipeline
from repro.sim import analyze_static
from repro.workloads import KernelSpec, generate_kernel


def uncolorable_kernels(count=8):
    """Dense sharing -> odd RCG cycles -> uncolorable nodes at 2 banks."""
    kernels = []
    for seed in range(count):
        spec = KernelSpec(
            name=f"thres{seed}",
            seed=200 + seed,
            live_values=12,
            body_ops=48,
            loop_depth=2,
            trip_counts=(6, 10),
            sharing=0.65,
            accumulate=0.35,
        )
        kernels.append(generate_kernel(spec))
    return kernels


def test_ablation_thres(benchmark, record_text):
    register_file = BankedRegisterFile(24, 2)
    kernels = uncolorable_kernels()

    rows = []
    results = {}
    for thres_ratio in (0.0, 0.4, 0.8, 1.5):
        conflicts = spills = 0
        for kernel in kernels:
            config = PipelineConfig(register_file, "bpc", thres_ratio=thres_ratio)
            result = run_pipeline(kernel, config)
            conflicts += analyze_static(result.function, register_file).conflicts
            spills += result.spill_count
        rows.append([thres_ratio, conflicts, spills])
        results[thres_ratio] = (conflicts, spills)

    text = render_table(
        "Ablation: THRES sweep (24 regs, 2 banks, uncolorable-RCG kernels)",
        ["THRES ratio", "conflicts", "spills"],
        rows,
    )
    record_text("ablation_thres", text)

    # THRES=0 always prioritizes pressure for uncolorable nodes; THRES=1.5
    # (never exceeded) always prioritizes neighbor conflict cost.  Spills
    # under the pressure-first extreme must not exceed the cost-first one.
    assert results[0.0][1] <= results[1.5][1]

    config = PipelineConfig(register_file, "bpc")
    benchmark(run_pipeline, kernels[0], config)

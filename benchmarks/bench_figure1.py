"""Regenerates Figure 1: prevalence of bank conflicts.

Paper shape: 56.37% of SPECfp tests and 85.48% of CNN-KERNEL tests are
conflict-relevant (Figs. 1a/1c); among the relevant ones, 50-71% (SPECfp)
and 64-85% (CNN) are *not* conflict-free under default allocation even as
the interleaving factor grows to 16 (Figs. 1b/1d).

Timed unit: function-level static analysis of one suite at one setting.
"""

from repro.experiments import figure1


def test_figure1(benchmark, ctx, record_text):
    figure = figure1(ctx)
    record_text("figure1", figure.render())

    spec_share = figure.series["SPECfp/relevant_share"]
    cnn_share = figure.series["CNN-KERNEL/relevant_share"]
    # Shape 1: both suites are substantially conflict-relevant, CNN more
    # so than SPECfp (paper: 56.37% vs 85.48%).
    assert 35 < spec_share < 80
    assert cnn_share > spec_share
    # Shape 2: interleaving helps monotonically but conflicts stay
    # prevalent through 8-way and are still present at 16-way (our curve
    # falls faster than the paper's — see EXPERIMENTS.md).
    total_16way = 0.0
    for suite in ("SPECfp", "CNN-KERNEL"):
        shares = [
            figure.series[f"{suite}/{banks}-way/conflict_share"]
            for banks in (2, 4, 8, 16)
        ]
        assert shares == sorted(shares, reverse=True)  # monotone
        assert shares[0] > 60   # 2-way: most relevant tests conflict
        assert shares[2] > 25   # 8-way: still widespread
        total_16way += shares[3]
    assert total_16way > 0      # 16-way does not fully solve it

    # Timed unit: the uncached pipeline + static analysis of one kernel.
    from repro.prescount import PipelineConfig, run_pipeline
    from repro.sim import analyze_static

    fn = ctx.suite("CNN-KERNEL").functions()[0]
    register_file = ctx.register_file("dsa", 8)

    def classify_one():
        result = run_pipeline(fn, PipelineConfig(register_file, "non"))
        return analyze_static(result.function, register_file).conflicts

    benchmark(classify_one)

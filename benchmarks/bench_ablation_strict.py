"""Ablation: soft vs strict bank constraints under forced unbalance.

§II-B's "unbalanced bank assignment": some RCGs *force* an unbalanced
coloring — a star (one hot register co-read with N others) pushes all N
leaves into the opposite bank, no heuristic can prevent it.  When N
exceeds one bank's capacity the allocator must choose:

* **soft** policy (our RV default): overflow leaves back into the hot
  register's bank — conflicts return, no spills;
* **strict** policy: fight for the assignment with evictions and spills —
  the mechanism behind the paper's Tables III/V spill increments.

Timed unit: one strict-bank bpc pipeline run on the star kernel.
"""

from repro.banks import BankedRegisterFile
from repro.experiments import render_table
from repro.ir import IRBuilder
from repro.prescount import PipelineConfig, run_pipeline
from repro.sim import analyze_static, observably_equivalent


def star_kernel(name: str, leaves: int, trip: int = 16):
    """One hot register co-read with *leaves* long-lived values: the RCG
    is a star, forcing every leaf into the non-hot bank."""
    b = IRBuilder(name)
    hot = b.const(2.0)
    values = [b.const(float(i)) for i in range(leaves)]
    acc = b.const(0.0)
    with b.loop(trip_count=trip):
        for value in values:
            # Pure star edges hot-value (plus a disjoint acc-product
            # star): the RCG stays 2-colorable, but every leaf is forced
            # into the non-hot bank.
            product = b.arith("fmul", hot, value)
            b.arith_into(acc, "fadd", acc, product)
    b.ret(*values)  # leaves stay live: the unbalance cannot be dodged
    return b.finish()


def test_ablation_strict_banks(benchmark, record_text):
    register_file = BankedRegisterFile(32, 2)  # 16 registers per bank
    kernels = [star_kernel(f"star{n}", n) for n in (12, 18, 22)]

    rows = []
    results = {}
    for label, strict in (("soft (default)", False), ("strict", True)):
        conflicts = spills = evictions = 0
        for kernel in kernels:
            config = PipelineConfig(register_file, "bpc", strict_banks=strict)
            result = run_pipeline(kernel, config)
            assert observably_equivalent(kernel, result.function)
            conflicts += analyze_static(result.function, register_file).conflicts
            spills += result.spill_count
            evictions += result.allocation.evictions
        rows.append([label, conflicts, spills, evictions])
        results[label] = (conflicts, spills, evictions)

    text = render_table(
        "Ablation: soft vs strict banks on star RCGs (32 regs, 2 banks; "
        "stars of 12/18/22 leaves vs 16-register banks)",
        ["policy", "conflicts", "spills", "evictions"],
        rows,
    )
    record_text("ablation_strict", text)

    soft = results["soft (default)"]
    strict = results["strict"]
    # Strict buys fewer conflicts with allocator work; soft is free but
    # leaks conflicts — the two ends of the Tables III/V trade.
    assert strict[0] <= soft[0]
    assert strict[1] + strict[2] > soft[1] + soft[2]

    config = PipelineConfig(register_file, "bpc", strict_banks=True)
    benchmark(run_pipeline, star_kernel("star-bench", 20), config)

"""Service overhead: cold vs cached request latency, by fleet shape.

Measures the allocation service the way the obs benches measure their
layers — identical work through each path, results asserted identical:

* **cold** — a request that misses the cache and executes the full
  pipeline (inline workers, so no process-pool noise);
* **cached** — the same request again, served from the content-addressed
  cache;
* **routed** — the same two measurements again through the shard
  router (in-process ``LocalShard`` fleets of 1 and 3), isolating the
  consistent-hash routing layer's cost from the worker's.

The headline numbers (cold latency, cached latency, speedup, the
service-layer overhead of a cold request over a bare pipeline run, and
the router overhead per fleet size) are recorded in
``benchmarks/results/service_overhead.txt``.
"""

from __future__ import annotations

import os
import statistics
import time

from repro.ir import IRBuilder, print_function, print_module
from repro.ir.function import Module
from repro.prescount import PipelineConfig, run_pipeline
from repro.service import (
    AllocationService,
    IncrementalAllocator,
    LocalShard,
    ServiceConfig,
    ShardRouter,
    artifact_bytes,
    build_artifact,
    build_module_artifact,
)
from repro.sim import analyze_static

FILE_SPEC = {"registers": 32, "banks": 2}
ROUNDS = 30

#: Flat-core acceptance gates (see docs/PERFORMANCE.md): the perf-smoke
#: CI job fails the build when the large-kernel speedup drops below
#: these, or when any backend's artifact bytes diverge.
NUMPY_SPEEDUP_GATE = 3.0
PYTHON_SPEEDUP_GATE = 2.0


def _kernels(ctx, count=8):
    """A few SPECfp functions, as IR text (what a client would send)."""
    functions = ctx.suite("SPECfp").functions()[:count]
    assert functions, "SPECfp suite is empty at this scale"
    return [(fn, print_function(fn)) for fn in functions]


def _request(ir):
    return {"ir": ir, "file": dict(FILE_SPEC), "method": "bpc"}


def _serve_once(service, ir):
    started = time.perf_counter()
    job = service.submit(_request(ir))
    if job.status == "queued":
        service.process_once()
    assert job.status == "done", job.error
    return time.perf_counter() - started, job


def _route_once(router, ir):
    started = time.perf_counter()
    status = router.submit(_request(ir))
    if status["status"] not in ("done", "failed"):
        status = router.wait(status["job_id"])
    assert status["status"] == "done", status.get("error")
    return time.perf_counter() - started, router.result(status["job_id"])


def _routed_latency(shard_count, kernels, rounds):
    """(cold median s, cached median s, artifact bytes per ir)."""
    cold, cached, blobs = [], [], {}
    for _ in range(rounds):
        router = ShardRouter(
            [LocalShard(f"s{i}", ServiceConfig()) for i in range(shard_count)]
        )
        try:
            for _, ir in kernels:
                seconds, data = _route_once(router, ir)
                cold.append(seconds)
                assert blobs.setdefault(ir, data) == data
            for _, ir in kernels:
                seconds, data = _route_once(router, ir)
                cached.append(seconds)
                assert data == blobs[ir], "routed hit not bit-identical"
        finally:
            router.close()
    return statistics.median(cold), statistics.median(cached), blobs


def test_service_overhead(ctx, record_text):
    kernels = _kernels(ctx)
    register_file = ctx.register_file("rv2", 2)

    # Bare pipeline baseline: what the work costs without the service.
    bare = []
    for fn, _ in kernels:
        started = time.perf_counter()
        pipe = run_pipeline(fn, PipelineConfig(register_file, "bpc"))
        analyze_static(pipe.function, register_file, am=pipe.analyses)
        bare.append(time.perf_counter() - started)

    cold, cached = [], []
    artifacts = {}
    for round_index in range(ROUNDS):
        service = AllocationService(ServiceConfig(workers=0))
        for _, ir in kernels:
            seconds, job = _serve_once(service, ir)
            cold.append(seconds)
            previous = artifacts.setdefault(ir, job.artifact)
            assert previous == job.artifact, "cold runs diverged"
        for _, ir in kernels:
            seconds, job = _serve_once(service, ir)
            cached.append(seconds)
            assert job.cache == "hit"
            assert job.artifact == artifacts[ir], "cache hit not bit-identical"

    cold_ms = statistics.median(cold) * 1000
    cached_ms = statistics.median(cached) * 1000
    bare_ms = statistics.median(bare) * 1000
    overhead_pct = (cold_ms - bare_ms) / bare_ms * 100 if bare_ms else 0.0
    lines = [
        "service request latency (median over "
        f"{ROUNDS} rounds x {len(kernels)} SPECfp kernels, workers=0):",
        f"  bare pipeline            {bare_ms:9.3f} ms",
        f"  cold request (miss)      {cold_ms:9.3f} ms   "
        f"(+{overhead_pct:.1f}% service layer: parse, key, cache, queue)",
        f"  cached request (hit)     {cached_ms:9.3f} ms   "
        f"({cold_ms / cached_ms:.0f}x faster than cold)",
    ]
    # The shard router on top (fewer rounds: the dispatcher thread adds
    # scheduling noise that medians out quickly).
    direct_bytes = dict(artifacts)  # Job.artifact is the canonical bytes
    for shard_count in (1, 3):
        routed_cold, routed_cached, blobs = _routed_latency(
            shard_count, kernels, rounds=max(3, ROUNDS // 3)
        )
        for ir, data in blobs.items():
            assert data == direct_bytes[ir], (
                f"{shard_count}-shard response diverged from direct"
            )
        routed_cold_ms = routed_cold * 1000
        routed_cached_ms = routed_cached * 1000
        lines.append(
            f"  routed, {shard_count} shard{'s' if shard_count > 1 else ' '}"
            f"  cold/hit  {routed_cold_ms:9.3f} ms / "
            f"{routed_cached_ms:.3f} ms   "
            f"(+{routed_cached_ms - cached_ms:.3f} ms router layer on a "
            "hit, bit-identical)"
        )
    record_text("service_overhead", "\n".join(lines))
    assert cached_ms < cold_ms, "a cache hit should beat executing"


#: Durability acceptance gate: the write-ahead journal must cost at
#: most this fraction of the warm (cache-hit) request latency.  The
#: design makes this easy — a hit is accepted-and-terminal in one step
#: and is never journaled (see docs/RESILIENCE.md) — so the gate guards
#: against a future change accidentally putting frames on the hot path.
JOURNAL_OVERHEAD_GATE = 0.05


def test_journal_overhead(ctx, record_text, tmp_path):
    kernels = _kernels(ctx)

    def _arm(journal_dir):
        config = ServiceConfig(workers=0, journal_dir=journal_dir)
        warm = []
        blobs = {}
        service = AllocationService(config)
        for _, ir in kernels:  # fill
            _, job = _serve_once(service, ir)
            blobs[ir] = job.artifact
        for _ in range(ROUNDS):
            for _, ir in kernels:
                seconds, job = _serve_once(service, ir)
                assert job.cache == "hit"
                assert job.artifact == blobs[ir]
                warm.append(seconds)
        service.stop()
        return statistics.median(warm), blobs

    plain, blobs_plain = _arm(None)
    journaled, blobs_journal = _arm(str(tmp_path / "wal"))
    assert blobs_journal == blobs_plain, "journal changed served bytes"

    overhead = (journaled - plain) / plain if plain else 0.0
    record_text(
        "journal_overhead",
        "warm-hit latency with vs without --journal (median over "
        f"{ROUNDS} rounds x {len(kernels)} SPECfp kernels):\n"
        f"  no journal     {plain * 1000:9.3f} ms\n"
        f"  --journal DIR  {journaled * 1000:9.3f} ms   "
        f"({overhead * 100:+.1f}%; gate {JOURNAL_OVERHEAD_GATE:.0%}, "
        "hits are never journaled)",
    )
    # Small absolute floor: at tens-of-microsecond medians, scheduler
    # noise would otherwise dominate the relative gate.
    assert journaled <= plain * (1.0 + JOURNAL_OVERHEAD_GATE) + 100e-6, (
        f"journal added {overhead * 100:.1f}% to the warm hit path "
        f"({plain * 1e6:.0f}us -> {journaled * 1e6:.0f}us)"
    )


#: Fleet-telemetry acceptance gate: tracing every request must cost at
#: most this fraction of the warm (cache-hit) request latency.
TELEMETRY_OVERHEAD_GATE = 0.05


def test_telemetry_overhead(ctx, record_text):
    """Per-request tracing stays under 5% of the warm hot path.

    Both arms serve the same cache-warmed requests through one service;
    the traced arm additionally attaches a fresh ``TraceContext`` to
    every submit with the recorder enabled, which is exactly what
    ``repro serve`` does per HTTP request.  Best-of-rounds totals (the
    minimum is the stable estimator under scheduler noise), artifacts
    asserted bit-identical across arms.
    """
    import gc

    from repro.obs.telemetry import TELEMETRY, TraceContext

    kernels = _kernels(ctx, count=4)
    passes, rounds = 40, 5

    def _arm(traced):
        service = AllocationService(ServiceConfig(workers=0))
        try:
            blobs = {}
            for _, ir in kernels:  # warm the cache outside the timing
                _, job = _serve_once(service, ir)
                blobs[ir] = job.artifact
            best = None
            for _ in range(rounds):
                if traced:
                    TELEMETRY.reset()
                gc.collect()
                started = time.perf_counter()
                for _ in range(passes):
                    for _, ir in kernels:
                        trace = TraceContext.new() if traced else None
                        job = service.submit(_request(ir), trace=trace)
                        if job.status == "queued":
                            service.process_once()
                        assert job.cache == "hit"
                        assert job.artifact == blobs[ir]
                elapsed = time.perf_counter() - started
                best = elapsed if best is None else min(best, elapsed)
            return best, blobs
        finally:
            service.stop()

    t_off, blobs_off = _arm(traced=False)
    TELEMETRY.enable(process="bench")
    try:
        t_on, blobs_on = _arm(traced=True)
    finally:
        TELEMETRY.disable()
        TELEMETRY.reset()

    assert blobs_on == blobs_off, "telemetry changed served bytes"
    requests = passes * len(kernels)
    overhead = t_on / t_off - 1.0
    record_text(
        "telemetry_overhead",
        "\n".join(
            [
                "fleet-telemetry warm-path overhead "
                f"(best of {rounds} rounds x {requests} cache hits):",
                f"  telemetry off   {t_off * 1000:9.2f} ms total "
                f"({t_off / requests * 1e6:7.1f} us/request)",
                f"  telemetry on    {t_on * 1000:9.2f} ms total "
                f"({t_on / requests * 1e6:7.1f} us/request)",
                f"  overhead        {overhead:9.1%}"
                f"   (gate {TELEMETRY_OVERHEAD_GATE:.0%})",
            ]
        ),
    )
    assert overhead <= TELEMETRY_OVERHEAD_GATE, (
        f"telemetry overhead {overhead:.1%} exceeds the "
        f"{TELEMETRY_OVERHEAD_GATE:.0%} hot-path gate"
    )


# ----------------------------------------------------------------------
# Flat-core speedup: REPRO_FAST backends vs the object path, plus the
# incremental module path.  Byte identity is asserted on every pair.
# ----------------------------------------------------------------------

def _loop_kernel(name: str, body_ops: int, trip_count: int = 64):
    """Deterministic single-loop kernel with ``2*body_ops`` arith ops."""
    b = IRBuilder(name)
    xs = [b.const(float(i + 1)) for i in range(8)]
    acc = b.const(0.0)
    with b.loop(trip_count=trip_count):
        vals = list(xs)
        for i in range(body_ops):
            value = b.arith("fmul", vals[i % len(vals)], vals[(i + 3) % len(vals)])
            vals.append(value)
            if len(vals) > 24:
                vals.pop(0)
            b.arith_into(acc, "fadd", acc, value)
    b.ret(acc)
    return b.finish()


def _forced(mode: str):
    import contextlib

    @contextlib.contextmanager
    def _inner():
        previous = os.environ.get("REPRO_FAST")
        os.environ["REPRO_FAST"] = mode
        try:
            yield
        finally:
            if previous is None:
                os.environ.pop("REPRO_FAST", None)
            else:
                os.environ["REPRO_FAST"] = previous

    return _inner()


def _timed_artifact(mode: str, ir: str, rounds: int = 3):
    """(best wall seconds, artifact bytes) for one bare request."""
    with _forced(mode):
        best, data = None, None
        for _ in range(rounds):
            started = time.perf_counter()
            artifact = build_artifact(ir, FILE_SPEC, "bpc")
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
            data = artifact_bytes(artifact)
        return best, data


def test_flat_speedup(record_text):
    """Bare single-request latency: object path vs flat backends.

    The flat core targets large kernels — mask/CSR costs amortize with
    instruction count — so the headline gate runs a ~2000-instruction
    loop kernel; a ~600-instruction kernel is recorded for context.
    """
    try:
        import numpy  # noqa: F401

        modes = ("python", "numpy")
    except ImportError:  # pragma: no cover - numpy is baked in
        modes = ("python",)

    report = []
    gated = {}
    for label, body_ops in (("medium", 300), ("large", 1000)):
        ir = print_function(_loop_kernel(f"flat_{label}", body_ops))
        bare_s, bare_bytes = _timed_artifact("off", ir)
        row = [f"  {label} kernel ({2 * body_ops + 10} instrs):",
               f"    object path (REPRO_FAST=off) {bare_s * 1000:9.1f} ms"]
        for mode in modes:
            flat_s, flat_bytes = _timed_artifact(mode, ir)
            assert flat_bytes == bare_bytes, (
                f"REPRO_FAST={mode} diverged from the object path "
                f"on the {label} kernel"
            )
            speedup = bare_s / flat_s
            row.append(
                f"    REPRO_FAST={mode:<6}            "
                f"{flat_s * 1000:9.1f} ms   ({speedup:.2f}x, bit-identical)"
            )
            if label == "large":
                gated[mode] = speedup
        report.extend(row)

    # Incremental module path: warm rebuild with 1 of 4 changed vs a
    # cold from-scratch build of the same changed module.
    def _module(changed: bool) -> str:
        module = Module("flat_bench_mod")
        for i in range(4):
            trips = 32 if (i == 0 and changed) else 64
            module.add(_loop_kernel(f"fn{i}", 300, trip_count=trips))
        return print_module(module)

    with _forced(modes[-1]):
        allocator = IncrementalAllocator()
        allocator.allocate(_module(False), FILE_SPEC, "bpc")
        executed_before = allocator.counters["functions_executed"]
        started = time.perf_counter()
        warm = allocator.allocate(_module(True), FILE_SPEC, "bpc")
        warm_s = time.perf_counter() - started
        executed = allocator.counters["functions_executed"] - executed_before
        started = time.perf_counter()
        scratch = build_module_artifact(_module(True), FILE_SPEC, "bpc")
        scratch_s = time.perf_counter() - started
    assert artifact_bytes(warm) == artifact_bytes(scratch), (
        "incremental rebuild is not bit-identical to from-scratch"
    )
    assert executed == 1, f"expected 1 re-executed function, got {executed}"
    report.extend([
        "  incremental module (4 fns, 1 changed, "
        f"REPRO_FAST={modes[-1]}):",
        f"    from-scratch build            {scratch_s * 1000:9.1f} ms",
        f"    incremental rebuild           {warm_s * 1000:9.1f} ms   "
        f"({scratch_s / warm_s:.2f}x, bit-identical, "
        f"{4 - executed} of 4 reused)",
    ])
    record_text(
        "flat_speedup",
        "flat-core bare single-request speedup (best of 3):\n"
        + "\n".join(report),
    )
    assert warm_s < scratch_s, "incremental rebuild should beat scratch"
    assert gated["python"] >= PYTHON_SPEEDUP_GATE, (
        f"pure-python flat speedup {gated['python']:.2f}x "
        f"< gate {PYTHON_SPEEDUP_GATE}x"
    )
    if "numpy" in gated:
        assert gated["numpy"] >= NUMPY_SPEEDUP_GATE, (
            f"numpy flat speedup {gated['numpy']:.2f}x "
            f"< gate {NUMPY_SPEEDUP_GATE}x"
        )

"""Service overhead: cold vs cached request latency.

Measures the allocation service the way the obs benches measure their
layers — identical work through two paths, results asserted identical:

* **cold** — a request that misses the cache and executes the full
  pipeline (inline workers, so no process-pool noise);
* **cached** — the same request again, served from the content-addressed
  cache.

The headline numbers (cold latency, cached latency, speedup, and the
service-layer overhead of a cold request over a bare pipeline run) are
recorded in ``benchmarks/results/service_overhead.txt``.
"""

from __future__ import annotations

import statistics
import time

from repro.ir import print_function
from repro.prescount import PipelineConfig, run_pipeline
from repro.service import AllocationService, ServiceConfig
from repro.sim import analyze_static

FILE_SPEC = {"registers": 32, "banks": 2}
ROUNDS = 30


def _kernels(ctx, count=8):
    """A few SPECfp functions, as IR text (what a client would send)."""
    functions = ctx.suite("SPECfp").functions()[:count]
    assert functions, "SPECfp suite is empty at this scale"
    return [(fn, print_function(fn)) for fn in functions]


def _request(ir):
    return {"ir": ir, "file": dict(FILE_SPEC), "method": "bpc"}


def _serve_once(service, ir):
    started = time.perf_counter()
    job = service.submit(_request(ir))
    if job.status == "queued":
        service.process_once()
    assert job.status == "done", job.error
    return time.perf_counter() - started, job


def test_service_overhead(ctx, record_text):
    kernels = _kernels(ctx)
    register_file = ctx.register_file("rv2", 2)

    # Bare pipeline baseline: what the work costs without the service.
    bare = []
    for fn, _ in kernels:
        started = time.perf_counter()
        pipe = run_pipeline(fn, PipelineConfig(register_file, "bpc"))
        analyze_static(pipe.function, register_file, am=pipe.analyses)
        bare.append(time.perf_counter() - started)

    cold, cached = [], []
    artifacts = {}
    for round_index in range(ROUNDS):
        service = AllocationService(ServiceConfig(workers=0))
        for _, ir in kernels:
            seconds, job = _serve_once(service, ir)
            cold.append(seconds)
            previous = artifacts.setdefault(ir, job.artifact)
            assert previous == job.artifact, "cold runs diverged"
        for _, ir in kernels:
            seconds, job = _serve_once(service, ir)
            cached.append(seconds)
            assert job.cache == "hit"
            assert job.artifact == artifacts[ir], "cache hit not bit-identical"

    cold_ms = statistics.median(cold) * 1000
    cached_ms = statistics.median(cached) * 1000
    bare_ms = statistics.median(bare) * 1000
    overhead_pct = (cold_ms - bare_ms) / bare_ms * 100 if bare_ms else 0.0
    lines = [
        "service request latency (median over "
        f"{ROUNDS} rounds x {len(kernels)} SPECfp kernels, workers=0):",
        f"  bare pipeline            {bare_ms:9.3f} ms",
        f"  cold request (miss)      {cold_ms:9.3f} ms   "
        f"(+{overhead_pct:.1f}% service layer: parse, key, cache, queue)",
        f"  cached request (hit)     {cached_ms:9.3f} ms   "
        f"({cold_ms / cached_ms:.0f}x faster than cold)",
    ]
    record_text("service_overhead", "\n".join(lines))
    assert cached_ms < cold_ms, "a cache hit should beat executing"

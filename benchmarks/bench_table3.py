"""Regenerates Table III: RV#1 conflict reduction vs spill increment.

Paper shape: conflict reductions (CR rows) dwarf spill increments (SI
rows) on the register-rich platform; bpc's SI exceeds bcr's (the price of
stronger bank constraints) but stays orders of magnitude below CR.

Timed unit: one bcr pipeline run over a SPECfp program on RV#1.
"""

from repro.experiments import table3
from repro.experiments.harness import run_program


def test_table3(benchmark, ctx, record_text):
    table = table3(ctx)
    record_text("table3", table.render())

    rows = table.row_map()
    spec_cr = rows["SPEC.CR"][1:]
    spec_si = rows["SPEC.SI"][1:]
    # Shape 1: SPEC conflict reductions are positive everywhere.
    assert all(cr > 0 for cr in spec_cr)
    # Shape 2: with 1024 registers the spill increments stay tiny
    # relative to the reductions (the paper's central cost argument).
    for cr, si in zip(spec_cr, spec_si):
        assert si < max(1, cr)
    # Shape 3: CNN reductions exist for the 2-bank setting.
    assert rows["CNN.CR"][1] > 0

    program = ctx.suite("SPECfp").programs[0]
    register_file = ctx.register_file("rv1", 4)
    benchmark(run_program, program, register_file, "bcr")

"""Regenerates Table IV: RV#2 static and dynamic conflicts + reductions.

Paper shape: on the 32-register platform both methods still reduce
conflicts at 2 banks; at 4 banks the tight budget erodes reductions
(the paper even reports a negative bcr reduction dynamically); dynamic
counts diverge from static ones because only part of the code runs.

Timed unit: one bpc pipeline run + dynamic estimate over a SPECfp
program on RV#2.
"""

from repro.experiments import table4
from repro.experiments.harness import run_program


def test_table4(benchmark, ctx, record_text):
    table = table4(ctx)
    record_text("table4", table.render())

    rows = table.row_map()
    # Shape 1: 2-bank static reductions are positive for both methods.
    __, confs, redu_bcr, redu_bpc, impv = rows["2-STATIC"]
    assert redu_bcr > 0 and redu_bpc > 0
    assert impv >= 0
    # Shape 2: dynamic counts differ from static counts (partial
    # execution), yet 2-bank dynamic reductions remain positive.
    assert rows["2-DYNAMIC"][1] != rows["2-STATIC"][1]
    assert rows["2-DYNAMIC"][3] > 0
    # Shape 3: bpc's absolute edge over bcr shrinks as banks multiply
    # (less conflict mass to fight over) — the robust form of the paper's
    # 4-bank erosion.
    assert rows["4-STATIC"][4] <= max(rows["2-STATIC"][4], 10)

    program = ctx.suite("SPECfp").programs[0]
    register_file = ctx.register_file("rv2", 2)
    benchmark(
        run_program, program, register_file, "bpc", measure_dynamic=True
    )

"""Penalty survival on the out-of-order machine: the headline sweep.

The in-order Table VI/VII deltas are an upper bound on what conflict-
aware allocation buys; this bench sweeps the OoO machine over issue
width x read ports and records how much of the conflict penalty
survives ILP.  Shape checks pin the physics: the degenerate corner
(width 1, one port, rename off) reproduces the in-order conflict cycles
bit-identically (100% survival), extra read ports absorb conflicts, and
the wide corner hides the most penalty.

Timed unit: the OoO cycle model (width 2, two ports) on the allocated
idft kernel.
"""

from repro.experiments import ooo_sweep, survival_table
from repro.sim.ooo import OooConfig, OooMachine


def test_ooo_survival(benchmark, ctx, record_text):
    sweep = ooo_sweep(ctx)
    record_text("ooo_survival", survival_table(sweep))

    points = {
        (row["issue_width"], row["read_ports"]): row for row in sweep["rows"]
    }
    # Shape 1: the degenerate corner is pinned at exactly 100% survival
    # by the bit-identical parity proof — not approximately.
    degenerate = ooo_sweep(ctx, widths=(1,), ports=(1,), rename=False)
    for row in degenerate["rows"]:
        assert row["survival_pct"] == {"bcr": 100.0, "bpc": 100.0}
    # Shape 2: read ports absorb conflicts — at any width, every method's
    # conflict cycles fall (weakly) as the port count grows.
    for width in (1, 2, 4):
        for method in sweep["methods"]:
            one, two, four = (
                points[(width, ports)]["conflict_cycles"][method]
                for ports in (1, 2, 4)
            )
            assert four <= two <= one, (width, method)
    # Shape 3: the wide corner hides the most penalty overall.
    assert (
        points[(4, 4)]["survival_pct"]["bpc"]
        < points[(1, 1)]["survival_pct"]["bpc"]
    )
    # Shape 4: more machine is never slower — every method's total
    # cycles drop from the narrow corner to the wide corner.
    for method in sweep["methods"]:
        assert points[(4, 4)]["cycles"][method] < points[(1, 1)]["cycles"][method]

    register_file = ctx.register_file("dsa", 0)
    machine = OooMachine(
        register_file, config=OooConfig(issue_width=2, read_ports=2)
    )
    from repro.prescount import PipelineConfig, run_pipeline

    idft = next(p for p in ctx.suite("DSA-OP").programs if p.name == "idft")
    allocated = run_pipeline(
        idft.functions()[0], PipelineConfig(register_file, "bpc")
    ).function
    benchmark(machine.run, allocated)

"""Regenerates Table II: RV#1 combined conflicts and reductions.

Paper values (for shape comparison; absolute counts differ by substrate):

    BANK  CONFS  Redu.bcr  Redu.bpc  IMPV
       2  33374     27777     30663  2886
       4  10023      6616      8426  1810
       8   4815      3684      4084   400

Timed unit: one bpc pipeline run over a CNN conv kernel on RV#1.
"""

from repro.experiments import table2
from repro.experiments.harness import run_program


def test_table2(benchmark, ctx, record_text):
    table = table2(ctx)
    record_text("table2", table.render())

    rows = {row[0]: row for row in table.rows}
    # Shape 1: baseline conflicts fall as banks grow.
    assert rows[2][1] > rows[4][1] > rows[8][1]
    for banks in (2, 4, 8):
        __, confs, redu_bcr, redu_bpc, impv = rows[banks]
        # Shape 2: both methods reduce conflicts.
        assert 0 < redu_bcr <= confs
        assert 0 < redu_bpc <= confs
        # Shape 3: bpc reduces at least as much as bcr (IMPV >= 0).
        assert impv >= 0
    # Shape 4: the 2-bank IMPV is the largest in absolute terms (the
    # paper's hardest setting benefits most from pressure tracking).
    assert rows[2][4] >= rows[8][4]

    program = ctx.suite("CNN-KERNEL").programs[0]
    register_file = ctx.register_file("rv1", 2)
    benchmark(run_program, program, register_file, "bpc")

"""Extension bench: register-file energy across the Table VI design points.

The paper motivates static conflict elimination with performance *per
watt* (§I) and justifies the DSA's crossbar-free datapath with power
(§III-C) but reports no energy numbers.  This bench extends Table VI's
comparison with the energy model of :mod:`repro.sim.energy`: the 2x4
bank-subgroup file + bpc vs plain 2/4/8/16-banked hardware + non, per
DSA-OP kernel.

Expected shape: the software solution wins twice — it avoids conflict
re-arbitration energy *and* the per-access overhead of wider bank
decoding, so its total register-file energy undercuts every plain-banked
hardware point at equal or better conflict counts.

Timed unit: one energy estimation over the allocated idft kernel.
"""

from repro.experiments import render_table
from repro.prescount import PipelineConfig, run_pipeline
from repro.sim import estimate_energy


def test_energy_comparison(benchmark, ctx, record_text):
    suite = ctx.suite("DSA-OP")
    dsa_rf = ctx.register_file("dsa", 0)

    rows = []
    totals = {"bpc": 0.0, 2: 0.0, 4: 0.0, 8: 0.0, 16: 0.0}
    for program in suite.programs:
        fn = program.functions()[0]
        bpc = run_pipeline(fn, PipelineConfig(dsa_rf, "bpc"))
        bpc_energy = estimate_energy(bpc.function, dsa_rf).total
        row = [program.name, round(bpc_energy)]
        totals["bpc"] += bpc_energy
        for banks in (2, 4, 8, 16):
            hw_rf = ctx.register_file("dsa", banks)
            non = run_pipeline(fn, PipelineConfig(hw_rf, "non"))
            energy = estimate_energy(non.function, hw_rf).total
            row.append(round(energy))
            totals[banks] += energy
        rows.append(row)
    rows.append(
        ["total", *(round(totals[k]) for k in ("bpc", 2, 4, 8, 16))]
    )

    text = render_table(
        "Extension: register-file energy, 2x4-bpc vs N-banked non "
        "(units: 1-bank register accesses)",
        ["DSA-OP", "2x4-bpc", "2-non", "4-non", "8-non", "16-non"],
        rows,
    )
    record_text("energy", text)

    # Shape 1: software beats every hardware point in total energy.
    for banks in (2, 4, 8, 16):
        assert totals["bpc"] < totals[banks], banks
    # Shape 2: wider banking costs more access energy even as conflicts
    # fall — 16-non is not the cheapest hardware point.
    assert totals[16] > min(totals[b] for b in (2, 4, 8))

    idft = next(p for p in suite.programs if p.name == "idft")
    allocated = run_pipeline(
        idft.functions()[0], PipelineConfig(dsa_rf, "bpc")
    ).function
    benchmark(estimate_energy, allocated, dsa_rf)

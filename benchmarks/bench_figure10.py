"""Regenerates Figure 10: RV#1 static conflicts per benchmark.

Paper shape (Fig. 10a/10b): under `non`, conflicts roughly halve each time
the bank count doubles; both bcr and bpc land well below 1.0 normalized,
with bpc at or below bcr for most benchmarks; CNN categories see the
largest reductions.

Timed unit: one non pipeline run over the largest SPECfp program on RV#1.
"""

from repro.experiments import figure10
from repro.experiments.harness import run_program


def test_figure10(benchmark, ctx, record_text):
    figure = figure10(ctx)
    record_text("figure10", figure.render())

    spec_names = [p.name for p in ctx.suite("SPECfp").programs]
    # Shape 1: the hardware trend — non conflicts fall as banks grow.
    falling = 0
    for bench in spec_names:
        series = [figure.series[f"{bench}/{banks}/non"] for banks in (2, 4, 8)]
        if series[0] >= series[1] >= series[2]:
            falling += 1
    assert falling >= len(spec_names) - 1  # allow one noisy benchmark

    # Shape 2: normalized bcr/bpc below 1 on conflict-heavy benchmarks.
    heavy = max(spec_names, key=lambda b: figure.series[f"{b}/2/non"])
    assert figure.series[f"{heavy}/2/bcr"] < 1.0
    assert figure.series[f"{heavy}/2/bpc"] < 1.0
    # Shape 3: bpc <= bcr on the heavy benchmark at 2 banks.
    assert (
        figure.series[f"{heavy}/2/bpc"]
        <= figure.series[f"{heavy}/2/bcr"] + 0.05
    )

    program = max(
        ctx.suite("SPECfp").programs,
        key=lambda p: sum(f.instruction_count() for f in p.functions()),
    )
    register_file = ctx.register_file("rv1", 8)
    benchmark(run_program, program, register_file, "non")

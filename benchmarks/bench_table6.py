"""Regenerates Table VI: DSA conflict ratios, 2x4-bpc vs 2/4/8/16-non.

Paper values (conflict ratio in % of the 2-non BASE):

    DSA-OP     BASE   2x4-bpc  2-non  4-non  8-non  16-non
    reduce        5      0       100     60     40     20
    red-ur       50      0       100     50     24     12
    shruse       10      0       100    100    100    100
    sr-ur       200      0       100    100    100    100
    dw-conv2d     9      0       100  33.33      0      0
    tr18987     175      0.57    100  44.57  22.86  10.86
    tr15651     512      0       100     50     25   12.5
    idft      16269      0       100  48.84  24.78  12.43
    average   98.92      0.07    100  59.22   38.2  28.72

Timed unit: the full DSA bpc pipeline on the reduce kernel.
"""

from repro.experiments import table6
from repro.experiments.harness import run_program


def test_table6(benchmark, ctx, record_text):
    table = table6(ctx)
    record_text("table6", table.render())

    rows = table.row_map()
    average = rows["average"]
    # Shape 1: bpc on the 2x4 file eliminates nearly everything
    # (paper: 99.85% reduction -> average ratio 0.07%).
    assert average[2] < 5.0
    # Shape 2: every kernel except (possibly) tr18987 reaches zero.
    for name in ("reduce", "red-ur", "shruse", "sr-ur", "dw-conv2d",
                 "tr15651", "idft"):
        assert rows[name][2] == 0.0, name
    # Shape 3: plain hardware improves with banks but does not reach bpc.
    assert average[3] > average[4] > average[5] > average[6] > average[2]
    # Shape 4: the shared-use kernels stay at 100% for every plain-banked
    # configuration (the paper's co-design argument).
    for name in ("shruse", "sr-ur"):
        assert rows[name][3:] == [100, 100, 100, 100]

    program = next(p for p in ctx.suite("DSA-OP").programs if p.name == "reduce")
    register_file = ctx.register_file("dsa", 0)
    benchmark(
        run_program, program, register_file, "bpc", measure_cycles=True
    )

"""Ablation: the bank pressure counting heuristic itself.

PresCount's namesake (§III-B): when several banks are equally
conflict-free, pick the one whose max live-range overlap grows least.
Disabling it reverts ties to occupancy/index order, which unbalances the
per-bank sub-RIGs — visible as extra spills and conflicts at tight
budgets (the §II-B "unbalanced bank assignment" failure).

Timed unit: one full bpc pipeline run with pressure counting on.
"""

from repro.banks import BankedRegisterFile
from repro.experiments import render_table
from repro.prescount import PipelineConfig, run_pipeline
from repro.sim import analyze_static
from repro.workloads import KernelSpec, generate_kernel


def pressure_kernels(count=10):
    kernels = []
    for seed in range(count):
        spec = KernelSpec(
            name=f"press{seed}",
            seed=100 + seed,
            # High pressure (~26 of 32 registers): where max-overlap
            # tracking and plain occupancy balancing disagree.
            live_values=26,
            body_ops=36,
            loop_depth=2,
            trip_counts=(8, 12),
            sharing=0.4,
            accumulate=0.3,
        )
        kernels.append(generate_kernel(spec))
    return kernels


def run_variant(kernels, register_file, use_pressure_counting):
    conflicts = spills = 0
    for kernel in kernels:
        config = PipelineConfig(
            register_file, "bpc", use_pressure_counting=use_pressure_counting
        )
        result = run_pipeline(kernel, config)
        conflicts += analyze_static(result.function, register_file).conflicts
        spills += result.spill_count
    return conflicts, spills


def test_ablation_pressure_counting(benchmark, record_text):
    register_file = BankedRegisterFile(32, 2)  # tight: pressure matters
    kernels = pressure_kernels()

    with_pc = run_variant(kernels, register_file, True)
    without_pc = run_variant(kernels, register_file, False)

    text = render_table(
        "Ablation: bank pressure counting (32 regs, 2 banks, "
        f"{len(kernels)} kernels)",
        ["variant", "conflicts", "spills"],
        [
            ["pressure counting ON", with_pc[0], with_pc[1]],
            ["pressure counting OFF", without_pc[0], without_pc[1]],
        ],
    )
    record_text("ablation_pressure", text)

    # At high pressure the max-overlap heuristic must give a (possibly
    # small) edge over plain occupancy balancing and never hurt; the
    # dramatic forced-unbalance case lives in bench_ablation_strict.
    assert with_pc[0] + with_pc[1] <= without_pc[0] + without_pc[1]

    config = PipelineConfig(register_file, "bpc")
    benchmark(run_pipeline, kernels[0], config)

"""Ablation: PresCount-in-greedy vs bank-aware PBQP.

The paper's conclusion proposes "investigating the incorporation of
PresCount with other RA methods".  `repro.alloc.pbqp` folds the bank
conflict objective (RCG edge costs as quadratic terms) into a PBQP solve
— one global optimization instead of a phase + policy.  This bench
compares three ways of spending the same information:

* greedy allocator + PresCount phase (`bpc`, the paper's design);
* PBQP with quadratic bank terms (no PresCount phase);
* plain PBQP (no bank awareness) — the control.

Timed unit: one bank-aware PBQP solve.
"""

from repro.banks import BankedRegisterFile
from repro.experiments import render_table
from repro.alloc import PbqpAllocator
from repro.prescount import PipelineConfig, run_pipeline
from repro.sim import analyze_static
from repro.workloads import KernelSpec, generate_kernel


def kernels(count=8):
    return [
        generate_kernel(
            KernelSpec(
                name=f"pbqp{seed}",
                seed=300 + seed,
                live_values=10,
                body_ops=28,
                loop_depth=2,
                trip_counts=(8, 8),
                sharing=0.45,
                accumulate=0.25,
            )
        )
        for seed in range(count)
    ]


def test_ablation_pbqp(benchmark, record_text):
    register_file = BankedRegisterFile(64, 2)
    suite = kernels()

    totals = {"greedy+bpc": [0, 0], "pbqp bank-aware": [0, 0], "pbqp plain": [0, 0]}
    for kernel in suite:
        bpc = run_pipeline(kernel, PipelineConfig(register_file, "bpc"))
        stats = analyze_static(bpc.function, register_file)
        totals["greedy+bpc"][0] += stats.conflicts
        totals["greedy+bpc"][1] += bpc.spill_count

        aware = PbqpAllocator(register_file, bank_conflict_weight=1.0).run(kernel)
        stats = analyze_static(aware.function, register_file)
        totals["pbqp bank-aware"][0] += stats.conflicts
        totals["pbqp bank-aware"][1] += aware.spill_count

        plain = PbqpAllocator(register_file, bank_conflict_weight=0.0).run(kernel)
        stats = analyze_static(plain.function, register_file)
        totals["pbqp plain"][0] += stats.conflicts
        totals["pbqp plain"][1] += plain.spill_count

    text = render_table(
        f"Ablation: allocator frameworks (64 regs, 2 banks, {len(suite)} kernels)",
        ["allocator", "conflicts", "spills"],
        [[name, *values] for name, values in totals.items()],
    )
    record_text("ablation_pbqp", text)

    # Both bank-aware approaches crush the bank-blind control.
    assert totals["greedy+bpc"][0] < totals["pbqp plain"][0]
    assert totals["pbqp bank-aware"][0] < totals["pbqp plain"][0]

    allocator = PbqpAllocator(register_file, bank_conflict_weight=1.0)
    benchmark(allocator.run, suite[0])

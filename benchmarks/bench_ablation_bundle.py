"""Ablation: bundle-aware RCG edges (the paper's future work, §IV-B3).

The paper reports that the DSA's VLIW bundle constraint — no two
same-bank reads within one bundle — "negatively affects dw-conv2d and
tr18987" and that addressing such inter-instruction restrictions with the
RCG is future work.  The `bundle_aware` pipeline option implements it:
soft RCG edges between dual-issue candidates steer equal-pressure bank
ties toward bundleable assignments without ever sacrificing a true
conflict edge.

The effect shows on unary-rich code (binary ops can never dual-issue on a
two-bank file: four reads need four ports).  The bench sweeps a family of
elementwise kernels whose results stay live.

Timed unit: one bundle-aware bpc pipeline run.
"""

from repro.banks import BankSubgroupRegisterFile
from repro.experiments import render_table
from repro.ir import IRBuilder
from repro.prescount import PipelineConfig, run_pipeline
from repro.sim import DsaMachine, analyze_static, observably_equivalent


def elementwise_kernel(name: str, lanes: int, stride: int, trip: int = 32):
    """Unary ops over lanes, paired at *stride* distance; all live out."""
    b = IRBuilder(name)
    vals = [b.const(float(i)) for i in range(lanes)]
    with b.loop(trip_count=trip):
        half = lanes // 2
        for i in range(half):
            vals[i] = b.arith("fneg", vals[i])
            vals[(i + stride) % lanes] = b.arith("fabs", vals[(i + stride) % lanes])
    b.ret(*vals)
    return b.finish()


def test_ablation_bundle_aware(benchmark, record_text):
    register_file = BankSubgroupRegisterFile(1024, 2, 4)
    machine = DsaMachine(register_file)
    kernels = [
        elementwise_kernel("ew8s4", lanes=8, stride=4),
        elementwise_kernel("ew12s6", lanes=12, stride=6),
        elementwise_kernel("ew16s8", lanes=16, stride=8),
    ]

    rows = []
    total_base = total_aware = 0.0
    for kernel in kernels:
        base = run_pipeline(kernel, PipelineConfig(register_file, "bpc"))
        aware = run_pipeline(
            kernel, PipelineConfig(register_file, "bpc", bundle_aware=True)
        )
        assert observably_equivalent(kernel, aware.function)
        base_cycles = machine.run(base.function).cycles
        aware_cycles = machine.run(aware.function).cycles
        base_hazards = analyze_static(base.function, register_file).conflicts
        aware_hazards = analyze_static(aware.function, register_file).conflicts
        rows.append(
            [
                kernel.name,
                round(base_cycles),
                round(aware_cycles),
                base_hazards,
                aware_hazards,
            ]
        )
        total_base += base_cycles
        total_aware += aware_cycles

    text = render_table(
        "Ablation: bundle-aware RCG edges (DSA cycles)",
        ["kernel", "cycles base", "cycles aware", "hazards base", "hazards aware"],
        rows,
    )
    record_text("ablation_bundle", text)

    # Aggregate cycles improve; hazards never regress (soft edges cannot
    # displace true conflict edges).
    assert total_aware < total_base
    for row in rows:
        assert row[4] <= row[3]

    config = PipelineConfig(register_file, "bpc", bundle_aware=True)
    benchmark(run_pipeline, kernels[0], config)

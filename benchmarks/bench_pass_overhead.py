"""Measures the pass-manager refactor's payoff: analysis-cache hit rates
and wall time for the SPECfp bpc sweep, serial vs cached vs parallel.

Three configurations of identical work (results are asserted equal):

* uncached — ``caching_disabled()``: every analysis request recomputes,
  reproducing the pre-pass-manager behaviour where each phase built its
  own live intervals / cost model / SDG;
* cached   — ``jobs=1`` with the shared per-function AnalysisManager;
* parallel — ``jobs=4`` process-pool fan-out of the cached configuration.

The LiveIntervals hit rate is the headline number: coalescing rounds and
the scheduler's after-reorder probe are unavoidable misses, while the
scheduler's before-probe, the bank assigner, and the allocator all reuse
the cache.

``test_observability_overhead`` measures the :mod:`repro.obs` layer the
same way: the sweep with tracing+metrics disabled (the default — one
attribute check per emit site) against the sweep recording everything,
asserting identical results and recording the measured overhead bound in
``benchmarks/results/obs_overhead.txt``.
"""

from __future__ import annotations

import os
import time

from repro import obs
from repro.experiments.harness import run_program, run_suite
from repro.passes import caching_disabled
from repro.passes.instrument import GLOBAL


def _sweep(suite, register_file, jobs=1):
    started = time.perf_counter()
    results = run_suite(
        suite,
        register_file,
        "bpc",
        file_key="rv2:2",
        measure_dynamic=True,
        jobs=jobs,
    )
    return time.perf_counter() - started, results


def test_pass_overhead(ctx, record_text, benchmark):
    suite = ctx.suite("SPECfp")
    register_file = ctx.register_file("rv2", 2)

    with caching_disabled():
        t_uncached, r_uncached = _sweep(suite, register_file)

    GLOBAL.enable()
    GLOBAL.reset()
    try:
        t_cached, r_cached = _sweep(suite, register_file)
        live = GLOBAL.analyses["LiveIntervals"]
        hit_rate = live.hit_rate
        cache_table = GLOBAL.render()
    finally:
        GLOBAL.enable(False)
        GLOBAL.reset()

    t_parallel, r_parallel = _sweep(suite, register_file, jobs=4)

    # The three configurations are re-orderings of identical work.
    assert r_uncached == r_cached == r_parallel
    # Tentpole acceptance: the shared cache converts more than half of
    # all LiveIntervals requests into hits on the bpc pipeline.
    assert hit_rate > 0.5
    # Caching strictly removes recomputation, never adds work.
    assert t_cached < t_uncached

    cpus = os.cpu_count() or 1
    if cpus >= 4:
        assert t_parallel < t_cached

    lines = [
        "pass-manager overhead (SPECfp, rv2:2, bpc)",
        f"  programs                  {len(r_cached)}",
        f"  serial, uncached          {t_uncached:8.3f} s",
        f"  serial, cached            {t_cached:8.3f} s"
        f"   ({t_uncached / t_cached:.2f}x vs uncached)",
        f"  parallel (jobs=4, {cpus} cpus) {t_parallel:7.3f} s"
        f"   ({t_cached / t_parallel:.2f}x vs cached serial)",
        f"  LiveIntervals hit rate    {hit_rate:8.1%}"
        f"   ({live.hits} hits / {live.requests} requests)",
        "",
        cache_table,
    ]
    record_text("pass_overhead", "\n".join(lines))

    program = suite.programs[0]
    benchmark(run_program, program, register_file, "bpc")


def test_observability_overhead(ctx, record_text):
    suite = ctx.suite("SPECfp")
    register_file = ctx.register_file("rv2", 2)

    # Warm the suite cache so neither timed sweep pays generation cost.
    _sweep(suite, register_file)

    def _best_of(rounds=5, reset=False):
        # Best-of-N with a collection before each timed sweep: scheduler
        # and GC noise on shared CI boxes dwarfs the single-digit
        # overhead being measured, and the minimum is the stable
        # estimator of the true cost.  ``reset`` drops recorded spans
        # between rounds so each timed sweep starts from empty buffers
        # (and the final span count reflects one sweep, not N).
        import gc

        times, results = [], None
        for _ in range(rounds):
            if reset:
                obs.reset_all()
            gc.collect()
            elapsed, results = _sweep(suite, register_file)
            times.append(elapsed)
        return min(times), results

    t_off, r_off = _best_of()

    obs.TRACER.enable()
    obs.METRICS.enable()
    obs.reset_all()
    try:
        t_on, r_on = _best_of(reset=True)
        spans = len(obs.TRACER)
        counters = len(obs.METRICS.counters)
    finally:
        for layer in (obs.TRACER, obs.METRICS, obs.AUDIT):
            layer.enable(False)
            layer.reset()

    # Recording must never change results, only add bookkeeping.
    assert r_on == r_off
    assert spans > 0 and counters > 0

    overhead = t_on / t_off - 1.0
    # Generous bound: full tracing+metrics stays under 60% on this sweep
    # (measured single-digit percent; the slack absorbs noisy CI boxes).
    assert overhead < 0.60

    record_text(
        "obs_overhead",
        "\n".join(
            [
                "observability overhead (SPECfp, rv2:2, bpc, serial)",
                f"  tracing+metrics off   {t_off:8.3f} s",
                f"  tracing+metrics on    {t_on:8.3f} s",
                f"  overhead              {overhead:8.1%}"
                f"   ({spans} spans, {counters} counters)",
                "  disabled-path cost: one attribute check per emit site;",
                "  outputs are bit-identical with the layer off.",
            ]
        ),
    )

"""Regenerates Table I: suite characteristics (Exes/Mods/Fns/Reles/spills).

Timed unit: one default-RA pipeline run over a representative SPECfp
program on the 32-register platform (the measurement Table I's spill
columns are built from).
"""

from repro.experiments import table1
from repro.experiments.harness import run_program


def test_table1(benchmark, ctx, record_text):
    table = table1(ctx)
    record_text("table1", table.render())

    rows = table.row_map()
    # Shape checks against Table I's structure.
    spec_rows = [name for name in rows if name.startswith("SPECfp.")]
    assert len(spec_rows) == 8
    # povray/dealII are the Reles-heaviest SPECfp benchmarks (allow the
    # per-function lognormal size noise to shuffle them within the top 4).
    reles = {name: rows[name][4] for name in spec_rows}
    top4 = set(sorted(reles, key=reles.get, reverse=True)[:4])
    assert {"SPECfp.453.povray", "SPECfp.447.dealII"} <= top4
    # High-pressure benchmarks spill at 32 registers; lbm/sphinx3 do not.
    assert rows["SPECfp.444.namd"][5] > 0
    assert rows["SPECfp.470.lbm"][5] == 0

    program = ctx.suite("SPECfp").programs[0]
    register_file = ctx.register_file("rv2", 2)
    benchmark(run_program, program, register_file, "non")

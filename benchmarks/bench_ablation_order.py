"""Ablation: conflict-cost ordering (Eq. 1/2) vs Chaitin-style degree
ordering in the RCG coloring work list.

The paper's claim (§III-B): prioritizing by conflict cost "addresses bank
conflict cost before considering RCG colorability", so when colors run
out, the *residual* (weighted) conflict cost is lower than under pure
degree ordering — even when the raw count of uncolored nodes is similar.

Timed unit: one bank assignment pass under each ordering.
"""

from repro.banks import BankedRegisterFile
from repro.experiments import render_table
from repro.prescount import PresCountBankAssigner
from repro.workloads import KernelSpec, generate_kernel


def skewed_kernels(count=12):
    """Kernels with strongly skewed conflict costs (deep nests + cold
    tails), where ordering matters most."""
    kernels = []
    for seed in range(count):
        spec = KernelSpec(
            name=f"skew{seed}",
            seed=seed,
            live_values=10,
            body_ops=30,
            loop_depth=3,
            trip_counts=(4, 10, 25),
            sharing=0.55,
            accumulate=0.25,
        )
        kernels.append(generate_kernel(spec))
    return kernels


def test_ablation_cost_ordering(benchmark, record_text):
    register_file = BankedRegisterFile(64, 2)
    kernels = skewed_kernels()

    residuals = {"cost-order": 0.0, "degree-order": 0.0}
    for kernel in kernels:
        for label, cost_ordering in (("cost-order", True), ("degree-order", False)):
            assigner = PresCountBankAssigner(
                register_file, cost_ordering=cost_ordering
            )
            assignment = assigner.assign(kernel)
            residuals[label] += assignment.residual_cost

    text = render_table(
        "Ablation: RCG coloring order (residual weighted conflict cost, "
        f"{len(kernels)} kernels, 2 banks)",
        ["ordering", "residual cost"],
        [[k, round(v, 1)] for k, v in residuals.items()],
    )
    record_text("ablation_order", text)

    # Cost ordering must not be worse than degree ordering in aggregate.
    assert residuals["cost-order"] <= residuals["degree-order"] + 1e-9

    assigner = PresCountBankAssigner(register_file)
    benchmark(assigner.assign, kernels[0])

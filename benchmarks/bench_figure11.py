"""Regenerates Figure 11: RV#2 dynamic conflicts per benchmark.

Paper shape: dynamic conflict instances on the 32-register platform fall
under both bcr and bpc at 2 and 4 banks, with the reductions most visible
on gromacs/dealII-class benchmarks; dynamic totals sit below static ones
because only part of each program executes.

Timed unit: the dynamic-conflict estimator over one allocated SPECfp
program.
"""

from repro.experiments import figure11
from repro.sim import estimate_dynamic_conflicts


def test_figure11(benchmark, ctx, record_text):
    figure = figure11(ctx)
    record_text("figure11", figure.render())

    spec_names = [p.name for p in ctx.suite("SPECfp").programs]
    heavy = max(spec_names, key=lambda b: figure.series[f"{b}/2/non"])
    # Shape 1: the methods reduce (or at worst match) dynamic conflicts
    # on heavy benchmarks; small scales can leave the heaviest benchmark
    # marginally above 1 on the site metric.
    assert figure.series[f"{heavy}/2/bpc"] <= 1.05
    # Shape 2: baseline dynamic conflicts shrink with more banks.
    assert (
        figure.series[f"{heavy}/4/non"] <= figure.series[f"{heavy}/2/non"]
    )

    # Timed unit.
    from repro.prescount import PipelineConfig, run_pipeline

    register_file = ctx.register_file("rv2", 2)
    fn = ctx.suite("SPECfp").programs[0].functions()[0]
    allocated = run_pipeline(fn, PipelineConfig(register_file, "non")).function
    benchmark(estimate_dynamic_conflicts, allocated, register_file)

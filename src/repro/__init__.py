"""PresCount reproduction: bank-conflict-aware register allocation.

Reproduces "PresCount: Effective Register Allocation for Bank Conflict
Reduction" (CGO 2024) as a pure-Python compiler stack:

* :mod:`repro.ir` — machine IR (builder, CFG, loops, printer/parser);
* :mod:`repro.analysis` — liveness, live intervals, RIG, RCG, conflict
  costs (Eq. 1/2), bank pressure, SDG;
* :mod:`repro.banks` — banked and bank-subgroup register files (Fig. 6);
* :mod:`repro.alloc` — the greedy allocator (plus linear-scan and
  Chaitin-Briggs baselines), coalescing, scheduling, split/spill;
* :mod:`repro.passes` — pass manager and cached analyses with precise
  preserved-set invalidation (the Fig. 4 phases run as passes);
* :mod:`repro.prescount` — the contribution: Algorithm 1 bank assignment,
  Algorithm 2 subgroup hints, SDG splitting, the Fig. 4 pipeline;
* :mod:`repro.sim` — static conflict stats, dynamic execution, the DSA
  VLIW cycle model, platform definitions;
* :mod:`repro.workloads` — seeded SPECfp / CNN-KERNEL / DSA-OP suites;
* :mod:`repro.experiments` — regeneration of every paper table & figure.

Quickstart::

    from repro.ir import IRBuilder
    from repro.banks import BankedRegisterFile
    from repro.prescount import PipelineConfig, run_pipeline
    from repro.sim import analyze_static

    b = IRBuilder("kernel")
    x, y = b.const(1.0), b.const(2.0)
    with b.loop(trip_count=64):
        t = b.arith("fmul", x, y)
        y = b.arith("fadd", t, y)
    b.ret(y)

    rf = BankedRegisterFile(num_registers=32, num_banks=2)
    result = run_pipeline(b.finish(), PipelineConfig(rf, method="bpc"))
    print(analyze_static(result.function, rf).bank_conflicts)
"""

__version__ = "1.0.0"

from . import (
    alloc,
    analysis,
    banks,
    experiments,
    ir,
    passes,
    prescount,
    sim,
    workloads,
)

__all__ = [
    "alloc",
    "analysis",
    "banks",
    "experiments",
    "ir",
    "passes",
    "prescount",
    "sim",
    "workloads",
    "__version__",
]

"""Register file bank models and bank/subgroup assignment result types."""

from .assignment import BankAssignment, SubgroupAssignment
from .register_file import (
    BankedRegisterFile,
    BankSubgroupRegisterFile,
    RegisterFile,
)

__all__ = [
    "BankAssignment",
    "BankSubgroupRegisterFile",
    "BankedRegisterFile",
    "RegisterFile",
    "SubgroupAssignment",
]

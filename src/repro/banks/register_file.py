"""Banked register file descriptions.

Two designs from the paper:

* :class:`BankedRegisterFile` — an N-way *interleaved* file (§II-A):
  physical register ``r`` belongs to bank ``r mod num_banks``.  Platform-RV
  Setting #1 uses 1024 registers in 2/4/8 banks; Setting #2 uses the
  riscv-64 budget of 32 registers in 2/4 banks.

* :class:`BankSubgroupRegisterFile` — the DSA's two-level design (Fig. 6):
  ``bank = (r mod (num_banks * num_subgroups)) div num_subgroups`` and
  ``subgroup = r mod num_subgroups``; the paper's instance is 2 banks x 4
  subgroups.  Besides the bank-conflict constraint it imposes *subgroup
  alignment*: all operands of an instruction must share a subgroup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.types import FP, PhysicalRegister, RegClass


@dataclass(frozen=True)
class BankedRegisterFile:
    """An interleaved multi-banked register file for one register class."""

    num_registers: int
    num_banks: int
    regclass: RegClass = FP

    def __post_init__(self):
        if self.num_registers < 1:
            raise ValueError("num_registers must be positive")
        if self.num_banks < 1:
            raise ValueError("num_banks must be positive")
        if self.num_registers % self.num_banks != 0:
            raise ValueError(
                f"{self.num_registers} registers do not divide evenly into "
                f"{self.num_banks} banks"
            )

    # ------------------------------------------------------------------
    @property
    def registers_per_bank(self) -> int:
        return self.num_registers // self.num_banks

    def bank_of(self, reg: PhysicalRegister | int) -> int:
        """Bank number of a physical register (interleaved decoding)."""
        index = reg.index if isinstance(reg, PhysicalRegister) else reg
        return index % self.num_banks

    def registers(self) -> list[PhysicalRegister]:
        """All physical registers, in index order."""
        return [PhysicalRegister(i, self.regclass) for i in range(self.num_registers)]

    def registers_in_bank(self, bank: int) -> list[PhysicalRegister]:
        if not 0 <= bank < self.num_banks:
            raise ValueError(f"bank {bank} out of range [0, {self.num_banks})")
        return [
            PhysicalRegister(i, self.regclass)
            for i in range(bank, self.num_registers, self.num_banks)
        ]

    def subgroup_of(self, reg: PhysicalRegister | int) -> int:
        """Flat files have a single subgroup; provided for API symmetry."""
        return 0

    @property
    def num_subgroups(self) -> int:
        return 1

    def describe(self) -> str:
        return (
            f"{self.num_registers} x {self.regclass.name} registers, "
            f"{self.num_banks}-banked ({self.registers_per_bank}/bank)"
        )


@dataclass(frozen=True)
class BankSubgroupRegisterFile:
    """The DSA's two-level bank-subgroup register file (Fig. 6).

    With ``B`` banks and ``S`` subgroups, register ``r`` decodes as::

        bank_number     = (r mod (B * S)) div S
        subgroup_number =  r mod S

    (The paper states the 2x4 instance as ``bank = (r mod 8) div 4`` and
    ``subgroup = r mod 4``.)
    """

    num_registers: int
    num_banks: int = 2
    num_subgroups: int = 4
    regclass: RegClass = FP

    def __post_init__(self):
        period = self.num_banks * self.num_subgroups
        if self.num_registers % period != 0:
            raise ValueError(
                f"{self.num_registers} registers do not divide evenly into "
                f"a {self.num_banks}x{self.num_subgroups} bank-subgroup layout"
            )

    # ------------------------------------------------------------------
    @property
    def registers_per_bank(self) -> int:
        return self.num_registers // self.num_banks

    def bank_of(self, reg: PhysicalRegister | int) -> int:
        index = reg.index if isinstance(reg, PhysicalRegister) else reg
        period = self.num_banks * self.num_subgroups
        return (index % period) // self.num_subgroups

    def subgroup_of(self, reg: PhysicalRegister | int) -> int:
        index = reg.index if isinstance(reg, PhysicalRegister) else reg
        return index % self.num_subgroups

    def displacement_of(self, reg: PhysicalRegister | int) -> int:
        """Alias for :meth:`subgroup_of`: Algorithm 2 calls the shared
        subgroup number a *displacement*."""
        return self.subgroup_of(reg)

    def registers(self) -> list[PhysicalRegister]:
        return [PhysicalRegister(i, self.regclass) for i in range(self.num_registers)]

    def registers_in_bank(self, bank: int) -> list[PhysicalRegister]:
        return [r for r in self.registers() if self.bank_of(r) == bank]

    def registers_conforming(self, bank: int, subgroup: int) -> list[PhysicalRegister]:
        """``FindAllRegistersConforming`` of Algorithm 2: the physical
        registers in *bank* whose subgroup number is *subgroup*."""
        return [
            r
            for r in self.registers()
            if self.bank_of(r) == bank and self.subgroup_of(r) == subgroup
        ]

    def describe(self) -> str:
        return (
            f"{self.num_registers} x {self.regclass.name} registers, "
            f"{self.num_banks}x{self.num_subgroups} bank-subgrouped"
        )


RegisterFile = BankedRegisterFile | BankSubgroupRegisterFile
"""Either register file design; allocators accept the union."""

"""Bank assignment results.

A :class:`BankAssignment` is the output of the RCG-based bank assignment
phase: a mapping from virtual registers to bank numbers, plus bookkeeping
(which registers were uncolorable and carry an expected residual conflict
cost).  The enhanced register allocator consumes it as an ordering
constraint on the physical registers it tries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.types import VirtualRegister


@dataclass
class BankAssignment:
    """vreg -> bank decisions from a bank assigner.

    Attributes:
        num_banks: Bank count of the target register file.
        banks: The assignment proper.
        uncolorable: Registers that received a conflicting color (no bank
            was conflict-free when they were processed); their conflicts
            are expected residual cost, not allocator error.
        residual_cost: Summed Cost_I of RCG edges left monochromatic.
        strict: When True the allocator must not place the register
            outside its bank (DSA semantics); when False the bank is a
            strong preference (RV platform semantics) and the allocator
            may fall back to another bank instead of spilling.
    """

    num_banks: int
    banks: dict[VirtualRegister, int] = field(default_factory=dict)
    uncolorable: set[VirtualRegister] = field(default_factory=set)
    residual_cost: float = 0.0
    strict: bool = False

    def bank_of(self, reg: VirtualRegister) -> int | None:
        return self.banks.get(reg)

    def assign(self, reg: VirtualRegister, bank: int) -> None:
        if not 0 <= bank < self.num_banks:
            raise ValueError(f"bank {bank} out of range [0, {self.num_banks})")
        self.banks[reg] = bank

    def bank_histogram(self) -> list[int]:
        """Number of registers assigned to each bank (balance diagnostic)."""
        histogram = [0] * self.num_banks
        for bank in self.banks.values():
            histogram[bank] += 1
        return histogram

    def __contains__(self, reg: VirtualRegister) -> bool:
        return reg in self.banks

    def __len__(self) -> int:
        return len(self.banks)


@dataclass
class SubgroupAssignment:
    """vreg -> subgroup displacement decisions (Algorithm 2 bookkeeping).

    ``group_displacements`` maps an SDG component id to its chosen
    displacement; ``displacement_of`` resolves individual registers
    through their component.
    """

    num_subgroups: int
    displacements: dict[VirtualRegister, int] = field(default_factory=dict)
    #: displacement -> total registers steered there (MinUsed bookkeeping).
    usage: dict[int, int] = field(default_factory=dict)

    def displacement_of(self, reg: VirtualRegister) -> int | None:
        return self.displacements.get(reg)

    def assign(self, reg: VirtualRegister, displacement: int) -> None:
        if not 0 <= displacement < self.num_subgroups:
            raise ValueError(
                f"displacement {displacement} out of range [0, {self.num_subgroups})"
            )
        self.displacements[reg] = displacement
        self.usage[displacement] = self.usage.get(displacement, 0) + 1

    def min_used(self) -> int:
        """``MinUsed(ALLSUBGROUPS)``: the least-utilized displacement."""
        return min(range(self.num_subgroups), key=lambda d: (self.usage.get(d, 0), d))

    def __contains__(self, reg: VirtualRegister) -> bool:
        return reg in self.displacements

    def __len__(self) -> int:
        return len(self.displacements)

"""Per-pass instrumentation: wall time, analysis cache traffic, IR deltas.

:data:`GLOBAL` is a process-wide registry, disabled by default.  When
enabled (``repro --pass-stats`` or :meth:`InstrumentationRegistry.enable`)
the :class:`~repro.passes.manager.FunctionPassManager` records one
:class:`PassStats` row per pass execution and every
:class:`~repro.passes.analysis_manager.AnalysisManager` forwards its cache
events, so a whole experiment run can be summarized afterwards with
:meth:`InstrumentationRegistry.render`.

Registries are picklable via :meth:`snapshot` / :meth:`merge`, which is
how the experiment harness folds worker-process stats back into the
parent when running with ``--jobs N``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PassStats:
    """Aggregated execution statistics of one pass kind."""

    runs: int = 0
    seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    invalidations: int = 0
    #: Net instruction-count change the pass applied to its functions.
    instructions_delta: int = 0

    def record(
        self,
        seconds: float,
        hits: int,
        misses: int,
        invalidations: int,
        instructions_delta: int,
    ) -> None:
        self.runs += 1
        self.seconds += seconds
        self.cache_hits += hits
        self.cache_misses += misses
        self.invalidations += invalidations
        self.instructions_delta += instructions_delta


@dataclass
class AnalysisStats:
    """Aggregated cache traffic of one analysis kind."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


@dataclass
class InstrumentationRegistry:
    """Collects pass and analysis statistics across pipeline runs."""

    enabled: bool = False
    passes: dict[str, PassStats] = field(default_factory=dict)
    analyses: dict[str, AnalysisStats] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def enable(self, on: bool = True) -> None:
        self.enabled = on

    def reset(self) -> None:
        self.passes.clear()
        self.analyses.clear()

    # ------------------------------------------------------------------
    def record_pass(
        self,
        name: str,
        seconds: float,
        hits: int = 0,
        misses: int = 0,
        invalidations: int = 0,
        instructions_delta: int = 0,
    ) -> None:
        self.passes.setdefault(name, PassStats()).record(
            seconds, hits, misses, invalidations, instructions_delta
        )

    def record_analysis(
        self, name: str, hit: bool = False, invalidated: bool = False
    ) -> None:
        stats = self.analyses.setdefault(name, AnalysisStats())
        if invalidated:
            stats.invalidations += 1
        elif hit:
            stats.hits += 1
        else:
            stats.misses += 1

    # ------------------------------------------------------------------
    # Pool-safe aggregation
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict copy of all counters (picklable across processes)."""
        return {
            "passes": {
                name: {
                    "runs": p.runs,
                    "seconds": p.seconds,
                    "cache_hits": p.cache_hits,
                    "cache_misses": p.cache_misses,
                    "invalidations": p.invalidations,
                    "instructions_delta": p.instructions_delta,
                }
                for name, p in self.passes.items()
            },
            "analyses": {
                name: {
                    "hits": a.hits,
                    "misses": a.misses,
                    "invalidations": a.invalidations,
                }
                for name, a in self.analyses.items()
            },
        }

    def merge(self, snapshot: dict | None) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) into self."""
        if not snapshot:
            return
        for name, p in snapshot.get("passes", {}).items():
            stats = self.passes.setdefault(name, PassStats())
            stats.runs += p["runs"]
            stats.seconds += p["seconds"]
            stats.cache_hits += p["cache_hits"]
            stats.cache_misses += p["cache_misses"]
            stats.invalidations += p["invalidations"]
            stats.instructions_delta += p["instructions_delta"]
        for name, a in snapshot.get("analyses", {}).items():
            stats = self.analyses.setdefault(name, AnalysisStats())
            stats.hits += a["hits"]
            stats.misses += a["misses"]
            stats.invalidations += a["invalidations"]

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable two-part summary table."""
        lines = ["pass statistics"]
        if self.passes:
            header = (
                f"  {'pass':<18} {'runs':>6} {'seconds':>9} {'hits':>7} "
                f"{'misses':>7} {'inval':>7} {'d-instrs':>9}"
            )
            lines.append(header)
            for name, p in sorted(
                self.passes.items(), key=lambda kv: -kv[1].seconds
            ):
                lines.append(
                    f"  {name:<18} {p.runs:>6} {p.seconds:>9.3f} "
                    f"{p.cache_hits:>7} {p.cache_misses:>7} "
                    f"{p.invalidations:>7} {p.instructions_delta:>+9}"
                )
        else:
            lines.append("  (no passes recorded)")
        lines.append("analysis cache")
        if self.analyses:
            lines.append(
                f"  {'analysis':<18} {'hits':>7} {'misses':>7} "
                f"{'inval':>7} {'hit rate':>9}"
            )
            for name, a in sorted(self.analyses.items()):
                lines.append(
                    f"  {name:<18} {a.hits:>7} {a.misses:>7} "
                    f"{a.invalidations:>7} {a.hit_rate:>8.1%}"
                )
        else:
            lines.append("  (no analyses recorded)")
        return "\n".join(lines)


#: The process-wide registry ``--pass-stats`` enables.
GLOBAL = InstrumentationRegistry()

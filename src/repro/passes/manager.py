"""Function passes and the pass manager that sequences them.

A :class:`Pass` is one unit of transformation (or pure computation) over a
:class:`~repro.ir.function.Function`.  The
:class:`FunctionPassManager` runs a pass list in order, threading one
shared :class:`~repro.passes.analysis_manager.AnalysisManager` through all
of them, applying each pass's :meth:`Pass.preserved` set afterwards, and
recording per-pass instrumentation when enabled.

Passes communicate through the *state* mapping: the manager stores each
pass's return value under its ``name`` (e.g. the RCG bank-assignment pass
publishes the :class:`~repro.banks.assignment.BankAssignment` the
allocation pass consumes), mirroring how the paper's phases hand artifacts
down the Fig. 4 pipeline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..ir.function import Function
from ..obs import METRICS, TRACER
from .analysis_manager import PRESERVE_NONE, AnalysisManager, CFGAnalysis
from .instrument import GLOBAL, InstrumentationRegistry


def _potential_cost(
    function: Function,
    pass_: "Pass",
    freq_cache: list | None = None,
    am: "AnalysisManager | None" = None,
) -> float:
    """Total Eq. 2 conflict cost of *function*'s current state.

    Only computed while ``--metrics`` is on; the per-phase difference is
    recorded as ``phase.cost_delta.<pass>``.  Computed directly (not
    through the analysis manager) so metrics collection never perturbs
    the ``--pass-stats`` cache counters, and via the scalar
    :func:`~repro.analysis.cost.total_potential_cost` fold so it never
    allocates the full cost model's per-register dicts.

    *freq_cache* is a caller-owned ``[signature, frequencies, cfg]``
    triple: block frequencies depend only on the CFG edge shape and
    trip-count metadata (:func:`~repro.analysis.cost.loop_shape_signature`),
    so the loop analysis is rebuilt only when a pass actually
    restructures control flow — most passes rewrite instructions in
    place, and for them the cached frequency map makes costing a plain
    fold.  The third slot remembers the identity of *am*'s cached CFG
    analysis: while the exact same CFG object stays cached, no pass can
    have restructured control flow (any that did must invalidate it),
    so even the signature walk is skipped.
    """
    from ..analysis.cost import (
        block_frequencies,
        loop_shape_signature,
        total_potential_cost,
    )

    regclass = getattr(getattr(pass_, "config", None), "regclass", None)
    if freq_cache is None:
        return total_potential_cost(function, regclass=regclass)
    cfg = am.cached(CFGAnalysis) if am is not None else None
    if cfg is None or cfg is not freq_cache[2]:
        signature = loop_shape_signature(function)
        if freq_cache[0] != signature:
            freq_cache[0] = signature
            freq_cache[1] = block_frequencies(function)
        freq_cache[2] = cfg
    return total_potential_cost(
        function, regclass=regclass, frequencies=freq_cache[1]
    )


class Pass:
    """Base class for function passes.

    Subclasses set :attr:`name` (unique within a pipeline; it is the key
    their result is published under) and implement :meth:`run`.  A pass
    that manages invalidation itself — because it mutates and re-analyzes
    iteratively — returns ``PRESERVE_ALL`` from :meth:`preserved` and
    calls :meth:`AnalysisManager.invalidate` inline instead.
    """

    name: str = "pass"

    #: Whether :meth:`run` can change the function's Eq. 2 conflict cost.
    #: Purely analytical passes (no IR mutation) and pure reorderings
    #: (the cost fold is order-independent within a block) set this True
    #: so the manager reuses the pre-pass cost for their
    #: ``phase.cost_delta`` metric — zero by construction — instead of
    #: re-folding it.
    cost_neutral: bool = False

    def run(self, function: Function, am: AnalysisManager, state: dict):
        """Transform *function* (in place); the return value is published
        in the pipeline state under :attr:`name`."""
        raise NotImplementedError

    def preserved(self, result):
        """Analyses still valid after :meth:`run` returned *result*.

        The default is maximally conservative: nothing survives.
        """
        return PRESERVE_NONE

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


@dataclass
class FunctionPassManager:
    """Runs passes over one function with a shared analysis cache."""

    passes: list[Pass] = field(default_factory=list)
    #: Explicit registry; None falls back to the global one when enabled.
    instrumentation: InstrumentationRegistry | None = None

    def add(self, pass_: Pass) -> "FunctionPassManager":
        self.passes.append(pass_)
        return self

    def _registry(self) -> InstrumentationRegistry | None:
        if self.instrumentation is not None:
            return self.instrumentation
        return GLOBAL if GLOBAL.enabled else None

    def run(
        self,
        function: Function,
        am: AnalysisManager | None = None,
        state: dict | None = None,
    ) -> dict:
        """Run all passes in order; returns the pipeline state mapping."""
        if am is None:
            am = AnalysisManager(function)
        if am.function is not function:
            raise ValueError(
                "analysis manager is bound to a different function "
                f"({am.function!r} vs {function!r})"
            )
        state = state if state is not None else {}
        registry = self._registry()
        metrics = METRICS if METRICS.enabled else None
        # The function only mutates inside passes, so the cost computed
        # *after* pass N is still exact *before* pass N+1: cache it across
        # phases (keyed by the costing regclass) instead of rebuilding the
        # cost model twice per pass — this halves the --metrics overhead.
        carried_cost: tuple[object, float] | None = None
        # Block-frequency cache for the costing above: [signature, freqs],
        # threaded through _potential_cost so loop analysis reruns only
        # when a pass changes the CFG shape (see loop_shape_signature).
        freq_cache: list = [None, None, None]
        for pass_ in self.passes:
            if registry is not None:
                hits0 = am.total_hits()
                misses0 = am.total_misses()
                inval0 = am.total_invalidations()
                instrs0 = function.instruction_count()
            if metrics is not None:
                regclass = getattr(
                    getattr(pass_, "config", None), "regclass", None
                )
                if carried_cost is not None and carried_cost[0] == regclass:
                    cost0 = carried_cost[1]
                else:
                    cost0 = _potential_cost(function, pass_, freq_cache, am)
            started = time.perf_counter()
            with TRACER.span(pass_.name, category="pass", function=function.name):
                result = pass_.run(function, am, state)
            elapsed = time.perf_counter() - started
            am.invalidate(pass_.preserved(result))
            state[pass_.name] = result
            if registry is not None:
                registry.record_pass(
                    pass_.name,
                    elapsed,
                    hits=am.total_hits() - hits0,
                    misses=am.total_misses() - misses0,
                    invalidations=am.total_invalidations() - inval0,
                    instructions_delta=function.instruction_count() - instrs0,
                )
            if metrics is not None:
                if pass_.cost_neutral:
                    cost1 = cost0
                else:
                    cost1 = _potential_cost(function, pass_, freq_cache, am)
                carried_cost = (regclass, cost1)
                metrics.observe_many(
                    [
                        (f"pass.seconds.{pass_.name}", elapsed),
                        (f"phase.cost_delta.{pass_.name}", cost1 - cost0),
                    ]
                )
        return state

"""Pass-manager infrastructure: passes, cached analyses, instrumentation.

The Fig. 4 pipeline phases are expressed as :class:`Pass` objects run by a
:class:`FunctionPassManager`; the :class:`AnalysisManager` lazily computes
and caches the analyses they share (liveness, live intervals, the RCG,
loop info, ...) and invalidates precisely what each transform fails to
preserve.  See :mod:`repro.prescount.passes` for the concrete phase
passes and :mod:`repro.passes.instrument` for ``--pass-stats``.
"""

from .analysis_manager import (
    ALL_ANALYSES,
    CFG_ONLY,
    PRESERVE_ALL,
    PRESERVE_NONE,
    Analysis,
    AnalysisCounters,
    AnalysisManager,
    CFGAnalysis,
    ConflictCostAnalysis,
    ConflictGraphAnalysis,
    FlatIRAnalysis,
    InterferenceAnalysis,
    LiveIntervalsAnalysis,
    LivenessAnalysis,
    LoopInfoAnalysis,
    SDGAnalysis,
    SlotIndexesAnalysis,
    caching_disabled,
)
from .instrument import GLOBAL, AnalysisStats, InstrumentationRegistry, PassStats
from .manager import FunctionPassManager, Pass

__all__ = [
    "ALL_ANALYSES",
    "Analysis",
    "AnalysisCounters",
    "AnalysisManager",
    "AnalysisStats",
    "CFGAnalysis",
    "CFG_ONLY",
    "ConflictCostAnalysis",
    "ConflictGraphAnalysis",
    "FlatIRAnalysis",
    "FunctionPassManager",
    "GLOBAL",
    "InstrumentationRegistry",
    "InterferenceAnalysis",
    "LiveIntervalsAnalysis",
    "LivenessAnalysis",
    "LoopInfoAnalysis",
    "PRESERVE_ALL",
    "PRESERVE_NONE",
    "Pass",
    "PassStats",
    "SDGAnalysis",
    "SlotIndexesAnalysis",
    "caching_disabled",
]

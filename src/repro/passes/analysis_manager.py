"""Cached function analyses with precise invalidation.

A miniature of LLVM's ``AnalysisManager``: transform passes request the
analyses they need through :meth:`AnalysisManager.get`, results are
computed lazily and cached per ``(analysis class, parameters)`` key, and
after a transform runs only the analyses it did *not* preserve are
dropped.  An analysis is preserved only when every analysis it is derived
from is preserved too (dropping :class:`LivenessAnalysis` transitively
drops :class:`LiveIntervalsAnalysis`).

The manager is bound to exactly one :class:`~repro.ir.function.Function`
object — the mutable IR the Fig. 4 pipeline transforms in place — and
keeps per-analysis hit/miss/invalidation counters so the cache's
effectiveness is measurable (``--pass-stats``,
``benchmarks/bench_pass_overhead.py``).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from ..analysis.conflict_graph import ConflictGraph
from ..analysis.cost import ConflictCostModel
from ..analysis.interference import InterferenceGraph
from ..analysis.intervals import LiveIntervals
from ..analysis.liveness import Liveness
from ..analysis.sdg import SameDisplacementGraph
from ..analysis.slots import SlotIndexes
from ..ir.cfg import CFG
from ..ir.flat import FlatFunction
from ..ir.flat import enabled as _flat_enabled
from ..ir.function import Function
from ..ir.loops import LoopInfo
from ..obs import TRACER


class _PreserveAll:
    """Sentinel: the transform changed nothing the cache can observe."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "PRESERVE_ALL"


#: Pass this to :meth:`AnalysisManager.invalidate` to keep every analysis.
PRESERVE_ALL = _PreserveAll()
#: The safe default: every cached analysis is dropped.
PRESERVE_NONE: frozenset = frozenset()
#: Analyses that only depend on block structure (labels, terminators,
#: ``trip_count`` metadata) — preserved by passes that rewrite operands or
#: reorder/insert instructions without touching the block graph.
CFG_ONLY: frozenset = None  # filled in below, after the classes exist


class Analysis:
    """One cacheable analysis kind.

    Subclasses wrap an existing ``X.build(function, ...)`` constructor and
    declare, via :attr:`depends`, which other analyses the result is
    derived from.  Keyword parameters passed to
    :meth:`AnalysisManager.get` become part of the cache key, so e.g. the
    FP and the unrestricted conflict cost models cache independently.
    """

    #: Analyses whose cached results feed this one.  A preserved analysis
    #: whose dependency is invalidated is invalidated as well.
    depends: tuple[type["Analysis"], ...] = ()

    @classmethod
    def name(cls) -> str:
        suffix = "Analysis"
        n = cls.__name__
        return n[: -len(suffix)] if n.endswith(suffix) else n

    @classmethod
    def run(cls, function: Function, am: "AnalysisManager", **params):
        raise NotImplementedError


class CFGAnalysis(Analysis):
    """Control-flow graph (:class:`repro.ir.cfg.CFG`)."""

    @classmethod
    def run(cls, function: Function, am: "AnalysisManager") -> CFG:
        return CFG.build(function)


class FlatIRAnalysis(Analysis):
    """Flat-array lowering (:class:`repro.ir.flat.FlatFunction`).

    The snapshot goes stale on any operand rewrite or instruction
    insertion, so it is deliberately *not* in :data:`CFG_ONLY`: every
    transform invalidation drops it alongside the analyses derived from
    it.
    """

    @classmethod
    def run(cls, function: Function, am: "AnalysisManager") -> FlatFunction:
        return FlatFunction(function)


def _flat_for(am: "AnalysisManager") -> FlatFunction | None:
    """The shared flat lowering when ``REPRO_FAST`` is active, else None.

    Analyses receive this as their ``flat=`` argument; passing None keeps
    them on the original object-graph implementation.
    """
    return am.get(FlatIRAnalysis) if _flat_enabled() else None


class SlotIndexesAnalysis(Analysis):
    """Linear instruction numbering (:class:`repro.analysis.slots.SlotIndexes`)."""

    @classmethod
    def run(cls, function: Function, am: "AnalysisManager") -> SlotIndexes:
        return SlotIndexes.build(function)


class LivenessAnalysis(Analysis):
    """Block-level live-in/out sets (:class:`repro.analysis.liveness.Liveness`)."""

    depends = (CFGAnalysis, FlatIRAnalysis)

    @classmethod
    def run(cls, function: Function, am: "AnalysisManager") -> Liveness:
        return Liveness.build(function, am.get(CFGAnalysis), flat=_flat_for(am))


class LoopInfoAnalysis(Analysis):
    """Loop forest and block frequencies (:class:`repro.ir.loops.LoopInfo`)."""

    depends = (CFGAnalysis,)

    @classmethod
    def run(cls, function: Function, am: "AnalysisManager") -> LoopInfo:
        return LoopInfo.build(function, am.get(CFGAnalysis))


class LiveIntervalsAnalysis(Analysis):
    """Per-register live intervals (:class:`repro.analysis.intervals.LiveIntervals`)."""

    depends = (CFGAnalysis, SlotIndexesAnalysis, LivenessAnalysis, FlatIRAnalysis)

    @classmethod
    def run(cls, function: Function, am: "AnalysisManager") -> LiveIntervals:
        return LiveIntervals.build(
            function,
            am.get(CFGAnalysis),
            am.get(SlotIndexesAnalysis),
            am.get(LivenessAnalysis),
            flat=_flat_for(am),
        )


class ConflictCostAnalysis(Analysis):
    """Eq. 1/2 conflict cost model (:class:`repro.analysis.cost.ConflictCostModel`)."""

    depends = (LoopInfoAnalysis, FlatIRAnalysis)

    @classmethod
    def run(
        cls,
        function: Function,
        am: "AnalysisManager",
        regclass=None,
        conflict_relevant_only: bool = True,
    ) -> ConflictCostModel:
        return ConflictCostModel.build(
            function,
            am.get(LoopInfoAnalysis),
            regclass=regclass,
            conflict_relevant_only=conflict_relevant_only,
            flat=_flat_for(am),
        )


class ConflictGraphAnalysis(Analysis):
    """The RCG (:class:`repro.analysis.conflict_graph.ConflictGraph`)."""

    depends = (ConflictCostAnalysis, FlatIRAnalysis)

    @classmethod
    def run(
        cls, function: Function, am: "AnalysisManager", regclass=None
    ) -> ConflictGraph:
        cost_model = am.get(ConflictCostAnalysis, regclass=regclass)
        return ConflictGraph.build(function, cost_model, regclass, flat=_flat_for(am))


class InterferenceAnalysis(Analysis):
    """The RIG (:class:`repro.analysis.interference.InterferenceGraph`)."""

    depends = (LiveIntervalsAnalysis,)

    @classmethod
    def run(
        cls, function: Function, am: "AnalysisManager", regclass=None
    ) -> InterferenceGraph:
        return InterferenceGraph.build(
            function, am.get(LiveIntervalsAnalysis), regclass
        )


class SDGAnalysis(Analysis):
    """Same Displacement Graph (:class:`repro.analysis.sdg.SameDisplacementGraph`)."""

    depends = (FlatIRAnalysis,)

    @classmethod
    def run(
        cls, function: Function, am: "AnalysisManager", regclass=None
    ) -> SameDisplacementGraph:
        return SameDisplacementGraph.build(function, regclass, flat=_flat_for(am))


CFG_ONLY = frozenset({CFGAnalysis, LoopInfoAnalysis})

#: Every built-in analysis, for registries and documentation.
ALL_ANALYSES: tuple[type[Analysis], ...] = (
    CFGAnalysis,
    FlatIRAnalysis,
    SlotIndexesAnalysis,
    LivenessAnalysis,
    LoopInfoAnalysis,
    LiveIntervalsAnalysis,
    ConflictCostAnalysis,
    ConflictGraphAnalysis,
    InterferenceAnalysis,
    SDGAnalysis,
)


@dataclass
class AnalysisCounters:
    """Cache effectiveness counters of one analysis kind."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


#: Process-wide default for new managers; flipped by :func:`caching_disabled`
#: so benchmarks can measure the legacy rebuild-everything behaviour.
_DEFAULT_CACHING = True


@contextmanager
def caching_disabled():
    """Context manager: new :class:`AnalysisManager` objects recompute on
    every request (the pre-pass-manager behaviour), for A/B timing."""
    global _DEFAULT_CACHING
    previous = _DEFAULT_CACHING
    _DEFAULT_CACHING = False
    try:
        yield
    finally:
        _DEFAULT_CACHING = previous


class AnalysisManager:
    """Lazily computes and caches analyses for one function."""

    def __init__(self, function: Function, caching: bool | None = None):
        self.function = function
        self.caching = _DEFAULT_CACHING if caching is None else caching
        self._cache: dict[tuple, object] = {}
        self.counters: dict[str, AnalysisCounters] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _key(analysis: type[Analysis], params: dict) -> tuple:
        return (analysis, tuple(sorted(params.items())))

    def counter(self, analysis: type[Analysis]) -> AnalysisCounters:
        return self.counters.setdefault(analysis.name(), AnalysisCounters())

    def get(self, analysis: type[Analysis], **params):
        """The cached result of *analysis*, computing it on first request."""
        key = self._key(analysis, params)
        counter = self.counter(analysis)
        if key in self._cache:
            counter.hits += 1
            self._record_event(analysis, hit=True)
            return self._cache[key]
        counter.misses += 1
        self._record_event(analysis, hit=False)
        with TRACER.span(
            analysis.name(), category="analysis", function=self.function.name
        ):
            result = analysis.run(self.function, self, **params)
        if self.caching:
            self._cache[key] = result
        return result

    def cached(self, analysis: type[Analysis], **params):
        """Peek: the cached result or None, without computing (no counters)."""
        return self._cache.get(self._key(analysis, params))

    # ------------------------------------------------------------------
    def invalidate(self, preserved=PRESERVE_NONE) -> int:
        """Drop every cached analysis not (transitively) in *preserved*.

        Returns the number of cache entries dropped.  ``PRESERVE_ALL``
        keeps everything; the default drops everything.
        """
        if preserved is PRESERVE_ALL:
            return 0
        preserved_set = frozenset(preserved)
        survives: dict[type[Analysis], bool] = {}

        def _survives(cls: type[Analysis]) -> bool:
            if cls not in survives:
                survives[cls] = cls in preserved_set and all(
                    _survives(dep) for dep in cls.depends
                )
            return survives[cls]

        dropped = 0
        for key in list(self._cache):
            cls = key[0]
            if not _survives(cls):
                del self._cache[key]
                self.counter(cls).invalidations += 1
                self._record_invalidation(cls)
                dropped += 1
        return dropped

    def clear(self) -> None:
        self._cache.clear()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def total_hits(self) -> int:
        return sum(c.hits for c in self.counters.values())

    def total_misses(self) -> int:
        return sum(c.misses for c in self.counters.values())

    def total_invalidations(self) -> int:
        return sum(c.invalidations for c in self.counters.values())

    def stats_snapshot(self) -> dict[str, dict[str, int]]:
        """Plain-dict counter snapshot (picklable, for pool merging)."""
        return {
            name: {
                "hits": c.hits,
                "misses": c.misses,
                "invalidations": c.invalidations,
            }
            for name, c in self.counters.items()
        }

    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, analysis: type[Analysis]) -> bool:
        return any(key[0] is analysis for key in self._cache)

    # ------------------------------------------------------------------
    # Global instrumentation forwarding (only when --pass-stats is on)
    # ------------------------------------------------------------------
    def _record_event(self, analysis: type[Analysis], hit: bool) -> None:
        from .instrument import GLOBAL

        if GLOBAL.enabled:
            GLOBAL.record_analysis(analysis.name(), hit=hit)

    def _record_invalidation(self, analysis: type[Analysis]) -> None:
        from .instrument import GLOBAL

        if GLOBAL.enabled:
            GLOBAL.record_analysis(analysis.name(), invalidated=True)

"""Platform descriptions matching §IV-A2.

* **Platform-RV Setting #1** — 1024 floating-point registers in 2/4/8
  banks (512/256/128 per bank): the register-rich GPU-like setting.
* **Platform-RV Setting #2** — the riscv-64 budget of 32 registers in 2/4
  banks (16/8 per bank): the tight-budget setting, where dynamic conflict
  instances are also collected.
* **Platform-DSA** — 1024 vector registers in the 2x4 bank-subgroup
  layout, plus the plain 2/4/8/16-banked hardware comparison points of
  Table VI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..banks.register_file import BankedRegisterFile, BankSubgroupRegisterFile, RegisterFile
from ..ir.types import FP, RegClass


@dataclass(frozen=True)
class Platform:
    """A named platform with one register file per bank setting."""

    name: str
    files: dict[int, RegisterFile]
    collects_dynamic: bool = False

    def file_for(self, banks: int) -> RegisterFile:
        try:
            return self.files[banks]
        except KeyError:
            raise KeyError(
                f"platform {self.name} has no {banks}-bank setting; "
                f"available: {sorted(self.files)}"
            ) from None

    @property
    def bank_settings(self) -> list[int]:
        return sorted(self.files)


def platform_rv1(regclass: RegClass = FP) -> Platform:
    """Setting #1: 1024 registers, 2/4/8 banks (static statistics)."""
    return Platform(
        name="RV#1",
        files={
            banks: BankedRegisterFile(1024, banks, regclass) for banks in (2, 4, 8)
        },
    )


def platform_rv2(regclass: RegClass = FP) -> Platform:
    """Setting #2: 32 registers (riscv-64 ISA), 2/4 banks (dynamic too)."""
    return Platform(
        name="RV#2",
        files={banks: BankedRegisterFile(32, banks, regclass) for banks in (2, 4)},
        collects_dynamic=True,
    )


def platform_dsa(regclass: RegClass = FP) -> Platform:
    """Platform-DSA: the 2x4 bank-subgroup file under key ``0`` plus the
    plain N-banked comparison hardware under keys 2/4/8/16."""
    files: dict[int, RegisterFile] = {
        0: BankSubgroupRegisterFile(1024, 2, 4, regclass),
    }
    for banks in (2, 4, 8, 16):
        files[banks] = BankedRegisterFile(1024, banks, regclass)
    return Platform(name="DSA", files=files)


#: Key for the bank-subgroup file within :func:`platform_dsa`.
DSA_SUBGROUPED = 0


def interleaved_files(
    num_registers: int, bank_settings: tuple[int, ...] = (2, 4, 8, 16), regclass: RegClass = FP
) -> dict[int, BankedRegisterFile]:
    """N-way interleaved files for the Fig. 1 prevalence experiment."""
    return {
        banks: BankedRegisterFile(num_registers, banks, regclass)
        for banks in bank_settings
    }

"""Dynamic bank-conflict measurement — the QEMU-trace substitute.

The paper runs riscv-64 executables under QEMU and counts executed
instances of conflicting instructions (Platform-RV Setting #2).  Our IR
carries everything needed to do the same without a foreign ISA:

* :class:`DynamicSimulator` — an interpreter that walks the CFG.  Counted
  loops (builder-generated latches) iterate exactly their trip count;
  data-dependent branches draw seeded pseudo-random decisions from their
  ``taken_prob``, standing in for input-dependent behaviour.  Every
  executed instruction contributes its conflict degree.

* :func:`expected_block_frequencies` — a closed-form alternative: solving
  the flow equations ``f(b) = [b == entry] + sum_p f(p) * prob(p -> b)``
  gives expected execution counts (builder latches encode
  ``taken_prob = (t-1)/t``, so a loop body's expected frequency is exactly
  the trip product).  :func:`estimate_dynamic_conflicts` folds the
  per-block conflict degrees through these frequencies; on branch-free
  kernels it agrees with the interpreter exactly, and the experiment
  harness uses it for large suites.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from ..banks.register_file import BankSubgroupRegisterFile, RegisterFile
from ..ir.cfg import CFG
from ..ir.function import Function
from ..ir.instruction import OpKind
from ..ir.types import FP, RegClass
from .static_stats import (
    instruction_bank_conflicts,
    instruction_conflict_details,
    instruction_subgroup_violations,
)


@dataclass
class DynamicStats:
    """Runtime counts from one simulated execution.

    Two conflict measures coexist:

    * ``dynamic_conflicts`` — per-execution *instances* (a conflicting
      instruction in a 1000-trip loop contributes 1000);
    * ``conflicting_sites`` — distinct conflicting instructions that
      executed at least once.  This matches the paper's QEMU-trace
      methodology, where Table IV's dynamic counts sit *below* the static
      ones because unexecuted code contributes nothing.
    """

    executed_instructions: int = 0
    executed_conflict_relevant: int = 0
    dynamic_conflicts: int = 0
    dynamic_subgroup_violations: int = 0
    conflicting_sites: float = 0.0
    truncated: bool = False

    @property
    def total_hazards(self) -> int:
        return self.dynamic_conflicts + self.dynamic_subgroup_violations

    def merge(self, other: "DynamicStats") -> "DynamicStats":
        return DynamicStats(
            executed_instructions=self.executed_instructions + other.executed_instructions,
            executed_conflict_relevant=(
                self.executed_conflict_relevant + other.executed_conflict_relevant
            ),
            dynamic_conflicts=self.dynamic_conflicts + other.dynamic_conflicts,
            dynamic_subgroup_violations=(
                self.dynamic_subgroup_violations + other.dynamic_subgroup_violations
            ),
            conflicting_sites=self.conflicting_sites + other.conflicting_sites,
            truncated=self.truncated or other.truncated,
        )


@dataclass
class DynamicSimulator:
    """Interprets an allocated function, counting conflicts as they run.

    Attributes:
        register_file: Decodes register banks (and subgroups on the DSA).
        seed: Seed for data-dependent branch decisions.
        max_instructions: Execution budget; exceeding it sets
            ``truncated`` on the result instead of hanging.
    """

    register_file: RegisterFile
    regclass: RegClass | None = FP
    seed: int = 0
    max_instructions: int = 2_000_000

    def run(self, function: Function) -> DynamicStats:
        from ..obs import PROFILE

        rng = random.Random(self.seed)
        is_dsa = isinstance(self.register_file, BankSubgroupRegisterFile)
        stats = DynamicStats()

        # Per-block conflict degree cache: the decode is loop-invariant.
        conflict_cache: dict[int, tuple[int, int, bool]] = {}

        def decode(instr) -> tuple[int, int, bool]:
            key = id(instr)
            cached = conflict_cache.get(key)
            if cached is None:
                conflicts = instruction_bank_conflicts(
                    instr, self.register_file, self.regclass
                )
                violations = (
                    instruction_subgroup_violations(
                        instr, self.register_file, self.regclass
                    )
                    if is_dsa
                    else 0
                )
                relevant = instr.is_conflict_relevant(self.regclass)
                cached = (conflicts, violations, relevant)
                conflict_cache[key] = cached
            return cached

        # Hotspot attribution (only while profiling): executed instances
        # accumulate in run-local dicts and flush under one lock at exit.
        profiling = PROFILE.enabled
        site_keys: dict[int, list] = {}
        local_counts: dict[int, tuple[float, float]] = {}
        paths: dict[str, tuple[str, ...]] = {}
        if profiling:
            from ..obs import loop_paths

            paths = loop_paths(function)

        def attribute(block, index, instr) -> None:
            keys = site_keys.get(id(instr))
            if keys is None:
                loops = paths.get(block.label, ())
                keys = site_keys[id(instr)] = [
                    (
                        (function.name, loops, block.label, index,
                         instr.opcode, detail),
                        events,
                    )
                    for detail, events in instruction_conflict_details(
                        instr, self.register_file, self.regclass
                    )
                ]
            for key, events in keys:
                hazards, executions = local_counts.get(key, (0.0, 0.0))
                local_counts[key] = (hazards + events, executions + 1.0)

        def flush() -> None:
            if local_counts:
                PROFILE.record_many(
                    (key, hazards, hazards, executions)
                    for key, (hazards, executions) in local_counts.items()
                )

        # Loop latch bookkeeping: remaining iterations per header label.
        remaining: dict[str, int] = {}
        executed_sites: set[int] = set()
        block = function.entry
        while block is not None:
            if stats.executed_instructions >= self.max_instructions:
                stats.truncated = True
                break
            next_label = None
            for index, instr in enumerate(block):
                stats.executed_instructions += 1
                conflicts, violations, relevant = decode(instr)
                if relevant:
                    stats.executed_conflict_relevant += 1
                stats.dynamic_conflicts += conflicts
                stats.dynamic_subgroup_violations += violations
                if profiling and (conflicts or violations):
                    attribute(block, index, instr)
                if (conflicts or violations) and id(instr) not in executed_sites:
                    executed_sites.add(id(instr))
                    stats.conflicting_sites += conflicts + violations
                if instr.kind is OpKind.JUMP:
                    next_label = instr.attrs["target"]
                elif instr.kind is OpKind.RET:
                    flush()
                    return stats
                elif instr.kind is OpKind.BRANCH:
                    target = instr.attrs["target"]
                    if instr.attrs.get("loop_latch"):
                        header = function.block(target)
                        trips = int(header.attrs.get("trip_count", 1))
                        left = remaining.setdefault(target, trips - 1)
                        if left > 0:
                            remaining[target] = left - 1
                            next_label = target
                        else:
                            remaining.pop(target, None)  # reset for re-entry
                            next_label = function.next_label(block)
                    else:
                        prob = float(instr.attrs.get("taken_prob", 0.5))
                        if rng.random() < prob:
                            next_label = target
                        else:
                            next_label = function.next_label(block)
            if next_label is None:
                next_label = function.next_label(block)
            block = function.block(next_label) if next_label is not None else None
        flush()
        return stats


def expected_block_frequencies(function: Function, cfg: CFG | None = None) -> dict[str, float]:
    """Expected execution count per block via the flow linear system.

    Solves ``(I - P^T) f = e`` where ``P[i][j]`` is the probability of
    edge i->j and ``e`` marks the entry.  Builder-generated latch
    probabilities make loop frequencies come out as exact trip products.
    """
    if cfg is None:
        cfg = CFG.build(function)
    labels = [b.label for b in function.blocks if cfg.is_reachable(b.label)]
    index = {label: i for i, label in enumerate(labels)}
    n = len(labels)
    transition = np.zeros((n, n))
    for label in labels:
        block = function.block(label)
        term = block.terminator
        succs = cfg.succs[label]
        if not succs:
            continue
        if term is not None and term.kind is OpKind.BRANCH:
            prob = float(term.attrs.get("taken_prob", 0.5))
            target = term.attrs["target"]
            fallthrough = function.next_label(block)
            transition[index[label]][index[target]] += prob
            if fallthrough is not None and fallthrough in index:
                transition[index[label]][index[fallthrough]] += 1.0 - prob
        else:
            for succ in succs:
                transition[index[label]][index[succ]] += 1.0 / len(succs)
    entry = np.zeros(n)
    entry[index[function.entry.label]] = 1.0
    # f = e + P^T f  =>  (I - P^T) f = e
    matrix = np.eye(n) - transition.T
    try:
        freqs = np.linalg.solve(matrix, entry)
    except np.linalg.LinAlgError:
        # Singular system (e.g. an infinite loop with taken_prob == 1):
        # fall back to least squares.
        freqs, *__ = np.linalg.lstsq(matrix, entry, rcond=None)
    return {label: max(0.0, float(freqs[index[label]])) for label in labels}


def estimate_dynamic_conflicts(
    function: Function,
    register_file: RegisterFile,
    regclass: RegClass | None = FP,
    frequencies: dict[str, float] | None = None,
    am=None,
) -> DynamicStats:
    """Expected dynamic counts: per-block conflict degrees folded through
    :func:`expected_block_frequencies`.  Counts are rounded to integers at
    the block level so aggregates remain comparable to interpreter runs.

    With *am* given, the flow system is solved over the cached CFG (valid
    after allocation, which preserves block structure)."""
    from ..obs import METRICS, PROFILE, TRACER

    with TRACER.span(
        "dynamic-estimate", category="measure", function=function.name
    ):
        if frequencies is None:
            cfg = None
            if am is not None:
                from ..passes import CFGAnalysis

                cfg = am.get(CFGAnalysis)
            frequencies = expected_block_frequencies(function, cfg)
        is_dsa = isinstance(register_file, BankSubgroupRegisterFile)
        stats = DynamicStats()
        paths = None
        if PROFILE.enabled:
            from ..obs import loop_paths

            paths = loop_paths(function)
        for block in function.blocks:
            freq = frequencies.get(block.label, 0.0)
            if freq <= 0.0:
                continue
            block_conflicts = 0
            block_violations = 0
            block_relevant = 0
            for index, instr in enumerate(block):
                block_conflicts += instruction_bank_conflicts(
                    instr, register_file, regclass
                )
                if is_dsa:
                    block_violations += instruction_subgroup_violations(
                        instr, register_file, regclass
                    )
                if instr.is_conflict_relevant(regclass):
                    block_relevant += 1
                if paths is not None:
                    # Attribute expected conflict instances (one stall
                    # cycle each) to the site, frequency-weighted.
                    for detail, events in instruction_conflict_details(
                        instr, register_file, regclass
                    ):
                        PROFILE.record(
                            (function.name, paths.get(block.label, ()),
                             block.label, index, instr.opcode, detail),
                            conflicts=events * freq,
                            cycles=events * freq,
                            executions=freq,
                        )
            stats.executed_instructions += round(len(block.instructions) * freq)
            stats.executed_conflict_relevant += round(block_relevant * freq)
            stats.dynamic_conflicts += round(block_conflicts * freq)
            stats.dynamic_subgroup_violations += round(block_violations * freq)
            # Executed-site estimate: a site in a block with expected frequency
            # f executes at least once with probability ~min(1, f).
            stats.conflicting_sites += (block_conflicts + block_violations) * min(
                1.0, freq
            )
    METRICS.inc("sim.dynamic_conflicts", stats.dynamic_conflicts)
    METRICS.inc(
        "sim.dynamic_subgroup_violations", stats.dynamic_subgroup_violations
    )
    return stats

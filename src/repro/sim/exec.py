"""Value-level execution of IR functions (reference interpreter).

Used as the ground-truth oracle in tests: running a function *before*
register allocation (virtual-register environment) and *after* (physical
registers + spill-slot memory) must produce the same observable values —
the return value and the multiset of stored values.  This catches wrong
rewrites, broken spill code, misplaced split copies, and coalescing bugs
at the semantic level, independent of any structural invariant.

Branch decisions replay deterministically: counted latches run their trip
counts, data-dependent branches draw from a seeded RNG — the same seed
yields the same path in the pre- and post-allocation functions because
the pipeline never adds or removes branches.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..ir.function import Function
from ..ir.instruction import OpKind
from ..ir.types import Immediate, Register


class ExecutionError(RuntimeError):
    """Raised on use of an undefined register or an unknown opcode."""


def _fmadd(a: float, b: float, c: float) -> float:
    return a * b + c


def _fmsub(a: float, b: float, c: float) -> float:
    return a * b - c


def _safe_div(a: float, b: float) -> float:
    if b == 0.0:
        return math.copysign(math.inf, a) if a != 0.0 else math.nan
    return a / b


def _safe_sqrt(a: float) -> float:
    return math.copysign(math.sqrt(abs(a)), a)


#: Opcode semantics.  Unknown ARITH opcodes raise, keeping the oracle
#: honest about what it actually models.
OPCODE_SEMANTICS = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": _safe_div,
    "fmin": min,
    "fmax": max,
    "fmadd": _fmadd,
    "fmsub": _fmsub,
    "fneg": lambda a: -a,
    "fabs": abs,
    "fsqrt": _safe_sqrt,
    "frelu": lambda a: max(0.0, a),
}


@dataclass
class ExecutionTrace:
    """Observable behaviour of one execution."""

    return_values: tuple[float, ...] = ()
    stored_values: list[float] = field(default_factory=list)
    executed_instructions: int = 0
    truncated: bool = False

    def observables(self) -> tuple:
        """Comparable summary: return values + *sorted* stores (the
        scheduler may legally reorder independent stores)."""
        return (self.return_values, tuple(sorted(self.stored_values)))


@dataclass
class ValueInterpreter:
    """Executes a function over real floats.

    Works on virtual-register IR, physical-register IR, or a mix: the
    environment is keyed by register identity.  Spill loads/stores (tagged
    with ``spill_slot``) move values through a slot-indexed memory;
    generic loads produce a deterministic input stream.
    """

    seed: int = 0
    max_instructions: int = 1_000_000

    def run(self, function: Function) -> ExecutionTrace:
        from ..obs import PROFILE

        rng = random.Random(self.seed)
        env: dict[Register, float] = {}
        spill_memory: dict[int, float] = {}
        input_counter = 0
        trace = ExecutionTrace()
        remaining: dict[str, int] = {}

        # Execution-heat profiling: the interpreter has no register file,
        # so it attributes executed instances (empty detail), giving the
        # hotspot listings their per-site execution counts.  Counts batch
        # in a run-local dict and flush under one lock at exit.
        profiling = PROFILE.enabled
        heat: dict[tuple, float] = {}
        paths: dict[str, tuple[str, ...]] = {}
        if profiling:
            from ..obs import loop_paths

            paths = loop_paths(function)

        def flush() -> None:
            if heat:
                PROFILE.record_many(
                    (key, 0.0, 0.0, count) for key, count in heat.items()
                )

        def read(operand) -> float:
            if isinstance(operand, Immediate):
                return float(operand.value)
            try:
                return env[operand]
            except KeyError:
                raise ExecutionError(
                    f"{function.name}: read of undefined register {operand!r}"
                ) from None

        block = function.entry
        while block is not None:
            next_label = None
            for index, instr in enumerate(block):
                trace.executed_instructions += 1
                if trace.executed_instructions > self.max_instructions:
                    trace.truncated = True
                    flush()
                    return trace
                if profiling:
                    key = (
                        function.name, paths.get(block.label, ()),
                        block.label, index, instr.opcode, "",
                    )
                    heat[key] = heat.get(key, 0.0) + 1.0
                kind = instr.kind
                if kind is OpKind.ARITH:
                    semantics = OPCODE_SEMANTICS.get(instr.opcode)
                    if semantics is None:
                        raise ExecutionError(
                            f"{function.name}: no semantics for opcode "
                            f"{instr.opcode!r}"
                        )
                    operands = [read(u) for u in instr.uses]
                    value = semantics(*operands)
                    for dst in instr.defs:
                        env[dst] = value
                elif kind is OpKind.COPY:
                    env[instr.defs[0]] = read(instr.uses[0])
                elif kind is OpKind.LOADIMM:
                    env[instr.defs[0]] = float(instr.uses[0].value)
                elif kind is OpKind.LOAD:
                    slot = instr.attrs.get("spill_slot")
                    if slot is not None:
                        if slot not in spill_memory:
                            raise ExecutionError(
                                f"{function.name}: reload from slot {slot} "
                                f"before any store"
                            )
                        env[instr.defs[0]] = spill_memory[slot]
                    else:
                        # Deterministic synthetic input stream.
                        input_counter += 1
                        env[instr.defs[0]] = math.sin(float(input_counter))
                elif kind is OpKind.STORE:
                    slot = instr.attrs.get("spill_slot")
                    value = read(instr.uses[0])
                    if slot is not None:
                        spill_memory[slot] = value
                    else:
                        trace.stored_values.append(value)
                elif kind is OpKind.RET:
                    trace.return_values = tuple(read(u) for u in instr.uses)
                    flush()
                    return trace
                elif kind is OpKind.JUMP:
                    next_label = instr.attrs["target"]
                elif kind is OpKind.BRANCH:
                    target = instr.attrs["target"]
                    if instr.attrs.get("loop_latch"):
                        header = function.block(target)
                        trips = int(header.attrs.get("trip_count", 1))
                        left = remaining.setdefault(target, trips - 1)
                        if left > 0:
                            remaining[target] = left - 1
                            next_label = target
                        else:
                            remaining.pop(target, None)
                            next_label = function.next_label(block)
                    else:
                        prob = float(instr.attrs.get("taken_prob", 0.5))
                        if rng.random() < prob:
                            next_label = target
                        else:
                            next_label = function.next_label(block)
                # NOP / CALL: no value effect in this model.
            if next_label is None:
                next_label = function.next_label(block)
            block = function.block(next_label) if next_label is not None else None
        flush()
        return trace


def observably_equivalent(
    before: Function, after: Function, *, seed: int = 0, rel_tol: float = 1e-6
) -> bool:
    """True when *before* and *after* produce the same observables.

    Floating-point comparison is tolerant: legal reassociation does not
    occur in the pipeline, but spill round-trips go through the same
    float64 values, so equality is normally exact; the tolerance guards
    against platform-specific fused operations.
    """
    interpreter = ValueInterpreter(seed=seed)
    trace_before = interpreter.run(before)
    trace_after = interpreter.run(after)
    if trace_before.truncated or trace_after.truncated:
        raise ExecutionError(
            f"{before.name}: execution budget exhausted before completion; "
            f"equivalence is undecidable (raise max_instructions or shrink "
            f"the workload's trip counts)"
        )
    ret_b, stores_b = trace_before.observables()
    ret_a, stores_a = trace_after.observables()
    if len(ret_b) != len(ret_a) or len(stores_b) != len(stores_a):
        return False
    pairs = list(zip(ret_b, ret_a)) + list(zip(stores_b, stores_a))
    for expected, actual in pairs:
        if math.isnan(expected) and math.isnan(actual):
            continue
        if not math.isclose(expected, actual, rel_tol=rel_tol, abs_tol=1e-9):
            return False
    return True

"""Multi-ported banked register-file read stage.

Each bank of the underlying :class:`~repro.banks.register_file` exposes
``ports_per_bank`` read ports per cycle.  When an issue group's operand
reads oversubscribe a bank, the surplus reads recirculate: the bank
serves its reads in *waves* of ``ports_per_bank``, oldest instruction
first, and every wave past the first holds the read stage one extra
cycle.  The group's total conflict cost is therefore::

    sum over banks of (ceil(reads_in_bank / ports) - 1)

With one read port and a one-instruction group this collapses to the
paper's N-1 serialization penalty — exactly
:func:`repro.sim.static_stats.instruction_bank_conflicts` — which is
what makes the degenerate machine configuration reproduce the in-order
``DsaMachine`` conflict cycle counts bit-identically.

Arbitration is *fair by age*: reads are queued in (instruction program
order, operand order), so the oldest instruction's reads always land in
the earliest waves and each extra cycle is attributed to the youngest
instruction that forced the wave (the owner of the wave's first read).
The attributed per-instruction cycles always sum back to the group
total, keeping the hotspot profiler reconciled with the cycle model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...banks.register_file import RegisterFile
from ...ir.types import PhysicalRegister


@dataclass
class ReadArbitration:
    """Outcome of arbitrating one issue group's reads."""

    #: Extra read-stage cycles for the whole group (beyond the base 1).
    extra_cycles: int = 0
    #: Extra cycles attributed per instruction index; sums to
    #: :attr:`extra_cycles`.
    per_instruction: dict[int, int] = field(default_factory=dict)
    #: ``(index, detail, events)`` profiler sites: *index*'s reads of a
    #: bank forced *events* recirculation waves described by *detail*.
    sites: list[tuple[int, str, int]] = field(default_factory=list)


@dataclass(frozen=True)
class ReadPortArbiter:
    """Per-bank read-port scheduler of the OoO read stage."""

    register_file: RegisterFile
    ports_per_bank: int = 1

    def __post_init__(self):
        if self.ports_per_bank < 1:
            raise ValueError(
                f"ports_per_bank must be positive, got {self.ports_per_bank}"
            )

    def arbitrate(
        self, group: list[tuple[int, tuple[PhysicalRegister, ...]]]
    ) -> ReadArbitration:
        """Schedule the reads of one issue group.

        *group* is ``[(instruction_index, bankable_reads), ...]`` in
        program order; each instruction's reads are already deduplicated
        (a repeated read of one register is one port access).
        """
        result = ReadArbitration()
        by_bank: dict[int, list[tuple[int, PhysicalRegister]]] = {}
        for index, reads in group:
            for reg in reads:
                by_bank.setdefault(self.register_file.bank_of(reg), []).append(
                    (index, reg)
                )
        ports = self.ports_per_bank
        for bank in sorted(by_bank):
            queue = by_bank[bank]
            waves = (len(queue) + ports - 1) // ports
            if waves <= 1:
                continue
            result.extra_cycles += waves - 1
            owners: dict[int, int] = {}
            for wave in range(1, waves):
                owner = queue[wave * ports][0]
                owners[owner] = owners.get(owner, 0) + 1
                result.per_instruction[owner] = (
                    result.per_instruction.get(owner, 0) + 1
                )
            for owner, events in owners.items():
                names = ",".join(
                    f"${r.regclass.name}{r.index}"
                    for i, r in queue
                    if i == owner
                )
                result.sites.append(
                    (owner, f"port(bank{bank}:{names})/{ports}", events)
                )
        return result

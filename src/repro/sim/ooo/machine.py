"""The out-of-order cycle model.

Pipeline, per cycle:

1. **retire** — up to ``issue_width`` complete instructions leave the
   ROB head in program order, releasing displaced rename tags;
2. **select/issue** — the issue queue picks up to ``issue_width`` ready
   entries (oldest first) when the read stage is free; the group's
   operand reads arbitrate for per-bank read ports, each oversubscribed
   wave holding the read stage (and the group's results) one extra
   cycle;
3. **dispatch** — up to ``issue_width`` instructions enter ROB + issue
   queue in program order, renaming their definitions (or recording
   scoreboard hazards when rename is off); a full ROB/IQ or an empty
   tag pool stalls dispatch and is counted.

Conflicts therefore cost extra *read* cycles only where a bank's ports
are oversubscribed, instead of stalling a whole in-order bundle; how
much of the in-order conflict penalty survives at each (issue width x
read ports) point is the sweep's headline number.

The degenerate configuration — width 1, one read port, rename off —
issues exactly one instruction per read-stage occupancy, so its per-
block conflict and alignment counts are the same integers the in-order
:class:`~repro.sim.dsa.DsaMachine` computes, and :meth:`OooMachine.run`
folds them through ``expected_block_frequencies`` with the identical
accumulation order: the resulting ``conflict_penalty_cycles`` /
``alignment_penalty_cycles`` match the DSA model bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...banks.register_file import BankSubgroupRegisterFile, RegisterFile
from ...ir.block import BasicBlock
from ...ir.function import Function
from ...ir.instruction import OpKind
from ...ir.types import FP, PhysicalRegister, RegClass
from ..dynamic import expected_block_frequencies
from ..static_stats import instruction_subgroup_violations
from .config import OooConfig
from .issue_queue import IssueQueue
from .regfile import ReadPortArbiter
from .renamer import RegisterRenamer
from .rob import ReorderBuffer

#: Simulation-cycle guard per block: a block that has not fully retired
#: after this many cycles per instruction is deadlocked (e.g. a rename
#: pool smaller than one instruction's definition list).
_GUARD_CYCLES_PER_INSTR = 64
_GUARD_CYCLES_BASE = 4096


@dataclass
class OooCycleReport:
    """Cycle breakdown of one function on the out-of-order model."""

    cycles: float = 0.0
    instructions: int = 0
    conflict_penalty_cycles: float = 0.0
    alignment_penalty_cycles: float = 0.0
    memory_penalty_cycles: float = 0.0
    rob_stall_cycles: float = 0.0
    iq_stall_cycles: float = 0.0
    rename_stall_cycles: float = 0.0
    copy_instructions: int = 0
    spill_instructions: int = 0

    def merge(self, other: "OooCycleReport") -> "OooCycleReport":
        return OooCycleReport(
            cycles=self.cycles + other.cycles,
            instructions=self.instructions + other.instructions,
            conflict_penalty_cycles=(
                self.conflict_penalty_cycles + other.conflict_penalty_cycles
            ),
            alignment_penalty_cycles=(
                self.alignment_penalty_cycles + other.alignment_penalty_cycles
            ),
            memory_penalty_cycles=(
                self.memory_penalty_cycles + other.memory_penalty_cycles
            ),
            rob_stall_cycles=self.rob_stall_cycles + other.rob_stall_cycles,
            iq_stall_cycles=self.iq_stall_cycles + other.iq_stall_cycles,
            rename_stall_cycles=(
                self.rename_stall_cycles + other.rename_stall_cycles
            ),
            copy_instructions=self.copy_instructions + other.copy_instructions,
            spill_instructions=self.spill_instructions + other.spill_instructions,
        )


@dataclass
class OooMachine:
    """Deterministic cycle-level out-of-order machine.

    Drop-in peer of :class:`~repro.sim.dsa.DsaMachine`: consumes an
    allocated :class:`Function` through the same ``AnalysisManager``
    path (``machine.run(function, am=am)``) and emits an
    :class:`OooCycleReport` the experiments harness folds like a DSA
    report.
    """

    register_file: RegisterFile
    regclass: RegClass | None = FP
    config: OooConfig = field(default_factory=OooConfig)

    def __post_init__(self):
        self._arbiter = ReadPortArbiter(self.register_file, self.config.read_ports)
        self._is_dsa = isinstance(self.register_file, BankSubgroupRegisterFile)

    # ------------------------------------------------------------------
    def _phys_pool(self) -> int:
        if self.config.phys_regs is not None:
            return self.config.phys_regs
        return self.register_file.num_registers + 2 * self.config.rob_size

    def _bankable_reads(self, instr) -> tuple[PhysicalRegister, ...]:
        return tuple(
            r
            for r in instr.bankable_reads(self.regclass)
            if isinstance(r, PhysicalRegister)
        )

    def _align_events(self, instr) -> tuple[int, str]:
        """Subgroup-misalignment routing cycles and the profiler detail."""
        if not self._is_dsa:
            return 0, ""
        violations = instruction_subgroup_violations(
            instr, self.register_file, self.regclass
        )
        if not violations:
            return 0, ""
        regs = list(self._bankable_reads(instr)) + [
            d for d in instr.reg_defs()
            if isinstance(d, PhysicalRegister) and d.regclass.bankable
            and (self.regclass is None or d.regclass == self.regclass)
        ]
        subgroups = sorted({self.register_file.subgroup_of(r) for r in regs})
        detail = "align(" + "|".join(f"sg{s}" for s in subgroups) + ")"
        return violations, detail

    # ------------------------------------------------------------------
    def simulate_block(
        self, block: BasicBlock, collect_sites: bool = False
    ) -> tuple[OooCycleReport, list[tuple[int, str, str, int]]]:
        """Cycle-accurate simulation of one execution of *block*.

        Returns the per-execution report plus, when *collect_sites* is
        set, ``(index, opcode, detail, events)`` hazard sites whose
        event counts sum to the report's conflict + alignment cycles.
        """
        cfg = self.config
        instrs = list(block)
        n = len(instrs)
        report = OooCycleReport(instructions=n)
        sites: list[tuple[int, str, str, int]] = []
        for instr in instrs:
            if instr.kind in (OpKind.LOAD, OpKind.STORE):
                report.memory_penalty_cycles += instr.latency - 1
                if instr.attrs.get("spill"):
                    report.spill_instructions += 1
            if instr.kind is OpKind.COPY:
                report.copy_instructions += 1
        if n == 0:
            return report, sites

        reads = [self._bankable_reads(i) for i in instrs]
        rob = ReorderBuffer(cfg.rob_size)
        iq = IssueQueue(cfg.iq_size)
        renamer = RegisterRenamer(self._phys_pool()) if cfg.rename else None

        last_def: dict = {}       # reg -> youngest dispatched writer index
        readers: dict = {}        # reg -> dispatched reader indices
        writers: dict = {}        # reg -> dispatched writer indices
        producers: list = [None] * n   # RAW: indices this instr waits on
        waw_deps: list = [None] * n    # scoreboard-only ordering hazards
        war_deps: list = [None] * n
        displaced: list = [None] * n   # rename tags freed at retire
        read_done: list = [None] * n   # cycle the operand read completes
        ready_at: list = [None] * n    # cycle the result is available

        def ready(i: int, cycle: int) -> bool:
            for j in producers[i]:
                if ready_at[j] is None or ready_at[j] > cycle:
                    return False
            if renamer is None:
                for j in waw_deps[i]:
                    if ready_at[j] is None or ready_at[j] > cycle:
                        return False
                for j in war_deps[i]:
                    if read_done[j] is None or read_done[j] > cycle:
                        return False
            return True

        next_dispatch = 0
        retired = 0
        cycle = 0
        last_retire = 0
        read_free_at = 0
        guard = _GUARD_CYCLES_BASE + _GUARD_CYCLES_PER_INSTR * n
        while retired < n:
            if cycle > guard:
                raise RuntimeError(
                    f"OoO simulation deadlocked in block {block.label!r} "
                    f"after {cycle} cycles ({cfg.describe()}); is the "
                    f"rename pool large enough?"
                )
            # 1. retire (in order, up to the machine width)
            done = rob.retire(
                cfg.issue_width,
                lambda j: ready_at[j] is not None and ready_at[j] <= cycle,
            )
            for j in done:
                if renamer is not None:
                    for tag in displaced[j]:
                        renamer.release(tag)
                retired += 1
                last_retire = cycle
            # 2. select / read / execute
            if cycle >= read_free_at:
                group = iq.select(cfg.issue_width, lambda i: ready(i, cycle))
                if group:
                    arb = self._arbiter.arbitrate([(i, reads[i]) for i in group])
                    report.conflict_penalty_cycles += arb.extra_cycles
                    if collect_sites:
                        for i, detail, events in arb.sites:
                            sites.append((i, instrs[i].opcode, detail, events))
                    read_free_at = cycle + 1 + arb.extra_cycles
                    for i in group:
                        read_done[i] = cycle + 1 + arb.extra_cycles
                        align, detail = self._align_events(instrs[i])
                        if align:
                            report.alignment_penalty_cycles += align
                            if collect_sites:
                                sites.append((i, instrs[i].opcode, detail, align))
                        ready_at[i] = (
                            read_done[i] + (instrs[i].latency - 1) + align
                        )
            # 3. dispatch (program order, rename, enter ROB + IQ)
            slots = cfg.issue_width
            while next_dispatch < n and slots > 0:
                instr = instrs[next_dispatch]
                defs = instr.reg_defs()
                if not rob.has_space:
                    report.rob_stall_cycles += 1
                    break
                if not iq.has_space:
                    report.iq_stall_cycles += 1
                    break
                if renamer is not None and not renamer.can_allocate(len(defs)):
                    report.rename_stall_cycles += 1
                    break
                i = next_dispatch
                producers[i] = tuple(
                    dict.fromkeys(
                        last_def[u] for u in instr.reg_uses() if u in last_def
                    )
                )
                if renamer is None:
                    waw_deps[i] = tuple(
                        dict.fromkeys(j for d in defs for j in writers.get(d, ()))
                    )
                    war_deps[i] = tuple(
                        dict.fromkeys(j for d in defs for j in readers.get(d, ()))
                    )
                else:
                    displaced[i] = [renamer.rename_def(d)[1] for d in defs]
                for u in instr.reg_uses():
                    readers.setdefault(u, []).append(i)
                for d in defs:
                    writers.setdefault(d, []).append(i)
                    last_def[d] = i
                rob.push(i)
                iq.insert(i)
                next_dispatch += 1
                slots -= 1
            cycle += 1
        report.cycles = float(last_retire + 1)
        return report, sites

    # ------------------------------------------------------------------
    def run(self, function: Function, am=None) -> OooCycleReport:
        """Frequency-weighted cycle total over the whole function.

        Mirrors :meth:`DsaMachine.run` block for block — same frequency
        solve, same skip rule, same accumulation order — so the
        degenerate configuration's penalty totals are bit-identical to
        the in-order model's.
        """
        from ...obs import METRICS, PROFILE, TRACER

        with TRACER.span(
            "ooo-cycles", category="measure", function=function.name,
            config=self.config.describe(),
        ):
            cfg = None
            if am is not None:
                from ...passes import CFGAnalysis

                cfg = am.get(CFGAnalysis)
            frequencies = expected_block_frequencies(function, cfg)
            total = OooCycleReport()
            paths = None
            if PROFILE.enabled:
                from ...obs import loop_paths

                paths = loop_paths(function)
            for block in function.blocks:
                freq = frequencies.get(block.label, 0.0)
                if freq <= 0.0:
                    continue
                per_exec, hazard_sites = self.simulate_block(
                    block, collect_sites=paths is not None
                )
                if paths is not None:
                    loops = paths.get(block.label, ())
                    for index, opcode, detail, events in hazard_sites:
                        key = (
                            function.name, loops, block.label, index,
                            opcode, detail,
                        )
                        PROFILE.record(
                            key,
                            conflicts=events * freq,
                            cycles=events * freq,
                            executions=freq,
                        )
                total.cycles += per_exec.cycles * freq
                total.instructions += per_exec.instructions
                total.conflict_penalty_cycles += (
                    per_exec.conflict_penalty_cycles * freq
                )
                total.alignment_penalty_cycles += (
                    per_exec.alignment_penalty_cycles * freq
                )
                total.memory_penalty_cycles += (
                    per_exec.memory_penalty_cycles * freq
                )
                total.rob_stall_cycles += per_exec.rob_stall_cycles * freq
                total.iq_stall_cycles += per_exec.iq_stall_cycles * freq
                total.rename_stall_cycles += per_exec.rename_stall_cycles * freq
                total.copy_instructions += round(per_exec.copy_instructions * freq)
                total.spill_instructions += round(
                    per_exec.spill_instructions * freq
                )
            # One span per pipeline stage with its aggregate counters, so
            # ``--trace`` shows where the model spent its cycles.
            for stage, args in (
                ("ooo-dispatch", {
                    "rob_stall_cycles": total.rob_stall_cycles,
                    "iq_stall_cycles": total.iq_stall_cycles,
                }),
                ("ooo-rename", {
                    "enabled": self.config.rename,
                    "rename_stall_cycles": total.rename_stall_cycles,
                }),
                ("ooo-issue", {
                    "issue_width": self.config.issue_width,
                    "instructions": total.instructions,
                }),
                ("ooo-read", {
                    "read_ports": self.config.read_ports,
                    "conflict_penalty_cycles": total.conflict_penalty_cycles,
                }),
                ("ooo-execute", {
                    "memory_penalty_cycles": total.memory_penalty_cycles,
                    "alignment_penalty_cycles": total.alignment_penalty_cycles,
                }),
                ("ooo-retire", {"cycles": total.cycles}),
            ):
                with TRACER.span(stage, category="measure",
                                 function=function.name, **args):
                    pass
        METRICS.observe("sim.ooo_cycles", total.cycles)
        return total

"""Out-of-order pipeline machine model (the ROADMAP's scenario axis).

A deterministic cycle-level OoO machine — register renamer, issue
queue with oldest-first wakeup-select, reorder buffer with in-order
retire, and a multi-ported banked register-file read stage — used to
measure how much of the in-order bank-conflict penalty survives when
out-of-order execution can hide it behind ILP.  See docs/SIMULATION.md.
"""

from .config import (
    MACHINE_DEFAULT,
    OooConfig,
    SWEEP_PORTS,
    SWEEP_WIDTHS,
    normalize_machine_spec,
)
from .issue_queue import IssueQueue
from .machine import OooCycleReport, OooMachine
from .regfile import ReadArbitration, ReadPortArbiter
from .renamer import RegisterRenamer
from .rob import ReorderBuffer

__all__ = [
    "MACHINE_DEFAULT",
    "IssueQueue",
    "OooConfig",
    "OooCycleReport",
    "OooMachine",
    "ReadArbitration",
    "ReadPortArbiter",
    "RegisterRenamer",
    "ReorderBuffer",
    "SWEEP_PORTS",
    "SWEEP_WIDTHS",
    "normalize_machine_spec",
]

"""Issue queue with oldest-first wakeup-select.

Dispatched instructions wait here until their source operands are ready;
each cycle the select stage picks up to ``issue_width`` ready entries,
*oldest in program order first*.  Age-ordered select keeps the model
deterministic and starvation-free: a ready instruction can only be
passed over by strictly older ready instructions, so it issues within
``ceil(occupancy / width)`` cycles.
"""

from __future__ import annotations

from typing import Callable


class IssueQueue:
    """Bounded buffer of dispatched-but-not-issued instruction indices."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"issue queue capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: list[int] = []  # program order == dispatch order

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def has_space(self) -> bool:
        return len(self._entries) < self.capacity

    def insert(self, index: int) -> None:
        if not self.has_space:
            raise RuntimeError("issue queue full; check has_space first")
        self._entries.append(index)

    def select(self, width: int, ready: Callable[[int], bool]) -> list[int]:
        """Pop up to *width* ready entries, oldest first."""
        picked: list[int] = []
        for index in self._entries:
            if len(picked) >= width:
                break
            if ready(index):
                picked.append(index)
        if picked:
            chosen = set(picked)
            self._entries = [i for i in self._entries if i not in chosen]
        return picked

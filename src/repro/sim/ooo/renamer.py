"""Register renaming: architectural registers onto physical tags.

The renamer keeps the current architectural-to-physical mapping and a
bounded pool of free tags.  Renaming a definition allocates a fresh tag
and returns the tag it displaced; the displaced tag is released when the
renaming instruction *retires* (the classic point at which no older
in-flight reader can still name it).  Registers never written inside the
simulated block keep their architectural value and need no tag — lookups
return ``None`` for them, which the machine treats as always-ready.

Tags are monotonically increasing integers; the pool bound models the
physical register file's *capacity* (dispatch stalls when exhausted)
without recycling tag numbers, which keeps the simulation trivially
deterministic.
"""

from __future__ import annotations


class RegisterRenamer:
    """Architectural-to-physical mapping with a bounded free pool."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"renamer capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.in_use = 0
        self._map: dict = {}
        self._next_tag = 0

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget all mappings (a new block starts from architectural state)."""
        self.in_use = 0
        self._map.clear()
        self._next_tag = 0

    def can_allocate(self, count: int) -> bool:
        """Room for *count* fresh tags?"""
        return self.in_use + count <= self.capacity

    def lookup(self, reg):
        """Current tag of *reg*, or ``None`` when it still holds the
        architectural (pre-block) value."""
        return self._map.get(reg)

    def rename_def(self, reg) -> tuple[int, int | None]:
        """Allocate a fresh tag for a definition of *reg*.

        Returns ``(tag, displaced)`` where *displaced* is the tag the
        new mapping shadows (``None`` when *reg* was architectural).
        The caller releases *displaced* at retire.
        """
        if not self.can_allocate(1):
            raise RuntimeError("renamer pool exhausted; check can_allocate first")
        tag = self._next_tag
        self._next_tag += 1
        displaced = self._map.get(reg)
        self._map[reg] = tag
        self.in_use += 1
        return tag, displaced

    def release(self, tag: int | None) -> None:
        """Return a displaced tag to the pool (no-op for ``None``)."""
        if tag is not None:
            self.in_use -= 1

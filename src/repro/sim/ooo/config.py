"""Configuration for the out-of-order machine model.

The sweep axes of the ROADMAP's "scenario axis" item: issue width
{1,2,4} x read ports per bank {1,2,4} x ROB/IQ sizes, plus a rename
on/off switch.  The *degenerate* point — width 1, a single read port,
rename disabled — exists to anchor the model: it must reproduce the
in-order :class:`~repro.sim.dsa.DsaMachine` bank-conflict and alignment
cycle counts bit-identically (asserted in tests and CI), so every other
point of the sweep measures how much of the in-order penalty survives
out-of-order execution rather than an artifact of a second cost model.

The service layer reuses :func:`normalize_machine_spec` to fold a
request's ``machine`` field into the content-address key, so artifacts
measured on different machine models can never alias.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Canonical machine spec of the default (in-order DSA) model.  Requests
#: that omit ``machine`` or spell out the default hash identically to
#: pre-machine-aware clients — the key payload only grows a ``machine``
#: entry for non-default specs.
MACHINE_DEFAULT = {"model": "dsa"}

#: Sweep axes exercised by ``repro measure --machine ooo`` and CI.
SWEEP_WIDTHS = (1, 2, 4)
SWEEP_PORTS = (1, 2, 4)


@dataclass(frozen=True)
class OooConfig:
    """Parameters of the out-of-order pipeline.

    Attributes:
        issue_width: Instructions selected from the issue queue per
            cycle (also the dispatch and retire width).
        read_ports: Register-file read ports per bank.  Reads of one
            bank beyond this many per cycle recirculate through the
            read stage, each extra wave costing one cycle.
        rob_size: Reorder-buffer entries; dispatch stalls when full.
        iq_size: Issue-queue entries; dispatch stalls when full.
        rename: Map architectural registers onto physical tags at
            dispatch.  Renaming removes WAW/WAR ordering; with it off a
            scoreboard enforces all three hazard classes at issue.
        phys_regs: Physical-tag pool size for the renamer; ``None``
            sizes it generously (architectural registers plus two tags
            per ROB entry) so only deliberately tiny pools ever stall.
    """

    issue_width: int = 2
    read_ports: int = 2
    rob_size: int = 32
    iq_size: int = 16
    rename: bool = True
    phys_regs: int | None = None

    def __post_init__(self):
        for name in ("issue_width", "read_ports", "rob_size", "iq_size"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"{name} must be a positive integer, got {value!r}")
        if self.phys_regs is not None and self.phys_regs < 1:
            raise ValueError(f"phys_regs must be positive, got {self.phys_regs!r}")

    # ------------------------------------------------------------------
    @classmethod
    def degenerate(cls) -> "OooConfig":
        """The parity anchor: in-order-equivalent configuration."""
        return cls(issue_width=1, read_ports=1, rename=False)

    @property
    def is_degenerate(self) -> bool:
        return (
            self.issue_width == 1 and self.read_ports == 1 and not self.rename
        )

    def describe(self) -> str:
        tag = "ren" if self.rename else "noren"
        return (
            f"ooo-w{self.issue_width}p{self.read_ports}"
            f"-rob{self.rob_size}-iq{self.iq_size}-{tag}"
        )

    # ------------------------------------------------------------------
    # Service schema round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        spec = {
            "model": "ooo",
            "issue_width": self.issue_width,
            "read_ports": self.read_ports,
            "rob_size": self.rob_size,
            "iq_size": self.iq_size,
            "rename": self.rename,
        }
        if self.phys_regs is not None:
            spec["phys_regs"] = self.phys_regs
        return spec

    @classmethod
    def from_dict(cls, spec: dict) -> "OooConfig":
        known = {
            "issue_width", "read_ports", "rob_size", "iq_size",
            "rename", "phys_regs",
        }
        fields = {k: v for k, v in spec.items() if k in known}
        unknown = set(spec) - known - {"model"}
        if unknown:
            raise ValueError(f"unknown ooo machine keys: {sorted(unknown)}")
        return cls(**fields)


def normalize_machine_spec(spec) -> dict:
    """Canonicalize a request's ``machine`` field.

    Accepts ``None``, a model name (``"dsa"`` / ``"ooo"``), or a dict
    with a ``model`` key plus :class:`OooConfig` fields.  Returns the
    canonical dict form with every defaulted field spelled out, so two
    requests meaning the same machine always hash identically — and two
    different machines never do.
    """
    if spec is None:
        return dict(MACHINE_DEFAULT)
    if isinstance(spec, str):
        spec = {"model": spec}
    if not isinstance(spec, dict):
        raise ValueError(f"machine spec must be a name or object, got {type(spec).__name__}")
    model = spec.get("model", "dsa")
    if model == "dsa":
        extra = set(spec) - {"model"}
        if extra:
            raise ValueError(f"dsa machine takes no parameters: {sorted(extra)}")
        return dict(MACHINE_DEFAULT)
    if model == "ooo":
        return OooConfig.from_dict(spec).to_dict()
    raise ValueError(f"unknown machine model {model!r} (expected dsa|ooo)")

"""Reorder buffer: in-order retirement over out-of-order completion.

Instructions enter at dispatch (program order) and leave strictly in
that order once complete; a full ROB back-pressures dispatch.  Because
retirement is the only architecturally visible ordering, the machine's
observable instruction stream is identical to the in-order model's —
only the *timing* differs.
"""

from __future__ import annotations

from collections import deque
from typing import Callable


class ReorderBuffer:
    """Bounded FIFO of in-flight instruction indices."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"ROB capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: deque[int] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def has_space(self) -> bool:
        return len(self._entries) < self.capacity

    def push(self, index: int) -> None:
        if not self.has_space:
            raise RuntimeError("ROB full; check has_space first")
        self._entries.append(index)

    def retire(self, width: int, complete: Callable[[int], bool]) -> list[int]:
        """Pop up to *width* complete entries from the head, in order.

        Retirement stops at the first incomplete entry — younger
        complete instructions wait behind it (in-order retire).
        """
        retired: list[int] = []
        while self._entries and len(retired) < width:
            head = self._entries[0]
            if not complete(head):
                break
            retired.append(self._entries.popleft())
        return retired

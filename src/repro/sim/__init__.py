"""Simulation substrate: static conflict statistics, dynamic execution
(the QEMU-trace substitute), the DSA VLIW cycle model, and platform
descriptions for RV#1 / RV#2 / DSA.
"""

from .dsa import DsaCycleReport, DsaMachine
from .energy import EnergyReport, estimate_energy
from .exec import (
    ExecutionError,
    ExecutionTrace,
    OPCODE_SEMANTICS,
    ValueInterpreter,
    observably_equivalent,
)
from .dynamic import (
    DynamicSimulator,
    DynamicStats,
    estimate_dynamic_conflicts,
    expected_block_frequencies,
)
from .machine import (
    DSA_SUBGROUPED,
    Platform,
    interleaved_files,
    platform_dsa,
    platform_rv1,
    platform_rv2,
)
from .ooo import (
    OooConfig,
    OooCycleReport,
    OooMachine,
    normalize_machine_spec,
)
from .static_stats import (
    StaticStats,
    analyze_module_static,
    analyze_static,
    count_conflict_relevant,
    instruction_bank_conflicts,
    instruction_subgroup_violations,
)

__all__ = [
    "DSA_SUBGROUPED",
    "ExecutionError",
    "ExecutionTrace",
    "OPCODE_SEMANTICS",
    "ValueInterpreter",
    "observably_equivalent",
    "DsaCycleReport",
    "EnergyReport",
    "estimate_energy",
    "DsaMachine",
    "DynamicSimulator",
    "DynamicStats",
    "OooConfig",
    "OooCycleReport",
    "OooMachine",
    "Platform",
    "StaticStats",
    "analyze_module_static",
    "analyze_static",
    "count_conflict_relevant",
    "estimate_dynamic_conflicts",
    "expected_block_frequencies",
    "instruction_bank_conflicts",
    "instruction_subgroup_violations",
    "interleaved_files",
    "normalize_machine_spec",
    "platform_dsa",
    "platform_rv1",
    "platform_rv2",
]

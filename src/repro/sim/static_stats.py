"""Static bank-conflict statistics (the paper's compile-time LLVM pass).

Counts, over an *allocated* function (physical register operands):

* **conflict-relevant** instructions — read >= 2 distinct bankable
  registers (only these can ever conflict);
* **static bank conflicts** — per instruction, each register bank
  supplying N >= 2 of the read operands contributes N-1 conflicts (the
  hardware serializes N same-bank reads into N accesses);
* on a bank-subgroup file, **subgroup violations** — per instruction, the
  number of distinct operand subgroups beyond the first.

A program is *conflict-free* when it is conflict-relevant but its total
conflict count is zero — the categories of Fig. 1.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..banks.register_file import BankSubgroupRegisterFile, RegisterFile
from ..ir.function import Function, Module
from ..ir.instruction import Instruction, OpKind
from ..ir.loops import LoopInfo
from ..ir.types import FP, PhysicalRegister, RegClass


@dataclass
class StaticStats:
    """Compile-time conflict statistics of one function (or module)."""

    instructions: int = 0
    conflict_relevant: int = 0
    conflicting_instructions: int = 0
    bank_conflicts: int = 0
    subgroup_violations: int = 0
    weighted_conflicts: float = 0.0

    @property
    def conflicts(self) -> int:
        """Total hazards: bank conflicts plus alignment violations."""
        return self.bank_conflicts + self.subgroup_violations

    @property
    def is_conflict_relevant(self) -> bool:
        return self.conflict_relevant > 0

    @property
    def is_conflict_free(self) -> bool:
        """Conflict-relevant but conflict-less (Fig. 1's category)."""
        return self.is_conflict_relevant and self.conflicts == 0

    def merge(self, other: "StaticStats") -> "StaticStats":
        return StaticStats(
            instructions=self.instructions + other.instructions,
            conflict_relevant=self.conflict_relevant + other.conflict_relevant,
            conflicting_instructions=(
                self.conflicting_instructions + other.conflicting_instructions
            ),
            bank_conflicts=self.bank_conflicts + other.bank_conflicts,
            subgroup_violations=self.subgroup_violations + other.subgroup_violations,
            weighted_conflicts=self.weighted_conflicts + other.weighted_conflicts,
        )


def instruction_bank_conflicts(
    instr: Instruction,
    register_file: RegisterFile,
    regclass: RegClass | None = FP,
) -> int:
    """N-1 conflicts per bank supplying N of the instruction's reads."""
    reads = [
        r for r in instr.bankable_reads(regclass) if isinstance(r, PhysicalRegister)
    ]
    if len(reads) < 2:
        return 0
    by_bank = Counter(register_file.bank_of(r) for r in reads)
    return sum(count - 1 for count in by_bank.values() if count >= 2)


def instruction_subgroup_violations(
    instr: Instruction,
    register_file: BankSubgroupRegisterFile,
    regclass: RegClass | None = FP,
) -> int:
    """Distinct operand subgroups beyond the first (alignment hazards).

    Only vector *arithmetic* needs alignment (the 1-1 bank-to-ALU
    datapath); copies, loads, and stores move data freely between
    subgroups — copies are precisely how the compiler changes a value's
    displacement.
    """
    if instr.kind is not OpKind.ARITH:
        return 0
    regs = [
        r for r in instr.bankable_reads(regclass) if isinstance(r, PhysicalRegister)
    ]
    regs += [d for d in instr.reg_defs() if isinstance(d, PhysicalRegister)
             and d.regclass.bankable
             and (regclass is None or d.regclass == regclass)]
    if len(regs) < 2:
        return 0
    subgroups = {register_file.subgroup_of(r) for r in regs}
    return len(subgroups) - 1


def instruction_conflict_details(
    instr: Instruction,
    register_file: RegisterFile,
    regclass: RegClass | None = FP,
) -> list[tuple[str, int]]:
    """Per-hazard ``(detail, events)`` pairs for the hotspot profiler.

    Deliberately mirrors :func:`instruction_bank_conflicts` and
    :func:`instruction_subgroup_violations` — the summed event counts are
    always equal to those aggregates, so per-site profiles reconcile with
    the program totals.  Detail strings name the hardware resource:
    ``bank3($fp1,$fp9)`` for N-1 serialized reads of one bank,
    ``align(sg0|sg2)`` for a misaligned subgroup set.
    """
    details: list[tuple[str, int]] = []
    reads = [
        r for r in instr.bankable_reads(regclass) if isinstance(r, PhysicalRegister)
    ]
    if len(reads) >= 2:
        by_bank: dict[int, list[PhysicalRegister]] = {}
        for reg in reads:
            by_bank.setdefault(register_file.bank_of(reg), []).append(reg)
        for bank in sorted(by_bank):
            regs = by_bank[bank]
            if len(regs) >= 2:
                names = ",".join(f"${r.regclass.name}{r.index}" for r in regs)
                details.append((f"bank{bank}({names})", len(regs) - 1))
    if isinstance(register_file, BankSubgroupRegisterFile):
        violations = instruction_subgroup_violations(instr, register_file, regclass)
        if violations:
            regs = [
                r for r in instr.bankable_reads(regclass)
                if isinstance(r, PhysicalRegister)
            ]
            regs += [
                d for d in instr.reg_defs() if isinstance(d, PhysicalRegister)
                and d.regclass.bankable
                and (regclass is None or d.regclass == regclass)
            ]
            subgroups = sorted({register_file.subgroup_of(r) for r in regs})
            detail = "align(" + "|".join(f"sg{s}" for s in subgroups) + ")"
            details.append((detail, violations))
    return details


def analyze_static(
    function: Function,
    register_file: RegisterFile,
    regclass: RegClass | None = FP,
    loop_info: LoopInfo | None = None,
    am=None,
) -> StaticStats:
    """Collect :class:`StaticStats` over an allocated *function*.

    Block frequencies come from *loop_info*, or the analysis cache *am* a
    pipeline run left behind (allocation preserves the CFG-level
    analyses), or a fresh computation — in that order.
    """
    from ..obs import METRICS, TRACER

    is_dsa = isinstance(register_file, BankSubgroupRegisterFile)
    with TRACER.span(
        "static-stats", category="measure", function=function.name
    ):
        if loop_info is None:
            if am is not None:
                from ..passes import LoopInfoAnalysis

                loop_info = am.get(LoopInfoAnalysis)
            else:
                loop_info = LoopInfo.build(function)
        stats = StaticStats()
        for block in function.blocks:
            freq = loop_info.block_frequency(block.label)
            for instr in block:
                stats.instructions += 1
                if instr.is_conflict_relevant(regclass):
                    stats.conflict_relevant += 1
                conflicts = instruction_bank_conflicts(instr, register_file, regclass)
                violations = 0
                if is_dsa:
                    violations = instruction_subgroup_violations(
                        instr, register_file, regclass
                    )
                if conflicts or violations:
                    stats.conflicting_instructions += 1
                    stats.weighted_conflicts += (conflicts + violations) * freq
                stats.bank_conflicts += conflicts
                stats.subgroup_violations += violations
    METRICS.inc("sim.static_bank_conflicts", stats.bank_conflicts)
    METRICS.inc("sim.static_subgroup_violations", stats.subgroup_violations)
    return stats


def analyze_module_static(
    module: Module,
    register_file: RegisterFile,
    regclass: RegClass | None = FP,
) -> StaticStats:
    """Aggregate static stats over all functions of *module*."""
    total = StaticStats()
    for function in module.functions:
        total = total.merge(analyze_static(function, register_file, regclass))
    return total


def count_conflict_relevant(
    function: Function, regclass: RegClass | None = FP
) -> int:
    """Pre-allocation conflict-relevant instruction count (Table I's
    "Reles"), computable on virtual-register IR."""
    return sum(
        1
        for _, instr in function.instructions()
        if instr.is_conflict_relevant(regclass)
    )

"""DSA machine model: VLIW bundling and cycle estimation (Table VII).

The custom DSA of §III-C executes VLIW bundles against a 2x4
bank-subgroup register file with a direct 1-1 bank-to-ALU datapath:

* two instructions can share a bundle only if their combined register
  reads touch each bank at most once (the "VLIW bundle constraint" that
  the paper notes hurts `dw-conv2d` and `tr18987`), and neither depends
  on the other;
* a bundle costs one issue cycle;
* each same-bank read pair inside one instruction costs one extra
  serialization cycle (the hardware arbiter's N-1 penalty), and each
  subgroup misalignment costs one extra routing cycle;
* loads/stores (including spill code) carry their extra latency.

Cycle totals fold per-block costs through the expected block frequencies,
so loop trip counts and branch probabilities are respected.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..banks.register_file import BankSubgroupRegisterFile, RegisterFile
from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instruction import Instruction, OpKind
from ..ir.types import FP, PhysicalRegister, RegClass
from .dynamic import expected_block_frequencies
from .static_stats import instruction_bank_conflicts, instruction_subgroup_violations


@dataclass
class DsaCycleReport:
    """Cycle breakdown of one function on the DSA model."""

    cycles: float = 0.0
    bundles: int = 0
    issue_cycles: float = 0.0
    conflict_penalty_cycles: float = 0.0
    alignment_penalty_cycles: float = 0.0
    memory_penalty_cycles: float = 0.0
    copy_instructions: int = 0
    spill_instructions: int = 0

    def merge(self, other: "DsaCycleReport") -> "DsaCycleReport":
        return DsaCycleReport(
            cycles=self.cycles + other.cycles,
            bundles=self.bundles + other.bundles,
            issue_cycles=self.issue_cycles + other.issue_cycles,
            conflict_penalty_cycles=(
                self.conflict_penalty_cycles + other.conflict_penalty_cycles
            ),
            alignment_penalty_cycles=(
                self.alignment_penalty_cycles + other.alignment_penalty_cycles
            ),
            memory_penalty_cycles=(
                self.memory_penalty_cycles + other.memory_penalty_cycles
            ),
            copy_instructions=self.copy_instructions + other.copy_instructions,
            spill_instructions=self.spill_instructions + other.spill_instructions,
        )


@dataclass
class DsaMachine:
    """The DSA cycle model.

    Attributes:
        register_file: Normally a :class:`BankSubgroupRegisterFile`; a
            plain banked file models the "2/4/8/16-non" hardware points of
            Table VI/VII (no alignment constraint, no alignment penalty).
        issue_width: Instructions per VLIW bundle.
    """

    register_file: RegisterFile
    regclass: RegClass | None = FP
    issue_width: int = 2

    # ------------------------------------------------------------------
    def bundle_block(self, block: BasicBlock) -> list[list[Instruction]]:
        """Greedy in-order bundling under the same-bank constraint."""
        bundles: list[list[Instruction]] = []
        current: list[Instruction] = []
        current_banks: Counter = Counter()
        current_defs: set = set()

        def flush() -> None:
            nonlocal current, current_banks, current_defs
            if current:
                bundles.append(current)
            current = []
            current_banks = Counter()
            current_defs = set()

        for instr in block:
            if instr.is_terminator:
                flush()
                bundles.append([instr])
                continue
            banks = Counter(
                self.register_file.bank_of(r)
                for r in instr.bankable_reads(self.regclass)
                if isinstance(r, PhysicalRegister)
            )
            depends = any(
                use in current_defs for use in instr.reg_uses()
            ) or any(d in current_defs for d in instr.reg_defs())
            bank_clash = any(
                current_banks.get(bank, 0) + count > 1
                for bank, count in banks.items()
            )
            if current and (len(current) >= self.issue_width or depends or bank_clash):
                flush()
            current.append(instr)
            current_banks.update(banks)
            current_defs.update(instr.reg_defs())
        flush()
        return bundles

    def block_cycles(self, block: BasicBlock) -> DsaCycleReport:
        """Cycle cost of one execution of *block*."""
        is_dsa = isinstance(self.register_file, BankSubgroupRegisterFile)
        report = DsaCycleReport()
        bundles = self.bundle_block(block)
        report.bundles = len(bundles)
        report.issue_cycles = float(len(bundles))
        for instr in block:
            conflicts = instruction_bank_conflicts(
                instr, self.register_file, self.regclass
            )
            report.conflict_penalty_cycles += conflicts
            if is_dsa:
                report.alignment_penalty_cycles += instruction_subgroup_violations(
                    instr, self.register_file, self.regclass
                )
            if instr.kind in (OpKind.LOAD, OpKind.STORE):
                report.memory_penalty_cycles += instr.latency - 1
                if instr.attrs.get("spill"):
                    report.spill_instructions += 1
            if instr.kind is OpKind.COPY:
                report.copy_instructions += 1
        report.cycles = (
            report.issue_cycles
            + report.conflict_penalty_cycles
            + report.alignment_penalty_cycles
            + report.memory_penalty_cycles
        )
        return report

    def _profile_block(
        self, function_name: str, block: BasicBlock,
        paths: dict[str, tuple[str, ...]], freq: float,
    ) -> None:
        """Attribute *block*'s conflict/alignment stall cycles to sites.

        Every hazard event in the cycle model costs exactly one cycle, so
        per-site cycles are ``events * freq`` — summing them over the
        function reconciles with ``conflict_penalty_cycles +
        alignment_penalty_cycles`` of :meth:`run`.
        """
        from ..obs import PROFILE
        from .static_stats import instruction_conflict_details

        loops = paths.get(block.label, ())
        for index, instr in enumerate(block):
            for detail, events in instruction_conflict_details(
                instr, self.register_file, self.regclass
            ):
                key = (
                    function_name, loops, block.label, index,
                    instr.opcode, detail,
                )
                PROFILE.record(
                    key,
                    conflicts=events * freq,
                    cycles=events * freq,
                    executions=freq,
                )

    def run(self, function: Function, am=None) -> DsaCycleReport:
        """Frequency-weighted cycle total over the whole function.

        With *am* given, block frequencies are solved over the cached CFG
        (still valid after allocation, which preserves block structure).
        """
        from ..obs import METRICS, PROFILE, TRACER

        with TRACER.span(
            "dsa-cycles", category="measure", function=function.name
        ):
            cfg = None
            if am is not None:
                from ..passes import CFGAnalysis

                cfg = am.get(CFGAnalysis)
            frequencies = expected_block_frequencies(function, cfg)
            total = DsaCycleReport()
            paths = None
            if PROFILE.enabled:
                from ..obs import loop_paths

                paths = loop_paths(function)
            for block in function.blocks:
                freq = frequencies.get(block.label, 0.0)
                if freq <= 0.0:
                    continue
                if paths is not None:
                    self._profile_block(function.name, block, paths, freq)
                per_exec = self.block_cycles(block)
                total.cycles += per_exec.cycles * freq
                total.bundles += per_exec.bundles
                total.issue_cycles += per_exec.issue_cycles * freq
                total.conflict_penalty_cycles += per_exec.conflict_penalty_cycles * freq
                total.alignment_penalty_cycles += (
                    per_exec.alignment_penalty_cycles * freq
                )
                total.memory_penalty_cycles += per_exec.memory_penalty_cycles * freq
                total.copy_instructions += round(per_exec.copy_instructions * freq)
                total.spill_instructions += round(per_exec.spill_instructions * freq)
        METRICS.observe("sim.dsa_cycles", total.cycles)
        return total

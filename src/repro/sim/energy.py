"""Register-file energy estimation.

The paper motivates compile-time conflict elimination with *energy* as
much as latency: "peak performance and performance per watt are both
crucial" (§I, citing GPUWattch), and the DSA drops its crossbar
specifically to cut power (§III-C).  This model attributes energy to the
register-file events an allocation controls:

* each register read/write costs one access (per-access energy scales
  mildly with bank count — bigger decoders/muxes per extra bank);
* each bank conflict costs an extra arbitration + buffered re-access;
* each subgroup violation costs an extra routing hop on the DSA;
* spill traffic pays the (much larger) memory-access energy.

Units are normalized to one single-bank register access = 1.0 energy
unit; the interesting outputs are *ratios* between allocation methods
and hardware points, not Joules.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..banks.register_file import BankSubgroupRegisterFile, RegisterFile
from ..ir.function import Function
from ..ir.instruction import OpKind
from ..ir.types import FP, PhysicalRegister, RegClass
from .dynamic import expected_block_frequencies
from .static_stats import instruction_bank_conflicts, instruction_subgroup_violations

#: Per-event energy, in units of one register access on a 1-bank file.
ACCESS_ENERGY = 1.0
#: Extra per-access cost per doubling of the bank count (decoder/mux).
BANK_SCALING = 0.05
#: A conflict re-arbitrates and re-reads through the operand buffer.
CONFLICT_ENERGY = 1.5
#: A subgroup misroute crosses the (simplified) inter-ALU network.
ALIGNMENT_ENERGY = 1.0
#: Spill traffic goes to memory: ~10x a register access (on-chip SRAM).
MEMORY_ENERGY = 10.0


@dataclass
class EnergyReport:
    """Frequency-weighted register-file energy of one function."""

    access_energy: float = 0.0
    conflict_energy: float = 0.0
    alignment_energy: float = 0.0
    spill_energy: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.access_energy
            + self.conflict_energy
            + self.alignment_energy
            + self.spill_energy
        )

    def merge(self, other: "EnergyReport") -> "EnergyReport":
        return EnergyReport(
            access_energy=self.access_energy + other.access_energy,
            conflict_energy=self.conflict_energy + other.conflict_energy,
            alignment_energy=self.alignment_energy + other.alignment_energy,
            spill_energy=self.spill_energy + other.spill_energy,
        )


def _per_access(register_file: RegisterFile) -> float:
    """Per-access energy, scaled by bank count (decode/mux overhead)."""
    doublings = max(0, register_file.num_banks.bit_length() - 1)
    return ACCESS_ENERGY * (1.0 + BANK_SCALING * doublings)


def estimate_energy(
    function: Function,
    register_file: RegisterFile,
    regclass: RegClass | None = FP,
) -> EnergyReport:
    """Frequency-weighted register-file energy of an allocated function."""
    is_dsa = isinstance(register_file, BankSubgroupRegisterFile)
    frequencies = expected_block_frequencies(function)
    per_access = _per_access(register_file)
    report = EnergyReport()
    for block in function.blocks:
        freq = frequencies.get(block.label, 0.0)
        if freq <= 0.0:
            continue
        for instr in block:
            accesses = sum(
                1
                for reg in instr.regs()
                if isinstance(reg, PhysicalRegister)
                and (regclass is None or reg.regclass == regclass)
            )
            report.access_energy += accesses * per_access * freq
            report.conflict_energy += (
                instruction_bank_conflicts(instr, register_file, regclass)
                * CONFLICT_ENERGY
                * freq
            )
            if is_dsa:
                report.alignment_energy += (
                    instruction_subgroup_violations(instr, register_file, regclass)
                    * ALIGNMENT_ENERGY
                    * freq
                )
            if instr.kind in (OpKind.LOAD, OpKind.STORE) and instr.attrs.get("spill"):
                report.spill_energy += MEMORY_ENERGY * freq
    return report

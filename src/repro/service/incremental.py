"""Incremental reallocation: re-run only the functions that changed.

A module request decomposes into per-function *fragments*, each an
ordinary function artifact keyed by its own content address
(:func:`~repro.service.artifact.cache_key`).  Between two submissions of
a module where K of N functions differ, the N-K unchanged fragments are
cache hits and only the K changed functions re-run the allocation
pipeline; the spliced module artifact is byte-identical to a
from-scratch build because fragments are canonical JSON
(see :func:`~repro.service.artifact.build_module_artifact`).

:class:`IncrementalAllocator` is the standalone front door used by
``repro allocate --ir module.ir --incremental``; the service queue wires
the same fragment reuse through its own
:class:`~repro.service.cache.AllocationCache` (function artifacts *are*
fragments, so a plain function request warms the module path and vice
versa).
"""

from __future__ import annotations

from .artifact import build_module_artifact
from .cache import AllocationCache


class FragmentStore:
    """Minimal fragment store: the ``get``/``put`` protocol over a dict.

    Used when no persistent :class:`AllocationCache` is wanted (tests,
    one-shot CLI runs without ``--store``).
    """

    def __init__(self) -> None:
        self._entries: dict[str, bytes] = {}

    def get(self, key: str) -> bytes | None:
        return self._entries.get(key)

    def put(self, key: str, data: bytes) -> None:
        self._entries[key] = data

    def __len__(self) -> int:
        return len(self._entries)


class IncrementalAllocator:
    """Fragment-reusing module allocator with run counters.

    *store* may be a directory path (persisted
    :class:`AllocationCache`), any object with ``get``/``put``, or
    ``None`` for a fresh in-memory :class:`FragmentStore`.
    """

    def __init__(self, store: object | str | None = None):
        if store is None:
            store = FragmentStore()
        elif isinstance(store, str):
            store = AllocationCache(store)
        self.store = store
        self.counters: dict[str, int] = {
            "modules": 0,
            "functions_total": 0,
            "functions_reused": 0,
            "functions_executed": 0,
        }

    def allocate(
        self,
        module,
        file_spec: dict,
        method: str,
        flags: dict | None = None,
    ) -> dict:
        """Build (or incrementally rebuild) one module artifact."""
        artifact = build_module_artifact(
            module,
            file_spec,
            method,
            flags,
            store=self.store,
            counters=self.counters,
        )
        self.counters["modules"] += 1
        return artifact

"""Small Python client for the allocation service.

Stdlib-only (``urllib``).  Mirrors the server's endpoints with
submit/poll/result calls plus a blocking :meth:`ServiceClient.allocate`
convenience::

    from repro.service.client import ServiceClient

    client = ServiceClient("http://127.0.0.1:8377")
    status = client.submit(ir_text, registers=32, banks=2, method="bpc")
    status = client.wait(status["job_id"])
    artifact = client.result_json(status["job_id"])
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request


class ServiceError(RuntimeError):
    """Transport failure or an error response from the service."""

    def __init__(self, message: str, status: int | None = None):
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Thin HTTP/JSON client; one instance per server base URL."""

    def __init__(self, base_url: str, timeout: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(
        self, path: str, body: dict | None = None, raw: bool = False
    ):
        url = f"{self.base_url}{path}"
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                payload = resp.read()
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except (json.JSONDecodeError, AttributeError):
                pass
            raise ServiceError(
                f"{path}: HTTP {exc.code}: {detail}", status=exc.code
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(f"{path}: {exc.reason}") from exc
        return payload if raw else json.loads(payload)

    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._request("/healthz")

    def stats(self) -> dict:
        return self._request("/v1/stats")

    def submit(
        self,
        ir: str,
        *,
        registers: int,
        banks: int = 2,
        subgroups: int = 0,
        method: str = "bpc",
        flags: dict | None = None,
        deadline_ms: float | None = None,
    ) -> dict:
        """Enqueue one allocation; returns the job status dict."""
        body: dict = {
            "ir": ir,
            "file": {
                "registers": registers,
                "banks": banks,
                "subgroups": subgroups,
            },
            "method": method,
        }
        if flags:
            body["flags"] = flags
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        return self._request("/v1/submit", body)

    def poll(self, job_id: str) -> dict:
        return self._request(f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> bytes:
        """The artifact's canonical bytes, verbatim from the cache."""
        return self._request(f"/v1/jobs/{job_id}/result", raw=True)

    def result_json(self, job_id: str) -> dict:
        return json.loads(self.result(job_id))

    def wait(
        self, job_id: str, timeout: float = 30.0, interval: float = 0.02
    ) -> dict:
        """Poll until the job leaves the queue or *timeout* elapses."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.poll(job_id)
            if status["status"] in ("done", "failed"):
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {status['status']} after {timeout}s"
                )
            time.sleep(interval)

    def allocate(self, ir: str, **kwargs) -> tuple[dict, dict]:
        """submit + wait + result: ``(status, artifact)``."""
        timeout = kwargs.pop("timeout", 30.0)
        status = self.submit(ir, **kwargs)
        status = self.wait(status["job_id"], timeout=timeout)
        if status["status"] == "failed":
            raise ServiceError(
                f"job {status['job_id']} failed: {status.get('error')}"
            )
        return status, self.result_json(status["job_id"])

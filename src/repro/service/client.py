"""Small Python client for the allocation service.

Stdlib-only (``urllib``).  Mirrors the server's endpoints with
submit/poll/result calls plus a blocking :meth:`ServiceClient.allocate`
convenience::

    from repro.service.client import ServiceClient

    client = ServiceClient("http://127.0.0.1:8377")
    status = client.submit(ir_text, registers=32, banks=2, method="bpc")
    status = client.wait(status["job_id"])
    artifact = client.result_json(status["job_id"])

Resilience (see ``docs/RESILIENCE.md``):

* every call carries a socket timeout (no hung-forever requests);
* transient failures — connection errors, timeouts, ``429``/``503``
  shed responses — are retried up to ``retries`` times with exponential
  backoff plus deterministic jitter, honoring the server's
  ``Retry-After`` when present.  Retrying a submit is safe: requests
  are content-addressed and coalesced server-side, so a duplicate
  submission attaches to the same job instead of redoing work;
* a **circuit breaker** trips OPEN after ``breaker_threshold``
  consecutive transport failures and fails fast (no network I/O) until
  ``breaker_cooldown_s`` elapses, then HALF-OPEN admits one trial call;
* the ``client.request`` fault site (:mod:`repro.resilience.faults`)
  can inject timeouts and connection resets ahead of the socket for
  chaos testing.

Non-transient HTTP errors (``400`` bad request, ``404``, a ``500`` job
failure) are never retried — they would fail identically every time.

Telemetry: pass a :class:`~repro.obs.telemetry.TraceContext` to
:meth:`ServiceClient.submit` / :meth:`~ServiceClient.submit_request` /
:meth:`~ServiceClient.allocate` and the client sends it as the
``X-Repro-Trace`` header (submits only — polls are uninteresting spam);
retries and breaker trips become span events on that trace.
"""

from __future__ import annotations

import json
import random
import socket
import time
import urllib.error
import urllib.request

from ..obs.telemetry import TELEMETRY, TRACE_HEADER, TraceContext
from ..resilience.faults import FAULTS, InjectedFault

#: HTTP statuses worth retrying: the server shed load, not failed us.
RETRYABLE_STATUSES = (429, 503)

#: Upper bound on any single backoff sleep (seconds).
MAX_BACKOFF_S = 5.0


class ServiceError(RuntimeError):
    """Transport failure or an error response from the service."""

    def __init__(
        self, message: str, status: int | None = None, draining: bool = False
    ):
        super().__init__(message)
        self.status = status
        #: True for a 503 from a *draining* service: retrying the same
        #: endpoint is pointless — the router hands the key elsewhere.
        self.draining = draining


class CircuitOpenError(ServiceError):
    """The client's circuit breaker is open; no request was attempted."""


class _CircuitBreaker:
    """CLOSED → OPEN after N consecutive failures → HALF_OPEN after a
    cooldown admits one trial → CLOSED on success, OPEN on failure."""

    def __init__(self, threshold: int, cooldown_s: float):
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.failures = 0
        self.opened_mono: float | None = None

    @property
    def state(self) -> str:
        if self.opened_mono is None:
            return "closed"
        if time.monotonic() - self.opened_mono >= self.cooldown_s:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        return self.state != "open"

    def record(self, ok: bool) -> None:
        if ok:
            self.failures = 0
            self.opened_mono = None
            return
        self.failures += 1
        if self.failures >= self.threshold or self.state == "half-open":
            self.opened_mono = time.monotonic()


class ServiceClient:
    """Thin HTTP/JSON client; one instance per server base URL."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 10.0,
        *,
        retries: int = 2,
        backoff_s: float = 0.1,
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 5.0,
        jitter_seed: int = 0,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self.breaker = _CircuitBreaker(breaker_threshold, breaker_cooldown_s)
        # Seeded jitter keeps chaos runs reproducible end to end.
        self._rng = random.Random(jitter_seed)

    # ------------------------------------------------------------------
    def _note(self, trace: TraceContext | None, name: str, **args) -> None:
        """Attach an instantaneous event to *trace* (or the thread's
        current context when none was threaded through)."""
        TELEMETRY.event_for(trace or TELEMETRY.current(), name, **args)

    def _request_once(
        self,
        path: str,
        body: dict | None = None,
        raw: bool = False,
        trace: TraceContext | None = None,
    ):
        if FAULTS.enabled:
            point = FAULTS.fire("client.request", label=path)
            if point is not None:
                if point.mode == "timeout":
                    raise socket.timeout("injected client timeout")
                if point.mode == "connreset":
                    raise ConnectionResetError("injected connection reset")
        url = f"{self.base_url}{path}"
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if trace is not None and TELEMETRY.enabled:
            headers[TRACE_HEADER] = trace.header()
        req = urllib.request.Request(url, data=data, headers=headers)
        with urllib.request.urlopen(req, timeout=self.timeout) as resp:
            payload = resp.read()
        return payload if raw else json.loads(payload)

    def _request(
        self,
        path: str,
        body: dict | None = None,
        raw: bool = False,
        trace: TraceContext | None = None,
    ):
        if not self.breaker.allow():
            self._note(trace, "client.breaker_open", path=path)
            raise CircuitOpenError(
                f"{path}: circuit breaker open after "
                f"{self.breaker.failures} consecutive failures"
            )
        last_error: ServiceError | None = None
        for attempt in range(self.retries + 1):
            retry_after: float | None = None
            try:
                result = self._request_once(path, body, raw, trace)
                self.breaker.record(ok=True)
                return result
            except urllib.error.HTTPError as exc:
                detail = exc.read().decode("utf-8", "replace")
                draining = False
                try:
                    parsed = json.loads(detail)
                    draining = bool(parsed.get("draining"))
                    detail = parsed.get("error", detail)
                except (json.JSONDecodeError, AttributeError):
                    pass
                error = ServiceError(
                    f"{path}: HTTP {exc.code}: {detail}",
                    status=exc.code,
                    draining=draining,
                )
                if exc.code not in RETRYABLE_STATUSES or draining:
                    # A definitive answer from the server (a draining
                    # 503 included — this endpoint will keep refusing
                    # until it restarts): the breaker stays closed
                    # (transport works) and we do not retry.
                    self.breaker.record(ok=True)
                    raise error from exc
                header = exc.headers.get("Retry-After") if exc.headers else None
                if header is not None:
                    try:
                        retry_after = float(header)
                    except ValueError:
                        retry_after = None
                last_error = error
            except (
                urllib.error.URLError,
                socket.timeout,
                ConnectionError,
                InjectedFault,
            ) as exc:
                reason = getattr(exc, "reason", exc)
                last_error = ServiceError(f"{path}: {reason}")
                self.breaker.record(ok=False)
                if not self.breaker.allow():
                    self._note(
                        trace, "client.breaker_trip",
                        path=path, failures=self.breaker.failures,
                    )
                    break
            if attempt < self.retries:
                self._note(
                    trace, "client.retry",
                    path=path, attempt=attempt + 1,
                    error=str(last_error)[:160],
                )
                time.sleep(self._backoff(attempt, retry_after))
        raise last_error  # type: ignore[misc]

    def _backoff(self, attempt: int, retry_after: float | None) -> float:
        """Exponential backoff with jitter, deferring to ``Retry-After``."""
        if retry_after is not None:
            return min(max(retry_after, 0.0), MAX_BACKOFF_S)
        base = self.backoff_s * (2 ** attempt)
        # Full jitter on the top half: [base/2, base].
        return min(base * (0.5 + self._rng.random() / 2.0), MAX_BACKOFF_S)

    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._request("/healthz")

    def stats(self) -> dict:
        return self._request("/v1/stats")

    def submit(
        self,
        ir: str,
        *,
        registers: int,
        banks: int = 2,
        subgroups: int = 0,
        method: str = "bpc",
        flags: dict | None = None,
        machine: dict | str | None = None,
        deadline_ms: float | None = None,
        trace: TraceContext | None = None,
    ) -> dict:
        """Enqueue one allocation; returns the job status dict.

        *machine* selects the cycle model measured into the artifact —
        ``"ooo"`` or a spec dict like ``{"model": "ooo", "issue_width":
        4}``; omitted means the in-order default and keeps the request
        byte-compatible with machine-unaware servers.
        """
        body: dict = {
            "ir": ir,
            "file": {
                "registers": registers,
                "banks": banks,
                "subgroups": subgroups,
            },
            "method": method,
        }
        if flags:
            body["flags"] = flags
        if machine is not None:
            body["machine"] = machine
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        return self._request("/v1/submit", body, trace=trace)

    def submit_request(
        self, body: dict, trace: TraceContext | None = None
    ) -> dict:
        """Enqueue a pre-built request body (the shard router's path).

        The router normalizes the request once and forwards the
        canonical fields verbatim, so re-normalization at the shard is
        idempotent and the content address cannot fork across hops.
        """
        return self._request("/v1/submit", body, trace=trace)

    def poll(self, job_id: str) -> dict:
        return self._request(f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> bytes:
        """The artifact's canonical bytes, verbatim from the cache."""
        return self._request(f"/v1/jobs/{job_id}/result", raw=True)

    def result_json(self, job_id: str) -> dict:
        return json.loads(self.result(job_id))

    def wait(
        self, job_id: str, timeout: float = 30.0, interval: float = 0.02
    ) -> dict:
        """Poll until the job leaves the queue or *timeout* elapses."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.poll(job_id)
            if status["status"] in ("done", "failed"):
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {status['status']} after {timeout}s"
                )
            time.sleep(interval)

    def allocate(self, ir: str, **kwargs) -> tuple[dict, dict]:
        """submit + wait + result: ``(status, artifact)``."""
        timeout = kwargs.pop("timeout", 30.0)
        status = self.submit(ir, **kwargs)
        status = self.wait(status["job_id"], timeout=timeout)
        if status["status"] == "failed":
            raise ServiceError(
                f"job {status['job_id']} failed: {status.get('error')}"
            )
        return status, self.result_json(status["job_id"])

    # ------------------------------------------------------------------
    # Lifecycle control
    # ------------------------------------------------------------------
    def drain(self) -> dict:
        """``POST /v1/admin/drain`` — idempotent; returns the lifecycle
        view (poll until ``drained`` is true before restarting)."""
        return self._request("/v1/admin/drain", body={})

    # ------------------------------------------------------------------
    # Telemetry fetchers
    # ------------------------------------------------------------------
    def metrics_json(self) -> dict:
        """``GET /v1/metrics?format=json`` — the labeled-sample form the
        shard router aggregates."""
        return self._request("/v1/metrics?format=json")

    def metrics_text(self) -> str:
        """``GET /v1/metrics`` — the Prometheus text exposition."""
        return self._request("/v1/metrics", raw=True).decode("utf-8")

    def trace(self, trace_id: str) -> dict:
        """``GET /v1/trace/<trace_id>`` — the server's merged span
        payload (:func:`~repro.obs.telemetry.chrome_trace` renders it)."""
        return self._request(f"/v1/trace/{trace_id}")

"""Deadline-tiered degradation down the method ladder.

PresCount's three compared methods form a natural quality-vs-latency
ladder: ``bpc`` (bank assignment + pressure counting, best quality,
slowest) → ``bcr`` (per-instruction hinting) → ``non`` (plain greedy,
cheapest).  When a request's deadline budget cannot fit the tier it
asked for, the service walks down the ladder and serves the best tier
that still fits — the bottom rung is always served rather than timing
the request out.

Per-tier cost estimates come from :class:`TierCostModel`, an
exponentially-weighted moving average of observed per-request execution
seconds, seeded with conservative priors so the very first tiny-deadline
request already degrades deterministically instead of being waved
through on a zero estimate.
"""

from __future__ import annotations

import threading

#: Quality ladder, best tier first.
LADDER = ("bpc", "bcr", "non")

#: Seed estimates (seconds per request) used until real observations
#: arrive.  Magnitudes reflect the relative pipeline cost of each method
#: on the demo-sized kernels; the EWMA converges to reality quickly.
PRIOR_COST_S = {"bpc": 0.050, "bcr": 0.020, "non": 0.010}


def ladder_from(method: str) -> tuple[str, ...]:
    """The tiers at or below *method*, best first."""
    if method not in LADDER:
        raise ValueError(f"unknown method {method!r}; expected one of {LADDER}")
    return LADDER[LADDER.index(method):]


class TierCostModel:
    """EWMA of per-tier execution latency (thread-safe)."""

    def __init__(self, alpha: float = 0.3, priors: dict | None = None):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._lock = threading.Lock()
        self._estimates = dict(priors if priors is not None else PRIOR_COST_S)
        self._observations = {tier: 0 for tier in self._estimates}

    def observe(self, method: str, seconds: float) -> None:
        with self._lock:
            old = self._estimates.get(method)
            if old is None or not self._observations.get(method):
                self._estimates[method] = seconds
            else:
                self._estimates[method] = (
                    self.alpha * seconds + (1 - self.alpha) * old
                )
            self._observations[method] = self._observations.get(method, 0) + 1

    def estimate(self, method: str) -> float:
        with self._lock:
            return self._estimates.get(method, 0.0)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                tier: {
                    "estimate_s": self._estimates[tier],
                    "observations": self._observations.get(tier, 0),
                }
                for tier in sorted(self._estimates)
            }


def select_tier(
    requested: str, remaining_s: float | None, model: TierCostModel
) -> tuple[str, bool]:
    """Pick the tier to execute given the remaining deadline budget.

    Returns ``(tier, degraded)``.  ``remaining_s is None`` means the
    request carries no deadline: the requested tier is served.  An
    exhausted budget (``<= 0``) drops straight to the bottom rung.
    """
    ladder = ladder_from(requested)
    if remaining_s is None:
        return requested, False
    if remaining_s <= 0:
        return ladder[-1], ladder[-1] != requested
    for tier in ladder:
        if model.estimate(tier) <= remaining_s:
            return tier, tier != requested
    return ladder[-1], ladder[-1] != requested

"""HTTP/JSON front-end for the allocation service (``repro serve``).

Stdlib-only (``http.server``): a :class:`ThreadingHTTPServer` whose
handlers call straight into one shared
:class:`~repro.service.queue.AllocationService`.

Endpoints (all JSON):

========================  ====================================================
``GET  /healthz``         liveness probe → ``{"ok": true}``
``GET  /v1/stats``        counters, queue depth, cache stats, tier estimates,
                          dead-letter record, fault-plan accounting
``POST /v1/submit``       enqueue a request → ``{job_id, cache, status}``
``GET  /v1/jobs/<id>``    job status (no artifact)
``GET  /v1/jobs/<id>/result``  the stored artifact bytes, verbatim
``POST /v1/allocate``     submit + wait (``?timeout_s=``) → status + artifact
``GET  /v1/metrics``      live metrics — Prometheus text exposition
                          (``?format=json`` for the raw sample)
``GET  /v1/trace/<trace_id>``  buffered spans of one distributed trace
========================  ====================================================

``/v1/jobs/<id>/result`` writes the cache's canonical bytes directly to
the socket — a cache hit is bit-identical to the cold run that filled
the entry, by construction.

Overload behavior (see ``docs/RESILIENCE.md``):

* a full service queue sheds the submit with **503** + ``Retry-After``
  (:class:`~repro.service.queue.ServiceOverloadError`);
* more than ``max_concurrent_requests`` simultaneous handlers sheds
  with **429** + ``Retry-After`` before any work is done;
* the synchronous ``/v1/allocate`` wait is capped at
  :data:`MAX_SYNC_TIMEOUT_S` regardless of the client's ``timeout_s``,
  so a stuck client cannot pin a handler thread forever — an unfinished
  job comes back as ``202`` with ``Retry-After`` and remains pollable.

The ``server.request`` fault site (:mod:`repro.resilience.faults`) can
turn any request into an injected ``5xx`` (``error``), a stall
(``delay``), or a dropped connection (``reset``) for chaos testing.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from ..obs.telemetry import TELEMETRY, TRACE_HEADER, TraceContext, render_prometheus
from ..resilience.faults import FAULTS
from .artifact import RequestError
from .queue import (
    AllocationService,
    Job,
    ServiceConfig,
    ServiceDrainingError,
    ServiceOverloadError,
)

#: Every route the service answers, as ``(method, path template)``.
#: The docs-check test cross-references this against ``docs/SERVICE.md``
#: and a live server, so neither the table nor the handlers can drift.
ROUTES: tuple[tuple[str, str], ...] = (
    ("GET", "/healthz"),
    ("GET", "/v1/stats"),
    ("POST", "/v1/submit"),
    ("GET", "/v1/jobs/<id>"),
    ("GET", "/v1/jobs/<id>/result"),
    ("POST", "/v1/allocate"),
    ("GET", "/v1/metrics"),
    ("GET", "/v1/trace/<trace_id>"),
    ("POST", "/v1/admin/drain"),
)

#: Default wait bound of the synchronous ``/v1/allocate`` endpoint.
DEFAULT_SYNC_TIMEOUT_S = 30.0

#: Hard cap on the synchronous wait — the server-side request deadline.
MAX_SYNC_TIMEOUT_S = 120.0


def _job_status(job: Job) -> dict:
    return job.describe()


class ServiceHandler(BaseHTTPRequestHandler):
    """One request; the service lives on ``self.server.service``."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # quiet by default; the serve command flips this on with -v
    verbose = False

    def log_message(self, fmt, *args):  # noqa: D102 (stdlib signature)
        if self.verbose:
            super().log_message(fmt, *args)

    # ------------------------------------------------------------------
    def _send_json(
        self,
        payload: dict,
        status: int = 200,
        retry_after_s: float | None = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send_bytes(body, status, retry_after_s=retry_after_s)

    def _send_bytes(
        self,
        body: bytes,
        status: int = 200,
        retry_after_s: float | None = None,
        content_type: str = "application/json",
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if retry_after_s is not None:
            # Retry-After is integral seconds; round up so 0.5s ≠ "now".
            self.send_header("Retry-After", str(max(1, int(retry_after_s + 0.999))))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise RequestError("empty request body")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise RequestError(f"invalid JSON body: {exc}") from exc

    @property
    def service(self) -> AllocationService:
        return self.server.service  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Distributed tracing (see repro.obs.telemetry)
    # ------------------------------------------------------------------

    #: Span recorded around submit/allocate; the shard frontend renames
    #: it so merged traces read frontend → shard → worker.
    span_name = "server.request"

    def _trace_context(self) -> TraceContext | None:
        """The caller's trace coordinates, from ``X-Repro-Trace``."""
        if not TELEMETRY.enabled:
            return None
        return TraceContext.parse(self.headers.get(TRACE_HEADER))

    # ------------------------------------------------------------------
    # Guard rail every request passes through: fault injection first,
    # then the concurrent-handler limit.  The incoming trace context is
    # activated for the whole handler so deep call sites (fault
    # injector, cache probes) attach events to the right trace.
    # ------------------------------------------------------------------
    def _guarded(self, handler) -> None:
        ctx = self._trace_context()
        if ctx is not None:
            with TELEMETRY.activate(ctx):
                self._guarded_inner(handler)
        else:
            self._guarded_inner(handler)

    def _guarded_inner(self, handler) -> None:
        if FAULTS.enabled:
            point = FAULTS.fire("server.request", label=self.path)
            if point is not None:
                if point.mode == "reset":
                    # Drop the connection with no response at all — the
                    # client sees a reset / empty reply.
                    self.close_connection = True
                    try:
                        self.connection.close()
                    except OSError:
                        pass
                    return
                if point.mode == "delay":
                    time.sleep(float(point.detail.get("delay_s", 0.05)))
                elif point.mode == "error":
                    status = int(point.detail.get("status", 500))
                    self._send_json(
                        {"error": "injected server fault", "injected": True},
                        status,
                    )
                    return
        slots = self.server.request_slots  # type: ignore[attr-defined]
        if not slots.acquire(blocking=False):
            self._send_json(
                {"error": "too many concurrent requests"},
                429,
                retry_after_s=1.0,
            )
            return
        try:
            handler()
        finally:
            slots.release()

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._guarded(self._do_get)

    def _do_get(self) -> None:
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        if url.path == "/healthz":
            self._send_json({"ok": True})
        elif url.path == "/v1/stats":
            self._send_json(self.service.stats())
        elif url.path == "/v1/metrics":
            self._get_metrics(url)
        elif len(parts) == 3 and parts[:2] == ["v1", "trace"]:
            self._send_json(self._trace_payload(parts[2]))
        elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            self._get_job(parts[2], want_result=False)
        elif len(parts) == 4 and parts[:2] == ["v1", "jobs"] and parts[3] == "result":
            self._get_job(parts[2], want_result=True)
        else:
            self._send_json({"error": f"no such path {url.path!r}"}, 404)

    # -- live metrics / trace flush ------------------------------------

    def _metrics_samples(self) -> list:
        """``[(labels, sample), ...]`` — one unlabeled sample here; the
        shard frontend overrides this with per-shard labeled samples."""
        return [({}, self.service.metrics_sample())]

    def _get_metrics(self, url) -> None:
        samples = self._metrics_samples()
        query = parse_qs(url.query)
        if query.get("format", [""])[0] == "json":
            self._send_json(
                {"samples": [{"labels": l, "sample": s} for l, s in samples]}
            )
            return
        text = render_prometheus(samples)
        self._send_bytes(
            text.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    def _trace_payload(self, trace_id: str) -> dict:
        """Everything this process buffered for one trace; the shard
        frontend overrides this to also flush every shard's buffers."""
        return {"trace_id": trace_id, "spans": TELEMETRY.spans_for(trace_id)}

    def _get_job(self, job_id: str, want_result: bool) -> None:
        job = self.service.get(job_id)
        if job is None:
            # Dead-lettered jobs outlive the job table (and, with a
            # journal, the process): answer from the durable record.
            view = self.service.lookup(job_id)
            if view is None:
                self._send_json({"error": f"unknown job {job_id!r}"}, 404)
            else:
                self._send_json(view, 500 if want_result else 200)
            return
        if not want_result:
            self._send_json(_job_status(job))
            return
        if job.status == "failed":
            self._send_json(_job_status(job), 500)
        elif job.status != "done":
            self._send_json(_job_status(job), 202, retry_after_s=1.0)
        else:
            self._send_bytes(job.artifact or b"{}")

    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        self._guarded(self._do_post)

    def _do_post(self) -> None:
        url = urlparse(self.path)
        try:
            if url.path == "/v1/submit":
                with self._request_span() as span:
                    job = self._submit(self._read_body(), span.ctx)
                self._send_json(_job_status(job), 202 if job.status == "queued" else 200)
            elif url.path == "/v1/allocate":
                self._allocate_sync(url)
            elif url.path == "/v1/admin/drain":
                self._drain(url)
            else:
                self._send_json({"error": f"no such path {url.path!r}"}, 404)
        except RequestError as exc:
            self._send_json({"error": str(exc)}, 400)
        except ServiceOverloadError as exc:
            payload = {"error": str(exc)}
            if isinstance(exc, ServiceDrainingError):
                payload["draining"] = True
            self._send_json(payload, 503, retry_after_s=exc.retry_after_s)

    def _drain(self, url) -> None:
        """Enter draining mode (idempotent; body is optional and ignored).

        Returns the live lifecycle view so callers can poll this same
        endpoint until ``drained`` flips true before restarting.
        """
        self._send_json(self.service.drain())

    def _request_span(self):
        """A :attr:`span_name` span under the caller's trace context,
        rooting a fresh trace when an untraced submit arrives while
        telemetry is on."""
        ctx = TELEMETRY.current() or self._trace_context()
        if ctx is None and TELEMETRY.enabled:
            ctx = TraceContext.new(path=self.path)
        return TELEMETRY.span(ctx, self.span_name, category="server", path=self.path)

    def _submit(self, body: dict, ctx: TraceContext | None) -> Job:
        return self.service.submit(body, trace=ctx)

    def _allocate_sync(self, url) -> None:
        query = parse_qs(url.query)
        timeout = float(
            query.get("timeout_s", [DEFAULT_SYNC_TIMEOUT_S])[0]
        )
        timeout = min(max(timeout, 0.0), MAX_SYNC_TIMEOUT_S)
        with self._request_span() as span:
            job = self._submit(self._read_body(), span.ctx)
            job.wait(timeout)
        status = _job_status(job)
        if job.status == "failed":
            self._send_json(status, 500)
        elif job.status != "done":
            self._send_json(status, 202, retry_after_s=1.0)
        else:
            status["artifact"] = json.loads(job.artifact)
            self._send_json(status)


class ServiceServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`AllocationService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: AllocationService):
        super().__init__(address, ServiceHandler)
        self.service = service
        self.request_slots = threading.BoundedSemaphore(
            max(1, service.config.max_concurrent_requests)
        )


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    config: ServiceConfig | None = None,
    service: AllocationService | None = None,
) -> ServiceServer:
    """Build (but do not run) a server; ``port=0`` binds a free port.

    The dispatcher is started; callers own ``serve_forever`` /
    ``shutdown`` plus :func:`shutdown_server` for the service side.
    """
    service = service or AllocationService(config)
    service.start()
    return ServiceServer((host, port), service)


def shutdown_server(server: ServiceServer) -> None:
    """Stop the HTTP loop and the service dispatcher."""
    server.shutdown()
    server.server_close()
    server.service.stop()

"""Content-addressed allocation cache.

Keys are :func:`repro.service.artifact.cache_key` digests; values are
the *canonical bytes* of a result artifact.  Storing bytes (not parsed
dicts) is what lets a hit return a response bit-identical to the cold
run that populated the entry.

Two layers:

* an in-memory LRU (``max_entries``), which every lookup goes through;
* an optional on-disk layer (``cache_dir``) laid out content-addressed
  as ``<dir>/<key[:2]>/<key>.json`` with atomic (write-temp-then-rename)
  inserts, so a cache directory can be shared between server restarts —
  or even between concurrent servers — without torn reads.

The cache is thread-safe and emits hit/miss counters into
:data:`repro.obs.METRICS` (no-ops while metrics are disabled).
"""

from __future__ import annotations

import os
import tempfile
import threading
from collections import OrderedDict

from ..obs import METRICS


class AllocationCache:
    """Thread-safe content-addressed store of artifact bytes."""

    def __init__(self, cache_dir: str | None = None, max_entries: int = 4096):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.cache_dir = cache_dir
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self.hits = 0
        self.misses = 0
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, key[:2], f"{key}.json")

    def get(self, key: str) -> bytes | None:
        """Artifact bytes for *key*, or ``None`` on a miss."""
        with self._lock:
            data = self._entries.get(key)
            if data is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                METRICS.inc("service.cache.hit")
                return data
        if self.cache_dir:
            try:
                with open(self._path(key), "rb") as fh:
                    data = fh.read()
            except OSError:
                data = None
            if data is not None:
                with self._lock:
                    self._remember(key, data)
                    self.hits += 1
                METRICS.inc("service.cache.hit")
                METRICS.inc("service.cache.disk_hit")
                return data
        with self._lock:
            self.misses += 1
        METRICS.inc("service.cache.miss")
        return None

    def put(self, key: str, data: bytes) -> None:
        """Insert artifact bytes under *key* (idempotent: same key, same
        content — a second insert is a no-op)."""
        with self._lock:
            self._remember(key, data)
        if self.cache_dir:
            path = self._path(key)
            if not os.path.exists(path):
                os.makedirs(os.path.dirname(path), exist_ok=True)
                fd, tmp = tempfile.mkstemp(
                    dir=os.path.dirname(path), suffix=".tmp"
                )
                try:
                    with os.fdopen(fd, "wb") as fh:
                        fh.write(data)
                    os.replace(tmp, path)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
        METRICS.inc("service.cache.insert")

    def _remember(self, key: str, data: bytes) -> None:
        self._entries[key] = data
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._entries:
                return True
        return bool(self.cache_dir) and os.path.exists(self._path(key))

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }

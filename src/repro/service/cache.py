"""Content-addressed allocation cache.

Keys are :func:`repro.service.artifact.cache_key` digests; values are
the *canonical bytes* of a result artifact.  Storing bytes (not parsed
dicts) is what lets a hit return a response bit-identical to the cold
run that populated the entry.

Two layers:

* an in-memory LRU (``max_entries``), which every lookup goes through;
* an optional on-disk layer (``cache_dir``) laid out content-addressed
  as ``<dir>/<key[:2]>/<key>.json`` with atomic (write-temp-then-rename)
  inserts, so a cache directory can be shared between server restarts —
  or even between concurrent servers — without torn reads.

Disk entries are **checksummed**: the stored file is a one-line header
(``repro-cache/2 <sha256-of-payload>``) followed by the artifact bytes.
A reader that finds a missing/garbled header or a payload that does not
hash to the header's digest — a bit flip, a truncated or torn write, a
foreign file — **quarantines** the entry (renames it to
``<key>.quarantined``) and reports a miss, so the service recomputes
instead of serving corruption.  Disk write failures degrade the entry to
memory-only rather than failing the request.

Fault-injection hooks (:data:`repro.resilience.faults.FAULTS`) sit on
the disk read and write paths; they cost one attribute check when no
fault plan is armed.

The cache is thread-safe and emits hit/miss/quarantine counters into
:data:`repro.obs.METRICS` (no-ops while metrics are disabled).
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
from collections import OrderedDict

from ..obs import METRICS
from ..resilience.faults import FAULTS

#: On-disk entry format marker; bump when the header layout changes.
DISK_FORMAT = b"repro-cache/2"


def _frame(data: bytes) -> bytes:
    """Wrap artifact bytes in the checksummed on-disk frame."""
    digest = hashlib.sha256(data).hexdigest().encode("ascii")
    return DISK_FORMAT + b" " + digest + b"\n" + data


def _unframe(raw: bytes) -> bytes | None:
    """Verify a framed disk entry; ``None`` when corrupt or foreign."""
    header, sep, payload = raw.partition(b"\n")
    if not sep:
        return None
    parts = header.split(b" ")
    if len(parts) != 2 or parts[0] != DISK_FORMAT:
        return None
    if hashlib.sha256(payload).hexdigest().encode("ascii") != parts[1]:
        return None
    return payload


class AllocationCache:
    """Thread-safe content-addressed store of artifact bytes."""

    def __init__(self, cache_dir: str | None = None, max_entries: int = 4096):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.cache_dir = cache_dir
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self.disk_write_errors = 0
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, key[:2], f"{key}.json")

    def get(self, key: str) -> bytes | None:
        """Artifact bytes for *key*, or ``None`` on a miss."""
        found = self.get_entry(key)
        return None if found is None else found[0]

    def get_entry(self, key: str) -> tuple[bytes, str] | None:
        """Like :meth:`get`, but also names where the bytes came from
        (``"memory"`` or ``"disk"``) so callers can verify disk loads
        more aggressively than entries this process produced."""
        with self._lock:
            data = self._entries.get(key)
            if data is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                METRICS.inc("service.cache.hit")
                return data, "memory"
        if self.cache_dir:
            data = self._read_disk(key)
            if data is not None:
                with self._lock:
                    self._remember(key, data)
                    self.hits += 1
                METRICS.inc("service.cache.hit")
                METRICS.inc("service.cache.disk_hit")
                return data, "disk"
        with self._lock:
            self.misses += 1
        METRICS.inc("service.cache.miss")
        return None

    def _read_disk(self, key: str) -> bytes | None:
        """Read + checksum-verify one disk entry; quarantine on failure."""
        try:
            with open(self._path(key), "rb") as fh:
                raw = fh.read()
        except OSError:
            return None
        if FAULTS.enabled:
            raw, _ = FAULTS.corrupt("cache.disk.read", raw, label=key)
        payload = _unframe(raw)
        if payload is None:
            self.quarantine(key)
            return None
        return payload

    def quarantine(self, key: str) -> None:
        """Move a corrupt or distrusted entry out of the lookup path.

        The entry is dropped from memory and its disk file renamed to
        ``<key>.quarantined`` (kept for post-mortems, invisible to
        :meth:`get`), so the next request recomputes and re-inserts a
        clean entry — self-healing, never fail-silent.
        """
        with self._lock:
            self._entries.pop(key, None)
            self.quarantined += 1
        if self.cache_dir:
            path = self._path(key)
            try:
                os.replace(path, path[: -len(".json")] + ".quarantined")
            except OSError:
                try:
                    os.unlink(path)
                except OSError:
                    pass
        METRICS.inc("service.cache.quarantined")

    def put(self, key: str, data: bytes) -> None:
        """Insert artifact bytes under *key* (idempotent: same key, same
        content — a second insert is a no-op)."""
        with self._lock:
            self._remember(key, data)
        if self.cache_dir:
            path = self._path(key)
            if not os.path.exists(path):
                try:
                    self._write_disk(path, data, key)
                except OSError:
                    # A full/broken disk degrades the entry to
                    # memory-only instead of failing the request.
                    with self._lock:
                        self.disk_write_errors += 1
                    METRICS.inc("service.cache.disk_write_error")
        METRICS.inc("service.cache.insert")

    def _write_disk(self, path: str, data: bytes, key: str) -> None:
        framed = _frame(data)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        if FAULTS.enabled:
            point = FAULTS.fire("cache.disk.write", label=key)
            if point is not None:
                if point.mode == "error":
                    raise OSError("injected cache disk write error")
                if point.mode == "partial":
                    # A torn write lands on the *final* path, simulating
                    # a crashed non-atomic writer sharing the directory;
                    # the checksum frame is what catches it on read.
                    keep = int(point.detail.get("keep", len(framed) // 2))
                    with open(path, "wb") as fh:
                        fh.write(framed[: max(0, keep)])
                    return
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(framed)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _remember(self, key: str, data: bytes) -> None:
        self._entries[key] = data
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._entries:
                return True
        return bool(self.cache_dir) and os.path.exists(self._path(key))

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "quarantined": self.quarantined,
                "disk_write_errors": self.disk_write_errors,
            }

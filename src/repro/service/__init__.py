"""Allocation-as-a-service: serve repeated allocation requests.

The first subsystem that makes the reproduction behave like a serving
stack rather than a batch script (see ``docs/SERVICE.md``):

* :mod:`.artifact` — the shared result-artifact schema and the
  content-addressed :func:`~repro.service.artifact.cache_key`;
* :mod:`.cache` — :class:`~repro.service.cache.AllocationCache`,
  memory-LRU + optional on-disk content-addressed store;
* :mod:`.degrade` — the ``bpc → bcr → non`` deadline ladder and the
  EWMA :class:`~repro.service.degrade.TierCostModel`;
* :mod:`.queue` — :class:`~repro.service.queue.AllocationService`:
  submit/coalesce, batched dispatch, crash-tolerant execution;
* :mod:`.durability` — the write-ahead job journal behind ``repro
  serve --journal``: checksummed JSONL frames, recovery replay of
  accepted-but-unfinished jobs, checkpoint compaction (see the
  "Durability & lifecycle" section of ``docs/RESILIENCE.md``);
* :mod:`.server` / :mod:`.client` — the HTTP/JSON front-end behind
  ``repro serve`` and its Python client;
* :mod:`.shard` — the horizontal scale-out layer: consistent-hash
  routing over N worker processes with health-check/evict/respawn
  (``repro serve --shards N``, see ``docs/SCALING.md``);
* :mod:`.loadgen` — the seeded open-loop traffic harness behind
  ``repro loadgen`` (arrival ramps, Zipf popularity, deadline mixes,
  p50/p99/p999 + goodput reporting into the BENCH history schema).

Fleet telemetry (distributed tracing over ``X-Repro-Trace``, the
``/v1/metrics`` Prometheus exposition, JSONL request events, SLO
tracking) lives in :mod:`repro.obs.telemetry` and threads through every
layer above — see ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from .artifact import (
    FLAG_DEFAULTS,
    SCHEMA_VERSION,
    RequestError,
    artifact_bytes,
    build_artifact,
    build_module_artifact,
    cache_key,
    canonical_ir,
    is_module_text,
    module_cache_key,
    normalize_request,
)
from .cache import AllocationCache
from .client import CircuitOpenError, ServiceClient, ServiceError
from .degrade import LADDER, TierCostModel, ladder_from, select_tier
from .durability import JobJournal, JournalReplay
from .incremental import FragmentStore, IncrementalAllocator
from .loadgen import LoadgenConfig, loadgen_record, run_loadgen
from .queue import (
    AllocationService,
    Job,
    ServiceConfig,
    ServiceDrainingError,
    ServiceOverloadError,
)
from .server import ServiceServer, make_server, shutdown_server
from .shard import (
    HashRing,
    LocalShard,
    NoShardAvailableError,
    ProcessShard,
    ShardError,
    ShardFrontendServer,
    ShardRouter,
    make_shard_server,
    shutdown_shard_server,
)

__all__ = [
    "AllocationCache",
    "AllocationService",
    "CircuitOpenError",
    "FLAG_DEFAULTS",
    "FragmentStore",
    "HashRing",
    "IncrementalAllocator",
    "Job",
    "JobJournal",
    "JournalReplay",
    "LADDER",
    "LoadgenConfig",
    "LocalShard",
    "NoShardAvailableError",
    "ProcessShard",
    "RequestError",
    "SCHEMA_VERSION",
    "ServiceClient",
    "ServiceConfig",
    "ServiceDrainingError",
    "ServiceError",
    "ServiceOverloadError",
    "ServiceServer",
    "ShardError",
    "ShardFrontendServer",
    "ShardRouter",
    "TierCostModel",
    "artifact_bytes",
    "build_artifact",
    "build_module_artifact",
    "cache_key",
    "canonical_ir",
    "is_module_text",
    "ladder_from",
    "loadgen_record",
    "make_server",
    "make_shard_server",
    "module_cache_key",
    "normalize_request",
    "run_loadgen",
    "select_tier",
    "shutdown_server",
    "shutdown_shard_server",
]

"""The allocation service core: job lifecycle, batching, degradation.

Request path (the inference-serving shape: cache → batch → execute →
degrade):

1. **submit** — the request is validated, content-addressed
   (:func:`~repro.service.artifact.cache_key`), and probed against the
   :class:`~repro.service.cache.AllocationCache`.  A hit resolves the
   job immediately with the stored bytes.  A duplicate of an in-flight
   request *coalesces* onto the existing job — concurrent identical
   submissions execute the allocation exactly once.
2. **batch** — a dispatcher drains queued jobs into batches of up to
   ``batch_size`` and processes them in submission order.
3. **degrade** — at dispatch each job's remaining deadline budget picks
   the tier actually executed (:func:`~repro.service.degrade.select_tier`
   down the ``bpc → bcr → non`` ladder); a degraded tier re-probes the
   cache under its own key before any work is spent.
4. **execute** — batches run inline (``workers=0``) or fan over the
   experiment harness's crash-tolerant process-pool helper
   (:func:`repro.experiments.harness.run_tasks`), which retries a
   crashed worker with backoff instead of failing the batch.

Every stage is instrumented through :mod:`repro.obs`: per-request spans,
cache hit/miss + queue-depth + tier-served metrics, and an audit record
for every degradation — all off by default, all free when off.  A small
always-on :meth:`AllocationService.stats` counter set backs the server's
``/v1/stats`` endpoint independently of the obs layers.
"""

from __future__ import annotations

import queue as _queue
import threading
import time
from dataclasses import dataclass, field

from ..experiments.harness import run_tasks
from ..obs import AUDIT, METRICS, TRACER
from .artifact import (
    RequestError,
    artifact_bytes,
    build_artifact,
    cache_key,
    canonical_ir,
    check_method,
    normalize_file_spec,
    normalize_flags,
)
from .cache import AllocationCache
from .degrade import TierCostModel, select_tier


def _execute_request(payload: tuple) -> dict:
    """Process-pool worker: one allocation, plus its wall time."""
    ir, file_spec, method, flags = payload
    started = time.perf_counter()
    artifact = build_artifact(ir, file_spec, method, flags)
    return {"artifact": artifact, "seconds": time.perf_counter() - started}


@dataclass
class ServiceConfig:
    """Ops knobs of one :class:`AllocationService` instance."""

    #: Process-pool workers per batch; 0 executes inline on the
    #: dispatcher thread (lowest latency for small kernels, and fully
    #: deterministic — the CI smoke job and tests use it).
    workers: int = 0
    #: Max jobs drained into one dispatch batch.
    batch_size: int = 8
    #: Retries when a worker crashes or a job raises.
    max_retries: int = 1
    #: Base backoff between retry rounds (sleep = backoff * attempt).
    retry_backoff_s: float = 0.05
    #: Artifact cache directory (None = memory only).
    cache_dir: str | None = None
    #: In-memory cache capacity.
    cache_entries: int = 4096


@dataclass
class Job:
    """One allocation request moving through the service."""

    job_id: str
    key: str
    ir: str
    file_spec: dict
    requested_method: str
    flags: dict
    deadline_s: float | None = None
    status: str = "queued"  # queued | running | done | failed
    cache: str = "miss"  # miss | hit | coalesced-onto (per-submit view)
    served_method: str | None = None
    degraded: bool = False
    error: str | None = None
    artifact: bytes | None = None
    coalesced: int = 0
    execution_s: float | None = None
    submitted_mono: float = field(default_factory=time.monotonic)
    _done: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def function_name(self) -> str:
        head = self.ir.split("{", 1)[0]
        return head.replace("func", "").strip().lstrip("@") or "?"

    def remaining_s(self) -> float | None:
        if self.deadline_s is None:
            return None
        return self.deadline_s - (time.monotonic() - self.submitted_mono)

    def resolve(self, data: bytes, served: str, degraded: bool) -> None:
        self.artifact = data
        self.served_method = served
        self.degraded = degraded
        self.status = "done"
        self._done.set()

    def fail(self, error: str) -> None:
        self.error = error
        self.status = "failed"
        self._done.set()

    def wait(self, timeout: float | None = None) -> bool:
        return self._done.wait(timeout)

    def describe(self) -> dict:
        """Status view (everything but the artifact bytes)."""
        return {
            "job_id": self.job_id,
            "key": self.key,
            "status": self.status,
            "cache": self.cache,
            "function": self.function_name,
            "requested_method": self.requested_method,
            "served_method": self.served_method,
            "degraded": self.degraded,
            "coalesced": self.coalesced,
            "error": self.error,
            "execution_s": self.execution_s,
        }


class AllocationService:
    """Cache + queue + batch executor behind ``repro serve``.

    Thread-safe.  Call :meth:`start` to run the dispatcher on a
    background thread, or drive it manually with :meth:`process_once`
    (the tests do) for deterministic stepping.
    """

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.cache = AllocationCache(
            self.config.cache_dir, self.config.cache_entries
        )
        self.cost_model = TierCostModel()
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, Job] = {}
        self._queue: _queue.Queue = _queue.Queue()
        # RLock: submit() creates jobs while already holding the lock.
        self._lock = threading.RLock()
        self._counter = 0
        self._thread: threading.Thread | None = None
        self._stopping = False
        self.counters = {
            "requests": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "coalesced": 0,
            "executed": 0,
            "failed": 0,
            "degraded": 0,
            "tier_bpc": 0,
            "tier_bcr": 0,
            "tier_non": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._stopping = False
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-service-dispatch",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stopping = True
        self._queue.put(None)  # wake the dispatcher
        self._thread.join(timeout=10)
        self._thread = None

    def _dispatch_loop(self) -> None:
        while not self._stopping:
            self.process_once(block=True)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request: dict) -> Job:
        """Validate, content-address, and enqueue one request.

        The returned job's ``cache`` field is this *submission's*
        disposition: ``hit`` (resolved from cache immediately),
        ``coalesced-onto`` (attached to an identical in-flight job), or
        ``miss`` (queued for execution).
        """
        if not isinstance(request, dict):
            raise RequestError("request body must be a JSON object")
        unknown = set(request) - {"ir", "file", "method", "flags", "deadline_ms"}
        if unknown:
            raise RequestError(f"unknown request keys {sorted(unknown)}")
        ir = request.get("ir")
        if not isinstance(ir, str) or not ir.strip():
            raise RequestError("request needs non-empty 'ir' text")
        ir = canonical_ir(ir)
        file_spec = normalize_file_spec(request.get("file", {}))
        method = check_method(request.get("method", "bpc"))
        flags = normalize_flags(request.get("flags"))
        deadline_ms = request.get("deadline_ms")
        deadline_s = None if deadline_ms is None else float(deadline_ms) / 1000.0
        key = cache_key(ir, file_spec, method, flags, canonical=True)

        with self._lock:
            self.counters["requests"] += 1
        METRICS.inc("service.requests")

        cached = self.cache.get(key)
        if cached is not None:
            job = self._new_job(key, ir, file_spec, method, flags, deadline_s)
            job.cache = "hit"
            job.resolve(cached, method, degraded=False)
            with self._lock:
                self.counters["cache_hits"] += 1
            return job

        with self._lock:
            inflight = self._inflight.get(key)
            if inflight is not None:
                inflight.coalesced += 1
                self.counters["coalesced"] += 1
                METRICS.inc("service.coalesced")
                return inflight
            job = self._new_job(key, ir, file_spec, method, flags, deadline_s)
            self._inflight[key] = job
            self.counters["cache_misses"] += 1
        self._queue.put(job)
        METRICS.set_gauge("service.queue.depth", self._queue.qsize())
        return job

    def _new_job(
        self, key, ir, file_spec, method, flags, deadline_s
    ) -> Job:
        with self._lock:
            self._counter += 1
            job_id = f"j{self._counter:06d}"
            job = Job(
                job_id=job_id,
                key=key,
                ir=ir,
                file_spec=file_spec,
                requested_method=method,
                flags=flags,
                deadline_s=deadline_s,
            )
            self._jobs[job_id] = job
        return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        job = self.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        job.wait(timeout)
        return job

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def process_once(self, block: bool = False, timeout: float | None = None) -> int:
        """Drain and execute one batch; returns the number of jobs handled."""
        batch: list[Job] = []
        try:
            first = self._queue.get(block=block, timeout=timeout)
        except _queue.Empty:
            return 0
        if first is None:  # stop sentinel
            return 0
        batch.append(first)
        while len(batch) < self.config.batch_size:
            try:
                job = self._queue.get_nowait()
            except _queue.Empty:
                break
            if job is None:
                self._queue.put(None)  # keep the sentinel for the loop
                break
            batch.append(job)
        METRICS.set_gauge("service.queue.depth", self._queue.qsize())
        self._process_batch(batch)
        return len(batch)

    def _process_batch(self, batch: list[Job]) -> None:
        """Tier-select every job, serve late cache hits, execute the rest."""
        to_execute: list[Job] = []
        tiers: list[str] = []
        with TRACER.span("service-batch", category="service", jobs=len(batch)):
            for job in batch:
                job.status = "running"
                tier, degraded = select_tier(
                    job.requested_method, job.remaining_s(), self.cost_model
                )
                if degraded:
                    self._note_degradation(job, tier)
                # A degraded tier has its own content address; an earlier
                # run may already have produced exactly this artifact.
                exec_key = (
                    job.key
                    if tier == job.requested_method
                    else cache_key(
                        job.ir, job.file_spec, tier, job.flags, canonical=True
                    )
                )
                cached = self.cache.get(exec_key)
                if cached is not None:
                    self._finish(job, cached, tier, degraded)
                    continue
                to_execute.append(job)
                tiers.append(tier)
            if to_execute:
                self._execute(to_execute, tiers)

    def _execute(self, jobs: list[Job], tiers: list[str]) -> None:
        payloads = [
            (job.ir, job.file_spec, tier, job.flags)
            for job, tier in zip(jobs, tiers)
        ]
        if self.config.workers <= 0:
            outcomes: list[dict | None] = []
            errors: dict[int, str] = {}
            for i, payload in enumerate(payloads):
                try:
                    outcomes.append(_execute_request(payload))
                except Exception as exc:
                    outcomes.append(None)
                    errors[i] = str(exc)
        else:
            outcomes, task_failures = run_tasks(
                _execute_request,
                payloads,
                jobs=self.config.workers,
                retries=self.config.max_retries,
                backoff_s=self.config.retry_backoff_s,
                labels=[job.job_id for job in jobs],
            )
            errors = {f.index: f.error for f in task_failures}
        for i, (job, tier) in enumerate(zip(jobs, tiers)):
            outcome = outcomes[i]
            if outcome is None:
                self._fail(job, errors.get(i, "execution failed"))
                continue
            artifact = outcome["artifact"]
            seconds = outcome["seconds"]
            job.execution_s = seconds
            self.cost_model.observe(tier, seconds)
            data = artifact_bytes(artifact)
            self.cache.put(artifact["key"], data)
            self._finish(job, data, tier, tier != job.requested_method)
            with self._lock:
                self.counters["executed"] += 1
            METRICS.observe("service.execution_s", seconds)

    # ------------------------------------------------------------------
    def _finish(self, job: Job, data: bytes, tier: str, degraded: bool) -> None:
        with TRACER.span(
            "service-request",
            category="service",
            job=job.job_id,
            function=job.function_name,
            requested=job.requested_method,
            served=tier,
        ):
            job.resolve(data, tier, degraded)
        with self._lock:
            self._inflight.pop(job.key, None)
            self.counters[f"tier_{tier}"] += 1
            if degraded:
                self.counters["degraded"] += 1
        METRICS.inc(f"service.tier.{tier}")

    def _fail(self, job: Job, error: str) -> None:
        job.fail(error)
        with self._lock:
            self._inflight.pop(job.key, None)
            self.counters["failed"] += 1
        METRICS.inc("service.failed")

    def _note_degradation(self, job: Job, tier: str) -> None:
        remaining = job.remaining_s()
        AUDIT.record(
            function=job.function_name,
            vreg="-",
            step="service-degrade",
            requested=job.requested_method,
            served=tier,
            remaining_ms=None if remaining is None else remaining * 1000.0,
            job=job.job_id,
        )
        METRICS.inc("service.degraded")

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            counters = dict(self.counters)
        return {
            "counters": counters,
            "queue_depth": self._queue.qsize(),
            "cache": self.cache.stats(),
            "tiers": self.cost_model.snapshot(),
            "config": {
                "workers": self.config.workers,
                "batch_size": self.config.batch_size,
                "max_retries": self.config.max_retries,
            },
        }

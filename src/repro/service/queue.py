"""The allocation service core: job lifecycle, batching, degradation.

Request path (the inference-serving shape: cache → batch → execute →
degrade):

1. **submit** — the request is validated, content-addressed
   (:func:`~repro.service.artifact.cache_key`), and probed against the
   :class:`~repro.service.cache.AllocationCache`.  A hit resolves the
   job immediately with the stored bytes.  A duplicate of an in-flight
   request *coalesces* onto the existing job — concurrent identical
   submissions execute the allocation exactly once.
2. **batch** — a dispatcher drains queued jobs into batches of up to
   ``batch_size`` and processes them in submission order.
3. **degrade** — at dispatch each job's remaining deadline budget picks
   the tier actually executed (:func:`~repro.service.degrade.select_tier`
   down the ``bpc → bcr → non`` ladder); a degraded tier re-probes the
   cache under its own key before any work is spent.
4. **execute** — batches run inline (``workers=0``) or fan over the
   experiment harness's crash-tolerant process-pool helper
   (:func:`repro.experiments.harness.run_tasks`), which retries a
   crashed worker with backoff instead of failing the batch.

Resilience (PR 5, see ``docs/RESILIENCE.md``):

* every artifact passes the independent
  :class:`~repro.resilience.verifier.AllocationVerifier` per the
  configured mode before it is cached or served; a cache entry that
  fails is **quarantined and recomputed**, a fresh computation that
  fails is treated as a job failure — *fail-stop or correct*, never
  silent corruption;
* a failing job gets bounded retries with exponential backoff
  (``job_retries`` × ``job_backoff_s``); when the budget is exhausted
  the job lands in a bounded **dead-letter record** surfaced through
  :meth:`AllocationService.stats`;
* finished jobs are retained under a bounded policy
  (``job_retention`` max entries / optional ``job_ttl_s``) instead of
  forever, with evictions counted;
* a full queue sheds load: :meth:`AllocationService.submit` raises
  :class:`ServiceOverloadError`, which the HTTP layer turns into
  ``503`` + ``Retry-After``;
* seeded fault points (:mod:`repro.resilience.faults`) cover worker
  death/stall/error and duplicate dispatch; duplicate deliveries are
  absorbed idempotently.

Every stage is instrumented through :mod:`repro.obs`: per-request spans,
cache hit/miss + queue-depth + tier-served metrics, and audit records
for degradations, quarantines, verification failures, and dead-letter
drops — all off by default, all free when off.  A small always-on
:meth:`AllocationService.stats` counter set backs the server's
``/v1/stats`` endpoint independently of the obs layers.
"""

from __future__ import annotations

import os
import queue as _queue
import threading
import time
from dataclasses import dataclass, field

from ..experiments.harness import run_tasks
from ..obs import AUDIT, METRICS, TRACER
from ..obs.telemetry import (
    EVENTS,
    TELEMETRY,
    SLOTracker,
    StreamingHistogram,
    TraceContext,
    new_span_id,
)
from ..resilience import AllocationVerifier, FAULTS, InjectedFault
from ..sim.ooo import MACHINE_DEFAULT
from .artifact import (
    artifact_bytes,
    build_artifact,
    build_module_artifact,
    cache_key,
    module_cache_key,
    normalize_request,
)
from .cache import AllocationCache
from .degrade import TierCostModel, select_tier
from .durability import JobJournal


class ServiceOverloadError(RuntimeError):
    """The queue is full; the request was shed, not enqueued."""

    def __init__(self, depth: int, limit: int, retry_after_s: float = 1.0):
        super().__init__(
            f"queue depth {depth} at limit {limit}; request shed"
        )
        self.retry_after_s = retry_after_s


class ServiceDrainingError(ServiceOverloadError):
    """The service is draining; new work is rejected, in-flight finishes.

    A subclass of :class:`ServiceOverloadError` so the HTTP layer's
    existing 503 + ``Retry-After`` path applies unchanged — but the
    router treats it as a *handoff* signal (route to another shard, do
    not trip the breaker), and the client does not retry the same
    endpoint.
    """

    def __init__(self, retry_after_s: float = 1.0):
        RuntimeError.__init__(
            self, "service is draining; new work rejected, retry elsewhere"
        )
        self.retry_after_s = retry_after_s


class _FragmentView:
    """Fragment-store adapter over a service's verified cache probe.

    ``get`` routes through :meth:`AllocationService._cache_lookup`, so a
    fragment read from disk is verified (and quarantined on failure) by
    the same policy whole artifacts get; ``put`` is a plain insert.
    """

    def __init__(self, service: "AllocationService"):
        self._service = service

    def get(self, key: str) -> bytes | None:
        return self._service._cache_lookup(key, None)

    def put(self, key: str, data: bytes) -> None:
        self._service.cache.put(key, data)


def _execute_request(payload: tuple) -> dict:
    """Process-pool worker: one allocation, plus its wall time.

    Carries the ``queue.execute`` fault point so chaos schedules can
    kill (``death``), stall (``stall``), or fail (``error``) the worker
    — inline or in a pool (workers re-arm from ``REPRO_FAULTS``).

    The full payload shape is ``(ir, file_spec, method, flags, machine,
    trace_header)``; shorter tuples from older callers are accepted
    (five elements = pre-machine telemetry shape, four = pre-telemetry).
    *machine* is the normalized cycle-model spec (``None`` = the
    in-order default) and *is* part of the build inputs and cache key;
    the trace header never is — when present the worker returns its
    ``worker.execute`` span (and any fault events) in the result so the
    service folds them into the distributed trace.
    """
    if len(payload) == 6:
        ir, file_spec, method, flags, machine, trace_header = payload
    elif len(payload) == 5:  # pre-machine telemetry payload shape
        ir, file_spec, method, flags, trace_header = payload
        machine = None
    else:  # pre-telemetry payload shape
        ir, file_spec, method, flags = payload
        machine = None
        trace_header = None
    ctx = TraceContext.parse(trace_header) if trace_header else None
    spans: list[dict] = []
    in_pool = False
    if ctx is not None:
        import multiprocessing

        in_pool = multiprocessing.parent_process() is not None

    def _span(name, cat, ts, dur, **args):
        spans.append(
            {
                "trace": ctx.trace_id,
                "sid": new_span_id(),
                "parent": ctx.span_id,
                "name": name,
                "cat": cat,
                # None = stamped by the recorder that folds it in
                "proc": f"worker-{os.getpid()}" if in_pool else None,
                "ts": ts,
                "dur": dur,
                "args": args,
            }
        )

    if FAULTS.enabled:
        point = FAULTS.fire("queue.execute", label=method)
        if point is not None:
            if point.mode == "death":
                import multiprocessing

                if multiprocessing.parent_process() is not None:
                    os._exit(17)  # real worker death, not an exception
                raise InjectedFault(point.site, point.mode)
            if point.mode == "stall":
                stall_s = float(point.detail.get("stall_s", 0.05))
                if ctx is not None:
                    _span(
                        "fault.queue.execute", "event", time.time(), 0.0,
                        mode="stall", stall_s=stall_s,
                    )
                time.sleep(stall_s)
            elif point.mode == "error":
                raise InjectedFault(point.site, point.mode)
    started_wall = time.time()
    started = time.perf_counter()
    artifact = build_artifact(ir, file_spec, method, flags, machine)
    seconds = time.perf_counter() - started
    result = {"artifact": artifact, "seconds": seconds}
    if ctx is not None:
        _span("worker.execute", "worker", started_wall, seconds, method=method)
        result["spans"] = spans
    return result


@dataclass
class ServiceConfig:
    """Ops knobs of one :class:`AllocationService` instance."""

    #: Process-pool workers per batch; 0 executes inline on the
    #: dispatcher thread (lowest latency for small kernels, and fully
    #: deterministic — the CI smoke job and tests use it).
    workers: int = 0
    #: Max jobs drained into one dispatch batch.
    batch_size: int = 8
    #: Retries when a worker crashes or a job raises (within one
    #: dispatch, via the harness's crash-tolerant pool).
    max_retries: int = 1
    #: Base backoff between retry rounds (sleep = backoff * attempt).
    retry_backoff_s: float = 0.05
    #: Artifact cache directory (None = memory only).
    cache_dir: str | None = None
    #: In-memory cache capacity.
    cache_entries: int = 4096
    #: Verifier mode: ``strict`` | ``cached-only`` | ``off``
    #: (see :mod:`repro.resilience.verifier`).
    verify: str = "cached-only"
    #: Whole-job retry budget: a job whose execution fails (exception,
    #: worker death, verification failure) is requeued up to this many
    #: times before it dead-letters.
    job_retries: int = 2
    #: Exponential per-job backoff: ``job_backoff_s * 2**(attempt-1)``
    #: seconds before a requeue (capped at 1 s).
    job_backoff_s: float = 0.02
    #: Finished (done/failed) jobs retained for polling; older ones are
    #: evicted oldest-first.
    job_retention: int = 1024
    #: Optional TTL for finished jobs (seconds); ``None`` = count-only.
    job_ttl_s: float | None = None
    #: Dead-letter records kept (oldest dropped beyond this).
    dead_letter_limit: int = 64
    #: Queue depth at which :meth:`AllocationService.submit` sheds load.
    max_queue_depth: int = 1024
    #: Simultaneous HTTP handlers allowed before the server sheds with
    #: ``429`` (enforced by :class:`repro.service.server.ServiceServer`).
    max_concurrent_requests: int = 32
    #: Write-ahead job journal directory (None = no durability): every
    #: accepted cache-miss job is journaled at submit and at its
    #: terminal state; :meth:`AllocationService.recover` replays
    #: non-terminal jobs after a crash (see ``repro.service.durability``).
    journal_dir: str | None = None
    #: Frames accumulated before compaction is considered (the journal
    #: compacts once terminal frames also outnumber pending jobs).
    journal_compact_min: int = 256
    #: fsync(2) the journal after every frame (survives power loss, not
    #: just process death) — off by default, it costs a disk round-trip.
    journal_fsync: bool = False


@dataclass
class Job:
    """One allocation request moving through the service."""

    job_id: str
    key: str
    ir: str
    file_spec: dict
    requested_method: str
    flags: dict
    #: ``function`` (single ``func @``) or ``module`` (several); module
    #: jobs take the incremental per-fragment execution path.
    kind: str = "function"
    #: Normalized cycle-model spec; ``None`` means the in-order default
    #: (and contributes nothing to the content address).
    machine: dict | None = None
    deadline_s: float | None = None
    status: str = "queued"  # queued | running | done | failed
    cache: str = "miss"  # miss | hit | coalesced-onto (per-submit view)
    served_method: str | None = None
    degraded: bool = False
    error: str | None = None
    artifact: bytes | None = None
    coalesced: int = 0
    attempts: int = 0
    #: Set when the failure exhausted its retry budget and landed in the
    #: dead-letter record (journaled durably when a journal is on).
    dead_lettered: bool = False
    execution_s: float | None = None
    submitted_mono: float = field(default_factory=time.monotonic)
    finished_mono: float | None = None
    #: Wall-clock submit time — distributed spans merge across
    #: processes, so they need a shared timebase (monotonic is
    #: per-process).
    submitted_wall: float = field(default_factory=time.time)
    #: Distributed-trace coordinates (never part of the cache key) and
    #: the pre-allocated id of this job's ``service.job`` span, so
    #: worker spans can parent on it before it is recorded.
    trace: TraceContext | None = field(default=None, repr=False)
    span_sid: int = 0
    #: Always-on per-stage wall seconds: ``queue_wait`` / ``cache`` /
    #: ``alloc`` / ``verify`` (the router adds ``route`` on its side).
    stages: dict = field(default_factory=dict)
    _done: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def function_name(self) -> str:
        head = self.ir.split("{", 1)[0]
        return head.replace("func", "").strip().lstrip("@") or "?"

    @property
    def finished(self) -> bool:
        return self.status in ("done", "failed")

    def remaining_s(self) -> float | None:
        if self.deadline_s is None:
            return None
        return self.deadline_s - (time.monotonic() - self.submitted_mono)

    def resolve(self, data: bytes, served: str, degraded: bool) -> None:
        self.artifact = data
        self.served_method = served
        self.degraded = degraded
        self.status = "done"
        self.finished_mono = time.monotonic()
        self._done.set()

    def fail(self, error: str) -> None:
        self.error = error
        self.status = "failed"
        self.finished_mono = time.monotonic()
        self._done.set()

    def wait(self, timeout: float | None = None) -> bool:
        return self._done.wait(timeout)

    def describe(self) -> dict:
        """Status view (everything but the artifact bytes)."""
        return {
            "job_id": self.job_id,
            "key": self.key,
            "status": self.status,
            "cache": self.cache,
            "function": self.function_name,
            "machine": (self.machine or {}).get("model", "dsa"),
            "requested_method": self.requested_method,
            "served_method": self.served_method,
            "degraded": self.degraded,
            "coalesced": self.coalesced,
            "attempts": self.attempts,
            "dead_lettered": self.dead_lettered,
            "error": self.error,
            "execution_s": self.execution_s,
            "stages": {k: round(v, 6) for k, v in self.stages.items()},
            "trace": self.trace.trace_id if self.trace else None,
        }


class AllocationService:
    """Cache + queue + batch executor behind ``repro serve``.

    Thread-safe.  Call :meth:`start` to run the dispatcher on a
    background thread, or drive it manually with :meth:`process_once`
    (the tests do) for deterministic stepping.
    """

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.cache = AllocationCache(
            self.config.cache_dir, self.config.cache_entries
        )
        self.verifier = AllocationVerifier(self.config.verify)
        self.cost_model = TierCostModel()
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, Job] = {}
        self._queue: _queue.Queue = _queue.Queue()
        self.dead_letter: list[dict] = []
        # RLock: submit() creates jobs while already holding the lock.
        self._lock = threading.RLock()
        self._counter = 0
        self._finished_jobs = 0
        self._thread: threading.Thread | None = None
        self._stopping = False
        #: Recovered job ids that coalesced onto another recovered job;
        #: polls for the original id resolve to the surviving job.
        self._aliases: dict[str, str] = {}
        #: Draining: finish in-flight work, reject new submissions with
        #: :class:`ServiceDrainingError` (503 + Retry-After upstream).
        self.draining = False
        self.journal: JobJournal | None = None
        if self.config.journal_dir:
            self.journal = JobJournal(
                self.config.journal_dir,
                compact_min_frames=self.config.journal_compact_min,
                fsync=self.config.journal_fsync,
                dead_letter_limit=self.config.dead_letter_limit,
            )
        self._recovered = False
        self.counters = {
            "requests": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "coalesced": 0,
            "executed": 0,
            "failed": 0,
            "degraded": 0,
            "tier_bpc": 0,
            "tier_bcr": 0,
            "tier_non": 0,
            "verified": 0,
            "verify_failed": 0,
            "retried": 0,
            "dead_lettered": 0,
            "jobs_evicted": 0,
            "shed": 0,
            "duplicate_deliveries": 0,
            "drained_rejects": 0,
            "recovered_jobs": 0,
        }
        #: Incremental (module) execution counters: the reuse/execute
        #: split that proves only changed functions re-ran.
        self.incremental = {
            "modules": 0,
            "functions_total": 0,
            "functions_reused": 0,
            "functions_executed": 0,
        }
        #: Always-on fleet telemetry (cheap O(1) updates, like the
        #: counters above): SLO tracking surfaced in ``/v1/stats`` and
        #: per-stage streaming histograms surfaced in ``/v1/metrics``.
        self.slo = SLOTracker()
        self.stage_hist: dict[str, StreamingHistogram] = {}
        self.latency_hist = StreamingHistogram()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self.recover()
        self._stopping = False
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-service-dispatch",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is not None:
            self._stopping = True
            self._queue.put(None)  # wake the dispatcher
            self._thread.join(timeout=10)
            self._thread = None
        if self.journal is not None:
            try:
                self.journal.sync()
            except OSError:
                pass
            self.journal.close()

    def _dispatch_loop(self) -> None:
        while not self._stopping:
            self.process_once(block=True)

    # ------------------------------------------------------------------
    # Durability: recovery replay (see repro.service.durability)
    # ------------------------------------------------------------------
    def recover(self) -> dict:
        """Replay the journal and re-enqueue non-terminal jobs.

        Idempotent by construction: every replayed job re-submits under
        its pre-crash id, and because results are content-addressed a
        job whose artifact already reached the cache resolves instantly
        and byte-identically.  Replayed jobs run at their requested tier
        — the original deadline died with its client, so recovery never
        degrades below what was asked for.

        Safe to call repeatedly; only the first call on a journaled
        service does work (``start`` calls it automatically).
        """
        report = {"recovered": 0, "restored": 0, "dead_letter": 0,
                  "truncated": 0, "quarantined": 0}
        if self.journal is None or self._recovered:
            return report
        self._recovered = True
        replay = self.journal.replay()
        report["truncated"] = replay.truncated
        report["quarantined"] = replay.quarantined
        report["dead_letter"] = len(replay.dead_letter)
        with self._lock:
            # Restore the durable dead-letter list (oldest first, bounded).
            merged = replay.dead_letter + self.dead_letter
            self.dead_letter = merged[-self.config.dead_letter_limit:]
        for record in replay.pending:
            body = {
                "ir": record["ir"],
                "file": record["file"],
                "method": record["method"],
                "flags": record.get("flags") or {},
            }
            if record.get("machine"):
                body["machine"] = record["machine"]
            rec_id = record["job_id"]
            try:
                job = self.submit(body, job_id=rec_id)
            except ServiceOverloadError:
                # Queue full mid-recovery: the record stays pending in
                # the journal; the next restart retries it.
                continue
            report["recovered"] += 1
            with self._lock:
                self.counters["recovered_jobs"] += 1
            if job.finished:
                # Resolved from cache during re-submit — accepted and
                # terminal in one step, nothing left pending.
                self.journal.drop_pending(rec_id)
            elif job.job_id != rec_id:
                # Coalesced onto another recovered job with the same
                # content address; alias the old id so polls still work.
                with self._lock:
                    self._aliases[rec_id] = job.job_id
                self.journal.drop_pending(rec_id)
        report["restored"] = self._restore_tombstones(replay.finished)
        # Checkpoint the recovered state so the next restart replays the
        # (small) live set, not the whole pre-crash history.
        try:
            self.journal.compact()
        except OSError:
            pass
        TELEMETRY.event_for(None, "service.recovered", **report)
        return report

    def _restore_tombstones(self, finished: list) -> int:
        """Re-materialize pre-crash finished jobs as pollable entries.

        A client that saw its job complete must still be able to fetch
        the status and result after a restart (the rolling-restart
        zero-goodput-loss invariant).  ``done`` tombstones reload their
        artifact bytes through the verified cache probe; a record whose
        artifact fell out of the cache is skipped (the client resubmits
        and, content-addressed, usually hits anyway).
        """
        restored = 0
        # Last terminal record per job id wins; respect retention.
        latest: dict[str, dict] = {}
        for record in finished:
            if record.get("job_id"):
                latest[record["job_id"]] = record
        records = list(latest.values())[-self.config.job_retention:]
        for record in records:
            job_id = record["job_id"]
            if self.get(job_id) is not None:
                continue
            status = record.get("status")
            served = record.get("served_method")
            job = Job(
                job_id=job_id,
                key=record.get("key") or "",
                ir="",
                file_spec={},
                requested_method=served or "?",
                flags={},
            )
            job.attempts = int(record.get("attempts") or 0)
            if status == "done" and record.get("key"):
                data = self._cache_lookup(record["key"], None)
                if data is None:
                    continue
                job.cache = "hit"
                job.resolve(data, served or "?", bool(record.get("degraded")))
            elif status == "failed":
                job.dead_lettered = record.get("dead_letter") is not None
                job.fail(record.get("error") or "failed before restart")
            else:
                continue
            with self._lock:
                self._jobs[job_id] = job
                self._finished_jobs += 1
                try:
                    self._counter = max(self._counter, int(job_id.lstrip("j")))
                except ValueError:
                    pass
            restored += 1
        if restored:
            self._evict_finished()
        return restored

    # ------------------------------------------------------------------
    # Lifecycle control: drain (finish in-flight, reject new)
    # ------------------------------------------------------------------
    def drain(self) -> dict:
        """Enter draining mode and report the current lifecycle state.

        Idempotent: repeated calls keep returning the live lifecycle
        view, so callers poll this until ``drained`` flips true.
        """
        if not self.draining:
            self.draining = True
            TELEMETRY.event_for(None, "service.draining")
        return self.lifecycle()

    def resume(self) -> dict:
        """Leave draining mode (a drained shard rejoining the ring)."""
        self.draining = False
        return self.lifecycle()

    def is_drained(self) -> bool:
        """True when no accepted work remains queued or in flight."""
        with self._lock:
            return self._queue.qsize() == 0 and not self._inflight

    def drain_wait(self, timeout: float = 30.0, poll_s: float = 0.01) -> bool:
        """Drain and block until quiescent (or *timeout*); True if drained."""
        self.drain()
        deadline = time.monotonic() + timeout
        while not self.is_drained():
            if time.monotonic() >= deadline:
                return False
            time.sleep(poll_s)
        if self.journal is not None:
            try:
                self.journal.sync()
            except OSError:
                pass
        return True

    def lifecycle(self) -> dict:
        with self._lock:
            inflight = len(self._inflight)
        return {
            "draining": self.draining,
            "drained": self.draining and self.is_drained(),
            "inflight": inflight,
            "queue_depth": self._queue.qsize(),
            "journal": self.journal is not None,
        }

    # ------------------------------------------------------------------
    # Verified cache access
    # ------------------------------------------------------------------
    def _cache_lookup(self, key: str, original_ir: str) -> bytes | None:
        """Cache probe with verification per the configured mode.

        An entry that fails verification is quarantined and reported as
        a miss, so the caller recomputes — the self-healing path.
        """
        found = self.cache.get_entry(key)
        if found is None:
            return None
        data, source = found
        if not self.verifier.should_verify(source):
            return data
        report = self.verifier.verify_bytes(
            data, expected_key=key, original_ir=original_ir
        )
        with self._lock:
            self.counters["verified"] += 1
        if report.ok:
            return data
        self.cache.quarantine(key)
        with self._lock:
            self.counters["verify_failed"] += 1
        METRICS.inc("service.verify_failed")
        AUDIT.record(
            function="-", vreg="-", step="cache-quarantine",
            key=key[:12], source=source,
            findings=report.findings[:3],
        )
        return None

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        request: dict,
        trace: TraceContext | None = None,
        job_id: str | None = None,
    ) -> Job:
        """Validate, content-address, and enqueue one request.

        The returned job's ``cache`` field is this *submission's*
        disposition: ``hit`` (resolved from cache immediately),
        ``coalesced-onto`` (attached to an identical in-flight job), or
        ``miss`` (queued for execution).  Raises
        :class:`ServiceOverloadError` when the queue is at capacity.

        *trace* rides alongside the request (it is **not** part of the
        body, so it can never enter the cache key): when distributed
        tracing is on, the job's spans land under it.

        *job_id*, when given, pins the new job's id (recovery replays
        jobs under their pre-crash ids so clients can keep polling).

        With a journal configured, a queued (cache-miss) job is written
        to the write-ahead journal *before* this method returns — the
        acceptance the caller sees is durable.  Hits and coalesces are
        never journaled: a hit is accepted-and-terminal in one step
        (there is no crash window), and a coalesce rides the journaled
        job it attached to.
        """
        if self.draining:
            with self._lock:
                self.counters["drained_rejects"] += 1
            TELEMETRY.event_for(trace, "service.drain_reject")
            raise ServiceDrainingError()
        normalized = normalize_request(request)
        kind = normalized["kind"]
        ir = normalized["ir"]
        file_spec = normalized["file"]
        method = normalized["method"]
        flags = normalized["flags"]
        machine = normalized["machine"]
        if machine == MACHINE_DEFAULT:
            machine = None  # default model rides as None end to end
        deadline_ms = normalized["deadline_ms"]
        deadline_s = None if deadline_ms is None else deadline_ms / 1000.0
        key = normalized["key"]
        if not TELEMETRY.enabled:
            trace = None

        with self._lock:
            self.counters["requests"] += 1
        METRICS.inc("service.requests")

        probe_started = time.perf_counter()
        with TELEMETRY.activate(trace):
            cached = self._cache_lookup(key, ir)
        probe_s = time.perf_counter() - probe_started
        if cached is not None:
            job = self._new_job(
                key, ir, file_spec, method, flags, deadline_s, kind, machine,
                job_id=job_id,
            )
            job.trace = trace
            job.stages["cache"] = probe_s
            job.cache = "hit"
            job.resolve(cached, method, degraded=False)
            with self._lock:
                self.counters["cache_hits"] += 1
                self._finished_jobs += 1
            self._record_served(job)
            self._evict_finished()
            return job

        with self._lock:
            inflight = self._inflight.get(key)
            if inflight is not None:
                inflight.coalesced += 1
                self.counters["coalesced"] += 1
                METRICS.inc("service.coalesced")
                TELEMETRY.event_for(
                    trace, "service.coalesced", job=inflight.job_id
                )
                return inflight
            depth = self._queue.qsize()
            if depth >= self.config.max_queue_depth:
                self.counters["shed"] += 1
                METRICS.inc("service.shed")
                TELEMETRY.event_for(trace, "service.shed", depth=depth)
                raise ServiceOverloadError(depth, self.config.max_queue_depth)
            job = self._new_job(
                key, ir, file_spec, method, flags, deadline_s, kind, machine,
                job_id=job_id,
            )
            job.trace = trace
            job.stages["cache"] = probe_s
            if trace is not None:
                job.span_sid = new_span_id()
            self._inflight[key] = job
            self.counters["cache_misses"] += 1
        if self.journal is not None:
            # Write-ahead: the acceptance is durable before the caller
            # sees it.  A journal-append failure must not lose the job
            # we are about to run — degrade to best-effort durability.
            try:
                self.journal.record_accepted(job)
            except (OSError, InjectedFault):
                pass
        self._queue.put(job)
        METRICS.set_gauge("service.queue.depth", self._queue.qsize())
        self._evict_finished()
        return job

    def _new_job(
        self, key, ir, file_spec, method, flags, deadline_s,
        kind="function", machine=None, job_id=None,
    ) -> Job:
        with self._lock:
            if job_id is None:
                self._counter += 1
                job_id = f"j{self._counter:06d}"
            else:
                # Recovery pins pre-crash ids; keep the counter ahead of
                # them so fresh jobs never collide with recovered ones.
                try:
                    self._counter = max(self._counter, int(job_id.lstrip("j")))
                except ValueError:
                    pass
            job = Job(
                job_id=job_id,
                key=key,
                ir=ir,
                file_spec=file_spec,
                requested_method=method,
                flags=flags,
                kind=kind,
                machine=machine,
                deadline_s=deadline_s,
            )
            self._jobs[job_id] = job
        return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None and job_id in self._aliases:
                job = self._jobs.get(self._aliases[job_id])
            return job

    def lookup(self, job_id: str) -> dict | None:
        """Status view for *job_id*, falling back to dead-letter records.

        A dead-lettered job may have been evicted from the job table (or
        belong to a pre-crash incarnation recovered from the journal);
        its durable record still answers ``--job-id`` queries.
        """
        job = self.get(job_id)
        if job is not None:
            return job.describe()
        with self._lock:
            for record in reversed(self.dead_letter):
                if record.get("job_id") == job_id:
                    return {
                        "job_id": job_id,
                        "status": "failed",
                        "dead_lettered": True,
                        "key": record.get("key"),
                        "function": record.get("function"),
                        "requested_method": record.get("requested_method"),
                        "attempts": record.get("attempts"),
                        "error": record.get("error"),
                    }
        return None

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        job = self.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        job.wait(timeout)
        return job

    # ------------------------------------------------------------------
    # Bounded retention
    # ------------------------------------------------------------------
    def _evict_finished(self) -> None:
        """Drop the oldest finished jobs beyond the retention policy.

        ``job_retention`` bounds how many done/failed jobs stay pollable;
        ``job_ttl_s`` (when set) additionally expires finished jobs by
        age.  Queued/running jobs are never evicted.
        """
        config = self.config
        with self._lock:
            if (
                self._finished_jobs <= config.job_retention
                and config.job_ttl_s is None
            ):
                return
            now = time.monotonic()
            finished = [
                job_id for job_id, job in self._jobs.items() if job.finished
            ]
            evict: list[str] = []
            overflow = len(finished) - config.job_retention
            if overflow > 0:
                evict.extend(finished[:overflow])
            if config.job_ttl_s is not None:
                evict.extend(
                    job_id
                    for job_id in finished[max(overflow, 0):]
                    if now - (self._jobs[job_id].finished_mono or now)
                    > config.job_ttl_s
                )
            for job_id in evict:
                job = self._jobs.pop(job_id)
                # Defensive: a finished job must never linger in the
                # coalescing map; drop it if a bug ever put it there.
                if self._inflight.get(job.key) is job:
                    del self._inflight[job.key]
                self.counters["jobs_evicted"] += 1
            self._finished_jobs -= len(evict)
            if evict:
                METRICS.inc("service.jobs_evicted", len(evict))

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def process_once(self, block: bool = False, timeout: float | None = None) -> int:
        """Drain and execute one batch; returns the number of jobs handled."""
        batch: list[Job] = []
        try:
            first = self._queue.get(block=block, timeout=timeout)
        except _queue.Empty:
            return 0
        if first is None:  # stop sentinel
            return 0
        batch.append(first)
        while len(batch) < self.config.batch_size:
            try:
                job = self._queue.get_nowait()
            except _queue.Empty:
                break
            if job is None:
                self._queue.put(None)  # keep the sentinel for the loop
                break
            batch.append(job)
        if FAULTS.enabled and batch:
            # Duplicate delivery: the same job appears twice in one
            # batch; the second resolution must be absorbed, not served.
            point = FAULTS.fire("queue.dispatch", label=batch[0].job_id)
            if point is not None and point.mode == "duplicate":
                batch.append(batch[0])
        METRICS.set_gauge("service.queue.depth", self._queue.qsize())
        self._process_batch(batch)
        return len(batch)

    def _process_batch(self, batch: list[Job]) -> None:
        """Tier-select every job, serve late cache hits, execute the rest."""
        to_execute: list[Job] = []
        tiers: list[str] = []
        seen: set[str] = set()
        with TRACER.span("service-batch", category="service", jobs=len(batch)):
            for job in batch:
                if job.finished or job.job_id in seen:
                    # Duplicate delivery — already resolved, or a second
                    # copy in this very batch.  Absorb it.
                    with self._lock:
                        self.counters["duplicate_deliveries"] += 1
                    METRICS.inc("service.duplicate_deliveries")
                    continue
                seen.add(job.job_id)
                job.status = "running"
                job.stages["queue_wait"] = (
                    time.monotonic() - job.submitted_mono
                )
                tier, degraded = select_tier(
                    job.requested_method, job.remaining_s(), self.cost_model
                )
                if degraded:
                    self._note_degradation(job, tier)
                # A degraded tier has its own content address; an earlier
                # run may already have produced exactly this artifact.
                if tier == job.requested_method:
                    exec_key = job.key
                elif job.kind == "module":
                    exec_key = module_cache_key(
                        job.ir, job.file_spec, tier, job.flags,
                        machine=job.machine,
                    )
                else:
                    exec_key = cache_key(
                        job.ir, job.file_spec, tier, job.flags,
                        canonical=True, machine=job.machine,
                    )
                probe_started = time.perf_counter()
                with TELEMETRY.activate(job.trace):
                    cached = self._cache_lookup(exec_key, job.ir)
                job.stages["cache"] = job.stages.get("cache", 0.0) + (
                    time.perf_counter() - probe_started
                )
                if cached is not None:
                    self._finish(job, cached, tier, degraded)
                    continue
                to_execute.append(job)
                tiers.append(tier)
            if to_execute:
                self._execute(to_execute, tiers)

    def _execute(self, jobs: list[Job], tiers: list[str]) -> None:
        # Module jobs run inline on the dispatcher: incremental fragment
        # reuse needs the shared artifact cache, which pool workers do
        # not see.  Function artifacts *are* fragments, so earlier
        # requests of either shape warm this path.
        if any(job.kind == "module" for job in jobs):
            rest: list[Job] = []
            rest_tiers: list[str] = []
            for job, tier in zip(jobs, tiers):
                if job.kind == "module":
                    job.attempts += 1
                    self._execute_module(job, tier)
                else:
                    rest.append(job)
                    rest_tiers.append(tier)
            jobs, tiers = rest, rest_tiers
            if not jobs:
                return
        payloads = []
        for job, tier in zip(jobs, tiers):
            header = None
            if job.trace is not None and TELEMETRY.enabled:
                if not job.span_sid:
                    job.span_sid = new_span_id()
                header = job.trace.child(job.span_sid).header()
            payloads.append(
                (job.ir, job.file_spec, tier, job.flags, job.machine, header)
            )
        for job in jobs:
            job.attempts += 1
        if self.config.workers <= 0:
            outcomes: list[dict | None] = []
            errors: dict[int, tuple[str, bool]] = {}
            for i, payload in enumerate(payloads):
                try:
                    outcomes.append(_execute_request(payload))
                except Exception as exc:
                    outcomes.append(None)
                    # Injected faults and I/O errors are transient —
                    # worth a retry.  Anything else (bad IR, infeasible
                    # register file) fails identically every attempt.
                    transient = isinstance(
                        exc, (InjectedFault, OSError, TimeoutError)
                    )
                    errors[i] = (str(exc), transient)
        else:
            outcomes, task_failures = run_tasks(
                _execute_request,
                payloads,
                jobs=self.config.workers,
                retries=self.config.max_retries,
                backoff_s=self.config.retry_backoff_s,
                labels=[job.job_id for job in jobs],
            )
            # Pool failures arrive as strings; crashed workers and
            # injected faults are the transient ones.
            errors = {
                f.index: (
                    f.error,
                    "crash" in f.error or "injected fault" in f.error,
                )
                for f in task_failures
            }
        for i, (job, tier) in enumerate(zip(jobs, tiers)):
            outcome = outcomes[i]
            if outcome is None:
                error, transient = errors.get(i, ("execution failed", True))
                self._handle_failure(job, error, retryable=transient)
                continue
            artifact = outcome["artifact"]
            seconds = outcome["seconds"]
            job.stages["alloc"] = seconds
            TELEMETRY.record_raw(outcome.get("spans"))
            data = artifact_bytes(artifact)
            if self.verifier.should_verify("computed"):
                verify_started = time.perf_counter()
                report = self.verifier.verify_bytes(
                    data,
                    expected_key=artifact["key"],
                    original_ir=job.ir if tier == job.requested_method else None,
                )
                job.stages["verify"] = time.perf_counter() - verify_started
                with self._lock:
                    self.counters["verified"] += 1
                if not report.ok:
                    # Fail-stop: a computed artifact that fails its own
                    # verification is never cached or served.
                    with self._lock:
                        self.counters["verify_failed"] += 1
                    METRICS.inc("service.verify_failed")
                    AUDIT.record(
                        function=job.function_name, vreg="-",
                        step="verify-fail", job=job.job_id,
                        findings=report.findings[:3],
                    )
                    self._handle_failure(
                        job,
                        "artifact failed verification: "
                        + "; ".join(report.findings[:3]),
                        retryable=True,  # recompute is the healing path
                    )
                    continue
            job.execution_s = seconds
            self.cost_model.observe(tier, seconds)
            self.cache.put(artifact["key"], data)
            self._finish(job, data, tier, tier != job.requested_method)
            with self._lock:
                self.counters["executed"] += 1
            METRICS.observe("service.execution_s", seconds)

    def _execute_module(self, job: Job, tier: str) -> None:
        """One incremental module allocation, inline on the dispatcher.

        Fragment probes go through the *verified* cache lookup (same
        quarantine/recompute semantics as whole-artifact hits), so a
        corrupted on-disk fragment heals instead of splicing garbage.
        Only the functions whose fragments miss re-run the pipeline;
        the reuse/execute split lands in :attr:`incremental`.
        """
        started_wall = time.time()
        started = time.perf_counter()
        try:
            with TELEMETRY.activate(job.trace):
                artifact = build_module_artifact(
                    job.ir, job.file_spec, tier, job.flags,
                    machine=job.machine,
                    store=_FragmentView(self), counters=self.incremental,
                )
        except Exception as exc:
            transient = isinstance(exc, (InjectedFault, OSError, TimeoutError))
            self._handle_failure(job, str(exc), retryable=transient)
            return
        seconds = time.perf_counter() - started
        job.stages["alloc"] = seconds
        if job.trace is not None and TELEMETRY.enabled:
            if not job.span_sid:
                job.span_sid = new_span_id()
            TELEMETRY.record(
                {
                    "trace": job.trace.trace_id,
                    "sid": new_span_id(),
                    "parent": job.span_sid,
                    "name": "worker.execute",
                    "cat": "worker",
                    "proc": TELEMETRY.process,
                    "ts": started_wall,
                    "dur": seconds,
                    "args": {"method": tier, "kind": "module"},
                }
            )
        with self._lock:
            self.incremental["modules"] += 1
        data = artifact_bytes(artifact)
        if self.verifier.should_verify("computed"):
            verify_started = time.perf_counter()
            report = self.verifier.verify_bytes(
                data, expected_key=artifact["key"]
            )
            job.stages["verify"] = time.perf_counter() - verify_started
            with self._lock:
                self.counters["verified"] += 1
            if not report.ok:
                with self._lock:
                    self.counters["verify_failed"] += 1
                METRICS.inc("service.verify_failed")
                AUDIT.record(
                    function=job.function_name, vreg="-",
                    step="verify-fail", job=job.job_id,
                    findings=report.findings[:3],
                )
                self._handle_failure(
                    job,
                    "module artifact failed verification: "
                    + "; ".join(report.findings[:3]),
                    retryable=True,
                )
                return
        job.execution_s = seconds
        self.cost_model.observe(tier, seconds)
        self.cache.put(artifact["key"], data)
        self._finish(job, data, tier, tier != job.requested_method)
        with self._lock:
            self.counters["executed"] += 1
        METRICS.observe("service.execution_s", seconds)

    # ------------------------------------------------------------------
    # Failure path: bounded retries, then the dead-letter record
    # ------------------------------------------------------------------
    def _handle_failure(
        self, job: Job, error: str, *, retryable: bool = True
    ) -> None:
        if retryable and job.attempts <= self.config.job_retries:
            backoff = min(
                self.config.job_backoff_s * (2 ** (job.attempts - 1)), 1.0
            )
            if backoff > 0:
                time.sleep(backoff)
            with self._lock:
                self.counters["retried"] += 1
            METRICS.inc("service.retried")
            TELEMETRY.event_for(
                job.trace, "service.retry",
                job=job.job_id, attempt=job.attempts, error=error[:160],
            )
            job.status = "queued"
            job.error = error  # last error kept visible while retrying
            self._queue.put(job)
            return
        TELEMETRY.event_for(
            job.trace, "service.dead_letter",
            job=job.job_id, attempts=job.attempts, error=error[:160],
        )
        with self._lock:
            self.counters["dead_lettered"] += 1
            record = {
                "job_id": job.job_id,
                "key": job.key,
                "function": job.function_name,
                "requested_method": job.requested_method,
                "attempts": job.attempts,
                "error": error,
            }
            self.dead_letter.append(record)
            del self.dead_letter[: -self.config.dead_letter_limit]
        METRICS.inc("service.dead_lettered")
        AUDIT.record(
            function=job.function_name, vreg="-", step="dead-letter",
            job=job.job_id, attempts=job.attempts, error=error[:200],
        )
        job.dead_lettered = True
        self._fail(job, error, dead_letter=record)

    # ------------------------------------------------------------------
    def _finish(self, job: Job, data: bytes, tier: str, degraded: bool) -> None:
        if job.finished:
            with self._lock:
                self.counters["duplicate_deliveries"] += 1
            METRICS.inc("service.duplicate_deliveries")
            return
        with TRACER.span(
            "service-request",
            category="service",
            job=job.job_id,
            function=job.function_name,
            requested=job.requested_method,
            served=tier,
        ):
            job.resolve(data, tier, degraded)
        with self._lock:
            self._inflight.pop(job.key, None)
            self._finished_jobs += 1
            self.counters[f"tier_{tier}"] += 1
            if degraded:
                self.counters["degraded"] += 1
        METRICS.inc(f"service.tier.{tier}")
        self._journal_terminal(job)
        self._record_served(job)
        self._evict_finished()

    def _fail(self, job: Job, error: str, dead_letter: dict | None = None) -> None:
        if job.finished:
            return
        job.fail(error)
        with self._lock:
            self._inflight.pop(job.key, None)
            self._finished_jobs += 1
            self.counters["failed"] += 1
        METRICS.inc("service.failed")
        self._journal_terminal(job, dead_letter=dead_letter)
        self._record_failed(job, error)
        self._evict_finished()

    def _journal_terminal(self, job: Job, dead_letter: dict | None = None) -> None:
        """Write-ahead the terminal state; never let the journal fail a
        finished job (an append error degrades durability, not service).
        """
        if self.journal is None:
            return
        try:
            self.journal.record_terminal(
                job.job_id,
                job.status,
                key=job.key,
                served_method=job.served_method,
                degraded=job.degraded,
                error=job.error,
                dead_letter=dead_letter,
                attempts=job.attempts,
            )
        except (OSError, InjectedFault):
            pass

    def _note_degradation(self, job: Job, tier: str) -> None:
        remaining = job.remaining_s()
        AUDIT.record(
            function=job.function_name,
            vreg="-",
            step="service-degrade",
            requested=job.requested_method,
            served=tier,
            remaining_ms=None if remaining is None else remaining * 1000.0,
            job=job.job_id,
        )
        METRICS.inc("service.degraded")
        TELEMETRY.event_for(
            job.trace, "service.degrade",
            job=job.job_id, requested=job.requested_method, served=tier,
        )

    # ------------------------------------------------------------------
    # Fleet telemetry: the one place every terminal job goes through
    # ------------------------------------------------------------------
    def _record_served(self, job: Job) -> None:
        """SLO sample + stage histograms + job span + event for one
        successfully served job (cache hit or executed)."""
        latency = (job.finished_mono or time.monotonic()) - job.submitted_mono
        with self._lock:
            self.latency_hist.observe(latency)
            for stage, seconds in job.stages.items():
                hist = self.stage_hist.get(stage)
                if hist is None:
                    hist = self.stage_hist[stage] = StreamingHistogram()
                hist.observe(seconds)
        self.slo.record(ok=True, latency_s=latency, good=not job.degraded)
        self._record_job_span(job)
        self._emit_event(job)

    def _record_failed(self, job: Job, error: str) -> None:
        latency = (job.finished_mono or time.monotonic()) - job.submitted_mono
        with self._lock:
            self.latency_hist.observe(latency)
        self.slo.record(ok=False, latency_s=latency, good=False)
        self._record_job_span(job, error=error)
        self._emit_event(job)

    def _record_job_span(self, job: Job, error: str | None = None) -> None:
        if job.trace is None or not TELEMETRY.enabled:
            return
        latency = (job.finished_mono or time.monotonic()) - job.submitted_mono
        args = {
            "job": job.job_id,
            "function": job.function_name,
            "cache": job.cache,
            "requested": job.requested_method,
            "served": job.served_method,
            "degraded": job.degraded,
            "stages": {k: round(v, 6) for k, v in job.stages.items()},
        }
        if error is not None:
            args["error"] = error[:200]
        TELEMETRY.record(
            {
                "trace": job.trace.trace_id,
                "sid": job.span_sid or new_span_id(),
                "parent": job.trace.span_id,
                "name": "service.job",
                "cat": "service",
                "proc": TELEMETRY.process,
                "ts": job.submitted_wall,
                "dur": latency,
                "args": args,
            }
        )

    def _emit_event(self, job: Job) -> None:
        if not EVENTS.enabled:
            return
        latency = (job.finished_mono or time.monotonic()) - job.submitted_mono
        EVENTS.emit(
            {
                "ts": round(time.time(), 6),
                "proc": TELEMETRY.process,
                "trace": job.trace.trace_id if job.trace else None,
                "job": job.job_id,
                "function": job.function_name,
                "status": job.status,
                "cache": job.cache,
                "requested": job.requested_method,
                "served": job.served_method,
                "degraded": job.degraded,
                "retries": max(0, job.attempts - 1),
                "coalesced": job.coalesced,
                "latency_ms": round(latency * 1000.0, 3),
                "stages_ms": {
                    k: round(v * 1000.0, 3) for k, v in job.stages.items()
                },
                "error": job.error,
            }
        )

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            counters = dict(self.counters)
            dead_letter = list(self.dead_letter)
        stats = {
            "counters": counters,
            "incremental": dict(self.incremental),
            "queue_depth": self._queue.qsize(),
            "cache": self.cache.stats(),
            "tiers": self.cost_model.snapshot(),
            "dead_letter": dead_letter,
            "slo": self.slo.snapshot(),
            "lifecycle": self.lifecycle(),
            "config": {
                "workers": self.config.workers,
                "batch_size": self.config.batch_size,
                "max_retries": self.config.max_retries,
                "verify": self.config.verify,
                "job_retries": self.config.job_retries,
                "job_retention": self.config.job_retention,
                "max_queue_depth": self.config.max_queue_depth,
            },
        }
        if self.journal is not None:
            stats["journal"] = self.journal.stats()
        faults = FAULTS.stats()
        if faults is not None:
            stats["faults"] = faults
        return stats

    def metrics_sample(self) -> dict:
        """The live sample behind ``GET /v1/metrics``: the always-on
        service counters, queue/cache gauges, and stage/latency
        histograms, plus the PR-2 :data:`~repro.obs.METRICS` registry
        when ``--metrics`` is on.  Shape matches
        :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`, so
        :func:`~repro.obs.telemetry.render_prometheus` consumes it
        directly.
        """
        with self._lock:
            counters = {
                f"service.{name}": value
                for name, value in self.counters.items()
            }
            counters.update(
                {
                    f"service.incremental.{name}": value
                    for name, value in self.incremental.items()
                }
            )
            histograms = {
                f"service.stage_s.{name}": hist.summary()
                for name, hist in self.stage_hist.items()
            }
            histograms["service.latency_s"] = self.latency_hist.summary()
        cache = self.cache.stats()
        gauges = {
            "service.queue.depth": self._queue.qsize(),
            "service.cache.entries": cache["entries"],
            "service.cache.quarantined": cache["quarantined"],
        }
        sample = {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
        if METRICS.enabled:
            snap = METRICS.snapshot()
            sample["counters"].update(snap["counters"])
            sample["gauges"].update(snap["gauges"])
            sample["histograms"].update(snap["histograms"])
        return sample

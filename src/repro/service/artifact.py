"""Result artifacts and content-addressed cache keys.

The service and the CLI (``repro allocate --out``) share one artifact
schema so their outputs are byte-for-byte diffable.  An artifact is the
full outcome of one pipeline run — the allocated IR, the final
vreg→physreg assignment, and every statistic the experiment harness
measures — serialized as *canonical JSON* (sorted keys, fixed
separators), which is what makes cache hits bit-identical to cold runs.

The cache key is a SHA-256 over a canonical JSON encoding of everything
that determines the result:

* the *canonical* printed IR (the submitted text is parsed and
  re-printed, so whitespace/comment differences cannot fork the key);
* the register-file description (registers, banks, subgroups, class);
* the method (``bpc`` / ``bcr`` / ``non``);
* the pipeline flags, with defaults filled in (an empty flag dict and an
  explicitly-spelled-default dict hash identically);
* the machine model, *only when non-default*: a request measured on the
  out-of-order machine (``machine: {"model": "ooo", ...}``) carries its
  canonical spec in the key payload, so artifacts can never alias
  across machine models — while requests that omit ``machine`` (or
  spell out the default ``dsa``) hash byte-identically to
  pre-machine-aware clients.

Everything that does *not* change the result — deadlines, submission
order, observability settings — stays out of the key.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from ..banks.register_file import (
    BankedRegisterFile,
    BankSubgroupRegisterFile,
    RegisterFile,
)
from ..ir.function import Function, Module
from ..ir.parser import parse_function, parse_module
from ..ir.printer import print_function, print_module
from ..prescount.bank_assigner import DEFAULT_THRES_RATIO
from ..prescount.pipeline import METHODS, PipelineConfig, run_pipeline
from ..sim.ooo import (
    MACHINE_DEFAULT,
    OooConfig,
    OooMachine,
    normalize_machine_spec,
)
from ..sim.static_stats import analyze_static

#: Version of the artifact/key schema; bump on any content change.
SCHEMA_VERSION = 1

#: Pipeline knobs a request may override, with their defaults.  The
#: subset is deliberately the deterministic, result-affecting knobs of
#: :class:`~repro.prescount.pipeline.PipelineConfig`.
FLAG_DEFAULTS: dict[str, Any] = {
    "run_coalescing": True,
    "run_scheduling": True,
    "enable_live_range_split": True,
    "strict_banks": None,
    "thres_ratio": DEFAULT_THRES_RATIO,
    "use_pressure_counting": True,
    "cost_ordering": True,
    "balance_free_registers": True,
    "bundle_aware": False,
}


class RequestError(ValueError):
    """A malformed allocation request (bad IR, method, file, or flags)."""


def canonical_json(value: Any) -> str:
    """Deterministic JSON text: sorted keys, no insignificant whitespace."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def canonical_ir(text: str) -> str:
    """Parse and re-print IR text, normalizing whitespace and comments."""
    try:
        return print_function(parse_function(text))
    except Exception as exc:
        raise RequestError(f"unparseable IR: {exc}") from exc


def normalize_file_spec(spec: dict) -> dict:
    """Validate and default a register-file description.

    Accepted keys: ``registers`` (required), ``banks`` (default 2),
    ``subgroups`` (default 0 = flat interleaved file; > 0 selects the
    DSA's bank-subgroup design).
    """
    if not isinstance(spec, dict):
        raise RequestError(f"file spec must be an object, got {type(spec).__name__}")
    unknown = set(spec) - {"registers", "banks", "subgroups"}
    if unknown:
        raise RequestError(f"unknown file spec keys {sorted(unknown)}")
    try:
        registers = int(spec["registers"])
    except KeyError:
        raise RequestError("file spec needs 'registers'") from None
    banks = int(spec.get("banks", 2))
    subgroups = int(spec.get("subgroups", 0))
    if registers < 1 or banks < 1 or subgroups < 0:
        raise RequestError("file spec values must be positive")
    return {"registers": registers, "banks": banks, "subgroups": subgroups}


def build_register_file(spec: dict) -> RegisterFile:
    """Materialize the register file a normalized spec describes."""
    spec = normalize_file_spec(spec)
    try:
        if spec["subgroups"]:
            return BankSubgroupRegisterFile(
                spec["registers"], spec["banks"], spec["subgroups"]
            )
        return BankedRegisterFile(spec["registers"], spec["banks"])
    except ValueError as exc:
        raise RequestError(str(exc)) from exc


def normalize_flags(flags: dict | None) -> dict:
    """Fill flag defaults and reject unknown knobs."""
    flags = dict(flags or {})
    unknown = set(flags) - set(FLAG_DEFAULTS)
    if unknown:
        raise RequestError(f"unknown pipeline flags {sorted(unknown)}")
    merged = dict(FLAG_DEFAULTS)
    merged.update(flags)
    return merged


def check_method(method: str) -> str:
    if method not in METHODS:
        raise RequestError(
            f"unknown method {method!r}; expected one of {METHODS}"
        )
    return method


def check_machine(machine) -> dict:
    """Canonicalize a request's ``machine`` field (``None`` = default)."""
    try:
        return normalize_machine_spec(machine)
    except ValueError as exc:
        raise RequestError(str(exc)) from exc


def cache_key(
    ir: str,
    file_spec: dict,
    method: str,
    flags: dict | None = None,
    *,
    canonical: bool = False,
    machine: dict | str | None = None,
) -> str:
    """Content address of one allocation request.

    *ir* may be raw (un-canonical) text; it is normalized here unless
    the caller asserts it already came out of the printer
    (``canonical=True`` — the service's hot path, which canonicalizes
    once at submit).  The key is stable across processes and Python
    versions because it hashes canonical JSON, never ``repr`` or
    hash-seed-dependent orderings.

    *machine* selects the cycle model whose measurements ride in the
    artifact.  The default (in-order ``dsa``) contributes nothing to the
    payload, so pre-machine-aware keys are unchanged; any non-default
    spec is folded in canonically so artifacts measured on different
    machines never alias.
    """
    payload = {
        "schema": SCHEMA_VERSION,
        "ir": ir if canonical else canonical_ir(ir),
        "file": normalize_file_spec(file_spec),
        "method": check_method(method),
        "flags": normalize_flags(flags),
    }
    machine = check_machine(machine)
    if machine != MACHINE_DEFAULT:
        payload["machine"] = machine
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def build_artifact(
    function: Function | str,
    file_spec: dict,
    method: str,
    flags: dict | None = None,
    machine: dict | str | None = None,
) -> dict:
    """Run the pipeline and package the full result artifact.

    This is the single execution path behind the service workers *and*
    ``repro allocate --out`` — both produce the same schema, keyed by the
    same content address.  A non-default *machine* additionally runs the
    requested cycle model over the allocated function and attaches its
    measurements (``cycles`` / ``conflict_penalty_cycles`` /
    ``alignment_penalty_cycles``) plus the canonical spec under a
    ``machine`` field; the default leaves the artifact byte-identical to
    a machine-unaware build.
    """
    flags = normalize_flags(flags)
    file_spec = normalize_file_spec(file_spec)
    method = check_method(method)
    machine = check_machine(machine)
    if isinstance(function, str):
        try:
            function = parse_function(function)
        except Exception as exc:
            raise RequestError(f"unparseable IR: {exc}") from exc
    register_file = build_register_file(file_spec)
    config_kwargs = {k: v for k, v in flags.items() if v != FLAG_DEFAULTS[k]}
    config = PipelineConfig(register_file, method, **config_kwargs)
    pipe = run_pipeline(function, config)
    static = analyze_static(pipe.function, register_file, am=pipe.analyses)
    assignment = {
        f"%v{vreg.vid}": preg.index
        for vreg, preg in pipe.allocation.assignment.items()
    }
    artifact = {
        "schema": SCHEMA_VERSION,
        # print_function output is canonical by construction, so the key
        # needn't round-trip it through the parser again.
        "key": cache_key(
            print_function(function), file_spec, method, flags,
            canonical=True, machine=machine,
        ),
        "function": function.name,
        "method": method,
        "file": file_spec,
        "flags": flags,
        "ir": print_function(pipe.function),
        "assignment": dict(sorted(assignment.items())),
        "stats": {
            "instructions": static.instructions,
            "conflict_relevant": static.conflict_relevant,
            "static_conflicts": static.conflicts,
            "bank_conflicts": static.bank_conflicts,
            "subgroup_violations": static.subgroup_violations,
            "spills": pipe.spill_count,
            "spill_instructions": pipe.allocation.spill_instructions,
            "copies_inserted": pipe.copies_inserted,
            "copies_removed": pipe.allocation.copies_removed,
            "evictions": pipe.allocation.evictions,
        },
    }
    if machine != MACHINE_DEFAULT:
        model = OooMachine(
            register_file, config=OooConfig.from_dict(machine)
        )
        report = model.run(pipe.function, am=pipe.analyses)
        artifact["machine"] = machine
        artifact["stats"].update(
            {
                "cycles": report.cycles,
                "conflict_penalty_cycles": report.conflict_penalty_cycles,
                "alignment_penalty_cycles": report.alignment_penalty_cycles,
            }
        )
    return artifact


def artifact_bytes(artifact: dict) -> bytes:
    """Canonical wire/storage form; equality here is bit-identity."""
    return canonical_json(artifact).encode("utf-8")


# ----------------------------------------------------------------------
# Module artifacts: incremental reallocation over multi-function IR
# ----------------------------------------------------------------------
#
# A module request ("func @a {...} func @b {...}") decomposes into one
# *fragment* per function.  Each fragment is an ordinary function
# artifact keyed by its own :func:`cache_key`, so when K of N functions
# change between two submissions, the N-K unchanged fragments are plain
# content-address hits and only the K changed functions re-run the
# pipeline.  The spliced module artifact is byte-identical to a
# from-scratch build by construction: fragments are canonical JSON, and
# a loads/dumps round trip of canonical JSON is the identity.

def is_module_text(text: str) -> bool:
    """Whether IR text holds more than one ``func @`` definition."""
    return text.count("func @") > 1


def canonical_module(text: str | Module) -> Module:
    """Parse module text (idempotent on an already-parsed module)."""
    if isinstance(text, Module):
        return text
    try:
        return parse_module(text)
    except Exception as exc:
        raise RequestError(f"unparseable IR: {exc}") from exc


def module_cache_key(
    ir: str | list[str],
    file_spec: dict,
    method: str,
    flags: dict | None = None,
    *,
    machine: dict | str | None = None,
) -> str:
    """Content address of one *module* allocation request.

    *ir* is either raw module text or the list of canonical per-function
    IR texts.  The payload carries ``"kind": "module"`` so a module key
    can never collide with a single-function :func:`cache_key`.  Like
    :func:`cache_key`, a non-default *machine* spec joins the payload;
    the default contributes nothing.
    """
    if isinstance(ir, str):
        module = canonical_module(ir)
        ir = [print_function(fn) for fn in module.functions]
    payload = {
        "schema": SCHEMA_VERSION,
        "kind": "module",
        "ir": list(ir),
        "file": normalize_file_spec(file_spec),
        "method": check_method(method),
        "flags": normalize_flags(flags),
    }
    machine = check_machine(machine)
    if machine != MACHINE_DEFAULT:
        payload["machine"] = machine
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


#: The keys a service request body may carry.
REQUEST_KEYS = frozenset(
    {"ir", "file", "method", "flags", "deadline_ms", "machine"}
)


def normalize_request(request: dict) -> dict:
    """Validate and canonicalize one service request body.

    The single request-normalization path shared by the in-process
    :class:`~repro.service.queue.AllocationService` and the shard router
    (:mod:`repro.service.shard`): both must agree byte-for-byte on the
    canonical IR and the content address, or the same request could land
    on different shards depending on which door it came in through.

    Returns ``{kind, ir, file, method, flags, machine, deadline_ms,
    key}`` where *ir* is canonical (re-printed) text and *key* is the
    content address — :func:`module_cache_key` for multi-function IR,
    :func:`cache_key` otherwise.  Normalization is idempotent: feeding
    the returned fields back through produces the identical key.
    """
    if not isinstance(request, dict):
        raise RequestError("request body must be a JSON object")
    unknown = set(request) - REQUEST_KEYS
    if unknown:
        raise RequestError(f"unknown request keys {sorted(unknown)}")
    ir = request.get("ir")
    if not isinstance(ir, str) or not ir.strip():
        raise RequestError("request needs non-empty 'ir' text")
    kind = "function"
    if is_module_text(ir):
        # Multi-function IR takes the incremental module path; a module
        # of one function normalizes to a plain function request
        # (is_module_text needs two ``func @``).
        kind = "module"
        ir = print_module(canonical_module(ir))
    else:
        ir = canonical_ir(ir)
    file_spec = normalize_file_spec(request.get("file", {}))
    method = check_method(request.get("method", "bpc"))
    flags = normalize_flags(request.get("flags"))
    machine = check_machine(request.get("machine"))
    deadline_ms = request.get("deadline_ms")
    if deadline_ms is not None:
        deadline_ms = float(deadline_ms)
    if kind == "module":
        key = module_cache_key(ir, file_spec, method, flags, machine=machine)
    else:
        key = cache_key(
            ir, file_spec, method, flags, canonical=True, machine=machine
        )
    return {
        "kind": kind,
        "ir": ir,
        "file": file_spec,
        "method": method,
        "flags": flags,
        "machine": machine,
        "deadline_ms": deadline_ms,
        "key": key,
    }


def build_module_artifact(
    module: Module | str,
    file_spec: dict,
    method: str,
    flags: dict | None = None,
    *,
    machine: dict | str | None = None,
    store=None,
    counters: dict | None = None,
) -> dict:
    """Allocate every function of a module, reusing cached fragments.

    *store* is any object with ``get(key) -> bytes | None`` and
    ``put(key, bytes)`` (an :class:`~repro.service.cache.AllocationCache`
    or a plain dict via :class:`~repro.service.incremental.FragmentStore`).
    Without a store every function executes — the from-scratch path the
    parity tests compare against.

    *counters*, when given, accumulates ``functions_total`` /
    ``functions_reused`` / ``functions_executed`` across calls — the
    observable proof that an incremental rebuild re-ran only the changed
    functions.
    """
    flags = normalize_flags(flags)
    file_spec = normalize_file_spec(file_spec)
    method = check_method(method)
    machine = check_machine(machine)
    module = canonical_module(module)
    if not module.functions:
        raise RequestError("module holds no functions")
    fragments: list[dict] = []
    function_irs: list[str] = []
    reused = executed = 0
    for fn in module.functions:
        ir = print_function(fn)
        function_irs.append(ir)
        frag_key = cache_key(
            ir, file_spec, method, flags, canonical=True, machine=machine
        )
        data = store.get(frag_key) if store is not None else None
        if data is not None:
            # Canonical JSON round-trips exactly, so the reused fragment
            # splices in byte-identical to a fresh build.
            fragment = json.loads(data.decode("utf-8"))
            reused += 1
        else:
            fragment = build_artifact(fn, file_spec, method, flags, machine)
            if store is not None:
                store.put(frag_key, artifact_bytes(fragment))
            executed += 1
        fragments.append(fragment)
    if counters is not None:
        counters["functions_total"] = (
            counters.get("functions_total", 0) + len(fragments)
        )
        counters["functions_reused"] = (
            counters.get("functions_reused", 0) + reused
        )
        counters["functions_executed"] = (
            counters.get("functions_executed", 0) + executed
        )
    stats: dict[str, Any] = {}
    for fragment in fragments:
        for name, value in fragment["stats"].items():
            stats[name] = stats.get(name, 0) + value
    artifact = {
        "schema": SCHEMA_VERSION,
        "kind": "module",
        "key": module_cache_key(
            function_irs, file_spec, method, flags, machine=machine
        ),
        "module": module.name,
        "method": method,
        "file": file_spec,
        "flags": flags,
        "functions": fragments,
        "stats": stats,
    }
    if machine != MACHINE_DEFAULT:
        artifact["machine"] = machine
    return artifact

"""Shard-aware front end: consistent-hash the key space over N workers.

One :class:`~repro.service.queue.AllocationService` scales until its
dispatcher thread saturates a core.  The shard layer scales *out*: a
:class:`ShardRouter` consistent-hashes the content-address key space
over N workers, each owning its **own** cache shard directory — no two
workers ever race on one disk entry, and in-flight coalescing keeps
working because identical requests always land on the same shard.

Topology (see ``docs/SCALING.md``)::

    client ──HTTP──▶ ShardFrontendServer ──▶ ShardRouter
                                              │ consistent-hash ring
                    ┌─────────────────────────┼─────────────────────┐
                    ▼                         ▼                     ▼
              worker shard s0           worker shard s1       worker shard s2
              (AllocationService        (own process,         ...
               + cache dir s0)          cache dir s1)

The pieces:

* :class:`HashRing` — consistent hashing with virtual nodes.  Vnode
  positions derive from the shard *name*, so a respawned worker takes
  back exactly its old slice of the key space, and removing a dead
  shard remaps **only that shard's keys** (everything else keeps its
  owner — the rebalance-on-eviction invariant the tests pin down).
* :class:`LocalShard` — an in-process worker (one
  :class:`~repro.service.queue.AllocationService` with its own cache
  dir).  Deterministic and fast; the tests, benches, and the loadgen
  direct mode run on it.
* :class:`ProcessShard` — a worker *process* running the stock HTTP
  server on a free port (the child sends the port back over a pipe),
  spoken to through :class:`~repro.service.client.ServiceClient` —
  which brings the PR-5 retry/backoff machinery to every hop.
* :class:`ShardRouter` — normalizes each request **once**
  (:func:`~repro.service.artifact.normalize_request`), routes by
  content address down the ring's preference order, and namespaces job
  ids as ``<local id>@<shard>`` so polls route back.  Health checks
  reuse the client-side circuit breaker per shard: a worker that keeps
  failing its probe is **evicted** from the ring (its keys rehash to
  the survivors) and, once the breaker's cooldown admits a trial,
  **respawned** and re-added — taking its old keys back.
* :class:`ShardFrontendServer` / :func:`make_shard_server` — the HTTP
  face (``repro serve --shards N``), same routes as the single-process
  server; ``/v1/stats`` aggregates counters across shards.

Chaos coverage: the ``shard.route`` fault site (mode ``handoff``)
forces the router to skip its first choice, and ``shard.worker``
(``death`` / ``kill9`` / ``unhealthy``) breaks workers under the health
loop (:mod:`repro.resilience.faults`).

Lifecycle (PR 10, see ``docs/RESILIENCE.md``): ``POST
/v1/admin/drain?shard=NAME`` drains one worker (off the ring for new
keys, in-flight finishes, polls keep resolving), and
:meth:`ShardRouter.rolling_restart` drains → restarts → rejoins shards
one at a time — with per-shard journals (``--journal``) a restarted or
even SIGKILLed worker replays its accepted-but-unfinished jobs on boot.

Telemetry: when :data:`~repro.obs.telemetry.TELEMETRY` is enabled the
frontend opens a ``frontend.request`` span per HTTP request, the router
nests a ``route`` span under it (handoffs, evictions, and shard
failures become span events), and the trace context rides the
``X-Repro-Trace`` header into each worker process — so ``GET
/v1/trace/<trace_id>`` can merge the per-shard span buffers into one
coherent trace.  ``GET /v1/metrics`` at the frontend aggregates every
shard's registry under a ``shard`` label next to the router's own
counters.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import os
import threading
import time
from dataclasses import asdict, replace
from http.server import ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from ..obs.telemetry import (
    TELEMETRY,
    SLOTracker,
    StreamingHistogram,
    TraceContext,
)
from ..resilience.faults import FAULTS
from .artifact import RequestError, normalize_request
from .client import ServiceClient, ServiceError, _CircuitBreaker
from .queue import (
    AllocationService,
    ServiceConfig,
    ServiceDrainingError,
    ServiceOverloadError,
)
from .server import (
    DEFAULT_SYNC_TIMEOUT_S,
    MAX_SYNC_TIMEOUT_S,
    ServiceHandler,
)

__all__ = [
    "HashRing",
    "LocalShard",
    "NoShardAvailableError",
    "ProcessShard",
    "ShardError",
    "ShardFrontendHandler",
    "ShardFrontendServer",
    "ShardRouter",
    "make_shard_server",
    "shard_cache_dir",
    "shutdown_shard_server",
]


class ShardError(RuntimeError):
    """A shard worker failed at the transport level (dead, unreachable)."""


class NoShardAvailableError(ShardError):
    """Every live shard refused the request; nothing left to hand off to."""


def _point(text: str) -> int:
    """Stable 64-bit ring position of *text* (sha256 prefix, not hash())."""
    return int(hashlib.sha256(text.encode("utf-8")).hexdigest()[:16], 16)


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Each member contributes ``replicas`` vnodes at positions derived
    from its *name* — deterministic across processes and restarts, so a
    respawned shard reclaims exactly the key slice it owned before.
    Lookups walk clockwise from the key's position; ``preference``
    yields every distinct member in that order, which is the router's
    handoff chain.
    """

    def __init__(self, replicas: int = 64):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._positions: list[int] = []  # sorted vnode positions
        self._owners: list[str] = []  # owner name per position
        self._members: set[str] = set()

    @property
    def members(self) -> list[str]:
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def add(self, name: str) -> None:
        if name in self._members:
            return
        self._members.add(name)
        for i in range(self.replicas):
            position = _point(f"{name}#{i}")
            at = bisect.bisect_left(self._positions, position)
            self._positions.insert(at, position)
            self._owners.insert(at, name)

    def remove(self, name: str) -> None:
        if name not in self._members:
            return
        self._members.discard(name)
        keep = [
            (position, owner)
            for position, owner in zip(self._positions, self._owners)
            if owner != name
        ]
        self._positions = [position for position, _ in keep]
        self._owners = [owner for _, owner in keep]

    def lookup(self, key: str) -> str | None:
        """The member owning *key*, or ``None`` on an empty ring."""
        if not self._positions:
            return None
        at = bisect.bisect_right(self._positions, _point(key))
        return self._owners[at % len(self._owners)]

    def preference(self, key: str) -> list[str]:
        """Every distinct member in clockwise order from *key*.

        The first entry is :meth:`lookup`'s answer; the rest are the
        handoff order when owners fail mid-request.
        """
        if not self._positions:
            return []
        start = bisect.bisect_right(self._positions, _point(key))
        seen: list[str] = []
        for offset in range(len(self._owners)):
            owner = self._owners[(start + offset) % len(self._owners)]
            if owner not in seen:
                seen.append(owner)
                if len(seen) == len(self._members):
                    break
        return seen


# ----------------------------------------------------------------------
# Shard workers
# ----------------------------------------------------------------------

def shard_cache_dir(base: str | None, name: str) -> str | None:
    """The worker-private cache directory for shard *name*.

    Keyspace partitioning makes per-shard directories safe: two shards
    can never hold the same content address while both are live, so
    there is no cross-worker disk race to guard against.
    """
    if base is None:
        return None
    return os.path.join(base, f"shard-{name}")


class LocalShard:
    """An in-process shard: one dispatcher-driven allocation service.

    Used by the tests, the benches, and ``repro loadgen``'s direct mode
    — everything a worker process does, minus the process (fully
    deterministic, no sockets).  ``kill`` simulates worker death: every
    later call raises :class:`ShardError` until :meth:`respawn`.
    """

    def __init__(self, name: str, config: ServiceConfig | None = None):
        self.name = name
        self._config = config or ServiceConfig()
        self.service = AllocationService(self._config)
        self.service.start()
        self._dead = False

    # -- lifecycle -----------------------------------------------------
    def kill(self) -> None:
        self._dead = True
        self.service.stop()

    def kill9(self) -> None:
        """Hard kill: no drain, no journal sync — as SIGKILL would.

        In-process there is no way to *not* keep the page cache, so the
        observable difference from :meth:`kill` is that the service is
        abandoned without ``stop()`` (no journal close/sync)."""
        self._dead = True

    def close(self) -> None:
        self.kill()

    def respawn(self) -> None:
        """Fresh service over the same config (and thus cache dir).

        With a journal configured, the fresh service's ``start`` replays
        it — recovery is part of the spawn path, not a special case.
        The swap is ordered so concurrent pollers always see a usable
        service: the old one (intact until the swap) or the new one
        (only after recovery completed).
        """
        fresh = AllocationService(self._config)
        if not self._dead:
            self.service.stop()  # graceful: journal synced before replay
        fresh.start()  # replays the journal before anyone can poll it
        self.service = fresh
        self._dead = False

    def drain(self) -> dict:
        """Finish in-flight work, reject new submits; returns lifecycle."""
        self._check()
        return self.service.drain()

    def resume(self) -> dict:
        self._check()
        return self.service.resume()

    def healthy(self) -> bool:
        return not self._dead

    def _check(self) -> None:
        if self._dead:
            raise ShardError(f"shard {self.name!r} is dead")

    # -- request surface ----------------------------------------------
    def submit(self, body: dict, trace: TraceContext | None = None) -> dict:
        self._check()
        return self.service.submit(body, trace=trace).describe()

    def poll(self, job_id: str) -> dict:
        self._check()
        job = self.service.get(job_id)
        if job is None:
            view = self.service.lookup(job_id)  # durable dead-letter view
            if view is not None:
                return view
            raise ServiceError(f"unknown job {job_id!r}", status=404)
        return job.describe()

    def wait(self, job_id: str, timeout: float = 30.0) -> dict:
        self._check()
        try:
            return self.service.wait(job_id, timeout).describe()
        except KeyError as exc:
            raise ServiceError(str(exc), status=404) from exc

    def result(self, job_id: str) -> bytes:
        self._check()
        job = self.service.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}", status=404)
        if job.status != "done" or job.artifact is None:
            raise ServiceError(
                f"job {job_id!r} is {job.status}", status=500
            )
        return job.artifact

    def stats(self) -> dict:
        self._check()
        return self.service.stats()

    def metrics_sample(self) -> list:
        """``[(labels, sample), ...]`` — one unlabeled sample here; the
        router stamps the ``shard`` label on."""
        self._check()
        return [({}, self.service.metrics_sample())]

    def trace(self, trace_id: str) -> dict:
        """Local shards share the frontend's span buffer (same process,
        same recorder) — return nothing so the merge never duplicates."""
        self._check()
        return {"trace_id": trace_id, "spans": []}


def _shard_worker_main(
    conn,
    host: str,
    config_kwargs: dict,
    name: str | None = None,
    telemetry: bool = False,
) -> None:
    """Child-process entry: serve one shard, report the bound port.

    Faults re-arm from ``REPRO_FAULTS`` at import, so a chaos plan armed
    in the parent injects inside the workers too.  *telemetry* mirrors
    the parent's :data:`TELEMETRY` enablement (the fork start method
    would inherit it, but spawn would not), and *name* labels the
    child's spans ``shard-<name>`` so the merged trace shows which
    worker ran what.
    """
    import signal

    from .server import make_server

    if telemetry:
        TELEMETRY.enable(process=f"shard-{name}" if name else "shard")
    server = make_server(host, 0, ServiceConfig(**config_kwargs))

    def _graceful(signum, frame):
        # SIGTERM = graceful: finish in-flight work, sync the journal,
        # then leave.  SIGKILL skips all of this — that is the crash
        # the write-ahead journal recovers from.
        def _stop():
            server.service.drain_wait(timeout=10.0)
            server.shutdown()

        threading.Thread(target=_stop, daemon=True).start()

    signal.signal(signal.SIGTERM, _graceful)
    conn.send(server.server_address[1])
    conn.close()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        server.service.stop()  # closes + syncs the journal


class ProcessShard:
    """A shard worker in its own process, spoken to over HTTP.

    The child runs the stock :func:`~repro.service.server.make_server`
    on a free port and pipes the port number back; the parent talks to
    it through a :class:`~repro.service.client.ServiceClient`, which
    carries the PR-5 retry/backoff + Retry-After handling on every hop.
    """

    def __init__(
        self,
        name: str,
        config: ServiceConfig | None = None,
        *,
        host: str = "127.0.0.1",
        boot_timeout_s: float = 30.0,
        client_retries: int = 2,
        client_timeout_s: float = 30.0,
    ):
        self.name = name
        self._config = config or ServiceConfig()
        self._host = host
        self._boot_timeout_s = boot_timeout_s
        self._client_retries = client_retries
        self._client_timeout_s = client_timeout_s
        self.process = None
        self.port: int | None = None
        self.client: ServiceClient | None = None
        self._boot()

    def _boot(self) -> None:
        import multiprocessing

        parent_conn, child_conn = multiprocessing.Pipe()
        self.process = multiprocessing.Process(
            target=_shard_worker_main,
            args=(
                child_conn,
                self._host,
                asdict(self._config),
                self.name,
                TELEMETRY.enabled,
            ),
            name=f"repro-shard-{self.name}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        if not parent_conn.poll(self._boot_timeout_s):
            self.process.terminate()
            raise ShardError(
                f"shard {self.name!r} did not report a port within "
                f"{self._boot_timeout_s}s"
            )
        self.port = parent_conn.recv()
        parent_conn.close()
        self.client = ServiceClient(
            f"http://{self._host}:{self.port}",
            timeout=self._client_timeout_s,
            retries=self._client_retries,
        )

    # -- lifecycle -----------------------------------------------------
    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    def kill(self) -> None:
        """SIGTERM: the worker's graceful path (drain + journal sync)."""
        if self.process is not None and self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=10)

    def kill9(self) -> None:
        """SIGKILL: no drain, no sync — the crash the journal exists for."""
        if self.process is not None and self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=10)

    def close(self) -> None:
        self.kill()

    def respawn(self) -> None:
        """Replace the worker process; same name, same cache shard.

        The fresh worker's service ``start`` replays its journal (when
        one is configured), so recovery rides the normal boot path.
        """
        self.kill()
        self._boot()

    def drain(self) -> dict:
        """``POST /v1/admin/drain`` on the worker; poll until drained."""
        return self._call(self.client.drain)

    def resume(self) -> dict:
        # The HTTP surface has no resume: a drained worker restarts
        # (fresh process, fresh non-draining service) instead.
        raise ShardError(
            f"shard {self.name!r}: resume means respawn for process shards"
        )

    def healthy(self) -> bool:
        if self.process is None or not self.process.is_alive():
            return False
        try:
            return bool(self.client.health().get("ok"))
        except Exception:
            return False

    # -- request surface ----------------------------------------------
    def _call(self, fn, *args, **kwargs):
        try:
            return fn(*args, **kwargs)
        except ServiceError as exc:
            if exc.status is None:
                # No HTTP status = the transport itself failed — the
                # worker is gone, not the request.
                raise ShardError(f"shard {self.name!r}: {exc}") from exc
            raise

    def submit(self, body: dict, trace: TraceContext | None = None) -> dict:
        return self._call(self.client.submit_request, body, trace=trace)

    def poll(self, job_id: str) -> dict:
        return self._call(self.client.poll, job_id)

    def wait(self, job_id: str, timeout: float = 30.0) -> dict:
        return self._call(self.client.wait, job_id, timeout=timeout)

    def result(self, job_id: str) -> bytes:
        return self._call(self.client.result, job_id)

    def stats(self) -> dict:
        return self._call(self.client.stats)

    def metrics_sample(self) -> list:
        """The worker's ``/v1/metrics?format=json`` samples, as
        ``[(labels, sample), ...]`` ready for router relabeling."""
        payload = self._call(self.client.metrics_json)
        return [
            (entry.get("labels") or {}, entry.get("sample") or {})
            for entry in payload.get("samples", ())
        ]

    def trace(self, trace_id: str) -> dict:
        """The worker process's span buffer for *trace_id*."""
        return self._call(self.client.trace, trace_id)


# ----------------------------------------------------------------------
# The router
# ----------------------------------------------------------------------

class ShardRouter:
    """Key-affine request routing over a fleet of shard workers.

    Every request is normalized exactly once; its content address picks
    the shard, so identical concurrent submissions — from any number of
    clients — converge on one shard and coalesce there (the exactly-once
    guarantee survives sharding).  Shard failures walk the ring's
    preference order; a shard whose per-shard circuit breaker trips is
    evicted from the ring and respawned after the breaker's cooldown.

    ``health_interval_s=None`` (the default) leaves health checking to
    explicit :meth:`check_health` calls — the deterministic mode the
    tests drive; :meth:`start_health_loop` runs it on a timer thread.
    """

    def __init__(
        self,
        shards,
        *,
        replicas: int = 64,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 0.5,
        auto_respawn: bool = True,
    ):
        self.ring = HashRing(replicas)
        self.shards: dict[str, object] = {}
        self.breakers: dict[str, _CircuitBreaker] = {}
        self._evicted: dict[str, object] = {}
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown_s = breaker_cooldown_s
        self.auto_respawn = auto_respawn
        self._lock = threading.RLock()
        self._health_thread: threading.Thread | None = None
        self._health_stop = threading.Event()
        self.counters = {
            "requests": 0,
            "handoffs": 0,
            "evicted": 0,
            "respawned": 0,
            "health_checks": 0,
            "no_shard": 0,
            "drains": 0,
            "drain_handoffs": 0,
            "rolling_restarts": 0,
        }
        #: Shards currently draining: out of the ring (no new keys) but
        #: still in :attr:`shards` so polls for in-flight jobs resolve.
        self._draining: set[str] = set()
        #: Requests routed per shard name (deterministic for a fixed
        #: request sequence — the loadgen shard-balance report).
        self.routed: dict[str, int] = {}
        #: Monotonic clock at (re)spawn per shard — the uptime base.
        self.started: dict[str, float] = {}
        #: Wall clock of the last health probe per shard.
        self.last_health: dict[str, float] = {}
        #: Routing-layer SLO: availability of submits, routing latency,
        #: goodput = landed on the ring's first choice (no handoff).
        self.slo = SLOTracker()
        self.route_hist = StreamingHistogram()
        for shard in shards:
            self.add_shard(shard)

    # -- membership ----------------------------------------------------
    def add_shard(self, shard) -> None:
        with self._lock:
            if shard.name in self.shards:
                raise ValueError(f"duplicate shard name {shard.name!r}")
            self.shards[shard.name] = shard
            self.breakers[shard.name] = _CircuitBreaker(
                self._breaker_threshold, self._breaker_cooldown_s
            )
            self.routed.setdefault(shard.name, 0)
            self.started[shard.name] = time.monotonic()
            self.ring.add(shard.name)

    def evict(self, name: str) -> None:
        """Drop *name* from the ring; its keys rehash to the survivors."""
        with self._lock:
            shard = self.shards.pop(name, None)
            if shard is None:
                return
            self.ring.remove(name)
            self._draining.discard(name)
            self._evicted[name] = shard
            self.counters["evicted"] += 1
        TELEMETRY.event("router.evict", shard=name)

    def respawn(self, name: str) -> None:
        """Restart an evicted worker and hand its key slice back."""
        with self._lock:
            shard = self._evicted.pop(name, None)
            if shard is None:
                return
            shard.respawn()
            self.shards[name] = shard
            self.breakers[name] = _CircuitBreaker(
                self._breaker_threshold, self._breaker_cooldown_s
            )
            self.ring.add(name)
            self.started[name] = time.monotonic()
            self.counters["respawned"] += 1
        TELEMETRY.event("router.respawn", shard=name)

    # -- lifecycle: drain / rolling restart ---------------------------
    def drain(self, name: str) -> dict:
        """Put shard *name* in draining mode and take it off the ring.

        New keys route to the survivors immediately; the shard stays in
        :attr:`shards` so polls/results for its in-flight jobs keep
        resolving until it quiesces.  Returns the shard's lifecycle view
        (call again to poll ``drained``).
        """
        with self._lock:
            shard = self.shards.get(name)
            if shard is None:
                raise ShardError(f"shard {name!r} is not in the fleet")
            first = name not in self._draining
            if first:
                self._draining.add(name)
                self.ring.remove(name)
                self.counters["drains"] += 1
        if first:
            TELEMETRY.event("router.drain", shard=name)
        return shard.drain()

    def rejoin(self, name: str) -> None:
        """Put a drained (and usually restarted) shard back on the ring."""
        with self._lock:
            if name not in self.shards:
                raise ShardError(f"shard {name!r} is not in the fleet")
            self._draining.discard(name)
            self.ring.add(name)
            self.breakers[name] = _CircuitBreaker(
                self._breaker_threshold, self._breaker_cooldown_s
            )
            self.started[name] = time.monotonic()
        TELEMETRY.event("router.rejoin", shard=name)

    def rolling_restart(
        self, *, wait_timeout_s: float = 30.0, poll_s: float = 0.02
    ) -> dict:
        """Drain → restart → rejoin every shard, one at a time.

        At every instant all but one shard serve traffic, and the one
        being restarted first finishes everything it accepted — so a
        rolling restart under load loses zero goodput (the chaos suite
        gates this).  Returns a report with per-shard outcomes.
        """
        report = {"restarted": [], "timed_out": [], "order": []}
        with self._lock:
            names = sorted(self.shards)
        for name in names:
            report["order"].append(name)
            try:
                lifecycle = self.drain(name)
            except (ShardError, ServiceError) as exc:
                report["timed_out"].append({"shard": name, "error": str(exc)})
                continue
            deadline = time.monotonic() + wait_timeout_s
            while not lifecycle.get("drained"):
                if time.monotonic() >= deadline:
                    break
                time.sleep(poll_s)
                try:
                    lifecycle = self.drain(name)  # idempotent poll
                except (ShardError, ServiceError):
                    break
            with self._lock:
                shard = self.shards.get(name)
            if shard is None:  # evicted mid-drain by the health loop
                report["timed_out"].append({"shard": name, "error": "evicted"})
                continue
            shard.respawn()
            self.rejoin(name)
            with self._lock:
                self.counters["respawned"] += 1
            report["restarted"].append(name)
        with self._lock:
            self.counters["rolling_restarts"] += 1
        TELEMETRY.event("router.rolling_restart", **{
            "restarted": len(report["restarted"]),
            "timed_out": len(report["timed_out"]),
        })
        return report

    def _shard_failed(self, name: str) -> None:
        with self._lock:
            breaker = self.breakers.get(name)
            if breaker is None:
                return
            breaker.record(ok=False)
            if not breaker.allow():
                self.evict(name)

    # -- health --------------------------------------------------------
    def check_health(self) -> dict:
        """Probe every live shard; evict the broken, respawn the cooled.

        The ``shard.worker`` fault site hooks in here: ``death`` kills
        the worker outright (the probe then finds the corpse), ``kill9``
        hard-kills it with no drain or journal sync (recovery must come
        from the write-ahead journal), and ``unhealthy`` fails the probe
        without killing — the chaos shapes the eviction/respawn and
        durability machinery must absorb.
        """
        report = {"healthy": [], "evicted": [], "respawned": []}
        with self._lock:
            live = list(self.shards.items())
        self.counters["health_checks"] += 1
        for name, shard in live:
            forced_unhealthy = False
            if FAULTS.enabled:
                point = FAULTS.fire("shard.worker", label=name)
                if point is not None:
                    if point.mode == "death":
                        shard.kill()
                    elif point.mode == "kill9":
                        # SIGKILL: no drain, no journal sync — recovery
                        # must come from the write-ahead journal alone.
                        getattr(shard, "kill9", shard.kill)()
                    elif point.mode == "unhealthy":
                        forced_unhealthy = True
            ok = not forced_unhealthy and shard.healthy()
            self.last_health[name] = time.time()
            breaker = self.breakers[name]
            breaker.record(ok)
            if ok:
                report["healthy"].append(name)
            elif not breaker.allow():
                self.evict(name)
                report["evicted"].append(name)
        if self.auto_respawn:
            for name in sorted(self._evicted):
                shard = self._evicted[name]
                if shard.healthy() or self._cooldown_elapsed(name):
                    self.respawn(name)
                    report["respawned"].append(name)
        return report

    def _cooldown_elapsed(self, name: str) -> bool:
        breaker = self.breakers.get(name)
        # The eviction-time breaker is replaced on respawn; half-open
        # means its cooldown has elapsed — time for the trial restart.
        return breaker is None or breaker.state != "open"

    def start_health_loop(self, interval_s: float = 1.0) -> None:
        if self._health_thread is not None:
            return
        self._health_stop.clear()

        def loop() -> None:
            while not self._health_stop.wait(interval_s):
                try:
                    self.check_health()
                except Exception:
                    # The loop must outlive any one probe failure.
                    pass

        self._health_thread = threading.Thread(
            target=loop, name="repro-shard-health", daemon=True
        )
        self._health_thread.start()

    def stop_health_loop(self) -> None:
        if self._health_thread is None:
            return
        self._health_stop.set()
        self._health_thread.join(timeout=5)
        self._health_thread = None

    def close(self) -> None:
        self.stop_health_loop()
        with self._lock:
            shards = list(self.shards.values()) + list(self._evicted.values())
            self.shards.clear()
            self._evicted.clear()
        for shard in shards:
            try:
                shard.close()
            except Exception:
                pass

    # -- routing -------------------------------------------------------
    def submit(
        self, request: dict, trace: TraceContext | None = None
    ) -> dict:
        """Normalize, route by content address, forward, qualify the id.

        Failures walk the preference chain (``handoffs``); overload and
        bad requests propagate — handing a shed request to another
        shard would trade cache affinity for queue depth, and a bad
        request fails identically everywhere.

        With telemetry on, the walk runs inside a ``route`` span under
        *trace* (a fresh root when the caller passed none — the loadgen
        direct mode), and the forwarded shard sees the span's child
        context; handoffs and shard failures become span events.  The
        router-level :class:`~repro.obs.telemetry.SLOTracker` counts a
        submit *good* only when it landed on the ring's first choice.
        """
        normalized = normalize_request(request)
        body = {
            "ir": normalized["ir"],
            "file": normalized["file"],
            "method": normalized["method"],
            "flags": normalized["flags"],
        }
        if normalized["machine"].get("model") != "dsa":
            # Forward non-default machines verbatim, or the shard would
            # re-derive a machine-less key and fork the content address.
            body["machine"] = normalized["machine"]
        if normalized["deadline_ms"] is not None:
            body["deadline_ms"] = normalized["deadline_ms"]
        if trace is None and TELEMETRY.enabled:
            trace = TraceContext.new(component="router")
        with self._lock:
            self.counters["requests"] += 1
            chain = self.ring.preference(normalized["key"])
        owner = chain[0] if chain else None
        start = time.perf_counter()
        status: dict | None = None
        ok = False
        try:
            with TELEMETRY.span(
                trace, "route", category="router", key=normalized["key"][:12]
            ) as span:
                status = self._route(body, normalized["key"], chain, span.ctx)
            ok = True
            return status
        finally:
            elapsed = time.perf_counter() - start
            self.route_hist.observe(elapsed)
            self.slo.record(
                ok=ok,
                latency_s=elapsed,
                good=ok and status is not None and status.get("shard") == owner,
            )

    def _route(self, body: dict, key: str, chain: list, ctx) -> dict:
        """Walk the preference chain under the ``route`` span's context."""
        if chain and FAULTS.enabled:
            point = FAULTS.fire("shard.route", label=key)
            if point is not None and point.mode == "handoff" and len(chain) > 1:
                chain = chain[1:]
                with self._lock:
                    self.counters["handoffs"] += 1
                TELEMETRY.event_for(
                    ctx, "router.fault_handoff", shard=chain[0]
                )
        last_error: Exception | None = None
        for hop, name in enumerate(chain):
            with self._lock:
                shard = self.shards.get(name)
            if shard is None:
                continue
            if hop > 0:
                with self._lock:
                    self.counters["handoffs"] += 1
                TELEMETRY.event_for(
                    ctx, "router.handoff", shard=name, hop=hop
                )
            try:
                if ctx is not None:
                    status = shard.submit(body, trace=ctx)
                else:
                    status = shard.submit(body)
            except RequestError:
                raise
            except ServiceDrainingError as exc:
                # A draining shard is healthy, just leaving: hand the
                # key to the next choice without touching the breaker.
                with self._lock:
                    self.counters["drain_handoffs"] += 1
                TELEMETRY.event_for(ctx, "router.drain_handoff", shard=name)
                last_error = exc
                continue
            except ServiceOverloadError:
                raise
            except ServiceError as exc:
                if exc.draining:
                    with self._lock:
                        self.counters["drain_handoffs"] += 1
                    TELEMETRY.event_for(
                        ctx, "router.drain_handoff", shard=name
                    )
                    last_error = exc
                    continue
                if exc.status in (429, 503):
                    raise ServiceOverloadError(
                        0, 0, retry_after_s=1.0
                    ) from exc
                if exc.status is not None and exc.status < 500:
                    raise
                self._shard_failed(name)
                TELEMETRY.event_for(
                    ctx, "router.shard_failed", shard=name,
                    error=str(exc)[:160],
                )
                last_error = exc
                continue
            except ShardError as exc:
                self._shard_failed(name)
                TELEMETRY.event_for(
                    ctx, "router.shard_failed", shard=name,
                    error=str(exc)[:160],
                )
                last_error = exc
                continue
            with self._lock:
                self.breakers[name].record(ok=True)
                self.routed[name] = self.routed.get(name, 0) + 1
            return self._qualify(status, name)
        with self._lock:
            self.counters["no_shard"] += 1
        raise NoShardAvailableError(
            f"no live shard accepted key {key[:12]}…"
            + (f" (last error: {last_error})" if last_error else "")
        )

    @staticmethod
    def _qualify(status: dict, name: str) -> dict:
        status = dict(status)
        status["job_id"] = f"{status['job_id']}@{name}"
        status["shard"] = name
        return status

    def _resolve(self, job_id: str):
        if "@" not in job_id:
            raise RequestError(
                f"job id {job_id!r} is not shard-qualified (want <id>@<shard>)"
            )
        local_id, name = job_id.rsplit("@", 1)
        with self._lock:
            shard = self.shards.get(name)
        if shard is None:
            raise ShardError(f"shard {name!r} is not in the ring")
        return shard, local_id, name

    def poll(self, job_id: str) -> dict:
        shard, local_id, name = self._resolve(job_id)
        return self._qualify(shard.poll(local_id), name)

    def wait(self, job_id: str, timeout: float = 30.0) -> dict:
        shard, local_id, name = self._resolve(job_id)
        return self._qualify(shard.wait(local_id, timeout=timeout), name)

    def result(self, job_id: str) -> bytes:
        shard, local_id, _ = self._resolve(job_id)
        return shard.result(local_id)

    # -- stats ---------------------------------------------------------
    def stats(self) -> dict:
        """Fleet view: per-shard stats plus cross-shard aggregates.

        ``counters`` and ``incremental`` sum the live shards' counters
        (same keys as the single-process ``/v1/stats``), so dashboards
        built against one server read the fleet unchanged; ``router``
        carries the routing/eviction side.
        """
        with self._lock:
            live = dict(self.shards)
            now = time.monotonic()
            router = {
                "counters": dict(self.counters),
                "routed": dict(self.routed),
                "ring": {
                    "members": self.ring.members,
                    "replicas": self.ring.replicas,
                },
                "evicted": sorted(self._evicted),
                "draining": sorted(self._draining),
                "breakers": {
                    name: breaker.state
                    for name, breaker in self.breakers.items()
                },
                "shards": {
                    name: {
                        "uptime_s": round(
                            now - self.started.get(name, now), 3
                        ),
                        "last_health_check": self.last_health.get(name),
                        # Worker pid (None for in-process shards): the
                        # CI kill-restart gate targets its SIGKILL here.
                        "pid": getattr(live[name], "pid", None),
                    }
                    for name in sorted(live)
                },
                "slo": self.slo.snapshot(),
            }
        shard_stats: dict[str, dict] = {}
        for name, shard in sorted(live.items()):
            try:
                shard_stats[name] = shard.stats()
            except (ShardError, ServiceError) as exc:
                shard_stats[name] = {"error": str(exc)}
        counters: dict[str, int] = {}
        incremental: dict[str, int] = {}
        queue_depth = 0
        for stats in shard_stats.values():
            for name, value in stats.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value
            for name, value in stats.get("incremental", {}).items():
                incremental[name] = incremental.get(name, 0) + value
            queue_depth += stats.get("queue_depth", 0)
        return {
            "counters": counters,
            "incremental": incremental,
            "queue_depth": queue_depth,
            "shards": shard_stats,
            "router": router,
        }

    # -- telemetry -----------------------------------------------------
    def metrics_samples(self) -> list:
        """``[(labels, sample), ...]`` for the fleet exposition: the
        router's own counters/SLO unlabeled, per-shard routed counts and
        every live shard's registry under a ``shard`` label.  A shard
        whose fetch fails is skipped — a scrape must never take the
        frontend down with a worker.
        """
        with self._lock:
            counters = {
                f"router.{name}": float(value)
                for name, value in self.counters.items()
            }
            routed = dict(self.routed)
            live = sorted(self.shards.items())
            evicted = len(self._evicted)
        own = {
            "counters": counters,
            "gauges": {
                "router.shards.live": float(len(live)),
                "router.shards.evicted": float(evicted),
            },
            "histograms": {"router.route_s": self.route_hist.summary()},
        }
        samples: list = [({}, own)]
        for name, count in sorted(routed.items()):
            samples.append(
                ({"shard": name}, {"counters": {"router.routed": float(count)}})
            )
        for name, shard in live:
            fetch = getattr(shard, "metrics_sample", None)
            if fetch is None:
                continue
            try:
                shard_samples = fetch()
            except Exception:
                continue
            for labels, sample in shard_samples:
                samples.append(({**(labels or {}), "shard": name}, sample))
        return samples

    def trace(self, trace_id: str) -> dict:
        """Merge the frontend-process span buffer (frontend + router +
        any :class:`LocalShard` spans) with every live worker's buffer
        for *trace_id* — the payload ``repro trace fetch`` renders."""
        spans = list(TELEMETRY.spans_for(trace_id))
        with self._lock:
            live = sorted(self.shards.items())
        for name, shard in live:
            fetch = getattr(shard, "trace", None)
            if fetch is None:
                continue
            try:
                payload = fetch(trace_id)
            except Exception:
                continue
            if isinstance(payload, dict):
                spans.extend(payload.get("spans") or ())
        return {"trace_id": trace_id, "spans": spans}


# ----------------------------------------------------------------------
# HTTP front end
# ----------------------------------------------------------------------

class ShardFrontendHandler(ServiceHandler):
    """Same routes as :class:`ServiceHandler`, served by the router.

    Reuses the base handler's JSON plumbing and ``_guarded`` rail (the
    ``server.request`` fault site and the concurrent-handler limit work
    unchanged at the frontend), but resolves every request through
    ``self.server.router`` instead of a local service.
    """

    server_version = "repro-shard-frontend/1"
    span_name = "frontend.request"

    @property
    def router(self) -> ShardRouter:
        return self.server.router  # type: ignore[attr-defined]

    def _metrics_samples(self) -> list:
        # The fleet exposition: router counters + per-shard registries.
        return self.router.metrics_samples()

    def _trace_payload(self, trace_id: str) -> dict:
        # Merged across the frontend process and every worker shard.
        return self.router.trace(trace_id)

    def _do_get(self) -> None:
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if url.path == "/healthz":
                self._send_json({"ok": True, "shards": len(self.router.ring)})
            elif url.path == "/v1/stats":
                self._send_json(self.router.stats())
            elif url.path == "/v1/metrics":
                self._get_metrics(url)
            elif len(parts) == 3 and parts[:2] == ["v1", "trace"]:
                self._send_json(self._trace_payload(parts[2]))
            elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                self._send_json(self.router.poll(parts[2]))
            elif (
                len(parts) == 4
                and parts[:2] == ["v1", "jobs"]
                and parts[3] == "result"
            ):
                self._get_result(parts[2])
            else:
                self._send_json({"error": f"no such path {url.path!r}"}, 404)
        except RequestError as exc:
            self._send_json({"error": str(exc)}, 400)
        except ServiceError as exc:
            self._send_json({"error": str(exc)}, exc.status or 502)
        except ShardError as exc:
            self._send_json({"error": str(exc)}, 503, retry_after_s=1.0)

    def _get_result(self, job_id: str) -> None:
        status = self.router.poll(job_id)
        if status["status"] == "failed":
            self._send_json(status, 500)
        elif status["status"] != "done":
            self._send_json(status, 202, retry_after_s=1.0)
        else:
            self._send_bytes(self.router.result(job_id))

    def _do_post(self) -> None:
        url = urlparse(self.path)
        try:
            if url.path == "/v1/submit":
                with self._request_span() as span:
                    status = self.router.submit(
                        self._read_body(), trace=span.ctx
                    )
                self._send_json(
                    status, 202 if status["status"] == "queued" else 200
                )
            elif url.path == "/v1/allocate":
                self._allocate(url)
            elif url.path == "/v1/admin/drain":
                self._drain(url)
            else:
                self._send_json({"error": f"no such path {url.path!r}"}, 404)
        except RequestError as exc:
            self._send_json({"error": str(exc)}, 400)
        except ServiceOverloadError as exc:
            payload = {"error": str(exc)}
            if isinstance(exc, ServiceDrainingError):
                payload["draining"] = True
            self._send_json(payload, 503, retry_after_s=exc.retry_after_s)
        except (ShardError, ServiceError) as exc:
            self._send_json({"error": str(exc)}, 503, retry_after_s=1.0)

    def _drain(self, url) -> None:
        """``POST /v1/admin/drain?shard=NAME`` — drain one worker shard.

        Idempotent: repeat to poll ``drained``.  Without the ``shard``
        query the frontend cannot guess which worker to take down, so it
        answers 400 with the fleet roster.
        """
        query = parse_qs(url.query)
        name = query.get("shard", [None])[0]
        if name is None:
            raise RequestError(
                "drain which shard? pass ?shard=NAME, one of "
                f"{self.router.ring.members}"
            )
        self._send_json(self.router.drain(name))

    def _allocate(self, url) -> None:
        query = parse_qs(url.query)
        timeout = float(query.get("timeout_s", [DEFAULT_SYNC_TIMEOUT_S])[0])
        timeout = min(max(timeout, 0.0), MAX_SYNC_TIMEOUT_S)
        with self._request_span() as span:
            status = self.router.submit(self._read_body(), trace=span.ctx)
        if status["status"] not in ("done", "failed"):
            try:
                status = self.router.wait(status["job_id"], timeout=timeout)
            except ServiceError:
                pass  # still pending: fall through to the 202 below
        if status["status"] == "failed":
            self._send_json(status, 500)
        elif status["status"] != "done":
            self._send_json(status, 202, retry_after_s=1.0)
        else:
            status["artifact"] = json.loads(
                self.router.result(status["job_id"])
            )
            self._send_json(status)


class ShardFrontendServer(ThreadingHTTPServer):
    """The sharded fleet's HTTP face; one router behind many handlers."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        router: ShardRouter,
        max_concurrent_requests: int = 32,
    ):
        super().__init__(address, ShardFrontendHandler)
        self.router = router
        self.request_slots = threading.BoundedSemaphore(
            max(1, max_concurrent_requests)
        )


def make_shard_server(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    shards: int = 3,
    config: ServiceConfig | None = None,
    replicas: int = 64,
    health_interval_s: float | None = 1.0,
    router: ShardRouter | None = None,
) -> ShardFrontendServer:
    """Boot a worker fleet and bind the front end (``repro serve --shards``).

    Workers are named ``s0..s{N-1}``; each gets a private cache shard
    under the configured ``cache_dir`` (:func:`shard_cache_dir`), and —
    when ``journal_dir`` is configured — a private write-ahead journal
    under it (same per-name layout, same no-cross-worker-race argument:
    keyspace partitioning means no two live shards share a journal).
    Pass a pre-built *router* to serve custom shard objects (the tests
    mount :class:`LocalShard` fleets this way).  ``port=0`` binds a free
    port.
    """
    base = config or ServiceConfig()
    if router is None:
        workers = []
        for i in range(max(1, shards)):
            name = f"s{i}"
            worker_config = replace(
                base,
                cache_dir=shard_cache_dir(base.cache_dir, name),
                journal_dir=shard_cache_dir(base.journal_dir, name),
            )
            workers.append(ProcessShard(name, worker_config, host=host))
        router = ShardRouter(workers, replicas=replicas)
    if health_interval_s is not None:
        router.start_health_loop(health_interval_s)
    return ShardFrontendServer(
        (host, port), router, base.max_concurrent_requests
    )


def shutdown_shard_server(server) -> None:
    """Stop the HTTP loop, the health loop, and every worker."""
    server.shutdown()
    server.server_close()
    server.router.close()

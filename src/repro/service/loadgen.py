"""Seeded open-loop traffic harness for the service (``repro loadgen``).

Closed-loop clients (issue, wait, repeat) hide overload: when the server
slows down, a closed loop slows its own arrival rate and the measured
latency flatters the system.  This harness is **open-loop** — arrivals
follow a seeded schedule that does not care how the server is doing —
so queueing delay shows up in the tail percentiles exactly the way it
would for real traffic (the coordinated-omission lesson).

The traffic shape is fully determined by the seed:

* **arrival ramp** — phases of ``(duration_s, rps)``; inter-arrival
  gaps are exponential (Poisson arrivals), drawn from the seeded RNG;
* **Zipf popularity** — request *i* targets a kernel drawn from a
  ``1/rank^s`` distribution over a deterministic kernel pool, so a few
  hot keys dominate and stress one shard's cache/coalescing path
  (exactly what the consistent-hash layout must absorb);
* **deadline mix** — a seeded fraction of requests carry deadlines
  drawn from a fixed menu, exercising the ``bpc→bcr→non`` degradation
  ladder under load.

Determinism contract (what :func:`~repro.experiments.history.diff_records`
may gate on vs. report): the *request sequence*, the per-shard routing
counts, ``goodput``/``failed``/``verify_failed``, and the sampled-
response bit-identity checks are deterministic for a fixed seed against
a healthy fleet.  Latency percentiles, throughput, and the degraded
count depend on wall-clock timing and are **informational only** — the
same split the BENCH history schema already draws for its ``latency``
block.  The telemetry additions follow the same line: per-stage timing
aggregates (``stages_ms``), the client-side SLO snapshot (``slo``), and
the sampled ``trace_ids`` are wall-clock-dependent and informational —
``repro bench diff`` reports stage regressions but gates only on the
deterministic fields.

Bit-identity: the first ``sample`` distinct kernels' responses are
compared byte-for-byte against a direct single-process
:func:`~repro.service.artifact.build_artifact` run at the tier actually
served — the acceptance check that sharding (and degradation under it)
never changes *what* is computed, only *where*.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..obs.telemetry import TELEMETRY, SLOTracker, TraceContext
from .artifact import artifact_bytes, build_artifact
from .client import ServiceClient, ServiceError
from .queue import ServiceOverloadError
from .shard import ShardError, ShardRouter

__all__ = [
    "LoadgenConfig",
    "build_kernel_pool",
    "build_schedule",
    "loadgen_record",
    "percentile",
    "run_loadgen",
]


@dataclass
class LoadgenConfig:
    """One seeded traffic scenario.

    ``phases`` ramps the arrival rate: each entry is ``(duration_s,
    rps)``; once every phase has elapsed the last rate carries on until
    ``requests`` arrivals have been scheduled, so the request count is
    exact and seed-stable.
    """

    seed: int = 0
    #: Total arrivals scheduled (exact).
    requests: int = 60
    #: Distinct kernels in the popularity pool.
    pool: int = 12
    #: Zipf skew ``s`` (weights ``1/rank^s``); larger = hotter head.
    zipf_s: float = 1.1
    #: Arrival-rate ramp: ``(duration_s, rps)`` phases.
    phases: tuple = ((0.5, 80.0), (0.5, 240.0))
    #: Fraction of requests carrying a deadline.
    deadline_frac: float = 0.0
    #: Deadline menu (milliseconds) for that fraction.
    deadline_choices_ms: tuple = (5.0, 20.0, 100.0)
    method: str = "bpc"
    registers: int = 16
    banks: int = 2
    #: Distinct kernels whose responses are checked bit-identical
    #: against a direct single-process run.
    sample: int = 4
    #: Concurrent in-flight request workers.
    max_in_flight: int = 32
    #: Per-request completion timeout.
    timeout_s: float = 30.0

    def fingerprint(self) -> dict:
        """The generation parameters — the record's config identity.

        Deliberately excludes anything about *where* the traffic went
        (host, port, shard count): the same scenario replayed against a
        different fleet size must stay diffable.
        """
        return {
            "kind": "loadgen",
            "seed": self.seed,
            "requests": self.requests,
            "pool": self.pool,
            "zipf_s": self.zipf_s,
            "phases": [list(p) for p in self.phases],
            "deadline_frac": self.deadline_frac,
            "deadline_choices_ms": list(self.deadline_choices_ms),
            "method": self.method,
            "registers": self.registers,
            "banks": self.banks,
            "sample": self.sample,
        }


def build_kernel_pool(config: LoadgenConfig) -> list[str]:
    """Deterministic canonical IR texts, one per pool slot.

    Kernels vary in pair count and trip count so distinct slots get
    distinct content addresses (and thus, usually, distinct shards).
    """
    from ..ir import IRBuilder, print_function

    pool: list[str] = []
    for i in range(config.pool):
        builder = IRBuilder(f"lg_k{i}")
        n_pairs = 3 + (i % 4)
        xs = [builder.const(float(j + 1)) for j in range(n_pairs + 1)]
        acc = builder.const(0.0)
        with builder.loop(trip_count=8 + 2 * i):
            for j in range(n_pairs):
                product = builder.arith("fmul", xs[j], xs[j + 1])
                builder.arith_into(acc, "fadd", acc, product)
        builder.ret(acc)
        pool.append(print_function(builder.finish()))
    return pool


@dataclass
class Arrival:
    """One scheduled request: when, which kernel, what deadline."""

    at_s: float
    kernel: int
    deadline_ms: float | None


def build_schedule(config: LoadgenConfig) -> list[Arrival]:
    """The seeded arrival schedule — same seed, same schedule, always."""
    rng = random.Random(config.seed)
    ranks = range(1, config.pool + 1)
    weights = [1.0 / (rank ** config.zipf_s) for rank in ranks]
    arrivals: list[Arrival] = []
    phases = list(config.phases) or [(1.0, 50.0)]
    phase_index = 0
    phase_end = phases[0][0]
    clock = 0.0
    while len(arrivals) < config.requests:
        rate = max(float(phases[phase_index][1]), 1e-6)
        clock += rng.expovariate(rate)
        while phase_index < len(phases) - 1 and clock > phase_end:
            phase_index += 1
            phase_end += phases[phase_index][0]
        kernel = rng.choices(range(config.pool), weights=weights)[0]
        deadline_ms = None
        if config.deadline_frac > 0 and rng.random() < config.deadline_frac:
            deadline_ms = rng.choice(list(config.deadline_choices_ms))
        arrivals.append(Arrival(clock, kernel, deadline_ms))
    return arrivals


def percentile(sorted_values: list[float], pct: float) -> float | None:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return None
    rank = max(1, int(-(-pct * len(sorted_values) // 100)))  # ceil
    return sorted_values[min(rank, len(sorted_values)) - 1]


class RouterTarget:
    """Drive a :class:`~repro.service.shard.ShardRouter` in-process."""

    def __init__(self, router: ShardRouter):
        self.router = router

    def submit(self, body: dict, trace: TraceContext | None = None) -> dict:
        return self.router.submit(body, trace=trace)

    def wait(self, job_id: str, timeout: float) -> dict:
        return self.router.wait(job_id, timeout=timeout)

    def result(self, job_id: str) -> bytes:
        return self.router.result(job_id)

    def stats(self) -> dict:
        return self.router.stats()


class HttpTarget:
    """Drive a running server (single-process or sharded) over HTTP."""

    def __init__(self, client: ServiceClient):
        self.client = client

    def submit(self, body: dict, trace: TraceContext | None = None) -> dict:
        return self.client.submit_request(body, trace=trace)

    def wait(self, job_id: str, timeout: float) -> dict:
        return self.client.wait(job_id, timeout=timeout)

    def result(self, job_id: str) -> bytes:
        return self.client.result(job_id)

    def stats(self) -> dict:
        return self.client.stats()


def run_loadgen(target, config: LoadgenConfig | None = None) -> dict:
    """Replay one seeded scenario against *target*; return the report.

    *target* is a :class:`RouterTarget`, :class:`HttpTarget`, or
    anything with the same ``submit``/``wait``/``result``/``stats``
    quartet.  The report's deterministic fields (``goodput``,
    ``failed``, ``verify_failed``, ``samples``, ``shards``) are what CI
    gates on; its timing fields are informational.
    """
    config = config or LoadgenConfig()
    pool = build_kernel_pool(config)
    schedule = build_schedule(config)
    sampled = []
    for arrival in schedule:
        if arrival.kernel not in sampled:
            sampled.append(arrival.kernel)
        if len(sampled) >= config.sample:
            break
    sampled_set = set(sampled[: config.sample])

    latencies: list[float] = []
    failures: list[str] = []
    counts = {"ok": 0, "failed": 0, "degraded": 0, "shed": 0}
    sample_bytes: dict[int, list[tuple[str, bytes]]] = {}
    slo = SLOTracker()
    stage_samples: dict[str, list[float]] = {}
    trace_ids: list[str] = []

    def one(arrival: Arrival, arrived_mono: float):
        body = {
            "ir": pool[arrival.kernel],
            "file": {"registers": config.registers, "banks": config.banks},
            "method": config.method,
        }
        if arrival.deadline_ms is not None:
            body["deadline_ms"] = arrival.deadline_ms
        # One root context per arrival (telemetry on only), so every
        # request is fetchable end to end via /v1/trace/<trace_id>.
        trace = (
            TraceContext.new(kernel=f"lg_k{arrival.kernel}")
            if TELEMETRY.enabled
            else None
        )
        try:
            if trace is not None:
                status = target.submit(body, trace=trace)
            else:
                status = target.submit(body)
            if status["status"] not in ("done", "failed"):
                status = target.wait(status["job_id"], config.timeout_s)
            if status["status"] != "done":
                return (
                    "failed", arrival, None, status.get("error"), None, trace
                )
            data = None
            if arrival.kernel in sampled_set:
                data = target.result(status["job_id"])
            latency = time.perf_counter() - arrived_mono
            return ("ok", arrival, latency, status, data, trace)
        except (ServiceOverloadError, ServiceError, ShardError) as exc:
            return ("failed", arrival, None, str(exc), None, trace)

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=config.max_in_flight) as executor:
        futures = []
        for arrival in schedule:
            now = time.perf_counter() - started
            if arrival.at_s > now:
                time.sleep(arrival.at_s - now)
            # Latency clocks from the *scheduled* arrival, so queueing
            # delay when the fleet falls behind lands in the tail.
            arrived = started + arrival.at_s
            futures.append(executor.submit(one, arrival, arrived))
        for future in futures:
            outcome, arrival, latency, status, data, trace = future.result()
            if trace is not None and len(trace_ids) < 8:
                trace_ids.append(trace.trace_id)
            if outcome != "ok":
                counts["failed"] += 1
                slo.record(ok=False)
                failures.append(str(status)[:200])
                continue
            counts["ok"] += 1
            latencies.append(latency)
            degraded = bool(
                isinstance(status, dict) and status.get("degraded")
            )
            if degraded:
                counts["degraded"] += 1
            slo.record(ok=True, latency_s=latency, good=not degraded)
            if isinstance(status, dict):
                for stage, seconds in (status.get("stages") or {}).items():
                    stage_samples.setdefault(stage, []).append(float(seconds))
            if data is not None:
                served = status.get("served_method") or config.method
                sample_bytes.setdefault(arrival.kernel, []).append(
                    (served, data)
                )
    elapsed = time.perf_counter() - started

    # Bit-identity: every sampled response must equal a direct
    # single-process build at the tier that was served.
    checked = matched = mismatched = 0
    for kernel, responses in sorted(sample_bytes.items()):
        references: dict[str, bytes] = {}
        for served, data in responses:
            if served not in references:
                references[served] = artifact_bytes(
                    build_artifact(
                        pool[kernel],
                        {
                            "registers": config.registers,
                            "banks": config.banks,
                        },
                        served,
                    )
                )
            checked += 1
            if data == references[served]:
                matched += 1
            else:
                mismatched += 1

    stats = {}
    try:
        stats = target.stats()
    except Exception:
        pass
    shards = dict(stats.get("router", {}).get("routed", {}))
    counters = stats.get("counters", {})

    latencies.sort()
    stages_ms: dict[str, dict] = {}
    for stage, values in sorted(stage_samples.items()):
        values.sort()
        stages_ms[stage] = {
            "count": len(values),
            "mean": _ms(sum(values) / len(values)),
            "p99": _ms(percentile(values, 99.0)),
        }
    return {
        "requests": len(schedule),
        "goodput": counts["ok"],
        "failed": counts["failed"],
        "degraded": counts["degraded"],
        "verify_failed": counters.get("verify_failed", 0),
        "cache_hits": counters.get("cache_hits", 0),
        "elapsed_s": round(elapsed, 3),
        "throughput_rps": round(counts["ok"] / elapsed, 1) if elapsed else None,
        "latency_ms": {
            "p50": _ms(percentile(latencies, 50.0)),
            "p99": _ms(percentile(latencies, 99.0)),
            "p999": _ms(percentile(latencies, 99.9)),
            "max": _ms(latencies[-1] if latencies else None),
        },
        "shards": shards,
        "stages_ms": stages_ms,
        "slo": slo.snapshot(),
        "trace_ids": trace_ids,
        "samples": {
            "kernels": sorted(sampled_set),
            "checked": checked,
            "matched": matched,
            "mismatched": mismatched,
        },
        "failures": failures[:10],
    }


def _ms(seconds: float | None) -> float | None:
    return None if seconds is None else round(seconds * 1000.0, 3)


def loadgen_record(
    report: dict, config: LoadgenConfig, label: str = ""
) -> dict:
    """Package a loadgen report as a BENCH history record.

    Same schema version and required fields as
    :func:`~repro.experiments.history.collect_record` (so
    ``load_record`` accepts it), with the scenario fingerprint as the
    config identity and the report under a ``loadgen`` block that
    ``diff_records`` knows how to gate.
    """
    from ..experiments.history import SCHEMA_VERSION

    return {
        "schema": SCHEMA_VERSION,
        "label": label,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "config": config.fingerprint(),
        "programs": {},
        "totals": {},
        "loadgen": report,
    }

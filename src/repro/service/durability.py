"""Write-ahead job journal: crash-durable accepted-work semantics.

The in-memory queue (:mod:`repro.service.queue`) loses every
accepted-but-unfinished job when its process dies.  The
:class:`JobJournal` closes that window with a write-ahead log in the
same spirit as the ``repro-cache/2`` disk format (PR 5): every record
is one self-describing, sha256-checksummed JSONL **frame**::

    repro-journal/1 <sha256-of-payload> <canonical-json-payload>\\n

Two record types move a job through the journal:

* ``accepted`` — appended *before* the submit returns, carrying the
  full normalized request (ir/file/method/flags/machine) plus the job
  id, so the job can be rebuilt byte-identically after a crash;
* ``terminal`` — appended when the job reaches ``done`` / ``failed`` /
  dead-letter, carrying the outcome (and the failure reason for
  dead-letters, which makes the dead-letter list itself durable).

**Replay** scans checkpoint-then-journal and returns the jobs that were
accepted but never reached a terminal frame.  Recovery is idempotent by
construction: results are content-addressed, so a replayed job whose
artifact already landed in the cache completes instantly and
byte-identically — *exactly-once by idempotency*, not by consensus.

Corruption handling mirrors the cache's fail-stop posture:

* a **torn final frame** (the crash happened mid-``write``) is
  truncated away — the job it described was never acknowledged, so
  dropping it is correct;
* a corrupt frame **mid-file** (bit rot, a torn write that later
  appends happened to survive) is quarantined to ``quarantine.jsonl``
  and skipped — never silently trusted, never fatal to its neighbours.

**Compaction** folds the journal into ``checkpoint.jsonl`` (atomic
tmp+rename) once terminal frames dominate the live set, so the journal
stays proportional to in-flight work, not to service lifetime.

The ``queue.journal`` fault site (modes ``torn-write`` / ``error``)
injects exactly these failures for the chaos suite.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field

from ..resilience import FAULTS, InjectedFault

#: Frame format tag; bump on incompatible frame/record changes.
JOURNAL_FORMAT = "repro-journal/1"

#: Fields of an ``accepted`` frame that rebuild the original request.
REQUEST_FIELDS = ("ir", "file", "method", "flags", "machine", "deadline_ms")


def frame_record(record: dict) -> bytes:
    """One checksummed JSONL frame for *record* (trailing newline)."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    return f"{JOURNAL_FORMAT} {digest} {payload}\n".encode("utf-8")


def parse_frame(line: bytes) -> dict | None:
    """Decode one frame; ``None`` on any structural/checksum mismatch."""
    try:
        text = line.decode("utf-8")
    except UnicodeDecodeError:
        return None
    if not text.endswith("\n"):
        return None  # torn write: the newline is the commit marker
    parts = text.rstrip("\n").split(" ", 2)
    if len(parts) != 3 or parts[0] != JOURNAL_FORMAT:
        return None
    _, digest, payload = parts
    if hashlib.sha256(payload.encode("utf-8")).hexdigest() != digest:
        return None
    try:
        record = json.loads(payload)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


@dataclass
class JournalReplay:
    """What a :meth:`JobJournal.replay` found on disk."""

    #: ``accepted`` records (in journal order) with no terminal frame —
    #: the jobs recovery must re-enqueue.
    pending: list = field(default_factory=list)
    #: Durable dead-letter records (terminal ``dead_lettered`` frames
    #: plus checkpointed snapshots), oldest first.
    dead_letter: list = field(default_factory=list)
    #: Every ``terminal`` record in journal order (last one per job id
    #: wins) — recovery re-materializes finished jobs from these as
    #: pollable tombstones, so clients that saw a job complete can
    #: still fetch its status/result across a restart.
    finished: list = field(default_factory=list)
    frames: int = 0
    accepted: int = 0
    terminal: int = 0
    #: 1 when a torn final frame was truncated away.
    truncated: int = 0
    #: Corrupt mid-file frames moved to ``quarantine.jsonl``.
    quarantined: int = 0


class JobJournal:
    """Append-only write-ahead journal for one :class:`AllocationService`.

    Thread-safe; appends are serialized under one lock.  ``flush`` after
    every frame survives a SIGKILL of the process (the bytes are in the
    page cache); pass ``fsync=True`` to also survive power loss at the
    cost of one ``fsync(2)`` per frame.
    """

    JOURNAL = "journal.jsonl"
    CHECKPOINT = "checkpoint.jsonl"
    QUARANTINE = "quarantine.jsonl"

    def __init__(
        self,
        directory: str,
        *,
        compact_min_frames: int = 256,
        fsync: bool = False,
        dead_letter_limit: int = 64,
    ):
        self.directory = directory
        self.compact_min_frames = compact_min_frames
        self.fsync = fsync
        self.dead_letter_limit = dead_letter_limit
        os.makedirs(directory, exist_ok=True)
        self._lock = threading.RLock()
        self._fh = None
        #: job_id -> accepted record, for every job without a terminal
        #: frame yet (mirrors what a replay of the current disk state
        #: would return as pending).
        self._pending: dict[str, dict] = {}
        self._dead: list[dict] = []
        self._frames_since_compact = 0
        self._terminal_since_compact = 0
        self.counters = {
            "appended": 0,
            "append_errors": 0,
            "compactions": 0,
            "replayed_frames": 0,
            "truncated_frames": 0,
            "quarantined_frames": 0,
        }

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def journal_path(self) -> str:
        return os.path.join(self.directory, self.JOURNAL)

    @property
    def checkpoint_path(self) -> str:
        return os.path.join(self.directory, self.CHECKPOINT)

    @property
    def quarantine_path(self) -> str:
        return os.path.join(self.directory, self.QUARANTINE)

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------
    def record_accepted(self, job) -> None:
        """Journal one accepted job before its submit returns."""
        record = {
            "type": "accepted",
            "job_id": job.job_id,
            "key": job.key,
            "kind": job.kind,
            "ir": job.ir,
            "file": job.file_spec,
            "method": job.requested_method,
            "flags": job.flags,
            "machine": job.machine,
            "deadline_ms": (
                None if job.deadline_s is None
                else job.deadline_s * 1000.0
            ),
        }
        with self._lock:
            self._pending[job.job_id] = record
            self._append(record)

    def record_terminal(
        self,
        job_id: str,
        status: str,
        *,
        key: str | None = None,
        served_method: str | None = None,
        degraded: bool = False,
        error: str | None = None,
        dead_letter: dict | None = None,
        attempts: int = 0,
    ) -> None:
        """Journal a terminal state (``done``/``failed``/superseded).

        *dead_letter*, when given, is the service's dead-letter record;
        it rides in the frame so the dead-letter list survives a crash.
        """
        record = {
            "type": "terminal",
            "job_id": job_id,
            "status": status,
            "key": key,
            "served_method": served_method,
            "degraded": degraded,
            "error": error,
            "attempts": attempts,
        }
        if dead_letter is not None:
            record["dead_letter"] = dead_letter
        with self._lock:
            self._pending.pop(job_id, None)
            if dead_letter is not None:
                self._dead.append(dead_letter)
                del self._dead[: -self.dead_letter_limit]
            self._terminal_since_compact += 1
            self._append(record)
        self.maybe_compact()

    def drop_pending(self, job_id: str) -> None:
        """Forget a pending entry without a terminal frame.

        Used by recovery for replayed jobs that resolved out-of-band
        (cache hit, coalesced onto another recovered job); the next
        compaction persists the removal.
        """
        with self._lock:
            self._pending.pop(job_id, None)

    def _append(self, record: dict) -> None:
        frame = frame_record(record)
        if FAULTS.enabled:
            point = FAULTS.fire("queue.journal", label=record.get("type", "?"))
            if point is not None:
                if point.mode == "torn-write":
                    # A crash mid-write: only a prefix of the frame
                    # reaches the file, and the process "dies" before
                    # any later append (replay truncates it away).
                    keep = float(point.detail.get("keep", 0.5))
                    torn = frame[: max(1, int(len(frame) * keep))]
                    self._write(torn.rstrip(b"\n"))
                    return
                if point.mode == "error":
                    self.counters["append_errors"] += 1
                    raise InjectedFault(point.site, point.mode)
        self._write(frame)
        self.counters["appended"] += 1
        self._frames_since_compact += 1

    def _write(self, data: bytes) -> None:
        if self._fh is None:
            self._fh = open(self.journal_path, "ab")
        self._fh.write(data)
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def sync(self) -> None:
        """Flush + fsync the journal (the SIGTERM graceful-drain step)."""
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                os.fsync(self._fh.fileno())

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay(self) -> JournalReplay:
        """Scan checkpoint-then-journal and rebuild the live set.

        Also primes this journal's in-memory state so subsequent
        appends/compactions continue from what disk says.  A torn final
        frame in the journal is truncated away (the write never
        committed); a corrupt frame anywhere else is quarantined.
        """
        replay = JournalReplay()
        accepted: dict[str, dict] = {}  # job_id -> record, insertion-ordered
        dead: list[dict] = []

        def _consume(record: dict) -> None:
            replay.frames += 1
            rtype = record.get("type")
            if rtype == "accepted" and record.get("job_id"):
                replay.accepted += 1
                accepted[record["job_id"]] = record
            elif rtype == "terminal":
                replay.terminal += 1
                accepted.pop(record.get("job_id"), None)
                replay.finished.append(record)
                if record.get("dead_letter") is not None:
                    dead.append(record["dead_letter"])
            elif rtype == "dead-letter":
                dead.append(record.get("record") or {})

        with self._lock:
            self.close()
            self._scan_file(self.checkpoint_path, _consume, replay, tail_truncate=False)
            self._scan_file(self.journal_path, _consume, replay, tail_truncate=True)
            del dead[: -self.dead_letter_limit]
            replay.pending = list(accepted.values())
            replay.dead_letter = list(dead)
            self._pending = dict(accepted)
            self._dead = list(dead)
            self._frames_since_compact = 0
            self._terminal_since_compact = 0
            self.counters["replayed_frames"] += replay.frames
        return replay

    def _scan_file(self, path, consume, replay, *, tail_truncate: bool) -> None:
        """Scan one frame file, healing it in place.

        Valid frames are consumed in order.  An invalid *final* frame of
        the journal is a torn write — truncated, not quarantined (its
        submit never returned, so nothing was promised).  Any other
        invalid frame is copied to ``quarantine.jsonl`` and dropped.
        Either way the file is atomically rewritten to only the valid
        frames, so a second replay sees a clean file.
        """
        if not os.path.exists(path):
            return
        with open(path, "rb") as fh:
            raw = fh.read()
        if not raw:
            return
        good: list[bytes] = []
        dirty = False
        offset, length = 0, len(raw)
        while offset < length:
            newline = raw.find(b"\n", offset)
            if newline == -1:  # open tail: the commit newline never landed
                framed, next_offset, record = raw[offset:], length, None
            else:
                framed = raw[offset : newline + 1]
                next_offset = newline + 1
                record = parse_frame(framed)
            if record is None:
                dirty = True
                if tail_truncate and next_offset >= length:
                    replay.truncated += 1
                    self.counters["truncated_frames"] += 1
                else:
                    replay.quarantined += 1
                    self.counters["quarantined_frames"] += 1
                    with open(self.quarantine_path, "ab") as q:
                        q.write(framed.rstrip(b"\n") + b"\n")
            else:
                good.append(framed)
                consume(record)
            offset = next_offset
        if dirty:
            tmp = path + ".tmp"
            with open(tmp, "wb") as fh:
                fh.write(b"".join(good))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def maybe_compact(self) -> bool:
        """Compact once the journal is mostly terminal noise.

        Triggers when at least ``compact_min_frames`` frames accumulated
        since the last compaction *and* terminal frames outnumber the
        live (pending) set — i.e. most of the file no longer describes
        in-flight work.
        """
        with self._lock:
            if self._frames_since_compact < self.compact_min_frames:
                return False
            if self._terminal_since_compact <= len(self._pending):
                return False
        return self.compact()

    def compact(self) -> bool:
        """Fold journal+checkpoint into a fresh checkpoint atomically.

        The checkpoint holds one ``accepted`` frame per pending job and
        one ``dead-letter`` frame per durable dead-letter record; the
        journal restarts empty.  Replaying the compacted pair yields
        exactly what replaying the full journal would have.
        """
        with self._lock:
            tmp = self.checkpoint_path + ".tmp"
            with open(tmp, "wb") as fh:
                for record in self._pending.values():
                    fh.write(frame_record(record))
                for record in self._dead:
                    fh.write(frame_record({"type": "dead-letter", "record": record}))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.checkpoint_path)
            self.close()
            with open(self.journal_path, "wb"):
                pass  # truncate; reopened lazily on next append
            self._frames_since_compact = 0
            self._terminal_since_compact = 0
            self.counters["compactions"] += 1
        return True

    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    def stats(self) -> dict:
        with self._lock:
            stats = dict(self.counters)
            stats["pending"] = len(self._pending)
            stats["dead_letter"] = len(self._dead)
            stats["directory"] = self.directory
            stats["fsync"] = self.fsync
        return stats

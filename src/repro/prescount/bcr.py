"""The `bcr` baseline: Intel-Graphics-style bank conflict reduction.

Mimics the heuristic of Chen et al. (CGO 2018) as characterized by the
paper: a greedy bank preference applied **inside** register allocation via
register hinting, looking only at single instructions — when a virtual
register is being assigned, prefer banks different from the banks of the
operands it is co-read with, *when feasible* (never at the price of a
spill, so the preference is soft and the full register file remains
available).  There is no conflict-cost model beyond instruction frequency,
no RCG, no bank pressure tracking, and no free-register balancing —
exactly the gaps PresCount fills.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.cost import ConflictCostModel
from ..analysis.intervals import LiveInterval
from ..banks.register_file import RegisterFile
from ..ir.function import Function
from ..ir.types import FP, PhysicalRegister, RegClass, VirtualRegister


class BcrPolicy:
    """Per-instruction greedy bank hinting for the greedy allocator."""

    def __init__(self, register_file: RegisterFile, regclass: RegClass = FP):
        self.register_file = register_file
        self.regclass = regclass
        self._all = register_file.registers()
        self._by_bank = [
            register_file.registers_in_bank(b)
            for b in range(register_file.num_banks)
        ]
        #: vreg -> [(co-read vreg, instruction frequency), ...]
        self._partners: dict[VirtualRegister, list[tuple[VirtualRegister, float]]] = {}
        self._allocator = None

    # ------------------------------------------------------------------
    def setup(self, allocator) -> None:
        self._allocator = allocator
        function: Function = allocator.function
        am = getattr(allocator, "analyses", None)
        if am is not None:
            from ..passes import ConflictCostAnalysis

            cost_model = am.get(ConflictCostAnalysis, regclass=self.regclass)
        else:
            cost_model = ConflictCostModel.build(function, regclass=self.regclass)
        self._partners = {}
        for _, instr in function.instructions():
            if not instr.is_conflict_relevant(self.regclass):
                continue
            reads = [
                r for r in instr.bankable_reads(self.regclass)
                if isinstance(r, VirtualRegister)
            ]
            freq = cost_model.cost_of_instruction(instr)
            for reg in reads:
                for other in reads:
                    if other != reg:
                        self._partners.setdefault(reg, []).append((other, freq))

    def order(
        self, vreg: VirtualRegister, interval: LiveInterval
    ) -> Sequence[PhysicalRegister]:
        partners = self._partners.get(vreg)
        if not partners or self._allocator is None:
            return self._all
        assignment = self._allocator.current_assignment()
        # Weight each bank by the frequency of conflicts it would cause
        # with already-assigned co-read operands.
        penalty = [0.0] * self.register_file.num_banks
        seen_any = False
        for other, freq in partners:
            preg = assignment.get(other)
            if preg is None:
                continue
            penalty[self.register_file.bank_of(preg)] += freq
            seen_any = True
        if not seen_any:
            return self._all
        bank_order = sorted(
            range(self.register_file.num_banks), key=lambda b: (penalty[b], b)
        )
        ordered: list[PhysicalRegister] = []
        for bank in bank_order:
            ordered.extend(self._by_bank[bank])
        return ordered

    def on_assign(self, vreg: VirtualRegister, preg: PhysicalRegister) -> None:
        pass

    def on_unassign(self, vreg: VirtualRegister, preg: PhysicalRegister) -> None:
        pass

"""PresCount RCG-based bank assignment — Algorithm 1 of the paper.

The assigner colors the Register Conflict Graph with one color per bank:

* disjoint RCG components are processed in descending max conflict cost;
* within a component, a work list is grown from the costliest node,
  always expanding the (cost, degree)-maximal uncolored node;
* available colors (not used by RCG neighbors) are prioritized by the
  **bank pressure count** — the bank whose maximum live-range overlap
  grows least wins (``PresCountPrioritize``);
* when no conflict-free color exists, the node is *uncolorable*: if the
  overall register pressure exceeds ``THRES`` the pressure-minimal color
  is still chosen (spills are costlier than conflicts), otherwise the
  color with the least accumulated neighbor ``Cost_R``
  (``NeighbourCostPrioritize``) minimizes the residual conflict penalty.

After the RCG is colored, *free registers* — vregs of the class that
never appear in the RCG — are balanced across banks the same way, because
leaving them to the allocator's arbitrary choices would unbalance the
banks again (end of §III-B).

:class:`PresCountPolicy` plugs the resulting
:class:`~repro.banks.assignment.BankAssignment` into the greedy allocator:
candidates from the assigned bank come first (soft constraint on the RV
platforms, strict on the DSA), and split-generated registers inherit the
bank of their parent.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Sequence

from ..analysis.conflict_graph import ConflictGraph
from ..analysis.cost import ConflictCostModel
from ..analysis.intervals import LiveInterval, LiveIntervals
from ..analysis.pressure import BankPressureTracker
from ..banks.assignment import BankAssignment
from ..banks.register_file import RegisterFile
from ..ir.function import Function
from ..ir.types import FP, PhysicalRegister, RegClass, VirtualRegister
from ..obs import AUDIT, METRICS, TRACER
from ..obs.audit import (
    PATH_CONFLICT_FREE,
    PATH_NEIGHBOUR_COST,
    PATH_THRESHOLD_FALLBACK,
)

#: Default overall-register-pressure threshold, as a fraction of the
#: register file size, above which Algorithm 1 keeps minimizing pressure
#: even for uncolorable nodes.
DEFAULT_THRES_RATIO = 0.8


@dataclass
class PresCountBankAssigner:
    """Computes a :class:`BankAssignment` for one function (Algorithm 1)."""

    register_file: RegisterFile
    regclass: RegClass = FP
    thres_ratio: float = DEFAULT_THRES_RATIO
    #: Disable to ablate the bank-pressure heuristic (ties then break by
    #: bank occupancy and index only) — `bench_ablation_pressure`.
    use_pressure_counting: bool = True
    #: Order nodes by degree instead of cost to ablate Eq. 1/2
    #: prioritization — `bench_ablation_order`.
    cost_ordering: bool = True
    balance_free_registers: bool = True

    def assign(
        self,
        function: Function,
        rcg: ConflictGraph | None = None,
        intervals: LiveIntervals | None = None,
        cost_model: ConflictCostModel | None = None,
    ) -> BankAssignment:
        """Run the bank assignment phase on *function*."""
        # Explicit None checks: these objects define __len__, so an empty
        # graph (e.g. soft-edges-only, from the bundle-aware extension)
        # is falsy and `or` would silently rebuild it.
        if cost_model is None:
            cost_model = ConflictCostModel.build(function, regclass=self.regclass)
        if rcg is None:
            rcg = ConflictGraph.build(function, cost_model, self.regclass)
        if intervals is None:
            intervals = LiveIntervals.build(function)

        num_banks = self.register_file.num_banks
        assignment = BankAssignment(num_banks)
        tracker = BankPressureTracker(num_banks)
        reg_pressure = intervals.max_pressure(self.regclass)
        thres = self.thres_ratio * self.register_file.num_registers

        unprocessed: set[VirtualRegister] = set(rcg.nodes())

        def priority(node: VirtualRegister) -> tuple:
            if self.cost_ordering:
                return (rcg.cost(node), rcg.degree(node), -node.vid)
            return (rcg.degree(node), rcg.cost(node), -node.vid)

        from ..ir.flat import enabled as flat_enabled

        if flat_enabled() and unprocessed:
            # The (cost, degree, -vid) key never changes while coloring,
            # so the two `max` scans of the object loop (O(n) per colored
            # node) collapse to one upfront sort for seeds plus a heap
            # for the worklist.  A node enters the worklist at most once
            # — once colored it leaves `unprocessed` for good — so heap
            # membership mirrors the worklist set exactly and each pop
            # IS the maximum: same ordering, no lazy deletion.  `-vid`
            # makes the key a total order, so the selection sequence (and
            # every downstream byte) is identical to the object loop.
            prio = {node: priority(node) for node in unprocessed}
            seed_order = sorted(unprocessed, key=prio.__getitem__, reverse=True)
            seed_pos = 0
            while unprocessed:
                while seed_order[seed_pos] not in unprocessed:
                    seed_pos += 1
                seed = seed_order[seed_pos]
                worklist: set[VirtualRegister] = {seed}
                pk = prio[seed]
                heap = [(-pk[0], -pk[1], -pk[2], seed)]
                while worklist:
                    node = heapq.heappop(heap)[3]
                    worklist.discard(node)
                    unprocessed.discard(node)
                    self._color_node(
                        function, node, rcg, intervals, assignment,
                        tracker, reg_pressure, thres, num_banks,
                    )
                    for neighbor in rcg.neighbors(node):
                        if neighbor in unprocessed and neighbor not in worklist:
                            worklist.add(neighbor)
                            pk = prio[neighbor]
                            heapq.heappush(heap, (-pk[0], -pk[1], -pk[2], neighbor))
        else:
            while unprocessed:
                seed = max(unprocessed, key=priority)
                worklist = {seed}
                while worklist:
                    node = max(worklist, key=priority)
                    worklist.discard(node)
                    unprocessed.discard(node)
                    self._color_node(
                        function, node, rcg, intervals, assignment,
                        tracker, reg_pressure, thres, num_banks,
                    )
                    for neighbor in rcg.neighbors(node):
                        if neighbor in unprocessed:
                            worklist.add(neighbor)

        if self.balance_free_registers:
            with TRACER.span(
                "free-balance", category="stage", function=function.name
            ):
                self._assign_free_registers(
                    function, rcg, intervals, assignment, tracker
                )

        assignment.residual_cost = rcg.coloring_conflict_cost(assignment.banks)
        if METRICS.enabled:
            METRICS.inc("prescount.rcg_nodes", len(rcg))
            METRICS.inc("prescount.rcg_edges", rcg.edge_count())
            METRICS.observe("prescount.residual_cost", assignment.residual_cost)
            for bank in range(num_banks):
                METRICS.set_gauge(
                    f"prescount.bank_pressure.bank{bank}", tracker.pressure(bank)
                )
        return assignment

    # ------------------------------------------------------------------
    def _color_node(
        self,
        function: Function,
        node: VirtualRegister,
        rcg: ConflictGraph,
        intervals: LiveIntervals,
        assignment: BankAssignment,
        tracker: BankPressureTracker,
        reg_pressure: int,
        thres: float,
        num_banks: int,
    ) -> None:
        """Color one work-list node (the body of Algorithm 1's loop)."""
        interval = intervals.of(node)
        neighbor_colors = {
            assignment.banks[nb]
            for nb in rcg.neighbors(node)
            if nb in assignment.banks
        }
        avail = [c for c in range(num_banks) if c not in neighbor_colors]
        if avail:
            path = PATH_CONFLICT_FREE
            ordered = self._prescount_prioritize(
                avail, interval, tracker, node=node, rcg=rcg, assignment=assignment
            )
        else:
            assignment.uncolorable.add(node)
            METRICS.inc("prescount.uncolorable")
            all_colors = list(range(num_banks))
            if reg_pressure > thres:
                path = PATH_THRESHOLD_FALLBACK
                ordered = self._prescount_prioritize(
                    all_colors, interval, tracker,
                    node=node, rcg=rcg, assignment=assignment,
                )
            else:
                path = PATH_NEIGHBOUR_COST
                ordered = self._neighbour_cost_prioritize(
                    all_colors, node, rcg, assignment
                )
        color = ordered[0]
        if AUDIT.enabled:
            self._audit_decision(
                function, node, path, ordered, interval,
                tracker, rcg, assignment, reg_pressure, thres,
            )
        assignment.assign(node, color)
        tracker.assign(color, interval)

    # ------------------------------------------------------------------
    def _audit_decision(
        self,
        function: Function,
        node: VirtualRegister,
        path: str,
        ordered: list[int],
        interval: LiveInterval,
        tracker: BankPressureTracker,
        rcg: ConflictGraph,
        assignment: BankAssignment,
        reg_pressure: int,
        thres: float,
    ) -> None:
        """Record one Algorithm 1 work-list decision (``--explain``).

        Called before the tracker/assignment mutate, so the candidate keys
        reflect exactly what the prioritizers ranked on.
        """
        if path == PATH_NEIGHBOUR_COST:
            candidates = [
                {
                    "bank": c,
                    "neighbour_cost": sum(
                        rcg.cost(nb)
                        for nb in rcg.neighbors(node)
                        if assignment.banks.get(nb) == c
                    ),
                }
                for c in ordered
            ]
        else:
            candidates = [
                {
                    "bank": c,
                    "pressure_if_assigned": tracker.pressure_if_assigned(c, interval),
                    "occupancy": tracker.occupancy(c),
                }
                for c in ordered
            ]
        AUDIT.record(
            function.name,
            node.name,
            "rcg-color",
            path=path,
            chosen=ordered[0],
            cost=rcg.cost(node),
            degree=rcg.degree(node),
            ordering="cost" if self.cost_ordering else "degree",
            pressure_counting=self.use_pressure_counting,
            reg_pressure=reg_pressure,
            thres=thres,
            neighbor_banks={
                nb.name: assignment.banks[nb]
                for nb in sorted(rcg.neighbors(node), key=lambda r: r.vid)
                if nb in assignment.banks
            },
            candidates=candidates,
        )

    # ------------------------------------------------------------------
    def _prescount_prioritize(
        self,
        colors: list[int],
        interval: LiveInterval,
        tracker: BankPressureTracker,
        *,
        node: VirtualRegister | None = None,
        rcg: ConflictGraph | None = None,
        assignment: BankAssignment | None = None,
    ) -> list[int]:
        """``PresCountPrioritize``: least resulting bank pressure first.

        Soft (bundle) edges break ties after pressure: among equally
        pressured banks, prefer the one not shared with bundle partners
        (the future-work extension of §IV-B3).
        """

        def soft(color: int) -> float:
            if node is None or rcg is None or assignment is None:
                return 0.0
            if not rcg.soft_adjacency:
                return 0.0
            return rcg.soft_penalty(node, color, assignment.banks)

        if not self.use_pressure_counting:
            return sorted(colors, key=lambda c: (soft(c), tracker.occupancy(c), c))
        return sorted(
            colors,
            key=lambda c: (
                tracker.pressure_if_assigned(c, interval),
                soft(c),
                tracker.occupancy(c),
                c,
            ),
        )

    def _neighbour_cost_prioritize(
        self,
        colors: list[int],
        node: VirtualRegister,
        rcg: ConflictGraph,
        assignment: BankAssignment,
    ) -> list[int]:
        """``NeighbourCostPrioritize``: least accumulated ``Cost_R`` over
        same-colored neighbors first — the conflicts this choice leaves
        behind are the cheapest ones."""
        def accumulated_cost(color: int) -> float:
            return sum(
                rcg.cost(nb)
                for nb in rcg.neighbors(node)
                if assignment.banks.get(nb) == color
            )

        return sorted(colors, key=lambda c: (accumulated_cost(c), c))

    def _assign_free_registers(
        self,
        function: Function,
        rcg: ConflictGraph,
        intervals: LiveIntervals,
        assignment: BankAssignment,
        tracker: BankPressureTracker,
    ) -> None:
        """Balance the vregs absent from the RCG across banks (§III-B)."""
        free = [
            iv
            for iv in intervals.vreg_intervals(self.regclass)
            if iv.reg not in rcg
        ]
        # Longest intervals first: they constrain the banks the most.
        free.sort(key=lambda iv: (-iv.size, iv.reg.vid))
        for interval in free:
            ordered = self._prescount_prioritize(
                list(range(assignment.num_banks)),
                interval,
                tracker,
                node=interval.reg,
                rcg=rcg,
                assignment=assignment,
            )
            bank = ordered[0]
            if AUDIT.enabled:
                AUDIT.record(
                    function.name,
                    interval.reg.name,
                    "free-balance",
                    path=PATH_CONFLICT_FREE,
                    chosen=bank,
                    interval_size=interval.size,
                    candidates=[
                        {
                            "bank": c,
                            "pressure_if_assigned": tracker.pressure_if_assigned(
                                c, interval
                            ),
                            "occupancy": tracker.occupancy(c),
                        }
                        for c in ordered
                    ],
                )
            assignment.assign(interval.reg, bank)
            tracker.assign(bank, interval)


class PresCountPolicy:
    """Greedy-allocator policy applying a precomputed bank assignment.

    Candidate order for a vreg with bank *b*: registers of bank *b* in
    index order, then (unless *strict*) the remaining banks ordered by
    index.  Vregs without a bank (spill reloads) see the full file.
    Split-generated registers inherit their parent's bank via
    :meth:`on_split`.
    """

    def __init__(
        self,
        register_file: RegisterFile,
        assignment: BankAssignment,
        strict: bool | None = None,
    ):
        self.register_file = register_file
        self.assignment = assignment
        self.strict = assignment.strict if strict is None else strict
        self._by_bank: list[list[PhysicalRegister]] = [
            register_file.registers_in_bank(b)
            for b in range(register_file.num_banks)
        ]
        self._all = register_file.registers()
        # Candidate order is a pure function of the bank, so with the
        # flat core active the per-bank lists are built once here instead
        # of per `order` call (the allocator copies what it receives).
        from ..ir.flat import enabled as flat_enabled

        self._fast = flat_enabled()
        self._ordered_by_bank: list[list[PhysicalRegister]] | None = None
        if self._fast and not self.strict:
            self._ordered_by_bank = [
                list(self._by_bank[b])
                + [r for r in self._all if register_file.bank_of(r) != b]
                for b in range(register_file.num_banks)
            ]

    def setup(self, allocator) -> None:
        pass

    def order(
        self, vreg: VirtualRegister, interval: LiveInterval
    ) -> Sequence[PhysicalRegister]:
        bank = self.assignment.bank_of(vreg)
        if bank is None:
            return self._all
        preferred = self._by_bank[bank]
        if self.strict:
            return preferred
        if self._ordered_by_bank is not None:
            return self._ordered_by_bank[bank]
        rest = [r for r in self._all if self.register_file.bank_of(r) != bank]
        return list(preferred) + rest

    def on_assign(self, vreg: VirtualRegister, preg: PhysicalRegister) -> None:
        pass

    def on_unassign(self, vreg: VirtualRegister, preg: PhysicalRegister) -> None:
        pass

    def on_split(self, parent: VirtualRegister, children: list[VirtualRegister]) -> None:
        """Algorithm 2's split-generated-register rule, bank part: children
        keep the parent's bank so the assignment stays coherent."""
        bank = self.assignment.bank_of(parent)
        if bank is None:
            return
        for child in children:
            self.assignment.assign(child, bank)

"""Bundle-aware RCG extension — the paper's stated future work.

§IV-B3 observes that the DSA's VLIW bundle constraint (two instructions
cannot share a bundle when their reads touch the same bank) occasionally
*hurts* PresCount-allocated code: the RCG only models intra-instruction
conflicts, so the assigner happily gives same-bank registers to operands
of adjacent, independent instructions — which then cannot be dual-issued.
The paper: "it is challenging to address such inter-instruction
restrictions with RCG.  We plan to tackle it for future improvements."

This module is that improvement: *bundle edges* are added to the RCG
between the bankable reads of adjacent independent instruction pairs
(the dual-issue candidates).  A monochromatic bundle edge does not stall
the register file, it only costs a lost issue slot, so bundle edges carry
the block frequency scaled by ``bundle_weight`` (< 1): the assigner
resolves real conflicts first and uses leftover freedom to improve
bundling.  Enabled via ``PipelineConfig(bundle_aware=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from ..analysis.conflict_graph import ConflictGraph
from ..analysis.cost import ConflictCostModel
from ..ir.function import Function
from ..ir.instruction import Instruction, OpKind
from ..ir.types import RegClass, VirtualRegister

#: Relative cost of a lost dual-issue slot vs a true bank conflict.
DEFAULT_BUNDLE_WEIGHT = 0.5


def _independent(first: Instruction, second: Instruction) -> bool:
    """True when *second* does not depend on *first* (could dual-issue)."""
    first_defs = set(first.reg_defs())
    if any(use in first_defs for use in second.reg_uses()):
        return False  # true dependency
    if any(dst in first_defs for dst in second.reg_defs()):
        return False  # output dependency
    second_defs = set(second.reg_defs())
    if any(use in second_defs for use in first.reg_uses()):
        return False  # anti dependency (no same-cycle writeback bypass)
    return True


@dataclass
class BundleEdgeReport:
    """Statistics from one bundle-edge pass."""

    pairs_considered: int = 0
    edges_added: int = 0
    cost_added: float = 0.0


def add_bundle_edges(
    rcg: ConflictGraph,
    function: Function,
    cost_model: ConflictCostModel,
    regclass: RegClass | None = None,
    bundle_weight: float = DEFAULT_BUNDLE_WEIGHT,
) -> BundleEdgeReport:
    """Extend *rcg* in place with inter-instruction bundle edges.

    For every adjacent pair of independent arithmetic instructions in a
    block (the greedy bundler's candidates), connect each bankable read
    of the first to each bankable read of the second with an edge costing
    ``bundle_weight * Cost_I``.
    """
    report = BundleEdgeReport()
    for block in function.blocks:
        body = [i for i in block.instructions if i.kind is OpKind.ARITH]
        # Pair instructions the way the in-order dual-issue bundler will:
        # disjoint windows (0,1), (2,3), ... — connecting *every* adjacent
        # pair would chain the whole block together and the penalties
        # would cancel out.
        for index in range(0, len(body) - 1, 2):
            first, second = body[index], body[index + 1]
            if not _independent(first, second):
                continue
            reads_a = [
                r for r in first.bankable_reads(regclass)
                if isinstance(r, VirtualRegister)
            ]
            reads_b = [
                r for r in second.bankable_reads(regclass)
                if isinstance(r, VirtualRegister)
            ]
            if not reads_a or not reads_b:
                continue
            report.pairs_considered += 1
            cost = cost_model.cost_of_instruction(second) * bundle_weight
            for a, b in product(reads_a, reads_b):
                if a == b:
                    continue
                # Soft edges only: a same-bank bundle pair merely loses an
                # issue slot, so it must never constrain colorability or
                # displace a true conflict edge.
                rcg.add_soft_edge(a, b, cost)
                report.edges_added += 1
                report.cost_added += cost
    return report

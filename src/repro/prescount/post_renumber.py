"""Post-allocation register renumbering — the related-work baseline.

The paper's §V surveys the *post-allocation* family of bank-conflict
mitigations: Patney et al. renumber registers after allocation (US patent
8,555,035) and the LTRF work recolors an Interval Conflict Graph.  Their
shared weaknesses — "massive register copies are generated to split an
uncolored RCG ... which requires many unassigned registers" — are exactly
what PresCount's pre-allocation integration avoids.  This module
implements the family so the critique is measurable:

1. for every statically conflicting instruction, try to *renumber* one of
   the same-bank operands: replace that physical register globally with a
   register of another bank that is free over its entire live range
   (needs spare architectural registers — plentiful on RV#1, scarce on
   RV#2);
2. when no global renumbering exists, fall back to a *local copy*:
   ``newreg = mov oldreg`` right before the instruction, with ``newreg``
   from another bank and free around that point;
3. when even that fails, the conflict stays.

Run it after a ``non`` allocation to get the paper's "post" method.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.intervals import LiveInterval
from ..banks.register_file import RegisterFile
from ..ir import instruction as ins
from ..ir.function import Function
from ..ir.instruction import Instruction
from ..ir.types import FP, PhysicalRegister, RegClass


@dataclass
class PostRenumberResult:
    """Outcome of one renumbering pass."""

    conflicts_found: int = 0
    renumbered: int = 0
    copies_inserted: int = 0
    unresolved: int = 0
    #: global preg -> preg renames applied.
    renames: dict[PhysicalRegister, PhysicalRegister] = field(default_factory=dict)


def _conflicting_pairs(instr: Instruction, register_file: RegisterFile, regclass):
    """Same-bank read pairs of one instruction (first occurrence order)."""
    reads = [
        r for r in instr.bankable_reads(regclass) if isinstance(r, PhysicalRegister)
    ]
    pairs = []
    for i, a in enumerate(reads):
        for b in reads[i + 1:]:
            if register_file.bank_of(a) == register_file.bank_of(b):
                pairs.append((a, b))
    return pairs


def renumber_banks(
    function: Function,
    register_file: RegisterFile,
    regclass: RegClass = FP,
    max_passes: int = 4,
    am=None,
) -> PostRenumberResult:
    """Reduce bank conflicts of an *allocated* function in place.

    A global rename fixes the visited instruction but can surface new
    same-bank pairs at the register's other uses, so the pass iterates
    (like the published renumbering schemes) until the conflict count
    stops improving or *max_passes* is hit.

    Slot indexes and live intervals for each sweep come from *am*
    (created on demand): the first sweep hits whatever a preceding
    allocation left cached; sweeps that change the function invalidate
    all but the CFG-level analyses so the next sweep recomputes.
    """
    from ..obs import METRICS, TRACER
    from ..passes import AnalysisManager

    if am is None:
        am = AnalysisManager(function)
    total = PostRenumberResult()
    previous = None
    for _pass in range(max_passes):
        with TRACER.span(
            "renumber-sweep", category="stage", function=function.name,
            sweep=_pass,
        ):
            result = _renumber_once(function, register_file, regclass, am)
        total.conflicts_found = max(total.conflicts_found, result.conflicts_found)
        total.renumbered += result.renumbered
        total.copies_inserted += result.copies_inserted
        total.unresolved = result.unresolved
        total.renames.update(result.renames)
        remaining = result.conflicts_found - result.renumbered - result.copies_inserted
        if result.conflicts_found == 0 or previous == result.conflicts_found:
            break
        previous = result.conflicts_found
    METRICS.inc("post.renumbered", total.renumbered)
    METRICS.inc("post.copies_inserted", total.copies_inserted)
    METRICS.inc("post.unresolved", total.unresolved)
    return total


def _renumber_once(
    function: Function,
    register_file: RegisterFile,
    regclass: RegClass,
    am,
) -> PostRenumberResult:
    """One renumbering sweep (see :func:`renumber_banks`)."""
    from ..passes import LiveIntervalsAnalysis, SlotIndexesAnalysis

    from ..ir.flat import enabled as flat_enabled

    result = PostRenumberResult()
    slots = am.get(SlotIndexesAnalysis)
    live = am.get(LiveIntervalsAnalysis)
    # With the flat core active every candidate-vs-victim range check is
    # one bitmask AND (the lazy interval masks stay correct across the
    # in-place `occupied()` bookkeeping: add_segment invalidates them).
    fast = flat_enabled()

    def overlaps(a: LiveInterval, b: LiveInterval) -> bool:
        if fast:
            return bool(a.mask & b.mask)
        return a.overlaps(b)

    def interval_of(reg: PhysicalRegister) -> LiveInterval | None:
        return live.intervals.get(reg)

    def occupied(reg: PhysicalRegister) -> LiveInterval:
        interval = interval_of(reg)
        if interval is None:
            interval = LiveInterval(reg)
            live.intervals[reg] = interval
        return interval

    #: pending copy insertions: instruction id -> list of copies.
    pending: dict[int, list[Instruction]] = {}
    #: per-instruction operand rewrites from local copies.
    local_rewrites: dict[int, dict[PhysicalRegister, PhysicalRegister]] = {}
    global_renames: dict[PhysicalRegister, PhysicalRegister] = {}

    all_registers = register_file.registers()
    # Candidate scan cap: on huge files checking every register per
    # conflict is wasteful; untouched registers all look alike, so a
    # bounded prefix per bank suffices.
    if len(all_registers) > 256:
        capped: list[PhysicalRegister] = []
        per_bank = 128 // register_file.num_banks
        counts = [0] * register_file.num_banks
        for reg in all_registers:
            bank = register_file.bank_of(reg)
            if counts[bank] < per_bank:
                counts[bank] += 1
                capped.append(reg)
        all_registers = capped

    #: Registers renamed away: their old names must never be reused as
    #: candidates (reusing one would create an A->B / B->A cycle).
    retired: set[PhysicalRegister] = set()

    def resolve(reg: PhysicalRegister) -> PhysicalRegister:
        seen = set()
        while reg in global_renames and reg not in seen:
            seen.add(reg)
            reg = global_renames[reg]
        return reg

    # Co-read partners per register, across the whole function: a rename
    # is only a fix if the new bank differs from *every* partner's bank,
    # otherwise it trades one conflict for another at a different site.
    partners: dict[PhysicalRegister, set[PhysicalRegister]] = {}
    for block in function.blocks:
        for instr in block:
            reads = [
                r for r in instr.bankable_reads(regclass)
                if isinstance(r, PhysicalRegister)
            ]
            for i, a in enumerate(reads):
                for b in reads[i + 1:]:
                    partners.setdefault(a, set()).add(b)
                    partners.setdefault(b, set()).add(a)

    for block in function.blocks:
        for instr in block:
            # Apply global renames decided so far when inspecting operands.
            current = instr.rewrite(global_renames) if global_renames else instr
            pairs = _conflicting_pairs(current, register_file, regclass)
            if not pairs:
                continue
            result.conflicts_found += len(pairs)
            for __, victim in pairs:
                victim = resolve(victim)
                victim_interval = interval_of(victim)
                slot = slots.slot(instr)
                moved = False
                # 1. Global renumbering: a whole-range free register in
                #    another bank.
                victim_partner_banks = {
                    register_file.bank_of(resolve(p))
                    for p in partners.get(victim, ())
                }
                if victim_interval is not None:
                    for candidate in all_registers:
                        if candidate in retired or candidate == victim:
                            continue
                        if register_file.bank_of(candidate) in victim_partner_banks:
                            # Would fix this site but conflict at another.
                            continue
                        cand_interval = interval_of(candidate)
                        if cand_interval is None or not overlaps(
                            cand_interval, victim_interval
                        ):
                            # Path-compress: entries already pointing at
                            # the victim must follow it to the candidate,
                            # keeping the mapping single-level (rewrite()
                            # applies it in one shot).
                            for old, target in list(global_renames.items()):
                                if target == victim:
                                    global_renames[old] = candidate
                            global_renames[victim] = candidate
                            retired.add(victim)
                            # The candidate now also carries the victim's
                            # range; merge so later checks see it.
                            target = occupied(candidate)
                            for seg in victim_interval.segments:
                                target.add_segment(seg.start, seg.end)
                            live.intervals.pop(victim, None)
                            result.renumbered += 1
                            moved = True
                            break
                if moved:
                    continue
                # 2. Local copy: a point-free register in another bank.
                for candidate in all_registers:
                    if candidate in retired or candidate == victim:
                        continue
                    if register_file.bank_of(candidate) == register_file.bank_of(victim):
                        continue
                    cand_interval = interval_of(candidate)
                    probe = LiveInterval(candidate)
                    probe.add_segment(max(0, slot - 1), slot + 1)
                    if cand_interval is None or not overlaps(cand_interval, probe):
                        pending.setdefault(id(instr), []).append(
                            ins.copy(candidate, victim, post_copy=True)
                        )
                        local_rewrites.setdefault(id(instr), {})[victim] = candidate
                        occupied(candidate).add_segment(max(0, slot - 1), slot + 1)
                        result.copies_inserted += 1
                        moved = True
                        break
                if not moved:
                    result.unresolved += 1

    # Materialize: global renames everywhere, local copies in front of
    # their instructions, local rewrites on the instruction itself.
    for block in function.blocks:
        new_instructions: list[Instruction] = []
        for instr in block.instructions:
            rewritten = instr.rewrite(global_renames) if global_renames else instr
            local = local_rewrites.get(id(instr))
            new_instructions.extend(
                copy.rewrite(global_renames) if global_renames else copy
                for copy in pending.get(id(instr), [])
            )
            if local:
                # Only the *reads* move to the copy; the original register
                # still receives any writes.  Copy targets picked earlier in
                # the pass may themselves have been globally renamed since,
                # so resolve them through the final map.
                def _local_target(use):
                    target = local.get(use, use)
                    return global_renames.get(target, target)

                new_uses = tuple(
                    _local_target(u) if isinstance(u, PhysicalRegister) else u
                    for u in rewritten.uses
                )
                rewritten = Instruction(
                    rewritten.opcode,
                    rewritten.kind,
                    rewritten.defs,
                    new_uses,
                    rewritten.attrs,
                )
            new_instructions.append(rewritten)
        block.instructions = new_instructions
    result.renames = global_renames
    if result.renumbered or result.copies_inserted:
        # The sweep rewrote instructions *and* used the cached intervals as
        # mutable bookkeeping (occupied()); both copies of the truth are
        # stale now, so drop everything below the CFG.
        from ..passes import CFG_ONLY

        am.invalidate(CFG_ONLY)
    return result

"""PresCount — the paper's primary contribution.

* :mod:`bank_assigner` — Algorithm 1 (cost-ordered RCG coloring with bank
  pressure counting) and its allocator policy.
* :mod:`bcr` — the Intel-style per-instruction hinting baseline.
* :mod:`subgroup` — Algorithm 2 (subgroup displacement bookkeeping and
  DSA allocation hints).
* :mod:`sdg_split` — SDG-based subgroup splitting (Figs. 8/9).
* :mod:`passes` — the five Fig. 4 phases as registered function passes.
* :mod:`pipeline` — the combined Fig. 4 register allocation pipeline.
"""

from .bank_assigner import (
    DEFAULT_THRES_RATIO,
    PresCountBankAssigner,
    PresCountPolicy,
)
from .bcr import BcrPolicy
from .bundle_aware import BundleEdgeReport, add_bundle_edges
from .passes import (
    PASS_REGISTRY,
    AllocationPass,
    BankAssignmentPass,
    CoalescingPass,
    SchedulingPass,
    SdgSplitPass,
)
from .pipeline import (
    METHODS,
    PipelineConfig,
    PipelineResult,
    build_pipeline,
    run_pipeline,
)
from .sdg_split import SdgSplitConfig, SdgSplitResult, split_subgroups
from .subgroup import DsaPresCountPolicy, SubgroupState

__all__ = [
    "AllocationPass",
    "BankAssignmentPass",
    "BcrPolicy",
    "BundleEdgeReport",
    "CoalescingPass",
    "add_bundle_edges",
    "build_pipeline",
    "DEFAULT_THRES_RATIO",
    "DsaPresCountPolicy",
    "METHODS",
    "PASS_REGISTRY",
    "PipelineConfig",
    "PipelineResult",
    "PresCountBankAssigner",
    "PresCountPolicy",
    "SchedulingPass",
    "SdgSplitConfig",
    "SdgSplitResult",
    "SdgSplitPass",
    "SubgroupState",
    "run_pipeline",
    "split_subgroups",
]

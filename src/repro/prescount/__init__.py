"""PresCount — the paper's primary contribution.

* :mod:`bank_assigner` — Algorithm 1 (cost-ordered RCG coloring with bank
  pressure counting) and its allocator policy.
* :mod:`bcr` — the Intel-style per-instruction hinting baseline.
* :mod:`subgroup` — Algorithm 2 (subgroup displacement bookkeeping and
  DSA allocation hints).
* :mod:`sdg_split` — SDG-based subgroup splitting (Figs. 8/9).
* :mod:`pipeline` — the combined Fig. 4 register allocation pipeline.
"""

from .bank_assigner import (
    DEFAULT_THRES_RATIO,
    PresCountBankAssigner,
    PresCountPolicy,
)
from .bcr import BcrPolicy
from .bundle_aware import BundleEdgeReport, add_bundle_edges
from .pipeline import METHODS, PipelineConfig, PipelineResult, run_pipeline
from .sdg_split import SdgSplitConfig, SdgSplitResult, split_subgroups
from .subgroup import DsaPresCountPolicy, SubgroupState

__all__ = [
    "BcrPolicy",
    "BundleEdgeReport",
    "add_bundle_edges",
    "DEFAULT_THRES_RATIO",
    "DsaPresCountPolicy",
    "METHODS",
    "PipelineConfig",
    "PipelineResult",
    "PresCountBankAssigner",
    "PresCountPolicy",
    "SdgSplitConfig",
    "SdgSplitResult",
    "SubgroupState",
    "run_pipeline",
    "split_subgroups",
]

"""SDG-based subgroup splitting (Figs. 8 and 9 of the paper).

Large SDG components defeat the balanced subgroup assignment of
Algorithm 2: one component charging a single displacement with dozens of
registers starves the other subgroups.  This pass cuts oversized
components at their *sharing centers* by inserting copy instructions:

* **Input sharing** (Fig. 8): a register read by many aligned
  instructions (high SDG out-degree).  A copy ``a' = mov a`` is inserted
  and the later half of the readers is rewritten to read ``a'``.
* **Output sharing** (Fig. 9): a reduction-style register written by many
  aligned instructions (high SDG in-degree).  The earlier half of the
  writers is rewritten to accumulate into a fresh ``a'`` and a copy
  ``a = mov a'`` re-seeds the original at the cut point.

Copies are tagged ``sdg_copy`` so register coalescing (which runs
*before* this pass in the Fig. 4 pipeline) can never re-merge them.
The pass iterates until every component is small enough or no further
safe cut exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.sdg import SameDisplacementGraph
from ..ir import instruction as ins
from ..ir.function import Function
from ..ir.instruction import Instruction
from ..ir.types import FP, RegClass, VirtualRegister
from ..passes import CFG_ONLY, AnalysisManager, SDGAnalysis


@dataclass
class SdgSplitConfig:
    """Tunables of the splitting heuristic.

    Attributes:
        fanout_threshold: Minimum in/out degree for a vertex to count as a
            sharing center (Fig. 8 splits at fanout 6 with threshold ~4).
        max_component_size: Components at or below this size are left
            alone.  The pipeline derives the default from the register
            file: one bank's share of a subgroup
            (``registers_per_bank / num_subgroups``) — splitting is only
            *necessary* when a component cannot balance across subgroups.
        max_rounds: Upper bound on split iterations per function; large
            shared-input kernels (idft) need many cuts.
    """

    fanout_threshold: int = 4
    max_component_size: int = 128
    max_rounds: int = 256


@dataclass
class SdgSplitResult:
    """Statistics of a splitting run."""

    copies_inserted: int = 0
    rounds: int = 0
    splits: list[tuple[str, int]] = field(default_factory=list)  # (kind, fanout)


def split_subgroups(
    function: Function,
    regclass: RegClass | None = FP,
    config: SdgSplitConfig | None = None,
    am: AnalysisManager | None = None,
) -> SdgSplitResult:
    """Split oversized SDG components of *function* in place.

    The per-round SDG comes from *am* (created on demand); rounds that cut
    invalidate all but the CFG-level analyses, so the final no-cut round
    leaves a cached SDG that matches the function — Algorithm 2's subgroup
    state construction reuses it for free.
    """
    from ..obs import METRICS, TRACER

    config = config or SdgSplitConfig()
    if am is None:
        am = AnalysisManager(function)
    result = SdgSplitResult()
    for _round in range(config.max_rounds):
        with TRACER.span(
            "sdg-round", category="stage", function=function.name, round=_round
        ):
            sdg = am.get(SDGAnalysis, regclass=regclass)
            oversized = [
                comp
                for comp in sdg.components()
                if len(comp) > config.max_component_size
            ]
            if not oversized:
                break
            result.rounds += 1
            progressed = False
            for component in oversized:
                centers = sdg.sharing_centers(component, config.fanout_threshold)
                # Cut several centers per round: each cut re-reads the live
                # function, so sequential cuts compose safely, and big
                # shared-input kernels (idft) converge in few SDG rebuilds.
                cuts = 0
                for center, kind, fanout in centers:
                    if kind == "input_sharing":
                        done = _split_input_sharing(function, sdg, center)
                    else:
                        done = _split_output_sharing(function, sdg, center)
                    if done:
                        result.copies_inserted += 1
                        result.splits.append((kind, fanout))
                        progressed = True
                        cuts += 1
                        if cuts >= 8:
                            break  # re-analyze before cutting further
            if progressed:
                am.invalidate(CFG_ONLY)
            else:
                break
    METRICS.inc("sdg.copies_inserted", result.copies_inserted)
    METRICS.observe("sdg.rounds", result.rounds)
    return result


# ----------------------------------------------------------------------
def _ordered_instructions(function: Function) -> list[tuple[str, int, Instruction]]:
    """(block label, index, instruction) triples in layout order."""
    out = []
    for block in function.blocks:
        for index, instr in enumerate(block.instructions):
            out.append((block.label, index, instr))
    return out


def _split_input_sharing(
    function: Function, sdg: SameDisplacementGraph, center: VirtualRegister
) -> bool:
    """Cut a high-out-degree center: later readers switch to a copy."""
    ordered = _ordered_instructions(function)
    readers = [
        (pos, label, index, instr)
        for pos, (label, index, instr) in enumerate(ordered)
        if sdg.needs_alignment(instr, None) and center in instr.bankable_reads()
    ]
    if len(readers) < 2:
        return False
    half = len(readers) // 2
    second_half = readers[half:]
    first_pos, first_label, first_index, __ = second_half[0]
    last_pos = second_half[-1][0]

    # Safety 1: the copy must dominate every rewritten reader on every
    # path.  Requiring all rewritten readers to share the insertion
    # block guarantees that without a dominance computation — and matches
    # where sharing centers actually occur (unrolled straight-line
    # bodies).  A reader inside a conditional arm would otherwise leave
    # the clone undefined on the not-taken path.
    if any(label != first_label for __, label, __, __ in second_half):
        return False

    # Safety 2: the clone snapshots the center's value at the cut point,
    # so the center must not be redefined while the clone is consumed.
    for pos in range(first_pos, last_pos + 1):
        __, __, instr = ordered[pos]
        if center in instr.reg_defs():
            return False

    clone = function.new_vreg(center.regclass)
    # Rewrite the later readers to the clone.
    mapping = {center: clone}
    targets = {id(instr) for __, __, __, instr in second_half}
    for block in function.blocks:
        block.instructions = [
            instr.rewrite(mapping) if id(instr) in targets else instr
            for instr in block.instructions
        ]
    # Insert the copy right before the first rewritten reader.
    block = function.block(first_label)
    block.insert(first_index, ins.copy(clone, center, sdg_copy=True))
    return True


def _split_output_sharing(
    function: Function, sdg: SameDisplacementGraph, center: VirtualRegister
) -> bool:
    """Cut a high-in-degree (reduction) center: earlier writers accumulate
    into a fresh register that is copied back at the cut point."""
    ordered = _ordered_instructions(function)
    writers = [
        (pos, label, index, instr)
        for pos, (label, index, instr) in enumerate(ordered)
        if sdg.needs_alignment(instr, None) and center in instr.vreg_defs()
    ]
    if len(writers) < 2:
        return False
    half = len(writers) // 2
    first_half = writers[:half]
    first_pos = first_half[0][0]
    last_pos = first_half[-1][0]

    # Safety 0: the rewritten writers and the copy-back must execute
    # unconditionally together — keep the cut inside one block (see the
    # input-sharing dominance note).
    if any(label != first_half[0][1] for __, label, __, __ in first_half):
        return False

    # Safety: between the first and last rewritten writer, the center must
    # only be touched by the rewritten writers themselves (otherwise an
    # interleaved reader would observe the wrong register).
    rewritten_ids = {id(instr) for __, __, __, instr in first_half}
    for pos in range(first_pos, last_pos + 1):
        __, __, instr = ordered[pos]
        if id(instr) in rewritten_ids:
            continue
        touches = center in instr.reg_uses() or center in instr.reg_defs()
        if touches:
            return False

    partial = function.new_vreg(center.regclass)
    mapping = {center: partial}
    first_instr = first_half[0][3]
    for block in function.blocks:
        new_instructions = []
        for instr in block.instructions:
            if id(instr) not in rewritten_ids:
                new_instructions.append(instr)
            elif instr is first_instr:
                # Seed the partial accumulator from the center's current
                # value: rewrite only the def, keep the center as input
                # (`partial = op center, x`), so the non-ARITH initializer
                # of the center still feeds the chain.
                rewritten = instr.rewrite(mapping)
                new_instructions.append(
                    Instruction(
                        rewritten.opcode,
                        rewritten.kind,
                        rewritten.defs,
                        instr.uses,  # original uses: still read the center
                        rewritten.attrs,
                    )
                )
            else:
                new_instructions.append(instr.rewrite(mapping))
        block.instructions = new_instructions
    # Copy the partial result back into the center after the last
    # rewritten writer.
    __, last_label, last_index, __ = first_half[-1]
    block = function.block(last_label)
    block.insert(last_index + 1, ins.copy(center, partial, sdg_copy=True))
    return True

"""The combined register allocation pipeline of Fig. 4.

Phase order (exactly the paper's, with the two blue phases new):

1. **Register Coalescing** (standard LLVM phase)
2. **SDG-based Subgroup Splitting** (optional, DSA only) — placed *after*
   coalescing so its copies cannot be re-coalesced
3. **Pre-allocation Scheduling** (standard LLVM phase)
4. **RCG-based Bank Assignment** (PresCount, Algorithm 1) — placed after
   scheduling because it consumes live-range information without
   modifying it
5. **Enhanced Register Allocation** — the greedy allocator steered by the
   method's policy (and, on the DSA, by Algorithm 2 subgroup hints)

The three compared methods select what runs:

====== ============================== =======================
method bank assignment phase          allocation policy
====== ============================== =======================
non    (none)                         natural order
bcr    (none)                         per-instruction hinting
bpc    PresCount (Algorithm 1)        bank-ordered candidates
====== ============================== =======================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..alloc.base import AllocationResult, NaturalOrderPolicy
from ..alloc.coalescing import CoalescingResult, coalesce
from ..alloc.greedy import GreedyAllocator
from ..alloc.scheduling import schedule_function
from ..banks.assignment import BankAssignment
from ..banks.register_file import BankSubgroupRegisterFile, RegisterFile
from ..ir.function import Function
from ..ir.types import FP, RegClass
from .bank_assigner import DEFAULT_THRES_RATIO, PresCountBankAssigner, PresCountPolicy
from .bcr import BcrPolicy
from .sdg_split import SdgSplitConfig, SdgSplitResult, split_subgroups
from .subgroup import DsaPresCountPolicy, SubgroupState

#: The method names used throughout experiments and benches.
METHODS = ("non", "bcr", "bpc")


@dataclass
class PipelineConfig:
    """Everything a pipeline run needs besides the function.

    Attributes:
        register_file: Target register file (banked, or bank-subgrouped
            for the DSA).
        method: One of :data:`METHODS`.
        dsa: Enables the SDG phases (subgroup splitting + Algorithm 2
            hints).  Automatically implied by a
            :class:`BankSubgroupRegisterFile`.
        strict_banks: Hard (True) vs soft (False) bank constraint for bpc;
            defaults to the DSA-ness of the register file.
        thres_ratio: Algorithm 1's THRES as a fraction of the file size.
        use_pressure_counting / cost_ordering / balance_free_registers:
            ablation switches forwarded to the bank assigner.
    """

    register_file: RegisterFile
    method: str = "bpc"
    regclass: RegClass = FP
    dsa: bool | None = None
    run_coalescing: bool = True
    run_scheduling: bool = True
    enable_live_range_split: bool = True
    strict_banks: bool | None = None
    thres_ratio: float = DEFAULT_THRES_RATIO
    sdg_config: SdgSplitConfig | None = None
    use_pressure_counting: bool = True
    cost_ordering: bool = True
    balance_free_registers: bool = True
    #: Future-work extension (§IV-B3): add inter-instruction bundle edges
    #: to the RCG so bank assignment also improves VLIW dual-issue.
    bundle_aware: bool = False

    def __post_init__(self):
        if self.method not in METHODS:
            raise ValueError(f"unknown method {self.method!r}; expected one of {METHODS}")
        if self.dsa is None:
            self.dsa = isinstance(self.register_file, BankSubgroupRegisterFile)
        if self.strict_banks is None:
            self.strict_banks = bool(self.dsa)


@dataclass
class PipelineResult:
    """All artifacts of one pipeline run."""

    function: Function
    allocation: AllocationResult
    bank_assignment: BankAssignment | None = None
    subgroups: SubgroupState | None = None
    coalescing: CoalescingResult | None = None
    sdg_split: SdgSplitResult | None = None

    @property
    def spill_count(self) -> int:
        return self.allocation.spill_count

    @property
    def copies_inserted(self) -> int:
        sdg = self.sdg_split.copies_inserted if self.sdg_split else 0
        return self.allocation.copies_inserted + sdg


def run_pipeline(function: Function, config: PipelineConfig) -> PipelineResult:
    """Run the Fig. 4 pipeline on (a clone of) *function*."""
    work = function.clone()

    coalescing_result: CoalescingResult | None = None
    if config.run_coalescing:
        coalescing_result = coalesce(work, config.regclass)

    sdg_result: SdgSplitResult | None = None
    subgroups: SubgroupState | None = None
    if config.dsa and config.method == "bpc":
        sdg_config = config.sdg_config
        if sdg_config is None and isinstance(config.register_file, BankSubgroupRegisterFile):
            # Balance share: one bank's slice of a single subgroup.
            share = max(
                4,
                config.register_file.registers_per_bank
                // config.register_file.num_subgroups,
            )
            sdg_config = SdgSplitConfig(max_component_size=share)
        sdg_result = split_subgroups(work, config.regclass, sdg_config)

    if config.run_scheduling:
        schedule_function(work)

    bank_assignment: BankAssignment | None = None
    policy = None
    if config.method == "bpc":
        assigner = PresCountBankAssigner(
            config.register_file,
            config.regclass,
            thres_ratio=config.thres_ratio,
            use_pressure_counting=config.use_pressure_counting,
            cost_ordering=config.cost_ordering,
            balance_free_registers=config.balance_free_registers,
        )
        rcg = None
        if config.bundle_aware:
            from ..analysis.conflict_graph import ConflictGraph
            from ..analysis.cost import ConflictCostModel
            from .bundle_aware import add_bundle_edges

            cost_model = ConflictCostModel.build(work, regclass=config.regclass)
            rcg = ConflictGraph.build(work, cost_model, config.regclass)
            add_bundle_edges(rcg, work, cost_model, config.regclass)
        bank_assignment = assigner.assign(work, rcg=rcg)
        bank_assignment.strict = bool(config.strict_banks)
        if config.dsa:
            file_ = config.register_file
            if not isinstance(file_, BankSubgroupRegisterFile):
                raise TypeError("DSA pipeline requires a BankSubgroupRegisterFile")
            subgroups = SubgroupState.from_function(
                work, file_.num_subgroups, config.regclass
            )
            policy = DsaPresCountPolicy(file_, bank_assignment, subgroups)
        else:
            policy = PresCountPolicy(config.register_file, bank_assignment)
    elif config.method == "bcr":
        policy = BcrPolicy(config.register_file, config.regclass)
    else:
        policy = NaturalOrderPolicy()

    allocator = GreedyAllocator(
        config.register_file,
        policy,
        config.regclass,
        enable_split=config.enable_live_range_split,
    )
    allocation = allocator.run(work, clone=False)
    if coalescing_result is not None:
        allocation.copies_removed += coalescing_result.copies_removed

    return PipelineResult(
        function=work,
        allocation=allocation,
        bank_assignment=bank_assignment,
        subgroups=subgroups,
        coalescing=coalescing_result,
        sdg_split=sdg_result,
    )

"""The combined register allocation pipeline of Fig. 4.

Phase order (exactly the paper's, with the two blue phases new):

1. **Register Coalescing** (standard LLVM phase)
2. **SDG-based Subgroup Splitting** (optional, DSA only) — placed *after*
   coalescing so its copies cannot be re-coalesced
3. **Pre-allocation Scheduling** (standard LLVM phase)
4. **RCG-based Bank Assignment** (PresCount, Algorithm 1) — placed after
   scheduling because it consumes live-range information without
   modifying it
5. **Enhanced Register Allocation** — the greedy allocator steered by the
   method's policy (and, on the DSA, by Algorithm 2 subgroup hints)

The three compared methods select what runs:

====== ============================== =======================
method bank assignment phase          allocation policy
====== ============================== =======================
non    (none)                         natural order
bcr    (none)                         per-instruction hinting
bpc    PresCount (Algorithm 1)        bank-ordered candidates
====== ============================== =======================

Since the pass-manager refactor this module no longer hand-composes the
phases: each phase is a registered :class:`~repro.passes.Pass` (see
:mod:`.passes`), :func:`build_pipeline` merely selects the pass list the
config asks for, and :func:`run_pipeline` is a *thin builder* — it clones
the function, hands the pass list to a
:class:`~repro.passes.FunctionPassManager` over one shared
:class:`~repro.passes.AnalysisManager` (so live intervals, the conflict
cost model, and the SDG are computed once per function state instead of
once per phase), and repackages the final state mapping as a
:class:`PipelineResult`.

Observability: every pass execution is wrapped in a span by the pass
manager, :func:`run_pipeline` itself opens a ``pipeline`` span, and the
bank assigner records its Algorithm 1 decisions — see :mod:`repro.obs`
and ``docs/OBSERVABILITY.md``.  All of it is off by default and the
pipeline's outputs are bit-identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..alloc.base import AllocationResult
from ..alloc.coalescing import CoalescingResult
from ..banks.assignment import BankAssignment
from ..banks.register_file import BankSubgroupRegisterFile, RegisterFile
from ..ir.function import Function
from ..ir.types import FP, RegClass
from ..obs import TRACER
from ..passes import AnalysisManager, FunctionPassManager
from .bank_assigner import DEFAULT_THRES_RATIO
from .passes import (
    AllocationPass,
    BankAssignmentPass,
    CoalescingPass,
    SchedulingPass,
    SdgSplitPass,
)
from .sdg_split import SdgSplitConfig, SdgSplitResult
from .subgroup import SubgroupState

#: The method names used throughout experiments and benches.
METHODS = ("non", "bcr", "bpc")


@dataclass
class PipelineConfig:
    """Everything a pipeline run needs besides the function.

    Attributes:
        register_file: Target register file (banked, or bank-subgrouped
            for the DSA).
        method: One of :data:`METHODS`.
        dsa: Enables the SDG phases (subgroup splitting + Algorithm 2
            hints).  Automatically implied by a
            :class:`BankSubgroupRegisterFile`.
        strict_banks: Hard (True) vs soft (False) bank constraint for bpc;
            defaults to the DSA-ness of the register file.
        thres_ratio: Algorithm 1's THRES as a fraction of the file size.
        use_pressure_counting / cost_ordering / balance_free_registers:
            ablation switches forwarded to the bank assigner.
    """

    register_file: RegisterFile
    method: str = "bpc"
    regclass: RegClass = FP
    dsa: bool | None = None
    run_coalescing: bool = True
    run_scheduling: bool = True
    enable_live_range_split: bool = True
    strict_banks: bool | None = None
    thres_ratio: float = DEFAULT_THRES_RATIO
    sdg_config: SdgSplitConfig | None = None
    use_pressure_counting: bool = True
    cost_ordering: bool = True
    balance_free_registers: bool = True
    #: Future-work extension (§IV-B3): add inter-instruction bundle edges
    #: to the RCG so bank assignment also improves VLIW dual-issue.
    bundle_aware: bool = False

    def __post_init__(self):
        if self.method not in METHODS:
            raise ValueError(f"unknown method {self.method!r}; expected one of {METHODS}")
        if self.dsa is None:
            self.dsa = isinstance(self.register_file, BankSubgroupRegisterFile)
        if self.strict_banks is None:
            self.strict_banks = bool(self.dsa)


@dataclass
class PipelineResult:
    """All artifacts of one pipeline run."""

    function: Function
    allocation: AllocationResult
    bank_assignment: BankAssignment | None = None
    subgroups: SubgroupState | None = None
    coalescing: CoalescingResult | None = None
    sdg_split: SdgSplitResult | None = None
    #: The shared analysis cache of the run; its surviving entries are
    #: valid for the *allocated* function, so downstream measurement
    #: (static stats, dynamic estimation) can keep hitting it.
    analyses: AnalysisManager | None = None

    @property
    def spill_count(self) -> int:
        return self.allocation.spill_count

    @property
    def copies_inserted(self) -> int:
        sdg = self.sdg_split.copies_inserted if self.sdg_split else 0
        return self.allocation.copies_inserted + sdg


def build_pipeline(config: PipelineConfig) -> FunctionPassManager:
    """Compose the Fig. 4 pass list selected by *config*.

    ====== ===========================================================
    method passes
    ====== ===========================================================
    non    [coalescing] → [scheduling] → allocation
    bcr    [coalescing] → [scheduling] → allocation
    bpc    [coalescing] → [sdg-split]* → [scheduling] → bank-assignment
           → allocation            (* DSA register files only)
    ====== ===========================================================
    """
    fpm = FunctionPassManager()
    if config.run_coalescing:
        fpm.add(CoalescingPass(config))
    if config.dsa and config.method == "bpc":
        fpm.add(SdgSplitPass(config))
    if config.run_scheduling:
        fpm.add(SchedulingPass(config))
    if config.method == "bpc":
        fpm.add(BankAssignmentPass(config))
    fpm.add(AllocationPass(config))
    return fpm


def run_pipeline(function: Function, config: PipelineConfig) -> PipelineResult:
    """Run the Fig. 4 pipeline on (a clone of) *function*."""
    with TRACER.span(
        "pipeline",
        category="pipeline",
        function=function.name,
        method=config.method,
    ):
        work = function.clone()
        am = AnalysisManager(work)
        state = build_pipeline(config).run(work, am=am)

    allocation: AllocationResult = state["allocation"]
    coalescing_result: CoalescingResult | None = state.get("coalescing")
    if coalescing_result is not None:
        allocation.copies_removed += coalescing_result.copies_removed

    return PipelineResult(
        function=work,
        allocation=allocation,
        bank_assignment=state.get("bank-assignment"),
        subgroups=state.get("subgroups"),
        coalescing=coalescing_result,
        sdg_split=state.get("sdg-split"),
        analyses=am,
    )

"""Subgroup assignment for the bank-subgroup DSA — Algorithm 2.

On the DSA every instruction's operands must share a *subgroup* (the
"subgroup alignment" constraint of Fig. 7).  The registers connected
through instructions form the components of the Same Displacement Graph;
each component must receive one *displacement* (subgroup number).

Algorithm 2 runs during register allocation, as a hint generator:

1. resolve the virtual register's bank (split-generated registers inherit
   their parent's, the first branch of the algorithm);
2. find the SDG component ("subgroup") containing the register;
3. if the component already has a displacement, reuse it; otherwise pick
   the least-used displacement (``MinUsed``) and charge it with the
   component's size — this is the balancing that large, unsplit
   components defeat (hence :mod:`repro.prescount.sdg_split`);
4. hint all physical registers conforming to (bank, displacement).

The hints stay soft for the allocator (live-range interference can
override them); violations that remain are counted as conflicts by the
DSA machine model, exactly as the hardware would serialize them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..analysis.intervals import LiveInterval
from ..analysis.sdg import SameDisplacementGraph
from ..banks.assignment import BankAssignment, SubgroupAssignment
from ..banks.register_file import BankSubgroupRegisterFile
from ..ir.function import Function
from ..ir.types import FP, PhysicalRegister, RegClass, VirtualRegister


@dataclass
class SubgroupState:
    """``groupDispls`` bookkeeping of Algorithm 2.

    Components are identified by integer ids; ``component_of`` maps each
    aligned register to its component.

    Displacement choice is *pressure-aware* (the §III-A note that the
    enhanced allocation "tak[es] into account ... the register subgroup
    pressure"): when live intervals are supplied, a fresh component gets
    the displacement whose maximum live-range overlap grows least —
    size-based ``MinUsed`` remains the fallback when no liveness is
    available.
    """

    num_subgroups: int
    component_of: dict[VirtualRegister, int] = field(default_factory=dict)
    component_size: dict[int, int] = field(default_factory=dict)
    group_displacements: dict[int, int] = field(default_factory=dict)
    usage: dict[int, int] = field(default_factory=dict)
    _next_component: int = 0
    #: Per-displacement live-pressure tracker (lazy; one "bank" per
    #: displacement) plus the registers already charged to it.
    _pressure: "object | None" = None
    _tracked: set[VirtualRegister] = field(default_factory=set)

    @classmethod
    def from_function(
        cls,
        function: Function,
        num_subgroups: int,
        regclass: RegClass | None = FP,
        sdg: SameDisplacementGraph | None = None,
        am=None,
    ) -> "SubgroupState":
        from ..obs import METRICS, TRACER

        with TRACER.span(
            "subgroup-state", category="stage", function=function.name
        ):
            if sdg is None:
                if am is not None:
                    from ..passes import SDGAnalysis

                    sdg = am.get(SDGAnalysis, regclass=regclass)
                else:
                    sdg = SameDisplacementGraph.build(function, regclass)
            state = cls(num_subgroups)
            for component in sdg.components():
                state.add_component(component)
            METRICS.observe("subgroup.components", len(state.component_size))
            return state

    # ------------------------------------------------------------------
    def add_component(self, members: set[VirtualRegister]) -> int:
        comp_id = self._next_component
        self._next_component += 1
        for reg in members:
            self.component_of[reg] = comp_id
        self.component_size[comp_id] = len(members)
        return comp_id

    def adopt(self, reg: VirtualRegister, like: VirtualRegister | None = None) -> int:
        """Place a late register (split/spill-generated) into a component:
        the component of *like* when given, else a fresh singleton."""
        if like is not None and like in self.component_of:
            comp_id = self.component_of[like]
            self.component_of[reg] = comp_id
            self.component_size[comp_id] += 1
            return comp_id
        return self.add_component({reg})

    def min_used(self) -> int:
        """``MinUsed(ALLSUBGROUPS)``."""
        return min(
            range(self.num_subgroups), key=lambda d: (self.usage.get(d, 0), d)
        )

    def displacement_for(
        self, reg: VirtualRegister, interval: LiveInterval | None = None
    ) -> int:
        """Resolve (assigning on first touch) the displacement of *reg*.

        With *interval* given, a fresh component is placed on the
        displacement with the least resulting live pressure, and the
        register's interval is charged to that displacement's tracker.
        """
        comp_id = self.component_of.get(reg)
        if comp_id is None:
            comp_id = self.adopt(reg)
        displ = self.group_displacements.get(comp_id)
        if displ is None:
            if interval is not None:
                tracker = self._tracker()
                displ = tracker.least_pressured_banks(interval)[0]
            else:
                displ = self.min_used()
            self.group_displacements[comp_id] = displ
            # "Increase the usage of subGroup by its size".
            self.usage[displ] = self.usage.get(displ, 0) + self.component_size[comp_id]
        if interval is not None and reg not in self._tracked:
            self._tracked.add(reg)
            self._tracker().assign(displ, interval)
        return displ

    def _tracker(self):
        from ..analysis.pressure import BankPressureTracker

        if self._pressure is None:
            self._pressure = BankPressureTracker(self.num_subgroups)
        return self._pressure

    def as_assignment(self) -> SubgroupAssignment:
        """Flatten into per-register displacements (for reporting)."""
        flat = SubgroupAssignment(self.num_subgroups)
        for reg, comp_id in self.component_of.items():
            displ = self.group_displacements.get(comp_id)
            if displ is not None:
                flat.displacements[reg] = displ
        flat.usage = dict(self.usage)
        return flat


class DsaPresCountPolicy:
    """Allocator policy for the DSA: bank assignment + Algorithm 2 hints.

    Candidate order for a register with bank *b* and displacement *d*:

    1. ``FindAllRegistersConforming(b, d)`` — the Algorithm 2 hints;
    2. the rest of bank *b* (bank constraint satisfied, alignment not);
    3. every other register (last resort over spilling).
    """

    def __init__(
        self,
        register_file: BankSubgroupRegisterFile,
        bank_assignment: BankAssignment,
        subgroups: SubgroupState,
    ):
        self.register_file = register_file
        self.bank_assignment = bank_assignment
        self.subgroups = subgroups
        self._all = register_file.registers()
        self._by_bank = [
            register_file.registers_in_bank(b)
            for b in range(register_file.num_banks)
        ]
        self._conforming = {
            (b, d): register_file.registers_conforming(b, d)
            for b in range(register_file.num_banks)
            for d in range(register_file.num_subgroups)
        }
        # Lazy per-(bank, displacement) candidate lists: the order is a
        # pure function of the pair, so with the flat core active each is
        # assembled once instead of on every `order` call.
        from ..ir.flat import enabled as flat_enabled

        self._fast = flat_enabled()
        self._ordered: dict[tuple[int, int], list[PhysicalRegister]] = {}

    def setup(self, allocator) -> None:
        pass

    def order(
        self, vreg: VirtualRegister, interval: LiveInterval
    ) -> Sequence[PhysicalRegister]:
        bank = self.bank_assignment.bank_of(vreg)
        if bank is None:
            return self._all
        displ = self.subgroups.displacement_for(vreg, interval)
        if self._fast:
            cached = self._ordered.get((bank, displ))
            if cached is not None:
                return cached
        hints = self._conforming[(bank, displ)]
        same_bank = [r for r in self._by_bank[bank] if r not in hints]
        rest = [r for r in self._all if self.register_file.bank_of(r) != bank]
        ordered = list(hints) + same_bank + rest
        if self._fast:
            self._ordered[(bank, displ)] = ordered
        return ordered

    def on_assign(self, vreg: VirtualRegister, preg: PhysicalRegister) -> None:
        pass

    def on_unassign(self, vreg: VirtualRegister, preg: PhysicalRegister) -> None:
        pass

    def on_split(self, parent: VirtualRegister, children: list[VirtualRegister]) -> None:
        """Split-generated registers keep the parent's bank *and* subgroup
        (they are copies of the same value, so alignment must carry over)."""
        bank = self.bank_assignment.bank_of(parent)
        for child in children:
            if bank is not None:
                self.bank_assignment.assign(child, bank)
            self.subgroups.adopt(child, like=parent)

"""The five Fig. 4 phases as registered function passes.

Each phase of the paper's pipeline (coalescing → SDG subgroup splitting →
pre-allocation scheduling → RCG bank assignment → enhanced greedy
allocation) is wrapped in a :class:`~repro.passes.Pass` so
:func:`repro.prescount.pipeline.run_pipeline` reduces to composing a pass
list per method and handing it to a
:class:`~repro.passes.FunctionPassManager` with one shared
:class:`~repro.passes.AnalysisManager`.

Artifact flow follows the pipeline state mapping: the bank-assignment
pass publishes its :class:`~repro.banks.assignment.BankAssignment` under
``"bank-assignment"``; the allocation pass reads it there to build the
method's policy, and publishes the Algorithm 2
:class:`~repro.prescount.subgroup.SubgroupState` under ``"subgroups"``.

Phases that iterate mutate-and-reanalyze loops (coalescing, SDG
splitting, scheduling) invalidate through the shared manager *inside*
their implementation functions and therefore declare ``PRESERVE_ALL``
here; the pure bank-assignment phase genuinely preserves everything.
"""

from __future__ import annotations

from ..alloc.base import NaturalOrderPolicy
from ..alloc.coalescing import CoalescingResult, coalesce
from ..alloc.greedy import GreedyAllocator
from ..alloc.scheduling import SchedulingResult, schedule_function
from ..banks.assignment import BankAssignment
from ..banks.register_file import BankSubgroupRegisterFile
from ..passes import (
    PRESERVE_ALL,
    AnalysisManager,
    ConflictCostAnalysis,
    ConflictGraphAnalysis,
    LiveIntervalsAnalysis,
    Pass,
    SDGAnalysis,
)
from .bank_assigner import PresCountBankAssigner, PresCountPolicy
from .bcr import BcrPolicy
from .sdg_split import SdgSplitConfig, SdgSplitResult, split_subgroups
from .subgroup import DsaPresCountPolicy, SubgroupState

#: name -> pass class, for introspection, docs, and the CLI.
PASS_REGISTRY: dict[str, type[Pass]] = {}


def register_pass(cls: type[Pass]) -> type[Pass]:
    """Class decorator: expose a pass under its ``name`` in the registry."""
    PASS_REGISTRY[cls.name] = cls
    return cls


class _ConfiguredPass(Pass):
    """Base for passes parameterized by a :class:`PipelineConfig`."""

    def __init__(self, config):
        self.config = config


@register_pass
class CoalescingPass(_ConfiguredPass):
    """Standard register coalescing (white phase #1)."""

    name = "coalescing"

    def run(self, function, am: AnalysisManager, state) -> CoalescingResult:
        return coalesce(function, self.config.regclass, am=am)

    def preserved(self, result):
        return PRESERVE_ALL  # coalesce() invalidates per mutating round


@register_pass
class SdgSplitPass(_ConfiguredPass):
    """SDG-based subgroup splitting (blue phase, DSA + bpc only)."""

    name = "sdg-split"

    def run(self, function, am: AnalysisManager, state) -> SdgSplitResult:
        config = self.config
        sdg_config = config.sdg_config
        if sdg_config is None and isinstance(
            config.register_file, BankSubgroupRegisterFile
        ):
            # Balance share: one bank's slice of a single subgroup.
            share = max(
                4,
                config.register_file.registers_per_bank
                // config.register_file.num_subgroups,
            )
            sdg_config = SdgSplitConfig(max_component_size=share)
        return split_subgroups(function, config.regclass, sdg_config, am=am)

    def preserved(self, result):
        return PRESERVE_ALL  # split_subgroups() invalidates per cutting round


@register_pass
class SchedulingPass(_ConfiguredPass):
    """Pressure-aware pre-allocation list scheduling (white phase #2)."""

    name = "scheduling"
    #: Reorders instructions within blocks but never adds, removes, or
    #: rewrites one; the Eq. 2 fold is order-independent, so the cost
    #: delta is structurally zero.
    cost_neutral = True

    def run(self, function, am: AnalysisManager, state) -> SchedulingResult:
        return schedule_function(function, am=am)

    def preserved(self, result):
        return PRESERVE_ALL  # schedule_function() invalidates on reorder


@register_pass
class BankAssignmentPass(_ConfiguredPass):
    """PresCount RCG-based bank assignment — Algorithm 1 (blue phase).

    Purely analytical: it colors the RCG and publishes the resulting
    :class:`BankAssignment` without touching the IR, so every cached
    analysis survives it.
    """

    name = "bank-assignment"
    #: Colors the RCG without touching the IR, so the conflict-cost
    #: fold cannot move across it.
    cost_neutral = True

    def run(self, function, am: AnalysisManager, state) -> BankAssignment:
        config = self.config
        assigner = PresCountBankAssigner(
            config.register_file,
            config.regclass,
            thres_ratio=config.thres_ratio,
            use_pressure_counting=config.use_pressure_counting,
            cost_ordering=config.cost_ordering,
            balance_free_registers=config.balance_free_registers,
        )
        cost_model = am.get(ConflictCostAnalysis, regclass=config.regclass)
        if config.bundle_aware:
            # The bundle extension adds soft edges; build a private RCG so
            # the cached (hard-edges-only) graph stays pristine.
            from ..analysis.conflict_graph import ConflictGraph
            from .bundle_aware import add_bundle_edges

            rcg = ConflictGraph.build(function, cost_model, config.regclass)
            add_bundle_edges(rcg, function, cost_model, config.regclass)
        else:
            rcg = am.get(ConflictGraphAnalysis, regclass=config.regclass)
        assignment = assigner.assign(
            function,
            rcg=rcg,
            intervals=am.get(LiveIntervalsAnalysis),
            cost_model=cost_model,
        )
        assignment.strict = bool(config.strict_banks)
        return assignment

    def preserved(self, result):
        return PRESERVE_ALL


@register_pass
class AllocationPass(_ConfiguredPass):
    """Enhanced greedy register allocation (the final Fig. 4 phase).

    Builds the method's candidate-ordering policy from the published
    bank assignment (``bpc``), per-instruction hinting (``bcr``), or
    natural order (``non``), then runs the greedy allocator over the
    shared analysis cache.  The allocator invalidates all but the
    CFG-level analyses itself once it has rewritten the function.
    """

    name = "allocation"
    #: Allocation renames registers within the costed class; operands
    #: that are distinct in an instruction are simultaneously live and
    #: so stay distinct under any correct assignment, and inserted spill
    #: reloads / split copies are never ARITH — the Eq. 2 potential-cost
    #: fold is allocation-invariant (only *actual* conflicts move).
    cost_neutral = True

    def run(self, function, am: AnalysisManager, state):
        config = self.config
        subgroups = None
        if config.method == "bpc":
            bank_assignment = state["bank-assignment"]
            if config.dsa:
                file_ = config.register_file
                if not isinstance(file_, BankSubgroupRegisterFile):
                    raise TypeError(
                        "DSA pipeline requires a BankSubgroupRegisterFile"
                    )
                subgroups = SubgroupState.from_function(
                    function, file_.num_subgroups, config.regclass, am=am
                )
                policy = DsaPresCountPolicy(file_, bank_assignment, subgroups)
            else:
                policy = PresCountPolicy(config.register_file, bank_assignment)
        elif config.method == "bcr":
            policy = BcrPolicy(config.register_file, config.regclass)
        else:
            policy = NaturalOrderPolicy()
        state["subgroups"] = subgroups

        allocator = GreedyAllocator(
            config.register_file,
            policy,
            config.regclass,
            enable_split=config.enable_live_range_split,
        )
        return allocator.run(function, clone=False, am=am)

    def preserved(self, result):
        return PRESERVE_ALL  # GreedyAllocator.run() invalidates to CFG_ONLY
